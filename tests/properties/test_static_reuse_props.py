"""Property-based tests: the static analyzer vs. the dynamic engine.

Two laws over randomly generated affine kernels:

* for 1-D streaming loops (constant-shift recurrences plus extra
  streamed arrays) the symbolic profile is *exact* — its histogram is
  the dynamic histogram, at every generated size;
* for random two-nest affine kernels the static distance *bound* of
  each class is conservative: no dynamic reuse of that class is farther
  than the evaluated bound.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import trace_program
from repro.lang import parse, validate
from repro.locality import COLD, ReuseHistogram, reuse_distances
from repro.static import analyze_program


def _build(source: str):
    return validate(parse(source))


# -- 1-D streaming loops: exactness ---------------------------------------

streaming = st.tuples(
    st.integers(1, 4),  # recurrence shift k: A[i] = f(A[i-k], ...)
    st.integers(0, 2),  # number of extra streamed read arrays
    st.integers(12, 80),  # concrete N
)


@given(streaming)
@settings(max_examples=40, deadline=None)
def test_static_profile_exact_for_streaming_loops(case):
    k, extra, n = case
    reads = ", ".join(f"B{j}[i]" for j in range(extra))
    decls = "".join(f", B{j}[N]" for j in range(extra))
    src = f"""
    program stream
    param N
    real A[N]{decls}
    for i = {k + 1}, N {{ A[i] = f(A[i - {k}]{', ' + reads if reads else ''}) }}
    """
    program = _build(src)
    profile = analyze_program(program)
    tr = trace_program(program, {"N": n})
    dynamic = ReuseHistogram.from_distances(reuse_distances(tr.global_keys()))
    static = profile.histogram({"N": n})
    assert static.cold == dynamic.cold
    assert static.total == dynamic.total
    assert list(static.counts) == list(dynamic.counts)


# -- random affine two-nest kernels: conservative bounds ------------------


@st.composite
def affine_kernel(draw):
    """Two nests over 2-D arrays with random constant-shift subscripts."""
    s1 = draw(st.integers(0, 2))
    s2 = draw(st.integers(0, 2))
    t1 = draw(st.integers(0, 2))
    lo = draw(st.integers(1, 3))
    n = draw(st.integers(8, 20))
    src = f"""
    program rand
    param N
    real A[N, N], B[N, N]
    for i = {lo}, N {{
      for j = {1 + s1}, N {{ A[j, i] = f(A[j - {s1}, i], B[j, i]) }}
    }}
    for i = {1 + t1}, N - {s2} {{
      for j = 1, N {{ B[j, i] = g(A[j, i + {s2}], B[j, i - {t1}]) }}
    }}
    """
    return _build(src), n


@given(affine_kernel())
@settings(max_examples=25, deadline=None)
def test_static_bound_dominates_dynamic_distance(case):
    program, n = case
    profile = analyze_program(program)
    tr = trace_program(program, {"N": n})
    distances = reuse_distances(tr.global_keys())
    ids = np.asarray(tr.ref_ids)
    cap = float(profile.footprint.evaluate({"N": n}))
    for cp in profile.classes:
        observed = distances[ids == cp.ref.ref_id]
        observed = observed[observed != COLD]
        if observed.size == 0:
            continue
        bound = max(
            float(c.bound.evaluate({"N": n})) for c in cp.components
        )
        bound = min(bound, cap)  # a reuse can never exceed the footprint
        assert float(observed.max()) <= bound + 0.5, (
            f"{cp.ref.text}: dynamic max {observed.max()} "
            f"exceeds static bound {bound}"
        )
