"""Property-based oracle for the static parallelism analyzer.

For randomly generated affine nests — including triangular bounds and
``when`` guards — an independent brute-force enumerator lists every
cross-lane conflicting iteration pair of each loop axis.  The analyzer's
verdicts must agree:

* ``doall`` is a certificate: the enumerator must find NO conflicting
  pair (soundness — the property that makes parallel execution safe);
* an exact ``serial`` verdict claims a race: the enumerator must find
  one, and the attached witness pair must itself collide.

Both the analyzer and the oracle linearize subscripts column-major with
the same strides, so element identity means the same thing on each side.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse, validate
from repro.static import analyze_parallelism


def build(source: str):
    return validate(parse(source))


SHIFT = st.integers(-1, 1)


@st.composite
def affine_nest(draw):
    """One doubly nested affine kernel plus everything the oracle needs."""
    n = draw(st.integers(6, 9))
    tri = draw(st.booleans())
    guarded = draw(st.booleans())
    two_stmts = draw(st.booleans())
    ws_j, ws_i = draw(SHIFT), draw(SHIFT)
    rs_j, rs_i = draw(SHIFT), draw(SHIFT)
    r2_j, r2_i = draw(SHIFT), draw(SHIFT)

    hij = "i" if tri else "N - 1"
    stmt1 = (
        f"A[j + {ws_j}, i + {ws_i}] = "
        f"f(A[j + {rs_j}, i + {rs_i}], B[j, i])"
    )
    if guarded:
        stmt1 = f"when j in [3:N - 2] {{ {stmt1} }}"
    stmt2 = f"B[j, i] = g(A[j + {r2_j}, i + {r2_i}])" if two_stmts else ""
    src = f"""
    program rnd
    param N
    real A[N + 2, N + 2], B[N + 2, N + 2]
    for i = 2, N - 1 {{
      for j = 2, {hij} {{
        {stmt1}
        {stmt2}
      }}
    }}
    """
    spec = {
        "n": n,
        "tri": tri,
        "guarded": guarded,
        "two_stmts": two_stmts,
        "shifts": (ws_j, ws_i, rs_j, rs_i, r2_j, r2_i),
    }
    return build(src), spec


def oracle_accesses(spec):
    """(i, j) -> [(array, element, is_write)] exactly as executed."""
    n = spec["n"]
    stride_i = n + 2  # column-major: first subscript has stride 1
    ws_j, ws_i, rs_j, rs_i, r2_j, r2_i = spec["shifts"]

    def elem(j, i):
        return j + i * stride_i

    out = {}
    for i in range(2, n):  # i = 2 .. N-1
        hij = i if spec["tri"] else n - 1
        for j in range(2, hij + 1):
            accs = []
            in_guard = (not spec["guarded"]) or (3 <= j <= n - 2)
            if in_guard:
                accs.append(("A", elem(j + rs_j, i + rs_i), False))
                accs.append(("B", elem(j, i), False))
                accs.append(("A", elem(j + ws_j, i + ws_i), True))
            if spec["two_stmts"]:
                accs.append(("A", elem(j + r2_j, i + r2_i), False))
                accs.append(("B", elem(j, i), True))
            out[(i, j)] = accs
    return out


def conflicting_pairs(accesses, axis):
    """Iteration pairs of ``axis`` whose accesses collide (>= one write)."""
    pairs = []
    items = list(accesses.items())
    for idx, ((i1, j1), a1) in enumerate(items):
        for (i2, j2), a2 in items[idx + 1:]:
            if axis == "i":
                if i1 == i2:
                    continue
            else:  # axis j shares the enclosing i
                if i1 != i2 or j1 == j2:
                    continue
            for arr1, e1, w1 in a1:
                for arr2, e2, w2 in a2:
                    if arr1 == arr2 and e1 == e2 and (w1 or w2):
                        pairs.append(((i1, j1), (i2, j2)))
    return pairs


@given(affine_nest())
@settings(max_examples=60, deadline=None)
def test_verdicts_match_brute_force(case):
    program, spec = case
    n = spec["n"]
    profile = analyze_parallelism(program, {"N": n})
    accesses = oracle_accesses(spec)
    by_axis = {".".join(v.path): v for v in profile.verdicts}
    assert set(by_axis) == {"i", "i.j"}

    for path, axis in (("i", "i"), ("i.j", "j")):
        v = by_axis[path]
        assert v.verdict in ("doall", "serial"), (
            f"axis {axis}: unexpected verdict {v.verdict!r}"
        )
        conflicts = conflicting_pairs(accesses, axis)
        if v.verdict == "doall":
            assert conflicts == [], (
                f"UNSOUND: axis {axis} certified DOALL but iterations "
                f"{conflicts[0]} race ({spec})"
            )
        elif v.exact:
            assert conflicts, (
                f"axis {axis} called serial but brute force finds no "
                f"conflict ({spec})"
            )


@given(affine_nest())
@settings(max_examples=60, deadline=None)
def test_exact_witnesses_replay(case):
    """An exact witness names two iterations that really collide."""
    program, spec = case
    n = spec["n"]
    profile = analyze_parallelism(program, {"N": n})
    accesses = oracle_accesses(spec)
    for v in profile.races:
        w = v.witness
        if w is None or not w.exact:
            continue
        env_a, env_b = dict(w.env_a), dict(w.env_b)
        key_a = (env_a["i"], env_a.get("j"))
        key_b = (env_b["i"], env_b.get("j"))
        if key_a[1] is None or key_b[1] is None:
            continue  # outer-axis witness fixing no j: skip replay
        assert key_a in accesses and key_b in accesses, (
            f"witness iterations {key_a} / {key_b} outside the space"
        )
        touched_a = {
            (arr, e) for arr, e, wr in accesses[key_a] if arr == w.array
        }
        touched_b = {
            (arr, e) for arr, e, wr in accesses[key_b] if arr == w.array
        }
        assert touched_a & touched_b, (
            f"witness pair {key_a} vs {key_b} never touches a common "
            f"{w.array} element ({spec})"
        )
