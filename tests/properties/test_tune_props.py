"""Property-based tests for the pipeline autotuner's search space.

Every candidate the tuner can generate — any enabler subset, any fusion
level, with or without the terminal regroup, and anything reachable from
there through ``neighbors`` moves — must (1) be a legal pipeline under
full ``verify-pass`` certification, and (2) produce a program the
printer round-trips exactly.  This is the legality contract that lets
``tune()`` rank candidates purely statically without ever executing an
uncertified transformation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_pipeline
from repro.lang import parse, to_source, validate
from repro.programs import registry
from repro.tune import (
    ENABLERS,
    FUSION_LEVELS,
    candidate_fields,
    make_candidate,
    neighbors,
    parse_signature,
    spec_signature,
)

#: a small program keeps certification (dependence re-testing at a
#: concrete size) fast enough for dozens of hypothesis examples
SMALL = {"N": 12}


def _adi():
    return validate(registry.get("adi").build())


enabler_subsets = st.lists(
    st.sampled_from(ENABLERS), unique=True, max_size=len(ENABLERS)
).map(tuple)

candidates = st.builds(
    make_candidate,
    enablers=enabler_subsets,
    fusion=st.sampled_from(FUSION_LEVELS),
    regroup=st.booleans(),
)


@given(candidates)
@settings(max_examples=25, deadline=None)
def test_candidate_passes_certification(spec):
    """Every generated candidate compiles under full verification."""
    program = _adi()
    variant = compile_pipeline(
        program, spec, verify=True, verify_params=SMALL
    )
    assert variant.program is not None


@given(candidates)
@settings(max_examples=25, deadline=None)
def test_candidate_program_printer_round_trips(spec):
    """The transformed program survives print -> parse -> print exactly."""
    program = _adi()
    variant = compile_pipeline(program, spec)
    text = to_source(variant.program)
    reparsed = validate(parse(text))
    assert to_source(reparsed) == text


@given(candidates)
@settings(max_examples=100, deadline=None)
def test_signature_round_trips(spec):
    """spec -> signature -> spec is the identity on steps."""
    signature = spec_signature(spec)
    rebuilt = parse_signature(signature)
    assert rebuilt.steps == spec.steps
    assert spec_signature(rebuilt) == signature


@given(candidates)
@settings(max_examples=100, deadline=None)
def test_candidate_fields_invert_make_candidate(spec):
    enablers, fusion, regroup = candidate_fields(spec)
    again = make_candidate(enablers=enablers, fusion=fusion, regroup=regroup)
    assert again.steps == spec.steps


@given(candidates, st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_neighbor_chains_stay_candidate_shaped(spec, hops):
    """Random walks through neighbors() never leave the legal space."""
    current = spec
    for hop in range(hops):
        near = neighbors(current)
        assert near, f"candidate {spec_signature(current)} has no neighbors"
        for n in near:
            # every neighbor is itself well-formed and one move away
            candidate_fields(n)
            assert n.steps != current.steps
        current = near[hop % len(near)]
    # terminal point still compiles under certification
    variant = compile_pipeline(
        _adi(), current, verify=True, verify_params=SMALL
    )
    text = to_source(variant.program)
    assert to_source(validate(parse(text))) == text
