"""Property-based oracle suite for the fast simulation engine.

Two families of invariants lock the vectorized paths in
``repro.memsim.fastsim`` to ground truth:

* every fast set-associative path (direct-mapped, 2-way, and the
  fully-associative bitmask path) must agree with the scalar ``_n_way``
  reference — miss masks *and* write-back counts — on arbitrary
  address/write streams;
* the fully-associative cache must agree with the stack-distance oracle
  ``miss_count(reuse_distances(lines), capacity)``, the LRU/stack
  equivalence (paper §2.1) the fast path is built on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locality import reuse_distances
from repro.locality.reuse_distance import miss_count
from repro.memsim.cache import (
    CacheConfig,
    _n_way,
    simulate_cache,
    simulate_cache_writeback,
)


@st.composite
def access_streams(draw):
    """A (lines, writes) pair with clustered line numbers and runs."""
    n = draw(st.integers(1, 120))
    span = draw(st.integers(1, 60))
    lines = draw(
        st.lists(st.integers(0, span), min_size=n, max_size=n)
    )
    # splice in runs of repeats so the RLE front-end is exercised
    repeats = draw(st.lists(st.integers(0, n - 1), max_size=8))
    for pos in repeats:
        run = draw(st.integers(1, 4))
        lines[pos : pos + run] = [lines[pos]] * len(lines[pos : pos + run])
    writes = draw(st.lists(st.booleans(), min_size=len(lines), max_size=len(lines)))
    return np.asarray(lines, dtype=np.int64), np.asarray(writes, dtype=bool)


CONFIGS = [
    CacheConfig("dm", 8 * 8, 8, 1),  # direct-mapped, 8 sets
    CacheConfig("2w", 16 * 8, 8, 2),  # 2-way, 8 sets
    CacheConfig("2w1", 2 * 8, 8, 2),  # 2-way, single set
    CacheConfig("fa", 4 * 8, 8, 0),  # fully associative, 4 lines
    CacheConfig("fa1", 1 * 8, 8, 0),  # fully associative, 1 line
    CacheConfig("4w", 16 * 8, 8, 4),  # scalar fallback path
]


@given(access_streams())
@settings(max_examples=150, deadline=None)
def test_fast_engine_matches_reference(stream):
    lines, writes = stream
    addresses = lines * 8
    for config in CONFIGS:
        ref = simulate_cache_writeback(config, addresses, writes, engine="reference")
        fast = simulate_cache_writeback(config, addresses, writes, engine="fast")
        assert np.array_equal(ref.miss, fast.miss), config.name
        assert ref.writebacks == fast.writebacks, config.name


@given(access_streams())
@settings(max_examples=150, deadline=None)
def test_set_assoc_paths_match_n_way(stream):
    """_direct_mapped/_two_way (via dispatch) agree with scalar _n_way."""
    lines, writes = stream
    for assoc, num_sets in ((1, 8), (2, 8), (2, 4)):
        config = CacheConfig("c", num_sets * assoc * 8, 8, assoc)
        oracle = _n_way(lines, writes, num_sets, assoc)
        for engine in ("fast", "reference"):
            got = simulate_cache_writeback(config, lines * 8, writes, engine=engine)
            assert np.array_equal(oracle.miss, got.miss), (assoc, engine)
            assert oracle.writebacks == got.writebacks, (assoc, engine)


@given(access_streams(), st.integers(1, 40))
@settings(max_examples=150, deadline=None)
def test_fully_associative_matches_stack_distance(stream, capacity):
    """FA LRU miss count == Olken stack-distance oracle, both engines."""
    lines, _ = stream
    config = CacheConfig("fa", capacity * 8, 8, 0)
    expected = miss_count(reuse_distances(lines), capacity)
    for engine in ("fast", "reference"):
        miss = simulate_cache(config, lines * 8, engine=engine)
        assert int(miss.sum()) == expected, engine
