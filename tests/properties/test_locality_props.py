"""Property-based tests: reuse distance and cache simulation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import simulate_belady
from repro.locality import COLD, reuse_distances, reuse_distances_naive
from repro.memsim import CacheConfig, simulate_cache

traces = st.lists(st.integers(0, 30), min_size=0, max_size=300)


@given(traces)
@settings(max_examples=150)
def test_reuse_distance_equals_naive(keys):
    assert list(reuse_distances(keys)) == reuse_distances_naive(keys)


@given(traces)
def test_first_occurrences_cold(keys):
    d = reuse_distances(keys)
    seen = set()
    for key, dist in zip(keys, d):
        if key not in seen:
            assert dist == COLD
            seen.add(key)
        else:
            assert 0 <= dist < len(seen)


@given(traces, st.integers(1, 16))
@settings(max_examples=100)
def test_fully_assoc_lru_equals_distance_criterion(keys, capacity):
    addrs = np.asarray(keys, dtype=np.int64) * 32
    cfg = CacheConfig("t", capacity * 32, 32, 0)
    miss = simulate_cache(cfg, addrs)
    rd = reuse_distances(keys)
    expected = (rd == COLD) | (rd >= capacity)
    assert np.array_equal(miss, expected)


@given(traces, st.integers(1, 16))
@settings(max_examples=100)
def test_belady_no_worse_than_lru(keys, capacity):
    addrs = np.asarray(keys, dtype=np.int64) * 32
    cfg = CacheConfig("t", capacity * 32, 32, 0)
    assert simulate_belady(cfg, addrs).sum() <= simulate_cache(cfg, addrs).sum()


@given(traces, st.sampled_from([1, 2, 4, 0]))
@settings(max_examples=100)
def test_belady_lower_bounds_every_geometry(keys, assoc):
    """OPT replacement at full capacity lower-bounds every LRU geometry.

    (Note: fully-associative LRU does NOT dominate set-associative LRU in
    general — hypothesis found the classic counterexample — so the only
    universally true ordering is against Belady.)
    """
    addrs = np.asarray(keys, dtype=np.int64) * 32
    capacity_lines = 8
    cfg = CacheConfig("t", capacity_lines * 32, 32, assoc)
    full = CacheConfig("t", capacity_lines * 32, 32, 0)
    assert simulate_cache(cfg, addrs).sum() >= simulate_belady(full, addrs).sum()


@given(traces, st.integers(1, 12))
def test_larger_cache_never_misses_more_fully_assoc(keys, capacity):
    addrs = np.asarray(keys, dtype=np.int64) * 32
    small = CacheConfig("t", capacity * 32, 32, 0)
    big = CacheConfig("t", (capacity + 4) * 32, 32, 0)
    assert simulate_cache(big, addrs).sum() <= simulate_cache(small, addrs).sum()
