"""Property-based tests: fusion preserves semantics on random programs.

Random flat programs over a fixed array set — sequences of 1-D loops with
stencil bodies and boundary statements — are pushed through the full
fusion pipeline and must produce bit-identical results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fusion import fuse_program
from repro.interp import run_program
from repro.lang import (
    ArrayRef,
    Assign,
    Call,
    Const,
    IndexVar,
    Loop,
    Param,
    Program,
    ArrayDecl,
    validate,
)

ARRAYS = ["A", "B", "C"]


@st.composite
def loop_stmt(draw):
    target = draw(st.sampled_from(ARRAYS))
    # offsets chosen so subscripts stay within [1, N] for lo >= 3
    toff = draw(st.integers(-1, 1))
    i = IndexVar("i")
    reads = []
    for _ in range(draw(st.integers(1, 2))):
        arr = draw(st.sampled_from(ARRAYS))
        off = draw(st.integers(-2, 1))
        reads.append(ArrayRef(arr, (i + off,)))
    body = Assign(ArrayRef(target, (i + toff,)), Call("f", tuple(reads)))
    lo = draw(st.integers(3, 4))
    hi_off = draw(st.integers(2, 3))
    return Loop("i", Const(lo), Param("N") - hi_off, (body,))


@st.composite
def boundary_stmt(draw):
    target = draw(st.sampled_from(ARRAYS))
    tidx = draw(st.sampled_from([Const(1), Const(2), Param("N")]))
    src = draw(st.sampled_from(ARRAYS))
    sidx = draw(st.sampled_from([Const(1), Param("N"), Param("N") - 1]))
    return Assign(ArrayRef(target, (tidx,)), Call("g", (ArrayRef(src, (sidx,)),)))


@st.composite
def programs(draw):
    n_items = draw(st.integers(1, 6))
    body = []
    for _ in range(n_items):
        if draw(st.booleans()):
            body.append(draw(loop_stmt()))
        else:
            body.append(draw(boundary_stmt()))
    decls = tuple(ArrayDecl(name, (Param("N"),)) for name in ARRAYS)
    return Program("rand", ("N",), decls, tuple(body))


@given(programs())
@settings(max_examples=60, deadline=None)
def test_fusion_preserves_semantics(program):
    validate(program)
    fused, _ = fuse_program(program)
    validate(fused)
    for n in (8, 13):
        ref = run_program(program, {"N": n}, steps=2)
        out = run_program(fused, {"N": n}, steps=2)
        for name in ref:
            assert np.array_equal(ref[name], out[name]), name


@given(programs())
@settings(max_examples=30, deadline=None)
def test_fusion_never_increases_source_loop_count(program):
    validate(program)
    fused, report = fuse_program(program)
    # fused units never exceed the original loop count at level 1
    level1 = report.levels[0]
    assert level1.units_after <= max(level1.loops_before, len(program.body))
