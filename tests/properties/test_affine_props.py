"""Property-based tests for affine forms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import Affine

names = st.sampled_from(["N", "M", "i", "j", "k"])


@st.composite
def affines(draw):
    const = draw(st.integers(-50, 50))
    nterms = draw(st.integers(0, 3))
    terms = {}
    for _ in range(nterms):
        terms[draw(names)] = draw(st.integers(-5, 5))
    return Affine.from_terms(const, terms)


envs = st.fixed_dictionaries(
    {n: st.integers(1, 100) for n in ["N", "M", "i", "j", "k"]}
)


@given(affines(), affines(), envs)
def test_addition_matches_evaluation(a, b, env):
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)


@given(affines(), affines(), envs)
def test_subtraction_matches_evaluation(a, b, env):
    assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)


@given(affines(), st.integers(-7, 7), envs)
def test_scaling_matches_evaluation(a, c, env):
    assert (a * c).evaluate(env) == c * a.evaluate(env)


@given(affines(), affines(), envs)
def test_substitution_matches_evaluation(a, b, env):
    substituted = a.substitute({"i": b})
    env2 = dict(env)
    env2["i"] = int(b.evaluate(env))
    assert substituted.evaluate(env) == a.evaluate(env2)


@given(affines(), affines())
@settings(max_examples=200)
def test_compare_is_sound(a, b):
    """Whenever compare decides, every assignment >= the default minimum
    must agree with the decision."""
    verdict = a.compare(b, 8)
    if verdict is None:
        return
    # sample a few corners of the assignment space
    for point in (8, 9, 17, 100):
        env = {n: point for n in ("N", "M", "i", "j", "k")}
        diff = a.evaluate(env) - b.evaluate(env)
        if verdict == 0:
            assert diff == 0
        elif verdict == 1:
            assert diff > 0
        else:
            assert diff < 0


@given(affines())
def test_lower_bound_is_sound(a):
    lb = a.lower_bound(8)
    if lb is None:
        return
    for point in (8, 13, 64):
        env = {n: point for n in ("N", "M", "i", "j", "k")}
        assert a.evaluate(env) >= lb


@given(affines())
def test_round_trip_through_expr(a):
    from repro.lang import affine_expr

    assert affine_expr(a, frozenset({"N", "M"})).affine() == a
