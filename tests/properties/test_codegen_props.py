"""Property-based oracle suite for the codegen backend.

Random affine loop nests — rectangular and triangular bounds, guards,
1-D and 2-D arrays, opaque functions and vectorizable builtins — must
trace and execute **bit-for-bit identically** through
``repro.codegen`` and the interpreter.  This is the fuzzing counterpart
of the pinned 42-variant differential suite under ``tests/codegen/``:
the study programs cover the shapes the paper needs, the random nests
cover the shapes nobody thought to write down.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import run_program as codegen_run
from repro.codegen import trace_program as codegen_trace
from repro.interp import run_program as interp_run
from repro.interp import trace_program as interp_trace
from repro.lang import parse, validate

PARAMS = {"N": 9}


@st.composite
def subscript(draw, indices):
    """An affine subscript guaranteed in [1, N+4] for 1 <= idx <= N+1."""
    idx = draw(st.sampled_from(indices))
    offset = draw(st.integers(0, 3))
    return f"{idx} + {offset}" if offset else idx


@st.composite
def rvalue(draw, indices, depth=0):
    arrays_1d = ["A", "B"]
    kind = draw(st.sampled_from(
        ["ref", "ref", "const", "call", "binop"] if depth < 2 else
        ["ref", "const"]
    ))
    if kind == "ref":
        arr = draw(st.sampled_from(arrays_1d + ["C"]))
        if arr == "C":
            return (
                f"C[{draw(subscript(indices))}, {draw(subscript(indices))}]"
            )
        return f"{arr}[{draw(subscript(indices))}]"
    if kind == "const":
        return str(draw(st.sampled_from(["0.5", "1.0", "2.0", "3.0"])))
    if kind == "call":
        fn = draw(st.sampled_from(["f", "g", "sqrt", "abs", "sin"]))
        return f"{fn}({draw(rvalue(indices, depth + 1))})"
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(rvalue(indices, depth + 1))
    right = draw(rvalue(indices, depth + 1))
    return f"({left} {op} {right})"


@st.composite
def assignment(draw, indices):
    arr = draw(st.sampled_from(["A", "B", "C"]))
    if arr == "C":
        target = f"C[{draw(subscript(indices))}, {draw(subscript(indices))}]"
    else:
        target = f"{arr}[{draw(subscript(indices))}]"
    return f"{target} = {draw(rvalue(indices))}"


@st.composite
def nest(draw):
    lines = []
    lo = draw(st.integers(1, 2))
    hi = draw(st.sampled_from(["N", "N - 1", "N + 1"]))
    lines.append(f"for i = {lo}, {hi} {{")
    indices = ["i"]
    inner = draw(st.booleans())
    if inner:
        jlo, jhi = draw(st.sampled_from(
            [("1", "N"), ("1", "i"), ("i", "N"), ("2", "i")]
        ))
        lines.append(f"  for j = {jlo}, {jhi} {{")
        indices = ["i", "j"]
    guarded = draw(st.booleans())
    if guarded:
        gidx = draw(st.sampled_from(indices))
        glo = draw(st.sampled_from(["1", "2", "3"]))
        ghi = draw(st.sampled_from(["N", "N - 1", "N - 2"]))
        lines.append(f"    when {gidx} in [{glo}:{ghi}] {{")
    for _ in range(draw(st.integers(1, 3))):
        lines.append("      " + draw(assignment(indices)))
    if guarded:
        lines.append("    }")
    if inner:
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


@st.composite
def random_programs(draw):
    nests = [draw(nest()) for _ in range(draw(st.integers(1, 3)))]
    source = (
        "program rand\n"
        "param N\n"
        "real A[N + 4], B[N + 4], C[N + 4, N + 4]\n"
        + "\n".join(nests)
    )
    return validate(parse(source))


@given(random_programs())
@settings(max_examples=75, deadline=None)
def test_traces_bit_identical(program):
    ref = interp_trace(program, PARAMS, steps=2, with_instr=True)
    out = codegen_trace(program, PARAMS, steps=2, with_instr=True)
    assert len(ref) == len(out)
    for field in ("array_ids", "elems", "writes", "ref_ids", "instr_ids"):
        assert np.array_equal(getattr(ref, field), getattr(out, field)), field


@given(random_programs())
@settings(max_examples=75, deadline=None)
def test_execution_bit_identical(program):
    ref = interp_run(program, PARAMS, steps=2)
    out = codegen_run(program, PARAMS, steps=2)
    assert sorted(ref) == sorted(out)
    for arr in ref:
        assert np.array_equal(ref[arr], out[arr]), arr
