"""Property-based tests: preliminary passes preserve semantics; layouts
stay bijective under arbitrary grouping decisions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regroup import regroup_plan
from repro.core.regroup.algorithm import GroupNode, RegroupPlan
from repro.interp import run_program
from repro.lang import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Call,
    Const,
    IndexVar,
    Loop,
    Param,
    Program,
    validate,
)
from repro.transform import distribute_loops, simplify_program

ARRAYS = ["A", "B", "C"]


@st.composite
def nest_programs(draw):
    """Random two-level nests with mixed dependence patterns."""
    i, j = IndexVar("i"), IndexVar("j")
    n_stmts = draw(st.integers(1, 4))
    body = []
    for _ in range(n_stmts):
        target = draw(st.sampled_from(ARRAYS))
        joff = draw(st.integers(-1, 0))
        reads = []
        for _ in range(draw(st.integers(1, 2))):
            arr = draw(st.sampled_from(ARRAYS))
            roff = draw(st.integers(-1, 0))
            reads.append(ArrayRef(arr, (j + roff, i)))
        body.append(Assign(ArrayRef(target, (j + joff, i)), Call("f", tuple(reads))))
    inner = Loop("j", Const(2), Param("N"), tuple(body))
    outer = Loop("i", Const(1), Param("N"), (inner,))
    decls = tuple(ArrayDecl(a, (Param("N"), Param("N"))) for a in ARRAYS)
    return Program("rand", ("N",), decls, (outer,))


@given(nest_programs())
@settings(max_examples=40, deadline=None)
def test_distribution_preserves_semantics(program):
    validate(program)
    distributed = distribute_loops(program)
    validate(distributed)
    for n in (8, 11):
        ref = run_program(program, {"N": n})
        out = run_program(distributed, {"N": n})
        for name in ref:
            assert np.array_equal(ref[name], out[name]), name


@given(nest_programs())
@settings(max_examples=40, deadline=None)
def test_simplify_preserves_semantics(program):
    simplified = simplify_program(program)
    for n in (9,):
        ref = run_program(program, {"N": n})
        out = run_program(simplified, {"N": n})
        for name in ref:
            assert np.array_equal(ref[name], out[name]), name


@given(nest_programs(), st.integers(5, 20))
@settings(max_examples=30, deadline=None)
def test_regrouped_layout_is_always_bijective(program, n):
    plan = regroup_plan(validate(program))
    layout = plan.materialize({"N": n})
    layout.check_bijective()
    # total size never shrinks below the element count
    total = sum(n * n for _ in ARRAYS)
    assert layout.total_elems == total


@st.composite
def group_trees(draw, names):
    """Arbitrary laminar group trees over a fixed array set."""
    if len(names) == 1:
        return names[0]
    level = draw(st.integers(0, 1))
    k = draw(st.integers(1, len(names)))
    # split names into k contiguous chunks
    chunks = np.array_split(np.array(names, dtype=object), k)
    children = []
    for chunk in chunks:
        sub = list(chunk)
        if not sub:
            continue
        if len(sub) == 1:
            children.append(sub[0])
        else:
            children.append(draw(group_trees(sub)))
    if len(children) == 1:
        return children[0]
    # child levels must be strictly below the parent's: clamp
    max_child = max(
        (c.level for c in children if isinstance(c, GroupNode)), default=-1
    )
    return GroupNode(max(level, max_child + 1), children)


@given(st.data(), st.integers(4, 12))
@settings(max_examples=50, deadline=None)
def test_arbitrary_group_trees_give_bijective_layouts(data, n):
    decls = tuple(ArrayDecl(a, (Param("N"), Param("N"))) for a in ARRAYS)
    program = Program("t", ("N",), decls, ())
    tree = data.draw(group_trees(list(ARRAYS)))
    plan = RegroupPlan(program, [tree] if isinstance(tree, GroupNode) else [tree])
    layout = plan.materialize({"N": n})
    layout.check_bijective()
