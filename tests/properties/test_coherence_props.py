"""Property-based oracle for the static coherence analyzer.

For randomly generated affine nests — including triangular bounds and
``when`` guards — an *independent* replay written here from scratch
(its own ceil-block / chunked / guided partitioner, its own one-access
round-robin merge, its own set-based MSI automaton) computes per-thread
cold and invalidation misses at line granularity.  The analyzer's
static prediction must match it exactly, and its classification claims
must hold up:

* per-thread invalidation, cold, and upgrade counts are equal;
* every witness names two elements that really share the line, with
  ``kind`` matching element identity (same element = true sharing);
* arrays the hull screen discarded as line-private really suffer no
  invalidations in the brute-force replay.

Whether the outer axis is partitioned at all follows the parallelism
verdict (its own soundness is property-tested separately); this file
tests the coherence replay on top of it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse, validate
from repro.static import analyze_coherence, analyze_parallelism

LINE_ELEMS = 4  # 32-byte lines of 8-byte elements

SHIFT = st.integers(-1, 1)


def build(source: str):
    return validate(parse(source))


@st.composite
def affine_nest(draw):
    """One doubly nested affine kernel plus everything the oracle needs."""
    n = draw(st.integers(6, 9))
    tri = draw(st.booleans())
    guarded = draw(st.booleans())
    two_stmts = draw(st.booleans())
    steps = draw(st.integers(1, 2))
    threads = draw(st.sampled_from([2, 3, 4]))
    schedule = draw(st.sampled_from(["static", "static,2", "guided"]))
    ws_j, ws_i = draw(SHIFT), draw(SHIFT)
    rs_j, rs_i = draw(SHIFT), draw(SHIFT)
    r2_j, r2_i = draw(SHIFT), draw(SHIFT)

    hij = "i" if tri else "N - 1"
    stmt1 = (
        f"A[j + {ws_j}, i + {ws_i}] = "
        f"f(A[j + {rs_j}, i + {rs_i}], B[j, i])"
    )
    if guarded:
        stmt1 = f"when j in [3:N - 2] {{ {stmt1} }}"
    stmt2 = f"B[j, i] = g(A[j + {r2_j}, i + {r2_i}])" if two_stmts else ""
    src = f"""
    program rnd
    param N
    real A[N + 2, N + 2], B[N + 2, N + 2]
    for i = 2, N - 1 {{
      for j = 2, {hij} {{
        {stmt1}
        {stmt2}
      }}
    }}
    """
    spec = {
        "n": n,
        "tri": tri,
        "guarded": guarded,
        "two_stmts": two_stmts,
        "steps": steps,
        "threads": threads,
        "schedule": schedule,
        "shifts": (ws_j, ws_i, rs_j, rs_i, r2_j, r2_i),
    }
    return build(src), spec


# -- the independent oracle ----------------------------------------------------


def iteration_accesses(spec, i, j):
    """[(global_key, is_write)] of iteration (i, j), in executed order."""
    n = spec["n"]
    stride = n + 2  # column-major: first subscript has stride 1
    base_b = (n + 2) * (n + 2)  # B declared after A
    ws_j, ws_i, rs_j, rs_i, r2_j, r2_i = spec["shifts"]

    def a_key(s1, s2):
        return (s1 - 1) + (s2 - 1) * stride

    def b_key(s1, s2):
        return base_b + (s1 - 1) + (s2 - 1) * stride

    accs = []
    if (not spec["guarded"]) or (3 <= j <= n - 2):
        accs.append((a_key(j + rs_j, i + rs_i), False))
        accs.append((b_key(j, i), False))
        accs.append((a_key(j + ws_j, i + ws_i), True))
    if spec["two_stmts"]:
        accs.append((a_key(j + r2_j, i + r2_i), False))
        accs.append((b_key(j, i), True))
    return accs


def partition(lo, hi, threads, schedule):
    """Per-thread chunk lists, written from the OpenMP definitions."""
    chunks = [[] for _ in range(threads)]
    if hi < lo:
        return chunks
    if schedule == "static":
        size = -(-(hi - lo + 1) // threads)
        for t in range(threads):
            a = lo + t * size
            if a <= hi:
                chunks[t].append((a, min(hi, a + size - 1)))
        return chunks
    if schedule == "static,2":
        a, c = lo, 0
        while a <= hi:
            chunks[c % threads].append((a, min(hi, a + 1)))
            a += 2
            c += 1
        return chunks
    assert schedule == "guided"
    a, c = lo, 0
    while a <= hi:
        size = max(1, -(-(hi - a + 1) // threads))
        chunks[c % threads].append((a, min(hi, a + size - 1)))
        a += size
        c += 1
    return chunks


def thread_stream(spec, chunks):
    """One thread's access stream: its outer-iteration chunks in order,
    full inner loop per iteration."""
    n = spec["n"]
    out = []
    for a, b in chunks:
        for i in range(a, b + 1):
            hij = i if spec["tri"] else n - 1
            for j in range(2, hij + 1):
                out.extend(iteration_accesses(spec, i, j))
    return out


def brute_force(spec, partitioned):
    """Merge per-thread streams round-robin and replay set-based MSI.

    Returns (per-thread cold, per-thread invalidations, upgrades,
    per-line invalidation counts keyed by line id).
    """
    n, threads = spec["n"], spec["threads"]
    streams = []
    if partitioned:
        for chunks in partition(2, n - 1, threads, spec["schedule"]):
            streams.append(thread_stream(spec, chunks))
    else:
        streams = [thread_stream(spec, [(2, n - 1)])]
        streams += [[] for _ in range(threads - 1)]

    cold = [0] * threads
    inval = [0] * threads
    upgrades = 0
    total = 0
    valid: dict[int, set] = {}
    ever: dict[int, set] = {}
    line_inval: dict[int, int] = {}
    for _ in range(spec["steps"]):
        pos = [0] * threads
        while any(p < len(s) for p, s in zip(pos, streams)):
            for t in range(threads):
                if pos[t] >= len(streams[t]):
                    continue
                key, is_write = streams[t][pos[t]]
                pos[t] += 1
                total += 1
                line = key // LINE_ELEMS
                v = valid.setdefault(line, set())
                e = ever.setdefault(line, set())
                if t not in v:
                    if t in e:
                        inval[t] += 1
                        line_inval[line] = line_inval.get(line, 0) + 1
                    else:
                        cold[t] += 1
                if is_write:
                    if v - {t}:
                        upgrades += 1
                    valid[line] = {t}
                else:
                    v.add(t)
                e.add(t)
    return cold, inval, upgrades, line_inval, total


# -- the properties ------------------------------------------------------------


@given(affine_nest())
@settings(max_examples=50, deadline=None)
def test_static_prediction_matches_independent_replay(case):
    program, spec = case
    n, threads = spec["n"], spec["threads"]
    parallelism = analyze_parallelism(program, {"N": n})
    prof = analyze_coherence(
        program, {"N": n}, threads=threads, schedule=spec["schedule"],
        steps=spec["steps"], parallelism=parallelism,
    )
    partitioned = 0 in parallelism.parallel_nests() and threads > 1
    cold, inval, upgrades, _, total = brute_force(spec, partitioned)
    assert prof.accesses == total, (
        f"enumerated {prof.accesses} accesses, oracle ran {total} ({spec})"
    )
    assert prof.invalidations == tuple(inval), (
        f"invalidations {prof.invalidations} != oracle {inval} ({spec})"
    )
    assert prof.cold == tuple(cold), (
        f"cold {prof.cold} != oracle {cold} ({spec})"
    )
    assert prof.upgrades == upgrades, (
        f"upgrades {prof.upgrades} != oracle {upgrades} ({spec})"
    )


@given(affine_nest())
@settings(max_examples=50, deadline=None)
def test_witnesses_and_screens_hold_up(case):
    program, spec = case
    n, threads = spec["n"], spec["threads"]
    parallelism = analyze_parallelism(program, {"N": n})
    prof = analyze_coherence(
        program, {"N": n}, threads=threads, schedule=spec["schedule"],
        steps=spec["steps"], parallelism=parallelism,
    )
    for w in prof.witnesses:
        # both elements really live on the named line
        assert w.elem_a // LINE_ELEMS == w.line, (w.render(), spec)
        assert w.elem_b // LINE_ELEMS == w.line, (w.render(), spec)
        assert w.thread_a != w.thread_b
        # kind matches element identity: same element = true sharing
        if w.kind == "true":
            assert w.elem_a == w.elem_b, (w.render(), spec)
        else:
            assert w.elem_a != w.elem_b, (w.render(), spec)
    # arrays discarded as line-private really have no invalidations
    if prof.screened_out:
        partitioned = 0 in parallelism.parallel_nests() and threads > 1
        _, _, _, line_inval, _ = brute_force(spec, partitioned)
        size = (n + 2) * (n + 2)
        ranges = {"A": (0, size), "B": (size, 2 * size)}
        for name in prof.screened_out:
            lo, hi = ranges[name]
            hits = {
                line: c
                for line, c in line_inval.items()
                if lo // LINE_ELEMS <= line < -(-hi // LINE_ELEMS)
                and lo <= line * LINE_ELEMS < hi
            }
            assert not hits, (
                f"{name} was screened line-private but the replay "
                f"invalidates lines {hits} ({spec})"
            )
