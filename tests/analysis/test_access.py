"""Access collection (footprint) tests."""

from repro.analysis import (
    SCALAR_PREFIX,
    collect_loop_accesses,
    collect_stmt_accesses,
    shares_data,
)
from repro.analysis.classify import DimKind
from repro.lang import Affine

from conftest import build


def test_loop_access_classification():
    p = build(
        """
        program t
        param N
        real A[N, N], B[N]
        for i = 2, N - 1 {
          B[i] = f(A[1, i], B[i - 1])
          for j = 1, N { A[j, i] = g(A[j, i + 1]) }
        }
        """
    )
    acc = collect_loop_accesses(p.body[0], p.params)
    by_text = {a.text: a for a in acc if not a.array.startswith(SCALAR_PREFIX)}
    # B[i]: variant offset 0
    w = by_text["B[i]"]
    assert w.is_write and w.dims[0].kind is DimKind.VARIANT
    # A[1, i]: invariant dim 1, variant dim 2
    r = by_text["A[1, i]"]
    assert r.dims[0].kind is DimKind.INVARIANT
    assert r.dims[1].kind is DimKind.VARIANT
    # A[j, i]: inner dim 1
    aw = by_text["A[j, i]"]
    assert aw.dims[0].kind is DimKind.INNER
    # active ranges come from the loop bounds
    assert w.active_lo == Affine.constant(2)
    assert w.active_hi == Affine.var("N") - 1


def test_guard_narrows_active_range():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 1, N {
          when i in [2:N - 1] { A[i] = 0.0 }
        }
        """
    )
    acc = collect_loop_accesses(p.body[0], p.params)
    w = next(a for a in acc if a.is_write)
    assert w.active_lo == Affine.constant(2)
    assert w.active_hi == Affine.var("N") - 1


def test_stmt_accesses_are_frame_free():
    p = build(
        """
        program t
        param N
        real A[N]
        A[1] = A[N]
        """
    )
    acc = collect_stmt_accesses(p.body[0], p.params)
    kinds = {(a.is_write, str(a.dims[0].value)) for a in acc}
    assert (True, "1") in kinds
    assert (False, "N") in kinds


def test_scalars_are_pseudo_arrays():
    p = build(
        """
        program t
        param N
        real A[N]
        scalar t
        for i = 1, N { t = f(A[i], t) }
        """
    )
    acc = collect_loop_accesses(p.body[0], p.params)
    scalar_accs = [a for a in acc if a.array.startswith(SCALAR_PREFIX)]
    assert any(a.is_write for a in scalar_accs)
    assert any(not a.is_write for a in scalar_accs)


def test_shares_data():
    p = build(
        """
        program t
        param N
        real A[N], B[N], C[N]
        for i = 1, N { A[i] = f(B[i]) }
        for i = 1, N { C[i] = g(B[i]) }
        for i = 1, N { C[i] = g(C[i]) }
        """
    )
    l1, l2, l3 = p.body
    a1 = collect_loop_accesses(l1, p.params)
    a2 = collect_loop_accesses(l2, p.params)
    a3 = collect_loop_accesses(l3, p.params)
    assert shares_data(a1, a2)  # common array B (read-read counts)
    assert not shares_data(a1, a3)
    assert shares_data(a2, a3)


def test_shifted_translates_offsets_and_ranges():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 2, N { A[i] = f(A[i - 1]) }
        """
    )
    acc = collect_loop_accesses(p.body[0], p.params)
    shifted = [a.shifted(Affine.constant(3)) for a in acc]
    w = next(a for a in shifted if a.is_write)
    assert w.dims[0].value == Affine.constant(-3)
    assert w.active_lo == Affine.constant(5)
    assert w.active_hi == Affine.var("N") + 3
