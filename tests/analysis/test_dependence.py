"""Dependence-graph tests (loop distribution legality substrate)."""

import networkx as nx

from repro.analysis import body_dependence_graph, items_depend

from conftest import build


def graph_for(source):
    p = build(source)
    return body_dependence_graph(p.body[0], p.params), p


def test_forward_flow_dependence_only():
    g, _ = graph_for(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N {
          A[i] = 1.0
          B[i] = f(A[i])
        }
        """
    )
    assert g.has_edge(0, 1)
    assert not g.has_edge(1, 0)


def test_backward_carried_dependence():
    # statement 1 reads A[i+1], written by statement 0 in a LATER
    # iteration: the dependence flows 1 -> 0 (must not move 0 before 1)
    g, _ = graph_for(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N - 1 {
          A[i] = 1.0
          B[i] = f(A[i + 1])
        }
        """
    )
    assert g.has_edge(1, 0)
    assert not g.has_edge(0, 1)


def test_recurrence_cycle():
    g, _ = graph_for(
        """
        program t
        param N
        real A[N], B[N]
        for i = 2, N {
          A[i] = f(B[i - 1])
          B[i] = g(A[i])
        }
        """
    )
    # A depends on B's previous iteration; B depends on A's current:
    # a genuine cycle -> single SCC, distribution must keep them together
    sccs = list(nx.strongly_connected_components(g))
    assert any(len(c) == 2 for c in sccs)


def test_independent_statements_unordered():
    g, _ = graph_for(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N {
          A[i] = 1.0
          B[i] = 2.0
        }
        """
    )
    assert g.number_of_edges() == 0


def test_items_depend_top_level():
    p = build(
        """
        program t
        param N
        real A[N], B[N], C[N]
        for i = 1, N { A[i] = f(B[i]) }
        for i = 1, N { C[i] = g(A[i]) }
        for i = 1, N { B[i] = g(C[i]) }
        """
    )
    l1, l2, l3 = p.body
    assert items_depend(l1, l2, p.params)  # flow on A
    assert items_depend(l1, l3, p.params)  # anti on B
    assert items_depend(l2, l3, p.params)  # flow on C
