"""Alignment-constraint math tests (the heart of FusibleTest)."""

from repro.analysis import (
    ConflictKind,
    RefAccess,
    compute_alignment,
    pair_conflict,
    symbolic_max,
    symbolic_min,
)
from repro.analysis.classify import DimClass
from repro.lang import Affine


def ref(array, dims, write=False, lo=1, hi="N"):
    lo_f = Affine.constant(lo) if isinstance(lo, int) else Affine.var(lo)
    hi_f = Affine.constant(hi) if isinstance(hi, int) else Affine.var(hi)
    return RefAccess(array, write, tuple(dims), lo_f, hi_f, text=array)


def var(c):
    return DimClass.variant(Affine.constant(c))


def inv(value):
    form = Affine.constant(value) if isinstance(value, int) else Affine.var(value)
    return DimClass.invariant(form)


class TestPairConflict:
    def test_variant_variant_delta(self):
        c = pair_conflict(ref("A", [var(0)], write=True), ref("A", [var(-2)]))
        assert c.kind is ConflictKind.DELTA
        assert c.bound.int_value() == -2  # D >= b - a = -2

    def test_different_arrays_no_conflict(self):
        assert pair_conflict(ref("A", [var(0)]), ref("B", [var(0)], write=True)) is None

    def test_inconsistent_constant_deltas_no_conflict(self):
        r1 = ref("A", [var(0), var(0)], write=True)
        r2 = ref("A", [var(1), var(2)])
        assert pair_conflict(r1, r2) is None

    def test_variant_invariant_pin1(self):
        # loop writes A[i]; a later access reads A[2]: pins iteration 2
        c = pair_conflict(ref("A", [var(0)], write=True), ref("A", [inv(2)]))
        assert c.kind is ConflictKind.PIN1
        assert c.pin1.int_value() == 2

    def test_invariant_variant_pin2(self):
        c = pair_conflict(ref("A", [inv("N")], write=True), ref("A", [var(0)]))
        assert c.kind is ConflictKind.PIN2
        assert c.pin2 == Affine.var("N")

    def test_pin_outside_active_range_is_no_conflict(self):
        # loop over [3, N-2] writing A[i] cannot touch A[1]
        r1 = RefAccess(
            "A", True, (var(0),), Affine.constant(3), Affine.var("N") - 2
        )
        assert pair_conflict(r1, ref("A", [inv(1)])) is None
        # ... nor A[N]
        assert pair_conflict(r1, ref("A", [inv("N")])) is None

    def test_invariant_equal_points_serialize(self):
        c = pair_conflict(ref("A", [inv(1)], write=True), ref("A", [inv(1)]))
        assert c.kind is ConflictKind.SERIALIZE
        assert c.bound == Affine.var("N") - 1  # hi1 - lo2

    def test_invariant_distinct_points_no_conflict(self):
        assert pair_conflict(ref("A", [inv(1)], write=True), ref("A", [inv(2)])) is None

    def test_inner_vs_variant_serializes(self):
        d_inner = DimClass.inner({"j"})
        c = pair_conflict(
            ref("A", [d_inner, var(0)], write=True), ref("A", [var(0), inv(1)])
        )
        # dim1 couples whole-dimension vs element; dim2 pins the later side
        assert c is not None

    def test_pin_beats_serialize(self):
        # dim1: variant x inner (would serialize); dim2: pins the later
        # loop to iteration 1 -> the conflict is peelable (PIN2)
        r1 = ref("A", [var(0), inv(1)], write=True)
        r2 = ref("A", [DimClass.inner({"j"}), var(0)])
        c = pair_conflict(r1, r2)
        assert c.kind is ConflictKind.PIN2
        assert c.pin2.int_value() == 1

    def test_delta_beats_serialize(self):
        r1 = ref("A", [DimClass.inner({"j"}), var(0)], write=True)
        r2 = ref("A", [DimClass.inner({"j"}), var(-1)])
        c = pair_conflict(r1, r2)
        assert c.kind is ConflictKind.DELTA
        assert c.bound.int_value() == -1


class TestComputeAlignment:
    def test_dependence_dominates_preference(self):
        # flow dep requires D >= -2; a read-read pair prefers -1: the
        # paper picks the smallest alignment satisfying dependence
        acc1 = [ref("A", [var(0)], write=True), ref("A", [var(-1)])]
        acc2 = [ref("A", [var(-2)])]
        res = compute_alignment(acc1, acc2)
        assert res.fusible
        assert res.alignment == -2

    def test_pure_read_read_uses_preference(self):
        acc1 = [ref("A", [var(0)])]
        acc2 = [ref("A", [var(-3)])]
        res = compute_alignment(acc1, acc2)
        assert res.fusible
        assert res.alignment == -3

    def test_largest_over_arrays(self):
        acc1 = [ref("A", [var(0)], write=True), ref("B", [var(0)], write=True)]
        acc2 = [ref("A", [var(-2)]), ref("B", [var(1)])]
        res = compute_alignment(acc1, acc2)
        assert res.fusible
        assert res.alignment == 1  # B requires +1, A only -2

    def test_unbounded_reports_conflicts(self):
        acc1 = [ref("A", [inv(1)], write=True)]
        acc2 = [ref("A", [inv(1)], write=True)]
        res = compute_alignment(acc1, acc2)
        assert not res.fusible
        assert res.unbounded

    def test_no_sharing_alignment_zero(self):
        res = compute_alignment([ref("A", [var(0)])], [ref("B", [var(0)])])
        assert res.fusible and res.alignment == 0


class TestSymbolicMinMax:
    def test_max(self):
        n = Affine.var("N")
        assert symbolic_max([n - 1, Affine.constant(2), n]) == n

    def test_min(self):
        n = Affine.var("N")
        assert symbolic_min([n - 1, Affine.constant(2)]) == Affine.constant(2)

    def test_incomparable_returns_none(self):
        assert symbolic_max([Affine.var("N"), Affine.var("M")]) is None

    def test_empty(self):
        assert symbolic_max([]) is None
        assert symbolic_min([]) is None
