"""Statement-embedding point tests (paper Fig. 4a machinery)."""

from repro.analysis import (
    collect_loop_accesses,
    collect_stmt_accesses,
    embed_after,
    embed_before,
)
from repro.lang import Affine

from conftest import build


def parts(source):
    p = build(source)
    return p, p.params


def test_embed_after_anti_dependence():
    # the loop reads A[2] at i=3; moving the write A[2]=0 earlier than
    # iteration 3 would be illegal
    p, params = parts(
        """
        program t
        param N
        real A[N]
        for i = 3, N - 2 { A[i] = f(A[i - 1]) }
        A[2] = 0.0
        """
    )
    loop_acc = collect_loop_accesses(p.body[0], params)
    stmt_acc = collect_stmt_accesses(p.body[1], params)
    point = embed_after(loop_acc, stmt_acc)
    assert point.ok
    assert point.at == Affine.constant(3)


def test_embed_after_unconstrained_statement():
    # A[1] = A[N] touches only cells the loop never accesses
    p, params = parts(
        """
        program t
        param N
        real A[N]
        for i = 3, N - 2 { A[i] = f(A[i - 1]) }
        A[1] = A[N]
        """
    )
    point = embed_after(
        collect_loop_accesses(p.body[0], params),
        collect_stmt_accesses(p.body[1], params),
    )
    assert point.ok
    assert point.at is None  # no constraints at all


def test_embed_after_flow_dependence_at_param_boundary():
    # the statement reads A[N-2], produced by the loop's last iteration
    p, params = parts(
        """
        program t
        param N
        real A[N], B[N]
        for i = 3, N - 2 { A[i] = f(A[i - 1]) }
        B[1] = A[N - 2]
        """
    )
    point = embed_after(
        collect_loop_accesses(p.body[0], params),
        collect_stmt_accesses(p.body[1], params),
    )
    assert point.ok
    assert point.at == Affine.var("N") - 2


def test_embed_before_upper_bound():
    # A[1] = A[N] must execute before the loop's read of A[1] at i = 3
    p, params = parts(
        """
        program t
        param N
        real A[N], B[N]
        A[1] = A[N]
        for i = 3, N { B[i] = g(A[i - 2]) }
        """
    )
    point = embed_before(
        collect_stmt_accesses(p.body[0], params),
        collect_loop_accesses(p.body[1], params),
    )
    assert point.ok
    assert point.at == Affine.constant(3)


def test_embed_before_write_write():
    # loop writes A[i]; the earlier statement writes A[4]: it must embed
    # no later than iteration 4
    p, params = parts(
        """
        program t
        param N
        real A[N]
        A[4] = 0.0
        for i = 2, N { A[i] = 1.0 }
        """
    )
    point = embed_before(
        collect_stmt_accesses(p.body[0], params),
        collect_loop_accesses(p.body[1], params),
    )
    assert point.ok
    assert point.at == Affine.constant(4)
