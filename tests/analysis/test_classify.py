"""Subscript classification tests."""

from repro.analysis import DimKind, classify_subscript
from repro.lang import Affine

PARAMS = frozenset({"N"})
INNER = frozenset({"j", "k"})


def cls(form):
    return classify_subscript(form, "i", INNER, PARAMS)


def test_variant():
    d = cls(Affine.var("i") + 2)
    assert d.kind is DimKind.VARIANT
    assert d.value == Affine.constant(2)


def test_variant_with_param_offset():
    d = cls(Affine.var("i") + Affine.var("N") - 1)
    assert d.kind is DimKind.VARIANT
    assert d.value == Affine.var("N") - 1


def test_invariant_constant():
    d = cls(Affine.constant(1))
    assert d.kind is DimKind.INVARIANT
    assert d.value.int_value() == 1


def test_invariant_param():
    d = cls(Affine.var("N"))
    assert d.kind is DimKind.INVARIANT


def test_inner():
    d = cls(Affine.var("j") - 1)
    assert d.kind is DimKind.INNER
    assert d.inner_vars == {"j"}


def test_inner_reversed_direction():
    # N - j: still swept by the inner loop, whole-dimension from the frame
    d = cls(Affine.var("N") - Affine.var("j"))
    assert d.kind is DimKind.INNER


def test_complex_nonunit_coefficient():
    d = cls(Affine.var("i") * 2)
    assert d.kind is DimKind.COMPLEX


def test_complex_negative_frame():
    d = cls(Affine.var("N") - Affine.var("i"))
    assert d.kind is DimKind.COMPLEX


def test_complex_mixed_frame_and_inner():
    d = cls(Affine.var("i") + Affine.var("j"))
    assert d.kind is DimKind.COMPLEX


def test_unknown_variable_is_complex():
    d = cls(Affine.var("mystery"))
    assert d.kind is DimKind.COMPLEX
