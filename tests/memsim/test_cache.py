"""Cache simulator tests, including a brute-force LRU oracle."""

import numpy as np
import pytest

from repro.lang import SimulationError
from repro.memsim import CacheConfig, simulate_cache


def lru_oracle(lines, num_sets, assoc):
    """Straightforward per-set LRU lists."""
    sets = [[] for _ in range(num_sets)]
    miss = []
    for line in lines:
        s = line % num_sets
        ways = sets[s]
        if line in ways:
            ways.remove(line)
            ways.insert(0, line)
            miss.append(False)
        else:
            miss.append(True)
            ways.insert(0, line)
            if len(ways) > assoc:
                ways.pop()
    return np.array(miss)


@pytest.mark.parametrize("assoc", [1, 2, 4, 0])
@pytest.mark.parametrize("seed", [0, 1])
def test_against_oracle(assoc, seed):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, 64, size=2000)
    cfg = CacheConfig("t", 16 * 32, 32, assoc)
    got = simulate_cache(cfg, lines * 32)
    ways = cfg.num_lines if assoc == 0 else assoc
    expected = lru_oracle(lines.tolist(), cfg.num_sets, ways)
    assert np.array_equal(got, expected)


def test_sequential_scan_miss_per_line():
    cfg = CacheConfig("t", 1024, 32, 2)
    addrs = np.arange(0, 4096, 8)
    assert simulate_cache(cfg, addrs).sum() == 4096 // 32


def test_working_set_fits():
    cfg = CacheConfig("t", 1024, 32, 2)
    addrs = np.concatenate([np.arange(0, 512, 8)] * 4)
    # only the first pass misses
    assert simulate_cache(cfg, addrs).sum() == 512 // 32


def test_conflict_thrash_direct_mapped():
    cfg = CacheConfig("t", 1024, 32, 1)
    # two addresses mapping to the same set, alternating
    a, b = 0, 1024
    addrs = np.array([a, b] * 50)
    assert simulate_cache(cfg, addrs).sum() == 100
    # 2-way absorbs it
    cfg2 = CacheConfig("t", 1024, 32, 2)
    assert simulate_cache(cfg2, addrs).sum() == 2


def test_fully_associative_equals_reuse_distance_criterion():
    from repro.locality import COLD, reuse_distances

    rng = np.random.default_rng(7)
    lines = rng.integers(0, 40, size=1500)
    cfg = CacheConfig("t", 16 * 32, 32, 0)
    miss = simulate_cache(cfg, lines * 32)
    rd = reuse_distances(lines)
    assert np.array_equal(miss, (rd == COLD) | (rd >= 16))


class TestConfig:
    def test_geometry(self):
        cfg = CacheConfig("L1", 32 * 1024, 32, 2)
        assert cfg.num_lines == 1024
        assert cfg.num_sets == 512
        assert cfg.ways == 2

    def test_invalid_size(self):
        with pytest.raises(SimulationError):
            CacheConfig("x", 100, 32, 2)

    def test_assoc_exceeds_lines(self):
        with pytest.raises(SimulationError):
            CacheConfig("x", 64, 32, 4)

    def test_scaled_preserves_line_and_assoc(self):
        cfg = CacheConfig("L2", 4 * 1024 * 1024, 128, 2).scaled(1 / 64)
        assert cfg.line_bytes == 128
        assert cfg.assoc == 2
        assert cfg.size_bytes == 64 * 1024

    def test_scaled_tiny_factor_clamps_to_one_set(self):
        # factors near 0 used to yield num_lines < assoc (invalid geometry)
        for factor in (1e-9, 1e-6, 1 / 4096, 0.001):
            cfg = CacheConfig("L1", 32 * 1024, 32, 2).scaled(factor)
            assert cfg.num_lines >= cfg.assoc
            assert cfg.num_sets >= 1
            assert cfg.num_lines % cfg.assoc == 0

    def test_scaled_tiny_factor_rounds_down_to_assoc_multiple(self):
        # 8-way, 16 lines; factor keeping ~5 lines must round to one set of 8
        cfg = CacheConfig("c", 16 * 64, 64, 8).scaled(0.33)
        assert cfg.num_lines == 8
        assert cfg.num_sets == 1

    def test_scaled_fully_associative_shrinks_to_one_line(self):
        # FA caches (assoc == 0) used to clamp at their own size (ways ==
        # num_lines) and never shrink at all
        base = CacheConfig("fa", 64 * 32, 32, 0)
        assert base.scaled(1 / 4).num_lines == 16
        assert base.scaled(1e-9).num_lines == 1
        tiny = base.scaled(1e-9)
        assert tiny.ways == 1 and tiny.num_sets == 1

    def test_scaled_direct_mapped_tiny(self):
        cfg = CacheConfig("dm", 128 * 32, 32, 1).scaled(1e-9)
        assert cfg.num_lines == 1
        assert cfg.num_sets == 1
