"""Belady-optimal replacement tests."""

import numpy as np
import pytest

from repro.baselines import simulate_belady
from repro.memsim import CacheConfig, simulate_cache


def belady_oracle(lines, capacity):
    """Brute-force OPT: evict the resident line used furthest in future."""
    n = len(lines)
    resident = []
    miss = []
    for t, line in enumerate(lines):
        if line in resident:
            miss.append(False)
            continue
        miss.append(True)
        if len(resident) >= capacity:
            # furthest next use
            def next_use(x):
                for u in range(t + 1, n):
                    if lines[u] == x:
                        return u
                return n + 1

            victim = max(resident, key=next_use)
            resident.remove(victim)
        resident.append(line)
    return np.array(miss)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("universe", [8, 20])
def test_against_oracle(seed, universe):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, universe, size=400)
    cfg = CacheConfig("t", 8 * 32, 32, 0)
    got = simulate_belady(cfg, lines * 32)
    expected = belady_oracle(lines.tolist(), 8)
    assert got.sum() == expected.sum()  # OPT miss count is unique


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_never_worse_than_lru(seed):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, 50, size=3000)
    cfg = CacheConfig("t", 16 * 32, 32, 0)
    opt = simulate_belady(cfg, lines * 32).sum()
    lru = simulate_cache(cfg, lines * 32).sum()
    assert opt <= lru


def test_cold_misses_unavoidable():
    lines = np.arange(100)
    cfg = CacheConfig("t", 8 * 32, 32, 0)
    assert simulate_belady(cfg, lines * 32).sum() == 100
