"""Unit tests for the MSI coherence oracle (repro.memsim.coherence).

Hand-checkable streams pin the owner-tracking automaton: cold vs
invalidation classification, write-invalidates-all, upgrades, and the
CoherenceLevel adapter's line reduction and miss accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim.coherence import CoherenceLevel, simulate_msi


def msi(lines, writes, tids, threads):
    return simulate_msi(
        np.asarray(lines, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        np.asarray(tids, dtype=np.int64),
        threads,
    )


# -- the automaton -------------------------------------------------------------


def test_single_thread_never_invalidates():
    r = msi([0, 0, 1, 0, 1], [1, 0, 1, 0, 0], [0] * 5, 1)
    assert r.lines == 2
    assert r.cold.tolist() == [2]  # first touch of each line
    assert r.total_invalidations == 0
    assert r.total_upgrades == 0


def test_read_sharing_is_free():
    # both threads read the same line repeatedly: one cold each, no
    # invalidations (S state is shared freely)
    r = msi([7, 7, 7, 7], [0, 0, 0, 0], [0, 1, 0, 1], 2)
    assert r.cold.tolist() == [1, 1]
    assert r.total_invalidations == 0
    assert r.total_upgrades == 0
    assert not r.invalidation_mask.any()


def test_write_ping_pong():
    # alternating writes to one line: the first by each thread is cold,
    # every later access finds its copy invalidated
    r = msi([3] * 6, [1] * 6, [0, 1, 0, 1, 0, 1], 2)
    assert r.cold.tolist() == [1, 1]
    assert r.invalidations.tolist() == [2, 2]
    assert r.invalidation_mask.tolist() == [False, False, True, True, True, True]
    # every write after the first found another thread's copy to kill
    assert r.upgrades.tolist() == [2, 3]


def test_false_sharing_pattern_distinct_elements_same_line():
    # the classic: t0 writes element a, t1 writes element b, same line.
    # the oracle works on line ids, so this is indistinguishable from
    # true sharing here — classification happens in the static analyzer
    r = msi([5, 5, 5, 5], [1, 1, 1, 1], [0, 1, 0, 1], 2)
    assert r.invalidations.tolist() == [1, 1]


def test_write_invalidates_all_readers():
    # three readers share the line, then t3 writes: each reader's next
    # access is an invalidation miss
    lines = [9, 9, 9, 9, 9, 9, 9]
    writes = [0, 0, 0, 1, 0, 0, 0]
    tids = [0, 1, 2, 3, 0, 1, 2]
    r = msi(lines, writes, tids, 4)
    assert r.cold.tolist() == [1, 1, 1, 1]
    assert r.invalidations.tolist() == [1, 1, 1, 0]
    assert r.upgrades.tolist() == [0, 0, 0, 1]


def test_writer_rereads_own_line_for_free():
    # a write leaves the writer with the only valid copy
    r = msi([2, 2, 2], [1, 0, 0], [0, 0, 0], 2)
    assert r.cold.tolist() == [1, 0]
    assert r.total_invalidations == 0


def test_upgrade_counts_only_when_another_copy_dies():
    # t0 writes its own exclusive line twice: no upgrade either time
    r = msi([4, 4], [1, 1], [0, 0], 2)
    assert r.total_upgrades == 0


def test_distinct_lines_are_independent():
    # threads writing disjoint lines never interact
    r = msi([0, 1, 0, 1, 0, 1], [1, 1, 1, 1, 1, 1], [0, 1, 0, 1, 0, 1], 2)
    assert r.total_invalidations == 0
    assert r.cold.tolist() == [1, 1]


def test_empty_stream():
    r = msi([], [], [], 3)
    assert r.accesses == 0 and r.lines == 0
    assert r.total_cold == 0 and r.total_invalidations == 0


def test_line_ids_are_labels_not_indices():
    # arbitrary (large, negative) line labels are fine
    r = msi([10**12, -5, 10**12], [1, 0, 1], [0, 0, 1], 2)
    assert r.lines == 2
    assert r.cold.tolist() == [2, 1]


def test_column_length_mismatch_raises():
    with pytest.raises(ValueError, match="lengths differ"):
        msi([0, 1], [1], [0, 0], 2)


def test_thread_count_bounds():
    with pytest.raises(ValueError):
        msi([0], [1], [0], 0)
    with pytest.raises(ValueError, match="63"):
        msi([0], [1], [0], 64)
    # 63 is the last representable bitmask width
    r = msi([0], [0], [62], 63)
    assert r.cold[62] == 1


# -- CoherenceLevel adapter ----------------------------------------------------


def test_level_reduces_elements_to_lines():
    # line_bytes 32 / elem_bytes 8 = 4 elements per line: keys 0..3 are
    # one line, 4..7 the next
    tids = np.array([0, 1, 0, 1], dtype=np.int64)
    level = CoherenceLevel(thread_ids=tids, threads=2)
    res = level.simulate(
        np.array([0, 3, 4, 7], dtype=np.int64),
        np.array([True, True, True, True]),
    )
    # keys 0,3 share line 0 (t0 then t1: cold+cold), keys 4,7 line 1
    assert res.msi.lines == 2
    assert res.msi.total_invalidations == 0
    assert res.misses == res.msi.total_cold == 4


def test_level_misses_are_cold_plus_invalidations():
    tids = np.array([0, 1, 0], dtype=np.int64)
    level = CoherenceLevel(thread_ids=tids, threads=2)
    res = level.simulate(
        np.array([0, 1, 2], dtype=np.int64),  # all on line 0
        np.array([True, True, False]),
    )
    assert res.msi.total_cold == 2
    assert res.msi.total_invalidations == 1
    assert res.misses == 3
    assert res.miss.tolist() == [False, False, True]


def test_level_byte_unit():
    tids = np.array([0, 1], dtype=np.int64)
    level = CoherenceLevel(thread_ids=tids, threads=2, unit="bytes")
    # byte addresses 0 and 31 share a 32-byte line
    res = level.simulate(
        np.array([0, 31], dtype=np.int64), np.array([True, True])
    )
    assert res.msi.lines == 1
    assert res.msi.total_upgrades == 1


def test_level_rejects_partial_stream():
    tids = np.array([0, 1, 0], dtype=np.int64)
    level = CoherenceLevel(thread_ids=tids, threads=2)
    with pytest.raises(ValueError, match="full stream"):
        level.simulate(np.array([0, 1]), np.array([True, True]))


def test_level_rejects_degenerate_line_size():
    tids = np.array([0], dtype=np.int64)
    level = CoherenceLevel(thread_ids=tids, threads=1, line_bytes=4)
    with pytest.raises(ValueError, match="below elem_bytes"):
        level.simulate(np.array([0]), np.array([True]))
