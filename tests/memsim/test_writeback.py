"""Write-back accounting tests."""

import numpy as np
import pytest

from repro.memsim import CacheConfig, simulate_cache_writeback


def wb_oracle(lines, writes, num_sets, assoc):
    """Reference per-set LRU with dirty bits."""
    sets = [[] for _ in range(num_sets)]  # list of [line, dirty], MRU first
    writebacks = 0
    miss = []
    for line, w in zip(lines, writes):
        s = line % num_sets
        ways = sets[s]
        found = None
        for entry in ways:
            if entry[0] == line:
                found = entry
                break
        if found:
            ways.remove(found)
            found[1] = found[1] or w
            ways.insert(0, found)
            miss.append(False)
        else:
            miss.append(True)
            ways.insert(0, [line, w])
            if len(ways) > assoc:
                victim = ways.pop()
                writebacks += victim[1]
    writebacks += sum(e[1] for ways in sets for e in ways)
    return np.array(miss), writebacks


@pytest.mark.parametrize("assoc", [1, 2, 4, 0])
@pytest.mark.parametrize("seed", [0, 3])
def test_against_oracle(assoc, seed):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, 48, size=1500)
    writes = rng.random(1500) < 0.3
    cfg = CacheConfig("t", 16 * 32, 32, assoc)
    got = simulate_cache_writeback(cfg, lines * 32, writes)
    ways = cfg.num_lines if assoc == 0 else assoc
    miss, wb = wb_oracle(lines.tolist(), writes.tolist(), cfg.num_sets, ways)
    assert np.array_equal(got.miss, miss)
    assert got.writebacks == wb


def test_read_only_never_writes_back():
    cfg = CacheConfig("t", 1024, 32, 2)
    addrs = np.arange(0, 8192, 8)
    res = simulate_cache_writeback(cfg, addrs, np.zeros(len(addrs), dtype=bool))
    assert res.writebacks == 0


def test_write_stream_writes_everything_back():
    cfg = CacheConfig("t", 1024, 32, 2)
    addrs = np.arange(0, 8192, 8)
    res = simulate_cache_writeback(cfg, addrs, np.ones(len(addrs), dtype=bool))
    assert res.writebacks == 8192 // 32  # every line dirtied once


def test_rewritten_line_counts_once():
    cfg = CacheConfig("t", 1024, 32, 0)
    addrs = np.array([0, 0, 0, 8, 16])
    res = simulate_cache_writeback(cfg, addrs, np.array([True, True, True, True, False]))
    assert res.writebacks == 1  # one dirty line, flushed at the end


def test_none_writes_means_loads():
    cfg = CacheConfig("t", 1024, 32, 2)
    res = simulate_cache_writeback(cfg, np.arange(0, 2048, 32), None)
    assert res.writebacks == 0
    assert res.misses == 64
