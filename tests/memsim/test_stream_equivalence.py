"""The refactor's safety net: hierarchy simulation == the legacy chain.

``simulate_addresses`` used to be a fixed inline pipeline — L1 over the
full stream, L2 over the L1 misses (with write-back accounting), TLB
over the full stream at page granularity.  The composable
:class:`MemoryHierarchy` must reproduce that chain *exactly*, for both
cache engines, on hypothesis-generated affine nests.  The suite states
the old semantics literally (the inline chain below) so a regression in
the level-chaining logic — e.g. filtering by a mask of the wrong
stream — cannot hide behind the 42 pinned golden variants.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_variant
from repro.interp import trace_program as interp_trace
from repro.lang import parse, validate
from repro.memsim import (
    ENGINES,
    octane,
    simulate_addresses,
    simulate_cache,
    simulate_cache_writeback,
    simulate_dram,
    simulate_stream,
)
from repro.stream import AddressStream

PARAMS = {"N": 9}
#: shrunk so N=9 nests actually stress every level (4 L1 lines, 32 L2
#: lines, 4 TLB entries)
MACHINE = octane().scaled(1 / 256)


@st.composite
def subscript(draw, indices):
    idx = draw(st.sampled_from(indices))
    offset = draw(st.integers(0, 3))
    return f"{idx} + {offset}" if offset else idx


@st.composite
def assignment(draw, indices):
    arr = draw(st.sampled_from(["A", "B", "C"]))
    if arr == "C":
        target = f"C[{draw(subscript(indices))}, {draw(subscript(indices))}]"
    else:
        target = f"{arr}[{draw(subscript(indices))}]"
    src = draw(st.sampled_from(["A", "B", "C"]))
    if src == "C":
        value = f"C[{draw(subscript(indices))}, {draw(subscript(indices))}]"
    else:
        value = f"{src}[{draw(subscript(indices))}]"
    return f"{target} = f({value})"


@st.composite
def nest(draw):
    lines = []
    lo = draw(st.integers(1, 2))
    hi = draw(st.sampled_from(["N", "N - 1", "N + 1"]))
    lines.append(f"for i = {lo}, {hi} {{")
    indices = ["i"]
    if draw(st.booleans()):
        jlo, jhi = draw(
            st.sampled_from([("1", "N"), ("1", "i"), ("i", "N"), ("2", "i")])
        )
        lines.append(f"  for j = {jlo}, {jhi} {{")
        indices = ["i", "j"]
    for _ in range(draw(st.integers(1, 3))):
        lines.append("    " + draw(assignment(indices)))
    if len(indices) == 2:
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


@st.composite
def random_programs(draw):
    nests = [draw(nest()) for _ in range(draw(st.integers(1, 3)))]
    source = (
        "program rand\n"
        "param N\n"
        "real A[N + 4], B[N + 4], C[N + 4, N + 4]\n" + "\n".join(nests)
    )
    return validate(parse(source))


def _byte_stream(program):
    variant = compile_variant(program, "noopt")
    trace = interp_trace(variant.program, PARAMS, steps=2)
    layout = variant.layout(PARAMS)
    return layout.addresses(trace, in_bytes=True), trace.writes


@given(random_programs(), st.sampled_from(ENGINES))
@settings(max_examples=25, deadline=None)
def test_hierarchy_matches_pre_refactor_chain(program, engine):
    addresses, writes = _byte_stream(program)

    # the pre-refactor fixed pipeline, stated inline
    l1_miss = simulate_cache(MACHINE.l1, addresses, engine=engine)
    l2 = simulate_cache_writeback(
        MACHINE.l2, addresses[l1_miss], writes[l1_miss], engine=engine
    )
    tlb = simulate_cache_writeback(
        MACHINE.tlb.as_cache(), addresses, None, engine=engine
    )

    stats = simulate_addresses(addresses, writes, MACHINE, engine=engine)
    assert stats.accesses == len(addresses)
    assert stats.l1_misses == int(l1_miss.sum())
    assert stats.l2_misses == l2.misses
    assert stats.l2_writebacks == l2.writebacks
    assert stats.tlb_misses == tlb.misses

    # ... and the DRAM level replays exactly the L2 fill stream
    dram = simulate_dram(
        MACHINE.dram,
        addresses[l1_miss][l2.miss],
        MACHINE.l2.line_bytes,
        writebacks=l2.writebacks,
    )
    assert stats.dram_row_hits == dram.row_hits
    assert stats.dram_row_misses == dram.row_misses
    assert stats.dram_banks_touched == dram.banks_touched
    assert stats.dram_energy_nj == dram.energy_nj


@given(random_programs())
@settings(max_examples=15, deadline=None)
def test_engines_bit_identical_through_hierarchy(program):
    addresses, writes = _byte_stream(program)
    fast = simulate_addresses(addresses, writes, MACHINE, engine="fast")
    ref = simulate_addresses(addresses, writes, MACHINE, engine="reference")
    assert fast == ref


@given(random_programs())
@settings(max_examples=10, deadline=None)
def test_stream_front_door_is_equivalent(program):
    addresses, writes = _byte_stream(program)
    stream = AddressStream(addresses, writes)
    assert simulate_stream(stream, MACHINE) == simulate_addresses(
        addresses, writes, MACHINE
    )
