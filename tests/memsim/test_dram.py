"""Unit coverage for the DRAM device model."""

import numpy as np
import pytest

from repro.memsim import DRAMConfig, DRAMResult, simulate_dram

LINE = 128


def small():
    return DRAMConfig(channels=2, banks=2, row_bytes=256)


class TestMapping:
    def test_blocks_interleave_across_channels_then_banks(self):
        cfg = small()
        # blocks 0..3 -> (ch0,b0) (ch1,b0) (ch0,b1) (ch1,b1); block 4 wraps
        # to (ch0,b0) again but in a NEW row -> no row hit
        addrs = np.arange(5, dtype=np.int64) * cfg.row_bytes
        res = simulate_dram(cfg, addrs, LINE)
        assert res.fills == 5
        assert res.row_hits == 0
        assert res.banks_touched == 4
        assert res.per_bank_bytes.tolist() == [2 * LINE, LINE, LINE, LINE]

    def test_same_row_consecutive_fills_hit(self):
        cfg = small()
        # four fills into the same 256-byte row of one bank
        addrs = np.asarray([0, 32, 64, 128], dtype=np.int64)
        res = simulate_dram(cfg, addrs, LINE)
        assert res.row_misses == 1  # the opening activate
        assert res.row_hits == 3
        assert res.row_hit_rate == pytest.approx(0.75)
        assert res.banks_touched == 1

    def test_interleaved_banks_keep_independent_row_buffers(self):
        cfg = small()
        row = cfg.row_bytes
        # alternate bank A row 0 / bank B row 0: each bank sees a
        # same-row sequence, so only the two opening activates miss
        addrs = np.asarray([0, row, 32, row + 32, 64, row + 64], dtype=np.int64)
        res = simulate_dram(cfg, addrs, LINE)
        assert res.row_misses == 2
        assert res.row_hits == 4

    def test_row_conflict_thrashing(self):
        cfg = small()
        # two rows mapping to the SAME bank: row 0 and row 1 of (ch0,b0)
        # are blocks 0 and 4 -> addresses 0 and 4*row_bytes
        a, b = 0, 4 * cfg.row_bytes
        addrs = np.asarray([a, b, a, b, a, b], dtype=np.int64)
        res = simulate_dram(cfg, addrs, LINE)
        assert res.row_hits == 0
        assert res.row_misses == 6


class TestAccounting:
    def test_energy_per_event(self):
        cfg = small()
        addrs = np.asarray([0, 32, 4 * cfg.row_bytes], dtype=np.int64)
        res = simulate_dram(cfg, addrs, LINE, writebacks=5)
        # 2 row misses (two activates), 3 fills, 5 writebacks
        assert res.row_misses == 2
        assert res.energy_nj == pytest.approx(
            2 * cfg.activate_nj + 3 * cfg.read_nj + 5 * cfg.write_nj
        )
        assert res.bytes_read == 3 * LINE
        assert res.bytes_written == 5 * LINE

    def test_empty_stream_still_charges_writeback_energy(self):
        cfg = small()
        res = simulate_dram(cfg, np.empty(0, dtype=np.int64), LINE, writebacks=7)
        assert res.fills == 0
        assert res.row_hit_rate == 0.0
        assert res.banks_touched == 0
        assert res.energy_nj == pytest.approx(7 * cfg.write_nj)
        assert res.bytes_written == 7 * LINE

    def test_per_bank_bytes_sum_to_fill_traffic(self):
        cfg = DRAMConfig()
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 1 << 24, size=2000).astype(np.int64)
        res = simulate_dram(cfg, addrs, LINE)
        assert int(res.per_bank_bytes.sum()) == res.bytes_read
        assert res.per_bank_bytes.shape == (cfg.channels * cfg.banks,)

    def test_program_order_preserved_within_a_bank(self):
        cfg = small()
        # bank A sees rows [0, 1, 0]: even though sorting groups by bank,
        # the stable sort must preserve this order -> 3 misses, not 2
        a_row0, a_row1 = 0, 4 * cfg.row_bytes
        other = cfg.row_bytes  # different bank, interleaved as noise
        addrs = np.asarray([a_row0, other, a_row1, other + 32, a_row0], np.int64)
        res = simulate_dram(cfg, addrs, LINE)
        # bank A: miss, miss, miss; bank B: miss, hit
        assert res.row_misses == 4
        assert res.row_hits == 1


class TestConfig:
    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            DRAMConfig(channels=0)
        with pytest.raises(ValueError):
            DRAMConfig(row_bytes=0)

    def test_result_is_engine_free_pure_function(self):
        cfg = DRAMConfig()
        addrs = np.arange(100, dtype=np.int64) * 64
        a = simulate_dram(cfg, addrs, LINE, writebacks=3)
        b = simulate_dram(cfg, addrs, LINE, writebacks=3)
        assert isinstance(a, DRAMResult)
        assert a.row_hits == b.row_hits and a.energy_nj == b.energy_nj
        assert np.array_equal(a.per_bank_bytes, b.per_bank_bytes)
