"""Deterministic engine-equivalence and engine-selection tests.

The hypothesis suite (tests/properties/test_engine_props.py) fuzzes
small streams; these tests pin specific regressions: engine selection
plumbing, sparse address densification, the bitmask-resolution path with
real ambiguous windows, and the scalar fallback guard.
"""

import numpy as np
import pytest

from repro.lang import SimulationError
from repro.memsim import ENGINES, default_engine, fa_miss_counts
from repro.memsim.cache import CacheConfig, simulate_cache, simulate_cache_writeback
from repro.memsim import fastsim


def _assert_engines_agree(config, addresses, writes=None):
    ref = simulate_cache_writeback(config, addresses, writes, engine="reference")
    fast = simulate_cache_writeback(config, addresses, writes, engine="fast")
    assert np.array_equal(ref.miss, fast.miss)
    assert ref.writebacks == fast.writebacks
    return ref


class TestEngineSelection:
    def test_default_engine_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine() == "fast"

    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert default_engine() == "reference"

    def test_env_var_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(SimulationError, match="REPRO_ENGINE"):
            default_engine()

    def test_explicit_engine_rejects_unknown(self):
        cfg = CacheConfig("c", 64, 8, 0)
        with pytest.raises(SimulationError, match="unknown engine"):
            simulate_cache(cfg, np.array([0, 8]), engine="turbo")

    def test_engines_tuple(self):
        assert ENGINES == ("fast", "reference")


class TestFastPaths:
    def test_empty_stream(self):
        cfg = CacheConfig("c", 64, 8, 2)
        res = simulate_cache_writeback(
            cfg, np.empty(0, dtype=np.int64), None, engine="fast"
        )
        assert len(res.miss) == 0 and res.writebacks == 0

    def test_sparse_addresses_densify(self):
        # line numbers scattered across 2**40: forces np.unique densification
        rng = np.random.default_rng(11)
        bases = rng.integers(0, 2**40, size=8)
        addrs = (rng.choice(bases, size=4000) + rng.integers(0, 32, size=4000)) * 64
        writes = rng.random(4000) < 0.3
        for cap in (2, 16, 64):
            _assert_engines_agree(CacheConfig("fa", cap * 64, 64, 0), addrs, writes)

    def test_phase_structured_stream_all_geometries(self):
        # phase changes create long-gap reuses whose stack distance must be
        # resolved exactly (ambiguous windows in the bitmask path)
        rng = np.random.default_rng(5)
        phases = [
            rng.integers(lo, lo + width, size=3000)
            for lo, width in ((0, 40), (300, 25), (10, 200), (150, 60))
        ]
        addrs = np.concatenate(phases) * 32
        writes = rng.random(len(addrs)) < 0.25
        for cfg in (
            CacheConfig("fa", 16 * 32, 32, 0),
            CacheConfig("fa", 128 * 32, 32, 0),
            CacheConfig("dm", 16 * 32, 32, 1),
            CacheConfig("2w", 64 * 32, 32, 2),
            CacheConfig("4w", 64 * 32, 32, 4),
        ):
            _assert_engines_agree(cfg, addrs, writes)

    def test_fa_table_guard_falls_back_to_scalar(self, monkeypatch):
        # shrink the table budget so the bitmask path refuses and the
        # scalar fallback answers — results must be unchanged
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 500, size=2000) * 16
        cfg = CacheConfig("fa", 32 * 16, 16, 0)
        want = simulate_cache(cfg, addrs, engine="fast")
        monkeypatch.setattr(fastsim, "_FA_TABLE_BYTES", 0)
        got = simulate_cache(cfg, addrs, engine="fast")
        assert np.array_equal(want, got)

    def test_all_loads_reports_zero_writebacks(self):
        cfg = CacheConfig("2w", 8 * 16, 16, 2)
        addrs = np.arange(100) % 40 * 16
        res = simulate_cache_writeback(cfg, addrs, None, engine="fast")
        assert res.writebacks == 0


class TestFaMissCounts:
    def test_matches_per_capacity_simulation(self):
        rng = np.random.default_rng(9)
        keys = rng.integers(0, 300, size=5000)
        capacities = (1, 4, 16, 64, 256, 1024)
        counts = fa_miss_counts(keys, capacities)
        assert set(counts) == set(capacities)
        for cap in capacities:
            cfg = CacheConfig("fa", cap, 1, 0)
            miss = simulate_cache(cfg, keys, engine="fast")
            assert counts[cap] == int(miss.sum()), cap

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 100, size=2000)
        counts = fa_miss_counts(keys, (1, 2, 4, 8, 16))
        values = [counts[c] for c in (1, 2, 4, 8, 16)]
        assert values == sorted(values, reverse=True)
