"""Whole-hierarchy simulation and timing-model tests."""

import pytest

from repro.core.regroup import default_layout
from repro.interp import trace_program
from repro.memsim import (
    octane,
    origin2000,
    scaled_machine,
    simulate_hierarchy,
)

from conftest import build


@pytest.fixture
def small_machine():
    return scaled_machine(origin2000(), 1024, 8 * 1024, 8, 1024)


def make_stats(src, n, machine, steps=1):
    p = build(src)
    trace = trace_program(p, {"N": n}, steps=steps)
    return simulate_hierarchy(trace, default_layout(p, {"N": n}), machine)


STREAM = """
program t
param N
real A[N], B[N]
for i = 1, N { B[i] = f(A[i]) }
"""


def test_l2_sees_only_l1_misses(small_machine):
    stats = make_stats(STREAM, 4096, small_machine)
    assert stats.l2_misses <= stats.l1_misses
    assert stats.l1_misses <= stats.accesses


def test_streaming_miss_rates(small_machine):
    stats = make_stats(STREAM, 4096, small_machine)
    # 8-byte elements: 4 per 32B L1 line, 16 per 128B L2 line
    assert stats.l1_miss_rate == pytest.approx(0.25, rel=0.05)
    assert stats.l2_misses == pytest.approx(2 * 4096 * 8 / 128, rel=0.05)


def test_repeat_hits_when_fits(small_machine):
    # N small enough that both arrays fit in L2: second step ~no L2 misses
    one = make_stats(STREAM, 256, small_machine, steps=1)
    two = make_stats(STREAM, 256, small_machine, steps=2)
    assert two.l2_misses <= one.l2_misses * 1.1


def test_data_transferred(small_machine):
    stats = make_stats(STREAM, 4096, small_machine)
    # inbound fills plus outbound dirty write-backs
    assert stats.data_transferred_bytes == (
        stats.l2_misses + stats.l2_writebacks
    ) * 128
    # the kernel writes all of B: roughly B's lines come back out
    assert stats.l2_writebacks == pytest.approx(4096 * 8 / 128, rel=0.1)


def test_timing_monotone_in_misses(small_machine):
    fast = make_stats(STREAM, 256, small_machine, steps=4)
    slow = make_stats(STREAM, 4096, small_machine)
    assert slow.seconds / slow.accesses > fast.seconds / fast.accesses


def test_normalized_to():
    a = make_stats(STREAM, 4096, small_machine_inst := scaled_machine(origin2000(), 1024, 8192, 8, 1024))
    norm = a.normalized_to(a)
    assert norm == {"time": 1.0, "l1": 1.0, "l2": 1.0, "tlb": 1.0}


def test_machines_structural_parameters():
    oct_, org = octane(), origin2000()
    assert oct_.l1.size_bytes == 32 * 1024
    assert oct_.l2.size_bytes == 1024 * 1024
    assert org.l2.size_bytes == 4 * 1024 * 1024
    assert oct_.l1.assoc == org.l1.assoc == 2
    assert org.tlb.entries == 64


def test_scaled_machine_overrides():
    m = scaled_machine(origin2000(), 2048, 16 * 1024, 4, 512)
    assert m.l1.size_bytes == 2048
    assert m.l2.size_bytes == 16 * 1024
    assert m.tlb.entries == 4
    assert m.tlb.page_bytes == 512
    assert m.l1.line_bytes == 32  # preserved


def test_tlb_counts_pages(small_machine):
    # a strided walk touching a new page every access thrashes the TLB
    p = build(
        """
        program t
        param N
        real A[N, N]
        for i = 1, N { A[1, i] = 0.0 }
        """
    )
    n = 512  # row stride = 512*8 = 4096 bytes = 4 pages of 1KB
    trace = trace_program(p, {"N": n})
    stats = simulate_hierarchy(trace, default_layout(p, {"N": n}), small_machine)
    assert stats.tlb_misses == n  # every access a new page, 8-entry TLB
