"""Pinned vectorization decisions across every program x level variant.

The executor's dependence test moved from a private ``_Planner._conflict``
into the shared :mod:`repro.static.dependence_test` (also used by the
parallelism analyzer for race witnesses).  This suite pins every
:func:`plan_execution` decision — per-loop vectorized/fallback verdict
plus the fallback reason — for all 42 golden (program, level) variants,
so any future change to the shared test that would alter a codegen
decision shows up as a bit-level diff.

Run ``python tests/codegen/test_exec_plan_golden.py`` to regenerate the
golden file from the current implementation.  Do that only for an
intentional behavior change, and say so in the commit.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "integration"))

from golden_pipelines import (  # noqa: E402
    GOLDEN_LEVELS,
    GOLDEN_PARAMS,
    build_golden_program,
    reset_fusion_uids,
)

GOLDEN_FILE = Path(__file__).parent / "golden_exec_plans.json"

VARIANTS = [
    (name, level)
    for name in sorted(GOLDEN_PARAMS)
    for level in GOLDEN_LEVELS
]


def plan_lines(name: str, level: str) -> list[str]:
    """The exec plan of one variant as deterministic text lines."""
    from repro.codegen.executor import plan_execution
    from repro.core import compile_variant

    program = build_golden_program(name)
    reset_fusion_uids()
    variant = compile_variant(program, level)
    plan = plan_execution(variant.program, GOLDEN_PARAMS[name])
    lines = []
    for d in plan.decisions:
        tag = "vectorized" if d.vectorized else f"fallback: {d.reason}"
        lines.append(f"{d.index}: {tag}")
    return lines


@pytest.mark.parametrize("name,level", VARIANTS, ids=[f"{n}-{lv}" for n, lv in VARIANTS])
def test_exec_plan_matches_golden(name: str, level: str) -> None:
    golden = json.loads(GOLDEN_FILE.read_text())
    key = f"{name}/{level}"
    assert key in golden, (
        f"no golden exec plan for {key}; regenerate with "
        f"'python {Path(__file__).relative_to(Path.cwd())}'"
    )
    assert plan_lines(name, level) == golden[key], (
        f"vectorization decisions changed for {key} — if intentional, "
        f"regenerate the golden file"
    )


def test_golden_file_has_no_stale_entries() -> None:
    golden = json.loads(GOLDEN_FILE.read_text())
    expected = {f"{n}/{lv}" for n, lv in VARIANTS}
    assert set(golden) == expected


def main() -> int:
    payload = {
        f"{name}/{level}": plan_lines(name, level)
        for name, level in VARIANTS
    }
    GOLDEN_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_FILE}: {len(payload)} variants")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    raise SystemExit(main())
