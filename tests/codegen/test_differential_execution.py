"""Differential execution suite: codegen executor vs. the interpreter.

``repro.codegen.run_program`` executes the program with vectorized numpy
kernels where the dependence planner proves a loop parallel, and scalar
interpretation elsewhere.  Because the vector paths mirror the
interpreter's float64 arithmetic operation for operation (and only
``sqrt``/``abs`` — IEEE correctly-rounded — are vectorized among the
builtins), the final arrays must be **bit-for-bit identical**, not just
close.

Tier 1 runs two levels per program at the golden sizes; the ``slow``
marker runs the full 42-variant matrix.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "integration"))

from golden_pipelines import (
    GOLDEN_LEVELS,
    GOLDEN_PARAMS,
    build_golden_program,
    reset_fusion_uids,
)

from repro.codegen import plan_execution, run_program as codegen_run
from repro.core import compile_variant
from repro.interp import run_program as interp_run

STEPS = 2
FAST_LEVELS = ("noopt", "new")  # tier-1 slice; the slow job runs all 7

#: tier-1 overrides: sp's interpreter run dominates the suite at N=9
FAST_PARAMS = {"sp": {"N": 8}}
FAST_STEPS = {"sp": 1}

FAST_CASES = [
    (name, level)
    for name in sorted(GOLDEN_PARAMS)
    for level in FAST_LEVELS
]
ALL_CASES = [
    (name, level)
    for name in sorted(GOLDEN_PARAMS)
    for level in GOLDEN_LEVELS
]


def _variant_program(name, level):
    program = build_golden_program(name)
    reset_fusion_uids()
    return compile_variant(program, level).program


def assert_same_arrays(name, level, params=None, steps=STEPS):
    program = _variant_program(name, level)
    params = GOLDEN_PARAMS[name] if params is None else params
    ref = interp_run(program, params, steps=steps)
    out = codegen_run(program, params, steps=steps)
    assert sorted(ref) == sorted(out), f"{name}/{level}: array sets differ"
    for arr in sorted(ref):
        assert np.array_equal(ref[arr], out[arr]), (
            f"{name}/{level}: array {arr} differs bit-for-bit"
        )


@pytest.mark.parametrize(
    "name,level", FAST_CASES, ids=[f"{n}-{lv}" for n, lv in FAST_CASES]
)
def test_execution_matches_interpreter(name, level):
    assert_same_arrays(
        name,
        level,
        params=FAST_PARAMS.get(name),
        steps=FAST_STEPS.get(name, STEPS),
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "name,level", ALL_CASES, ids=[f"{n}-{lv}" for n, lv in ALL_CASES]
)
def test_execution_matches_interpreter_all_levels(name, level):
    assert_same_arrays(name, level)


def test_planner_vectorizes_something():
    """The plan must find parallel loops in the study programs — a
    planner that conservatively rejects everything would still pass the
    differential tests by falling back everywhere."""
    program = _variant_program("swim", "noopt")
    plan = plan_execution(program, GOLDEN_PARAMS["swim"])
    vectorized = [d for d in plan.decisions if d.vectorized]
    assert vectorized, "no loop vectorized in swim/noopt"


def test_planner_rejects_recurrence():
    from repro.lang import parse, validate

    program = validate(parse(
        """
        program rec
        param N
        real A[N]
        for i = 2, N { A[i] = A[i - 1] + 1.0 }
        """
    ))
    plan = plan_execution(program, {"N": 16})
    assert not plan.vectorized, "flow recurrence must not vectorize"
    assert plan.fallback_reasons
