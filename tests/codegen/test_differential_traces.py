"""Differential trace suite: codegen tracer vs. the interpreter oracle.

Every program x level variant of the study (42 in all) must produce a
trace **bit-for-bit identical** to ``repro.interp.tracegen`` — array
ids, element offsets, read/write flags, reference ids, and instruction
ids alike.  On top of the pairwise comparison, the codegen trace of each
variant is pinned by a committed fingerprint
(``golden_trace_fingerprints.json``), so a change to either tracer that
moves the trace at all fails loudly even if both tracers move together.

Run ``python tests/codegen/test_differential_traces.py`` to regenerate
the fingerprint file after an *intentional* trace change (and say so in
the commit).

The tier-1 cases run at the small golden sizes; the ``slow`` marker
re-runs the full matrix at the fig-10 registry sizes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

GOLDEN_FILE = Path(__file__).parent / "golden_trace_fingerprints.json"

# the golden variant helpers live with the pipeline goldens; pytest only
# auto-inserts this file's own directory (a conftest.py here would
# shadow tests/conftest.py for sibling suites, so the path is set inline)
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "integration"))

if __name__ != "__main__":
    from golden_pipelines import (
        GOLDEN_LEVELS,
        GOLDEN_PARAMS,
        build_golden_program,
        reset_fusion_uids,
    )

    from repro.codegen import trace_fingerprint
    from repro.codegen import trace_program as codegen_trace
    from repro.core import compile_variant
    from repro.interp import trace_program as interp_trace

    CASES = [
        (name, level)
        for name in sorted(GOLDEN_PARAMS)
        for level in GOLDEN_LEVELS
    ]

STEPS = 2  # >1 so cross-step instruction-offset bookkeeping is covered


_VARIANT_CACHE: dict = {}


def _variant_program(name, level):
    # compiled once per (name, level): both the pairwise and the golden
    # test trace the same immutable program
    key = (name, level)
    if key not in _VARIANT_CACHE:
        program = build_golden_program(name)
        reset_fusion_uids()
        _VARIANT_CACHE[key] = compile_variant(program, level).program
    return _VARIANT_CACHE[key]


def assert_traces_identical(a, b, label=""):
    """Field-by-field bit equality of two AccessTrace objects."""
    assert a.array_names == b.array_names, label
    assert a.array_sizes == b.array_sizes, label
    assert len(a) == len(b), f"{label}: {len(a)} vs {len(b)} accesses"
    for field in ("array_ids", "elems", "writes", "ref_ids"):
        fa, fb = getattr(a, field), getattr(b, field)
        assert np.array_equal(fa, fb), f"{label}: {field} differs"
    ia, ib = a.instr_ids, b.instr_ids
    assert (ia is None) == (ib is None), f"{label}: instr_ids presence"
    if ia is not None:
        assert np.array_equal(ia, ib), f"{label}: instr_ids differ"


if __name__ != "__main__":

    @pytest.mark.parametrize(
        "name,level", CASES, ids=[f"{n}-{lv}" for n, lv in CASES]
    )
    def test_trace_matches_interpreter(name, level):
        program = _variant_program(name, level)
        params = GOLDEN_PARAMS[name]
        ref = interp_trace(program, params, steps=STEPS, with_instr=True)
        out = codegen_trace(program, params, steps=STEPS, with_instr=True)
        assert_traces_identical(ref, out, f"{name}/{level}")

    @pytest.mark.parametrize(
        "name,level", CASES, ids=[f"{n}-{lv}" for n, lv in CASES]
    )
    def test_trace_matches_golden_fingerprint(name, level):
        assert GOLDEN_FILE.exists(), (
            f"missing {GOLDEN_FILE}; regenerate with "
            "'python tests/codegen/test_differential_traces.py'"
        )
        golden = json.loads(GOLDEN_FILE.read_text())
        program = _variant_program(name, level)
        trace = codegen_trace(
            program, GOLDEN_PARAMS[name], steps=STEPS, with_instr=True
        )
        key = f"{name}-{level}"
        assert key in golden, f"no golden fingerprint for {key}; regenerate"
        assert trace_fingerprint(trace) == golden[key], (
            f"{key}: trace moved; if intentional, regenerate the goldens"
        )

    def test_goldens_cover_all_variants():
        golden = json.loads(GOLDEN_FILE.read_text())
        assert sorted(golden) == sorted(f"{n}-{lv}" for n, lv in CASES)
        assert len(golden) == 42

    def test_plain_trace_matches_without_instr():
        # the measurement path traces with_instr=False; spot-check that
        # shape too (instr bookkeeping off changes the packing layout)
        for name, level in [("adi", "new"), ("tomcatv", "fusion")]:
            program = _variant_program(name, level)
            params = GOLDEN_PARAMS[name]
            ref = interp_trace(program, params, steps=STEPS)
            out = codegen_trace(program, params, steps=STEPS)
            assert_traces_identical(ref, out, f"{name}/{level} plain")

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name,level", CASES, ids=[f"{n}-{lv}" for n, lv in CASES]
    )
    def test_trace_matches_interpreter_full_size(name, level):
        """The full matrix at the fig-10 registry sizes (tier 2)."""
        from repro.programs import registry

        try:
            entry = registry.get(name)
            params = dict(entry.default_params)
            steps = entry.steps
        except KeyError:  # fft is built, not registered
            params, steps = GOLDEN_PARAMS[name], 1
        program = _variant_program(name, level)
        ref = interp_trace(program, params, steps=steps, with_instr=True)
        out = codegen_trace(program, params, steps=steps, with_instr=True)
        assert_traces_identical(ref, out, f"{name}/{level} full")


def main() -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "integration"))
    from golden_pipelines import (
        GOLDEN_LEVELS,
        GOLDEN_PARAMS,
        build_golden_program,
        reset_fusion_uids,
    )

    from repro.codegen import trace_fingerprint
    from repro.codegen import trace_program as codegen_trace
    from repro.core import compile_variant

    golden = {}
    for name in sorted(GOLDEN_PARAMS):
        for level in GOLDEN_LEVELS:
            program = build_golden_program(name)
            reset_fusion_uids()
            variant = compile_variant(program, level)
            trace = codegen_trace(
                variant.program, GOLDEN_PARAMS[name], steps=STEPS,
                with_instr=True,
            )
            golden[f"{name}-{level}"] = trace_fingerprint(trace)
            print(f"{name}-{level}: {golden[f'{name}-{level}']}")
    GOLDEN_FILE.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_FILE} ({len(golden)} fingerprints)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
