"""The structural codegen plan, its pass, and the S401 fallback lint."""

from __future__ import annotations

import pytest

from repro.codegen.plan import lint_codegen, plan_program
from repro.lang import parse, validate


def build(source):
    return validate(parse(source))


def test_clean_program_fully_traceable():
    plan = plan_program(build(
        """
        program ok
        param N
        real A[N], B[N]
        for i = 1, N { A[i] = f(B[i]) }
        B[1] = 0.0
        """
    ))
    assert plan.fully_traceable
    assert plan.summary() == "2/2 nests traceable"
    assert [n.kind for n in plan.nests] == ["loop", "assign"]
    assert plan.nests[0].index == "i"


def test_uninlined_call_flagged():
    plan = plan_program(build(
        """
        program calls
        param N
        real A[N]
        proc init(lo) { A[lo] = 0.0 }
        for i = 1, N { A[i] = f(A[i]) }
        call init(1)
        """
    ))
    assert not plan.fully_traceable
    [nest] = plan.fallback_nests
    assert nest.kind == "call"
    assert "not inlined" in nest.reason


def test_fractional_stride_flagged():
    plan = plan_program(build(
        """
        program frac
        param N
        real A[N]
        for i = 1, N {
          when i in [2] { A[i / 2] = 1.0 }
        }
        """
    ))
    [nest] = plan.fallback_nests
    assert "fractional subscript stride" in nest.reason


def test_lint_inlines_before_judging():
    # the harness inlines procedures before tracing, so a program whose
    # only calls are inlinable must NOT be flagged
    program = build(
        """
        program calls
        param N
        real A[N]
        proc init(lo) { A[lo] = 0.0 }
        for i = 1, N { A[i] = f(A[i]) }
        call init(1)
        """
    )
    assert not list(lint_codegen(program))
    diags = list(lint_codegen(program, inline=False))
    assert [d.code for d in diags] == ["S401"]


def test_s401_on_structural_fallback():
    program = build(
        """
        program frac
        param N
        real A[N]
        for i = 1, N {
          when i in [2] { A[i / 2] = 1.0 }
        }
        """
    )
    diags = list(lint_codegen(program))
    assert [d.code for d in diags] == ["S401"]
    assert "fractional subscript stride" in diags[0].message


def test_s401_registered():
    from repro.verify.codes import get_code
    from repro.verify.diagnostics import Severity

    info = get_code("S401")
    assert info.severity == Severity.WARNING
    assert info.family == "S"


@pytest.mark.parametrize("app", ["adi", "swim", "tomcatv", "sp", "sweep3d"])
def test_bundled_apps_emit_no_s401(app):
    from repro.programs import registry

    program = validate(registry.get(app).build())
    assert not list(lint_codegen(program)), (
        f"{app} unexpectedly falls back to the interpreter"
    )


def test_codegen_plan_pass_deposits_plan():
    from repro.core import compile_pipeline

    program = build(
        """
        program ok
        param N
        real A[N]
        for i = 1, N { A[i] = f(A[i]) }
        """
    )
    variant = compile_pipeline(program, ["codegen-plan"])
    assert variant.stages["codegen"] == {
        "nests": 1,
        "fallback_nests": 0,
        "summary": "1/1 nests traceable",
    }
