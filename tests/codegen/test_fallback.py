"""The fallback contract: unsupported nests degrade, never diverge.

When the emitter cannot lower a nest, ``trace_program`` must run that
nest through the interpreter-based generator *in place* — same stream
order, same trace — and record the fallback in the ``codegen.*``
metrics so it is observable.  No validated study program currently
trips the fallback (the tracer covers the interpreter's full supported
subset), so the mechanism is exercised by forcing the emitter to
refuse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen import CodegenUnsupported, int_affine, trace_program
from repro.codegen import tracer as tracer_mod
from repro.interp import trace_program as interp_trace
from repro.lang import Affine, parse, validate
from repro.obs import metrics


@pytest.fixture
def stencil():
    return validate(parse(
        """
        program stencil
        param N
        real A[N, N], B[N, N]
        for i = 1, N {
          for j = 2, N { A[j, i] = f(A[j - 1, i], B[j, i]) }
        }
        for i = 2, N { B[i, i] = g(A[i, i]) }
        """
    ))


def _counters():
    return metrics.snapshot()["counters"]


def test_forced_fallback_is_bit_identical(stencil, monkeypatch):
    params = {"N": 9}
    ref = interp_trace(stencil, params, steps=2, with_instr=True)

    def refuse(self, node, frame, p):
        raise CodegenUnsupported("forced by test")

    monkeypatch.setattr(tracer_mod._Emitter, "emit", refuse)
    before = _counters()
    out = trace_program(stencil, params, steps=2, with_instr=True)
    after = _counters()

    for field in ("array_ids", "elems", "writes", "ref_ids", "instr_ids"):
        assert np.array_equal(getattr(ref, field), getattr(out, field)), field

    key = "codegen.trace.fallback[forced by test]"
    assert after.get("codegen.trace.nests.fallback", 0) - before.get(
        "codegen.trace.nests.fallback", 0
    ) == 2
    assert after.get(key, 0) - before.get(key, 0) == 1  # one per distinct reason


def test_clean_trace_records_compiled_nests(stencil):
    before = _counters()
    trace_program(stencil, {"N": 9})
    after = _counters()
    assert after["codegen.trace.nests"] - before.get("codegen.trace.nests", 0) == 2
    assert (
        after["codegen.trace.nests.compiled"]
        - before.get("codegen.trace.nests.compiled", 0)
        == 2
    )
    assert after.get("codegen.trace.nests.fallback", 0) == before.get(
        "codegen.trace.nests.fallback", 0
    )


def test_partial_fallback_preserves_stream_order(stencil, monkeypatch):
    # refuse only the second top-level nest: the vector prefix and the
    # interpreted suffix must interleave exactly as the oracle does
    params = {"N": 8}
    ref = interp_trace(stencil, params, steps=2)
    original = tracer_mod._Emitter.emit
    calls = []

    def refuse_second(self, node, frame, p):
        calls.append(node)
        if len(calls) == 2:
            raise CodegenUnsupported("second nest refused")
        return original(self, node, frame, p)

    monkeypatch.setattr(tracer_mod._Emitter, "emit", refuse_second)
    out = trace_program(stencil, params, steps=2)
    assert np.array_equal(ref.elems, out.elems)
    assert np.array_equal(ref.array_ids, out.array_ids)
    assert np.array_equal(ref.writes, out.writes)


def test_int_affine_folds_params():
    form = Affine.from_terms(1, {"N": 2, "i": 1})
    const, coeffs = int_affine(form, {"N": 10})
    assert const == 21
    assert coeffs == (("i", 1),)


def test_int_affine_rejects_fractional():
    from fractions import Fraction

    form = Affine.from_terms(0, {"i": Fraction(1, 2)})
    with pytest.raises(CodegenUnsupported):
        int_affine(form, {})
