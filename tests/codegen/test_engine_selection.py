"""The unified engine-spec grammar and its harness/CLI seams."""

from __future__ import annotations

import pytest

from repro.engines import (
    EngineSelection,
    TRACE_ENGINES,
    default_sim_engine,
    default_trace_engine,
    engine_spec,
    resolve_engines,
)
from repro.lang import SimulationError
from repro.memsim import ENGINES as SIM_ENGINES


def test_defaults():
    sel = resolve_engines(None)
    assert sel.sim in SIM_ENGINES
    assert sel.tracer == "codegen"  # the proven-equal fast path


def test_single_axis_specs():
    assert resolve_engines("fast").sim == "fast"
    assert resolve_engines("reference").sim == "reference"
    assert resolve_engines("codegen").tracer == "codegen"
    assert resolve_engines("interp").tracer == "interp"
    # naming one axis leaves the other at its default
    assert resolve_engines("interp").sim == resolve_engines(None).sim


def test_combined_specs():
    sel = resolve_engines("fast+interp")
    assert (sel.sim, sel.tracer) == ("fast", "interp")
    # order-insensitive: each token binds to the axis it belongs to
    assert resolve_engines("interp+fast") == sel
    assert sel.spec() == "fast+interp"


def test_selection_passthrough():
    sel = EngineSelection(sim="reference", tracer="interp")
    assert resolve_engines(sel) is sel


def test_unknown_tokens_raise():
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engines("bogus")
    with pytest.raises(ValueError):
        resolve_engines("fast+bogus")


def test_conflicting_tokens_raise():
    with pytest.raises(ValueError):
        resolve_engines("fast+reference")
    with pytest.raises(ValueError):
        resolve_engines("codegen+interp")


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_ENGINE", "interp")
    assert default_trace_engine() == "interp"
    assert resolve_engines(None).tracer == "interp"
    monkeypatch.setenv("REPRO_TRACE_ENGINE", "bogus")
    with pytest.raises(ValueError):
        default_trace_engine()


def test_sim_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert default_sim_engine() == "reference"
    assert resolve_engines(None).sim == "reference"
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    with pytest.raises(SimulationError, match="REPRO_ENGINE"):
        default_sim_engine()
    with pytest.raises(SimulationError, match="REPRO_ENGINE"):
        resolve_engines(None)


def test_memsim_default_engine_delegates(monkeypatch):
    # one parser of REPRO_ENGINE for every layer
    from repro.memsim import default_engine

    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert default_engine() == default_sim_engine() == "reference"
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    with pytest.raises(SimulationError, match="REPRO_ENGINE"):
        default_engine()


@pytest.mark.parametrize(
    "spec, expected",
    [
        (None, ("fast", "codegen")),
        ("", ("fast", "codegen")),
        ("fast", ("fast", "codegen")),
        ("reference", ("reference", "codegen")),
        ("codegen", ("fast", "codegen")),
        ("interp", ("fast", "interp")),
        ("fast+codegen", ("fast", "codegen")),
        ("fast+interp", ("fast", "interp")),
        ("reference+codegen", ("reference", "codegen")),
        ("reference+interp", ("reference", "interp")),
        ("codegen+fast", ("fast", "codegen")),
        ("interp+fast", ("fast", "interp")),
        ("codegen+reference", ("reference", "codegen")),
        ("interp+reference", ("reference", "interp")),
        (" fast + interp ", ("fast", "interp")),
    ],
)
def test_every_spelling(spec, expected, monkeypatch):
    """The full spec grammar: every sim x tracer spelling resolves."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_ENGINE", raising=False)
    sel = resolve_engines(spec)
    assert (sel.sim, sel.tracer) == expected
    if spec:
        assert engine_spec(spec) == spec  # CLI hook round-trips the string
        assert resolve_engines(sel) == sel  # RunRequest round-trips the object


def test_run_request_engine_uses_same_parser():
    """RunRequest.engine rejects unknown specs with the shared message."""
    from repro.harness import RunRequest, run

    with pytest.raises(ValueError, match="unknown engine"):
        run(
            RunRequest(
                program="adi", levels=("noopt",), params={"N": 16},
                steps=1, engine="bogus",
            )
        )


def test_engine_spec_cli_hook():
    # validates eagerly (argparse reports bad specs at parse time) but
    # passes the string through, so RunRequest.engine stays a str
    assert engine_spec("reference+interp") == "reference+interp"
    with pytest.raises(ValueError):
        engine_spec("bogus")


def test_trace_engines_registry():
    assert TRACE_ENGINES == ("codegen", "interp")


def test_measure_variant_same_stats_across_tracers():
    """Both tracers must yield identical simulation results end to end."""
    from repro.harness import machine_for, measure_variant
    from repro.lang import validate
    from repro.programs import registry
    from repro.programs.registry import MachineSpec

    entry = registry.get("adi")
    program = validate(entry.build())
    machine = machine_for(MachineSpec())
    results = {}
    for spec in ("fast+codegen", "fast+interp"):
        r = measure_variant(
            program, "noopt", {"N": 16}, machine, steps=1, engine=spec
        )
        results[spec] = r
    a, b = results["fast+codegen"].stats, results["fast+interp"].stats
    assert a.accesses == b.accesses
    assert a.l1_misses == b.l1_misses
    assert a.l2_misses == b.l2_misses
    assert a.tlb_misses == b.tlb_misses
