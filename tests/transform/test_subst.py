"""Substitution / renaming tests."""

import pytest

from repro.lang import (
    Affine,
    Const,
    Guard,
    IndexVar,
    TransformError,
)
from repro.transform.subst import (
    FreshNames,
    bound_names,
    rename_bound,
    subst_stmt,
)

from conftest import build


def body_of(src):
    return build(src).body


def test_subst_expr():
    (loop,) = body_of(
        "program t\nparam N\nreal A[N]\nfor i = 1, N { A[i] = f(A[i]) }"
    )
    stmt = loop.body[0]
    out = subst_stmt(stmt, {"i": IndexVar("f") - 2})
    assert "f" in str(out)
    assert "i" not in {v for v in str(out).split() if v == "i"}


def test_subst_guard_variable_translates_intervals():
    (loop,) = body_of(
        """
        program t
        param N
        real A[N]
        for i = 1, N {
          when i in [2:N - 1] { A[i] = 0.0 }
        }
        """
    )
    guard = loop.body[0]
    out = subst_stmt(guard, {"i": IndexVar("f") - 3})
    assert isinstance(out, Guard)
    assert out.index == "f"
    assert out.intervals[0].lower == Affine.constant(5)
    assert out.intervals[0].upper == Affine.var("N") + 2


def test_subst_guard_by_constant_rejected():
    (loop,) = body_of(
        """
        program t
        param N
        real A[N]
        for i = 1, N {
          when i in [2] { A[i] = 0.0 }
        }
        """
    )
    with pytest.raises(TransformError):
        subst_stmt(loop.body[0], {"i": Const(2)})


def test_subst_rebinding_rejected():
    (outer,) = body_of(
        """
        program t
        param N
        real A[N, N]
        for i = 1, N {
          for j = 1, N { A[j, i] = 0.0 }
        }
        """
    )
    with pytest.raises(TransformError, match="re-bound"):
        subst_stmt(outer, {"i": IndexVar("x")})


def test_bound_names():
    body = body_of(
        """
        program t
        param N
        real A[N, N]
        for i = 1, N { for j = 1, N { A[j, i] = 0.0 } }
        """
    )
    assert bound_names(body) == {"i", "j"}


def test_rename_bound_avoids_collision():
    (outer,) = body_of(
        """
        program t
        param N
        real A[N, N]
        for k = 1, N {
          for i = 1, N { A[i, k] = f(A[i, k]) }
        }
        """
    )
    fresh = FreshNames({"N", "i", "k"})
    renamed = rename_bound(outer.body[0], {"i"}, fresh)
    assert renamed.index != "i"
    assert renamed.index in str(renamed.body[0])


def test_fresh_names_never_collide():
    fresh = FreshNames({"f1", "f2"})
    assert fresh.fresh("f") == "f3"
    assert fresh.fresh("f") == "f4"
