"""Preliminary transformation tests (§4.1)."""

import pytest

from repro.lang import TransformError, parse
from repro.transform import (
    distribute_loops,
    inline_procedures,
    propagate_scalar_constants,
    simplify_program,
    split_arrays,
    unroll_small_loops,
)

from conftest import assert_same_semantics, build


class TestInline:
    def test_inline_expands_calls(self):
        p = build(
            """
            program t
            param N
            real A[N]
            proc fill(k) { A[k] = 1.0 }
            call fill(1)
            call fill(N)
            """
        )
        q = inline_procedures(p)
        assert not q.procedures
        assert len(q.body) == 2
        assert_same_semantics(p, q)

    def test_nested_procedures(self):
        p = build(
            """
            program t
            param N
            real A[N]
            proc one(k) { A[k] = 1.0 }
            proc both(k) {
              call one(k)
              call one(k + 1)
            }
            call both(2)
            """
        )
        q = inline_procedures(p)
        assert len(q.body) == 2
        assert_same_semantics(p, q)

    def test_loop_in_procedure(self):
        p = build(
            """
            program t
            param N
            real A[N, N]
            proc row(r) {
              for j = 1, N { A[j, r] = f(A[j, r]) }
            }
            for i = 1, N { A[1, i] = 0.0 }
            call row(1)
            call row(N)
            """
        )
        q = inline_procedures(p)
        assert_same_semantics(p, q)

    def test_recursion_detected(self):
        p = parse(
            """
            program t
            param N
            real A[N]
            proc a(k) { call a(k) }
            call a(1)
            """
        )
        with pytest.raises(TransformError, match="depth"):
            inline_procedures(p)


class TestUnroll:
    def test_unrolls_small_constant_loops(self):
        p = build(
            """
            program t
            param N
            real A[3, N]
            for c = 1, 3 {
              for i = 1, N { A[c, i] = f(A[c, i]) }
            }
            """
        )
        q = unroll_small_loops(p, max_trip=3)
        assert_same_semantics(p, q)
        assert q.loop_nest_count() == 3  # three copies of the inner loop

    def test_keeps_large_and_symbolic_loops(self):
        p = build(
            """
            program t
            param N
            real A[N]
            for i = 1, N { A[i] = 0.0 }
            """
        )
        assert unroll_small_loops(p, max_trip=5) == p


class TestSplitArrays:
    def test_split_and_provenance(self):
        p = build(
            """
            program t
            param N
            real U[2, N]
            for i = 1, N {
              U[1, i] = f(U[1, i])
              U[2, i] = g(U[2, i], U[1, i])
            }
            """
        )
        q = split_arrays(p)
        assert set(q.array_names()) == {"U_1", "U_2"}
        assert_same_semantics(p, q)

    def test_variable_subscript_blocks_split(self):
        p = build(
            """
            program t
            param N
            real U[2, N]
            for c = 1, 2 {
              for i = 1, N { U[c, i] = f(U[c, i]) }
            }
            """
        )
        assert split_arrays(p) == p  # c is not constant (not unrolled)
        q = split_arrays(unroll_small_loops(p, 2))
        assert set(q.array_names()) == {"U_1", "U_2"}
        assert_same_semantics(p, q)

    def test_double_split(self):
        p = build(
            """
            program t
            param N
            real U[2, 2, N]
            for i = 1, N {
              U[1, 1, i] = f(U[2, 2, i])
              U[2, 1, i] = g(U[1, 2, i])
            }
            """
        )
        q = split_arrays(p)
        assert q.array_count() == 4
        assert_same_semantics(p, q)


class TestDistribute:
    def test_independent_statements_scatter(self):
        p = build(
            """
            program t
            param N
            real A[N], B[N]
            for i = 1, N {
              A[i] = 1.0
              B[i] = 2.0
            }
            """
        )
        q = distribute_loops(p)
        assert q.loop_nest_count() == 2
        assert_same_semantics(p, q)

    def test_recurrence_scc_stays_together(self):
        p = build(
            """
            program t
            param N
            real A[N], B[N]
            for i = 2, N {
              A[i] = f(B[i - 1])
              B[i] = g(A[i])
            }
            """
        )
        q = distribute_loops(p)
        assert q.loop_nest_count() == 1
        assert_same_semantics(p, q)

    def test_flow_dependence_splits_in_order(self):
        p = build(
            """
            program t
            param N
            real A[N], B[N]
            for i = 1, N {
              A[i] = 1.0
              B[i] = f(A[i])
            }
            """
        )
        q = distribute_loops(p)
        assert q.loop_nest_count() == 2
        assert_same_semantics(p, q)

    def test_inner_loops_distributed(self):
        p = build(
            """
            program t
            param N
            real A[N, N], B[N, N]
            for i = 1, N {
              for j = 1, N {
                A[j, i] = 1.0
                B[j, i] = 2.0
              }
            }
            """
        )
        q = distribute_loops(p)
        assert q.loop_count() == 4
        assert_same_semantics(p, q)


class TestSimplify:
    def test_affine_canonicalization(self):
        p = build(
            """
            program t
            param N
            real A[N]
            for i = 2, N { A[(i + 1) - 1] = f(A[(i - 2) + 1]) }
            """
        )
        q = simplify_program(p)
        text = str(q.body[0].body[0])
        assert "A[i]" in text
        assert "(i - 1)" in text or "i - 1" in text
        assert_same_semantics(p, q)

    def test_scalar_constant_propagation(self):
        p = build(
            """
            program t
            param N
            real A[N]
            scalar c
            c = 2.0
            for i = 1, N { A[i] = c * A[i] }
            """
        )
        q = propagate_scalar_constants(p)
        assert "c" not in str(q.body[-1].body[0].expr)
        assert_same_semantics(p, q)

    def test_no_propagation_when_reassigned(self):
        p = build(
            """
            program t
            param N
            real A[N]
            scalar c
            c = 2.0
            c = 3.0
            for i = 1, N { A[i] = c * A[i] }
            """
        )
        assert propagate_scalar_constants(p) == p
