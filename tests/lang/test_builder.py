"""Builder API tests."""

import pytest

from repro.lang import (
    Affine,
    ProgramBuilder,
    ValidationError,
    affine_expr,
    assign,
    call,
    idx,
    loop,
    param,
    validate,
    when,
)


def test_builder_constructs_valid_program():
    b = ProgramBuilder("demo", params=["N"])
    A = b.array("A", param("N"), param("N"))
    i, j = idx("i"), idx("j")
    b.add(
        loop(
            "i", 1, param("N"),
            loop("j", 2, param("N"), assign(A[j, i], call("f", A[j - 1, i]))),
        )
    )
    p = b.build()
    validate(p)
    assert p.loop_count() == 2
    assert p.array_names() == ("A",)


def test_array_handle_arity_checked():
    b = ProgramBuilder("demo", params=["N"])
    A = b.array("A", param("N"))
    with pytest.raises(ValidationError):
        A[1, 2]


def test_when_builder():
    b = ProgramBuilder("demo", params=["N"])
    A = b.array("A", param("N"))
    g = when("i", [1, (3, param("N"))], assign(A[idx("i")], 0.0))
    b.add(loop("i", 1, param("N"), g))
    validate(b.build())


def test_affine_expr_distinguishes_params():
    form = Affine.var("N") + Affine.var("i") * 2 - 1
    expr = affine_expr(form, frozenset({"N"}))
    kinds = {type(node).__name__ for node in expr.walk()}
    assert "Param" in kinds
    assert "IndexVar" in kinds
    # round trip through affine
    assert expr.affine() == form


def test_affine_expr_constant_only():
    expr = affine_expr(Affine.constant(-3))
    assert expr.affine().int_value() == -3


def test_operator_overloading():
    i = idx("i")
    expr = (2 * i + 1) / 1 - 0
    # simplification is not automatic, but affine extraction normalizes
    assert expr.affine() == Affine.var("i") * 2 + 1
