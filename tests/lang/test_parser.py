"""Parser unit tests, including failure injection."""

import pytest

from repro.lang import (
    ArrayRef,
    Assign,
    Call,
    Guard,
    Loop,
    ParseError,
    parse,
    tokenize,
)


def test_tokenize_positions():
    tokens = tokenize("program x\nfor i")
    assert tokens[0].line == 1
    assert tokens[2].line == 2


def test_minimal_program():
    p = parse("program empty")
    assert p.name == "empty"
    assert p.body == ()


def test_declarations():
    p = parse(
        """
        program decls
        param N, M
        real A[N, M], B[N]
        scalar t, u
        """
    )
    assert p.params == ("N", "M")
    assert p.array("A").ndim == 2
    assert p.array("B").ndim == 1
    assert p.scalars == ("t", "u")


def test_loop_and_assignment():
    p = parse(
        """
        program loops
        param N
        real A[N]
        for i = 1, N { A[i] = 2.0 * A[i] + 1 }
        """
    )
    loop = p.body[0]
    assert isinstance(loop, Loop)
    assert loop.index == "i"
    stmt = loop.body[0]
    assert isinstance(stmt, Assign)
    assert isinstance(stmt.target, ArrayRef)


def test_guard_with_else():
    p = parse(
        """
        program guards
        param N
        real A[N]
        for i = 1, N {
          when i in [1, 3:N - 1] { A[i] = 0.0 } else { A[i] = 1.0 }
        }
        """
    )
    guard = p.body[0].body[0]
    assert isinstance(guard, Guard)
    assert len(guard.intervals) == 2
    assert guard.else_body


def test_procedures_and_calls():
    p = parse(
        """
        program procs
        param N
        real A[N]
        proc init(k) { A[k] = 0.0 }
        call init(1)
        call init(N)
        """
    )
    assert len(p.procedures) == 1
    assert p.procedures[0].formals == ("k",)
    assert len(p.body) == 2


def test_function_calls_parse():
    p = parse(
        """
        program calls
        param N
        real A[N]
        for i = 2, N { A[i] = f(A[i - 1], 0.5) }
        """
    )
    expr = p.body[0].body[0].expr
    assert isinstance(expr, Call)
    assert len(expr.args) == 2


def test_negative_and_precedence():
    p = parse(
        """
        program prec
        scalar t
        t = 1 + 2 * 3
        """
    )
    # affine canonicalization confirms precedence: 1 + (2*3) = 7
    assert p.body[0].expr.affine().int_value() == 7


def test_comments_ignored():
    p = parse("program c # trailing\n# whole line\nscalar t\nt = 1.0")
    assert len(p.body) == 1


class TestErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(ParseError, match="undeclared identifier"):
            parse("program e\nscalar t\nt = bogus")

    def test_undeclared_array(self):
        with pytest.raises(ParseError, match="undeclared array"):
            parse("program e\nscalar t\nt = A[1]")

    def test_wrong_arity(self):
        with pytest.raises(ParseError, match="dims"):
            parse("program e\nparam N\nreal A[N, N]\nA[1] = 0.0")

    def test_guard_outside_loop(self):
        with pytest.raises(ParseError, match="not a loop index"):
            parse(
                "program e\nparam N\nreal A[N]\nwhen i in [1] { A[1] = 0.0 }"
            )

    def test_missing_brace(self):
        with pytest.raises(ParseError):
            parse("program e\nparam N\nreal A[N]\nfor i = 1, N { A[i] = 0.0")

    def test_malformed_number(self):
        with pytest.raises(ParseError, match="malformed number"):
            parse("program e\nscalar t\nt = 1.2.3")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse("program e\nscalar t\nt = 1 ? 2")

    def test_assignment_to_undeclared_scalar(self):
        with pytest.raises(ParseError, match="undeclared scalar"):
            parse("program e\nt = 1.0")
