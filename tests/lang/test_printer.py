"""Printer round-trip tests."""

import pytest

from repro.lang import parse, to_source, validate
from repro.programs import APPLICATIONS, build_fft, sweep3d


ROUND_TRIP_SOURCES = [
    """
    program basic
    param N
    real A[N], B[N]
    for i = 2, N { A[i] = f(A[i - 1], B[i]) }
    """,
    """
    program guards
    param N
    real A[N, N]
    for i = 1, N {
      when i in [1, 2:N - 1] { A[1, i] = 0.0 } else { A[2, i] = 1.0 }
      for j = 1, N { A[j, i] = g(A[j, i]) }
    }
    """,
    """
    program procs
    param N
    real A[N]
    scalar t
    proc fill(k) { A[k] = 0.5 }
    call fill(1)
    t = 2.0 * t + 1.0
    """,
]


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip(source):
    p = validate(parse(source))
    assert validate(parse(to_source(p))) == p


@pytest.mark.parametrize("name", sorted(APPLICATIONS))
def test_applications_round_trip(name):
    p = validate(APPLICATIONS[name].build())
    assert validate(parse(to_source(p))) == p


def test_fft_round_trip():
    p = validate(build_fft(32))
    assert validate(parse(to_source(p))) == p


def test_sweep3d_round_trip():
    p = validate(sweep3d.build())
    assert validate(parse(to_source(p))) == p


def test_source_is_readable():
    p = validate(APPLICATIONS["adi"].build())
    text = to_source(p)
    assert "program adi" in text
    assert "for i" in text or "for j" in text


# -- round-trip is preserved by every compiler pass ---------------------------
#
# The printer/parser pair must be lossless not just for hand-written
# sources but for everything the passes emit: guarded fusion output,
# peel loops, split arrays, negative alignment shifts.  parse(print(p))
# must reproduce the exact AST at every optimization level.

from repro.core import OPT_LEVELS, compile_variant  # noqa: E402
from repro.programs import registry  # noqa: E402

ALL_BENCHMARKS = sorted(set(registry.APPLICATIONS) | set(registry.STUDY_PROGRAMS))


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
@pytest.mark.parametrize("level", OPT_LEVELS)
def test_every_pass_output_round_trips(name, level):
    p = compile_variant(registry.get(name).build(), level).program
    assert validate(parse(to_source(p))) == p
