"""Unit tests for affine forms and symbolic comparison."""

from fractions import Fraction

import pytest

from repro.lang import Affine, Assumptions, NotAffineError


class TestConstruction:
    def test_constant(self):
        a = Affine.constant(5)
        assert a.is_constant()
        assert a.int_value() == 5

    def test_var(self):
        v = Affine.var("N")
        assert v.coeff("N") == 1
        assert not v.is_constant()

    def test_var_zero_coeff_is_constant(self):
        assert Affine.var("N", 0) == Affine.constant(0)

    def test_from_terms_drops_zeros(self):
        a = Affine.from_terms(1, {"N": 0, "i": 2})
        assert a.variables() == {"i"}

    def test_float_coefficient_must_be_integral(self):
        with pytest.raises(NotAffineError):
            Affine.constant(0.5).__add__(Affine.var("N", 0.25))


class TestArithmetic:
    def test_add_sub(self):
        n, i = Affine.var("N"), Affine.var("i")
        expr = n + i - 1
        assert expr.coeff("N") == 1
        assert expr.coeff("i") == 1
        assert expr.const == -1

    def test_cancellation(self):
        n = Affine.var("N")
        assert (n - n).is_constant()
        assert (n - n).int_value() == 0

    def test_scalar_multiplication(self):
        i = Affine.var("i")
        assert (i * 3).coeff("i") == 3
        assert (3 * i).coeff("i") == 3
        assert (i * 0) == Affine.constant(0)

    def test_negation(self):
        i = Affine.var("i")
        assert (-i).coeff("i") == -1

    def test_substitute(self):
        i, f = Affine.var("i"), Affine.var("f")
        expr = i + 2
        out = expr.substitute({"i": f - 1})
        assert out == f + 1

    def test_evaluate(self):
        expr = Affine.var("N") * 2 + 1
        assert expr.evaluate({"N": 10}) == 21

    def test_evaluate_unbound_raises(self):
        with pytest.raises(NotAffineError):
            Affine.var("N").evaluate({})


class TestComparison:
    def test_constant_signs(self):
        assert Affine.constant(3).sign() == 1
        assert Affine.constant(-3).sign() == -1
        assert Affine.constant(0).sign() == 0

    def test_param_large_positive(self):
        n = Affine.var("N")
        assert (n - 2).sign() == 1  # N >= 8 by default
        assert (2 - n).sign() == -1

    def test_indeterminate(self):
        n = Affine.var("N")
        assert (n - 100).sign() is None  # could be either side of 0
        m = Affine.var("M")
        assert (n - m).sign() is None  # mixed signs

    def test_compare(self):
        n = Affine.var("N")
        assert (n - 1).compare(n) == -1
        assert n.compare(n) == 0
        assert (n + 1).compare(n) == 1

    def test_assumptions_per_var(self):
        i = Affine.var("i")
        low = Assumptions(default=8).with_var("i", 1)
        assert (i - 2).sign(low) is None  # i could be 1
        assert i.sign(low) == 1
        unbounded = Assumptions(default=8).with_var("i", None)
        assert i.sign(unbounded) is None

    def test_lower_bound(self):
        n = Affine.var("N")
        assert (n + 1).lower_bound() == 9
        assert (n * 2).lower_bound(Assumptions(default=3)) == 6
        assert (-n).lower_bound() is None  # no upper bounds tracked

    def test_assumptions_of(self):
        a = Assumptions.of(5)
        assert a.min_of("anything") == 5
        assert Assumptions.of(a) is a


class TestDisplay:
    def test_str(self):
        expr = Affine.var("N") - 1
        assert str(expr) == "N - 1"

    def test_fraction(self):
        half = Affine.constant(Fraction(1, 2))
        assert "1/2" in str(half)
