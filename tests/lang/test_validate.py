"""Structural validation tests (failure injection)."""

import pytest

from repro.lang import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Const,
    IndexVar,
    Loop,
    Param,
    Program,
    ScalarRef,
    ValidationError,
    parse,
    validate,
)


def _prog(body, arrays=(("A", 1),), params=("N",), scalars=()):
    decls = tuple(
        ArrayDecl(name, tuple(Param("N") for _ in range(nd))) for name, nd in arrays
    )
    return Program("t", tuple(params), decls, tuple(body), scalars=tuple(scalars))


def a_ref(*idx):
    return ArrayRef("A", tuple(idx))


def test_valid_program_passes():
    p = _prog([Loop("i", Const(1), Param("N"), (Assign(a_ref(IndexVar("i")), Const(0.0)),))])
    validate(p)


def test_index_out_of_scope():
    p = _prog([Assign(a_ref(IndexVar("i")), Const(0.0))])
    with pytest.raises(ValidationError, match="out of scope"):
        validate(p)


def test_shadowing_parameter():
    p = _prog([Loop("N", Const(1), Const(5), (Assign(a_ref(Const(1)), Const(0.0)),))])
    with pytest.raises(ValidationError, match="shadows a parameter"):
        validate(p)


def test_shadowing_outer_loop():
    inner = Loop("i", Const(1), Const(3), (Assign(a_ref(IndexVar("i")), Const(0.0)),))
    p = _prog([Loop("i", Const(1), Const(3), (inner,))])
    with pytest.raises(ValidationError, match="shadows an outer loop"):
        validate(p)


def test_wrong_subscript_count():
    p = _prog([Assign(ArrayRef("A", (Const(1), Const(2))), Const(0.0))])
    with pytest.raises(ValidationError, match="dims"):
        validate(p)


def test_undeclared_array():
    p = _prog([Assign(ArrayRef("Z", (Const(1),)), Const(0.0))])
    with pytest.raises(ValidationError, match="undeclared array"):
        validate(p)


def test_undeclared_scalar():
    p = _prog([Assign(ScalarRef("t"), Const(0.0))])
    with pytest.raises(ValidationError, match="undeclared scalar"):
        validate(p)


def test_duplicate_array_declaration():
    decls = (ArrayDecl("A", (Param("N"),)), ArrayDecl("A", (Param("N"),)))
    with pytest.raises(ValidationError, match="duplicate"):
        Program("t", ("N",), decls, ())


def test_call_arity_checked():
    p = parse(
        """
        program t
        param N
        real A[N]
        proc fill(k) { A[k] = 0.0 }
        call fill(1)
        """
    )
    validate(p)
    from repro.lang import CallStmt

    bad = p.with_body((CallStmt("fill", (Const(1), Const(2))),))
    with pytest.raises(ValidationError, match="takes 1 args"):
        validate(bad)


def test_nonaffine_subscript_rejected():
    src = """
    program t
    param N
    real A[N]
    for i = 1, N { A[i] = A[i] }
    """
    p = validate(parse(src))
    # build a non-affine subscript: A[i*i]
    i = IndexVar("i")
    bad_body = (Loop("i", Const(1), Param("N"), (Assign(a_ref(i * i), Const(0.0)),)),)
    with pytest.raises(ValidationError, match="not affine"):
        validate(p.with_body(bad_body))
