"""Structural validation tests (failure injection)."""

import pytest

from repro.lang import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Const,
    IndexVar,
    Loop,
    Param,
    Program,
    ScalarRef,
    ValidationError,
    ValidationIssue,
    parse,
    validate,
    validation_issues,
)


def _prog(body, arrays=(("A", 1),), params=("N",), scalars=()):
    decls = tuple(
        ArrayDecl(name, tuple(Param("N") for _ in range(nd))) for name, nd in arrays
    )
    return Program("t", tuple(params), decls, tuple(body), scalars=tuple(scalars))


def a_ref(*idx):
    return ArrayRef("A", tuple(idx))


def test_valid_program_passes():
    p = _prog([Loop("i", Const(1), Param("N"), (Assign(a_ref(IndexVar("i")), Const(0.0)),))])
    validate(p)


def test_index_out_of_scope():
    p = _prog([Assign(a_ref(IndexVar("i")), Const(0.0))])
    with pytest.raises(ValidationError, match="out of scope"):
        validate(p)


def test_shadowing_parameter():
    p = _prog([Loop("N", Const(1), Const(5), (Assign(a_ref(Const(1)), Const(0.0)),))])
    with pytest.raises(ValidationError, match="shadows a parameter"):
        validate(p)


def test_shadowing_outer_loop():
    inner = Loop("i", Const(1), Const(3), (Assign(a_ref(IndexVar("i")), Const(0.0)),))
    p = _prog([Loop("i", Const(1), Const(3), (inner,))])
    with pytest.raises(ValidationError, match="shadows an outer loop"):
        validate(p)


def test_wrong_subscript_count():
    p = _prog([Assign(ArrayRef("A", (Const(1), Const(2))), Const(0.0))])
    with pytest.raises(ValidationError, match="dims"):
        validate(p)


def test_undeclared_array():
    p = _prog([Assign(ArrayRef("Z", (Const(1),)), Const(0.0))])
    with pytest.raises(ValidationError, match="undeclared array"):
        validate(p)


def test_undeclared_scalar():
    p = _prog([Assign(ScalarRef("t"), Const(0.0))])
    with pytest.raises(ValidationError, match="undeclared scalar"):
        validate(p)


def test_duplicate_array_declaration():
    decls = (ArrayDecl("A", (Param("N"),)), ArrayDecl("A", (Param("N"),)))
    with pytest.raises(ValidationError, match="duplicate"):
        Program("t", ("N",), decls, ())


def test_call_arity_checked():
    p = parse(
        """
        program t
        param N
        real A[N]
        proc fill(k) { A[k] = 0.0 }
        call fill(1)
        """
    )
    validate(p)
    from repro.lang import CallStmt

    bad = p.with_body((CallStmt("fill", (Const(1), Const(2))),))
    with pytest.raises(ValidationError, match="takes 1 args"):
        validate(bad)


def test_nonaffine_subscript_rejected():
    src = """
    program t
    param N
    real A[N]
    for i = 1, N { A[i] = A[i] }
    """
    p = validate(parse(src))
    # build a non-affine subscript: A[i*i]
    i = IndexVar("i")
    bad_body = (Loop("i", Const(1), Param("N"), (Assign(a_ref(i * i), Const(0.0)),)),)
    with pytest.raises(ValidationError, match="not affine"):
        validate(p.with_body(bad_body))


# -- collect-all behavior -----------------------------------------------------


def _many_problems() -> Program:
    """A program with four independent structural errors."""
    i = IndexVar("i")
    body = (
        Assign(ArrayRef("Z", (Const(1),)), Const(0.0)),  # undeclared array
        Assign(ScalarRef("t"), Const(0.0)),  # undeclared scalar
        Loop(
            "i",
            Const(1),
            Param("N"),
            (
                Assign(a_ref(i * i), Const(0.0)),  # non-affine subscript
                Assign(ArrayRef("A", (i, i)), Const(0.0)),  # wrong arity
            ),
        ),
    )
    return _prog(body)


def test_all_errors_collected_not_just_first():
    issues = validation_issues(_many_problems())
    messages = [issue.message for issue in issues]
    assert len(issues) == 4
    assert any("undeclared array 'Z'" in m for m in messages)
    assert any("undeclared scalar 't'" in m for m in messages)
    assert any("not affine" in m for m in messages)
    assert any("has 1 dims" in m for m in messages)


def test_issue_locations_are_path_like():
    issues = validation_issues(_many_problems())
    wheres = [issue.where for issue in issues]
    assert wheres[0].startswith("body[0]")
    assert any("/for i" in w for w in wheres)


def test_validation_error_carries_all_issues():
    with pytest.raises(ValidationError) as exc:
        validate(_many_problems())
    err = exc.value
    assert len(err.issues) == 4
    assert all(isinstance(issue, ValidationIssue) for issue in err.issues)
    # the message lists every problem, one per line
    assert "4 validation error(s)" in str(err)
    assert str(err).count("\n") == 4


def test_valid_program_has_no_issues():
    p = _prog(
        [Loop("i", Const(1), Param("N"), (Assign(a_ref(IndexVar("i")), Const(0.0)),))]
    )
    assert validation_issues(p) == []


def test_issue_equality_and_repr():
    a = ValidationIssue("body[0]", "boom")
    b = ValidationIssue("body[0]", "boom")
    assert a == b
    assert a != ValidationIssue("body[1]", "boom")
    assert str(a) == "body[0]: boom"
    assert "boom" in repr(a)


def test_undeclared_procedure_does_not_crash_arity_check():
    from repro.lang import CallStmt

    p = _prog([CallStmt("nosuch", (Const(1),))])
    issues = validation_issues(p)
    assert any("undeclared procedure" in issue.message for issue in issues)
