"""Statement-level AST utilities."""

import pytest

from repro.lang import (
    Affine,
    Assign,
    Const,
    Guard,
    Interval,
    ValidationError,
    loop_nest_depth,
    loops_in,
    map_body,
    parse,
)

from conftest import build


def test_interval_point():
    iv = Interval.point(Affine.constant(3))
    assert iv.lower == iv.upper
    assert str(iv) == "3"


def test_interval_range_str():
    iv = Interval(Affine.constant(2), Affine.var("N"))
    assert str(iv) == "2:N"


def test_guard_requires_intervals():
    from repro.lang import ArrayRef

    stmt = Assign(ArrayRef("A", (Const(1),)), Const(0.0))
    with pytest.raises(ValidationError):
        Guard("i", (), (stmt,))


def test_loop_nest_depth():
    p = build(
        """
        program t
        param N
        real A[N, N, N]
        for i = 1, N {
          A[1, 1, i] = 0.0
          for j = 1, N {
            for k = 1, N { A[k, j, i] = 1.0 }
          }
        }
        """
    )
    assert loop_nest_depth(p.body[0]) == 3


def test_loops_in_recurses_guards():
    p = build(
        """
        program t
        param N
        real A[N, N]
        for i = 1, N {
          when i in [2:N - 1] {
            for j = 1, N { A[j, i] = 0.0 }
          }
        }
        """
    )
    assert len(loops_in(p.body)) == 2


def test_map_body_drop_and_expand():
    p = build(
        """
        program t
        param N
        real A[N]
        A[1] = 0.0
        A[2] = 0.0
        """
    )
    s1, s2 = p.body
    out = map_body([s1, s2], lambda s: None if s is s1 else [s, s])
    assert out == (s2, s2)


def test_loop_with_body_replaces():
    p = build("program t\nparam N\nreal A[N]\nfor i = 1, N { A[i] = 0.0 }")
    loop = p.body[0]
    new = loop.with_body(loop.body + loop.body)
    assert len(new.body) == 2
    assert new.index == loop.index


def test_label_does_not_affect_equality():
    a = parse("program t\nparam N\nreal A[N]\nfor i = 1, N { A[i] = 0.0 }").body[0]
    from dataclasses import replace

    assert replace(a, label="x") == a
