"""Log2 reuse-distance histogram tests."""

import numpy as np

from repro.locality import COLD, ReuseHistogram, reuse_distances


def test_binning():
    d = np.array([COLD, 0, 1, 2, 3, 4, 7, 8, 1023, 1024])
    h = ReuseHistogram.from_distances(d)
    assert h.cold == 1
    assert h.counts[0] == 1  # distance 0
    assert h.counts[1] == 1  # distance 1
    assert h.counts[2] == 2  # distances 2..3
    assert h.counts[3] == 2  # distances 4..7
    assert h.counts[4] == 1  # 8..15
    assert h.counts[10] == 1  # 512..1023
    assert h.counts[11] == 1  # 1024..2047
    assert h.total_reuses == 9
    assert h.total == 10


def test_count_ge():
    d = np.array([0, 1, 4, 16, 64])
    h = ReuseHistogram.from_distances(d)
    assert h.count_ge(0) == 5
    assert h.count_ge(4) == 3
    assert h.count_ge(64) == 1
    assert h.fraction_ge(4) == 3 / 5


def test_mean_log_distance_tracks_hills():
    near = ReuseHistogram.from_distances(np.array([1, 1, 2, 2]))
    far = ReuseHistogram.from_distances(np.array([1024, 2048]))
    assert far.mean_log_distance() > near.mean_log_distance()


def test_add():
    a = ReuseHistogram.from_distances(np.array([0, 1]))
    b = ReuseHistogram.from_distances(np.array([COLD, 1024]))
    c = a + b
    assert c.cold == 1
    assert c.total_reuses == 3


def test_format_ascii_smoke():
    keys = list(range(8)) * 2
    h = ReuseHistogram.from_distances(reuse_distances(keys))
    text = h.format_ascii(width=20, label="demo")
    assert "demo" in text
    assert "cold: 8" in text


def test_series():
    h = ReuseHistogram.from_distances(np.array([0, 2]))
    assert h.series() == [(0, 1), (1, 0), (2, 1)]


def test_empty():
    h = ReuseHistogram.from_distances(np.array([], dtype=np.int64))
    assert h.total == 0
    assert h.fraction_ge(1) == 0.0
    assert h.mean_log_distance() == 0.0
