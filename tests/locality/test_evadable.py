"""Evadable-reuse classification tests (paper §2.1-2.2)."""

from repro.interp import trace_program
from repro.locality import (
    classify_evadable,
    classify_evadable_program,
    classify_evadable_sizes,
    evadable_change,
    mean_distance_growth,
    per_class_stats,
)

from conftest import build

# Two loops sweeping the whole array: the reuse of A between them grows
# with N (evadable).  The in-loop recurrence reuse of A[i-1] is constant.
SRC = """
program t
param N
real A[N], B[N]
for i = 2, N { A[i] = f(A[i - 1]) }
for i = 1, N { B[i] = g(A[i]) }
"""

# Fused version: all reuses short and size-independent.
SRC_FUSED = """
program t
param N
real A[N], B[N]
for i = 2, N {
  A[i] = f(A[i - 1])
  B[i] = g(A[i])
}
B[1] = g(A[1])
"""


def traces(src):
    p = build(src)
    return (
        trace_program(p, {"N": 200}),
        trace_program(p, {"N": 800}),
    )


def test_per_class_stats_groups_by_reference():
    p = build(SRC)
    t = trace_program(p, {"N": 64})
    stats = per_class_stats(t)
    assert stats  # at least the recurrence and cross-loop classes
    for s in stats.values():
        assert s.reuses > 0
        assert s.mean_distance >= 0


def test_cross_loop_reuse_is_evadable():
    small, large = traces(SRC)
    report = classify_evadable(small, large)
    assert report.evadable_reuses > 0
    # the evadable class is the second loop's read of A
    ref_texts = {large.refs[r].text for r in report.evadable_classes}
    assert "A[i]" in ref_texts
    # the recurrence reuse A[i-1] must NOT be evadable
    assert all("A[(i - 1)]" != t for t in ref_texts)


def test_fused_version_almost_free_of_evadable_reuses():
    # only the peeled boundary statement's single reuse (B[1] = g(A[1]))
    # still spans the loop — a constant number of dynamic reuses, not a
    # constant fraction
    small, large = traces(SRC_FUSED)
    report = classify_evadable(small, large)
    assert report.evadable_reuses <= 2
    assert report.evadable_fraction < 0.01


def test_evadable_change_measures_reduction():
    before = classify_evadable(*traces(SRC))
    after = classify_evadable(*traces(SRC_FUSED))
    change = evadable_change(before, after)
    assert change < -0.99  # essentially all evadable reuses removed


# A reuse class that performs zero reuses at the smallest size: the guarded
# read of A[i - 8] never finds a partner until N outgrows the guard window.
# Its distance is flat (constant 8 elements apart) once it materializes, so
# it must NOT classify as evadable merely for being absent at the small size.
SRC_COLD_AT_SMALL = """
program coldsmall
param N
real A[N], B[N]
for i = 1, N {
  A[i] = f(B[i])
  when i in [10:N] { B[i] = g(A[i - 8]) }
}
"""


def test_cold_only_at_small_size_uses_first_measured_baseline():
    p = build(SRC_COLD_AT_SMALL)
    sizes = [trace_program(p, {"N": n}) for n in (9, 64, 512)]
    # at N=9 the guarded class never fires: classify_evadable on the two
    # extremes would treat it as "absent at small" and call it evadable
    assert not per_class_stats(sizes[0]) or all(
        "A[(i - 8)]" != sizes[0].refs[r].text
        for r in per_class_stats(sizes[0])
    )
    report = classify_evadable_sizes(sizes)
    texts = {sizes[-1].refs[r].text for r in report.evadable_classes}
    assert "A[(i - 8)]" not in texts  # flat distance -> not evadable


def test_classify_evadable_program_static_matches_dynamic():
    p = build(SRC)
    small, large = {"N": 200}, {"N": 800}
    static = classify_evadable_program(p, small, large)  # default: static
    dynamic = classify_evadable_program(p, small, large, method="dynamic")
    assert static.evadable_classes == dynamic.evadable_classes
    assert static.evadable_classes  # the cross-loop read of A


def test_mean_distance_growth():
    p = build(SRC)
    small = trace_program(p, {"N": 200})
    large = trace_program(p, {"N": 800})
    growth = mean_distance_growth(per_class_stats(small), per_class_stats(large))
    assert growth > 1.5  # distances grow with input size

    pf = build(SRC_FUSED)
    gf = mean_distance_growth(
        per_class_stats(trace_program(pf, {"N": 200})),
        per_class_stats(trace_program(pf, {"N": 800})),
    )
    assert gf < growth  # fusion slows the lengthening rate
