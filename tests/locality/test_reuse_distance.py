"""Reuse-distance tests, including the paper's Fig. 1 example."""

import numpy as np
import pytest

from repro.locality import (
    COLD,
    hit_ratio,
    miss_count,
    reuse_distances,
    reuse_distances_naive,
)


def test_fig1_example():
    # "a b c a a c b": distinct-items-between definition
    keys = [0, 1, 2, 0, 0, 2, 1]
    d = reuse_distances(keys)
    assert list(d) == [COLD, COLD, COLD, 2, 0, 1, 2]


def test_fused_sequence_all_zero():
    # Fig. 1(b): "a a b b c c" after fusion — every reuse distance 0
    keys = [0, 0, 1, 1, 2, 2]
    d = reuse_distances(keys)
    assert list(d) == [COLD, 0, COLD, 0, COLD, 0]


def test_empty_and_single():
    assert len(reuse_distances([])) == 0
    assert list(reuse_distances([7])) == [COLD]


def test_repeated_same_key():
    d = reuse_distances([5] * 6)
    assert list(d) == [COLD, 0, 0, 0, 0, 0]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("universe", [3, 20, 200])
def test_agrees_with_naive_oracle(seed, universe):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, size=400).tolist()
    assert list(reuse_distances(keys)) == reuse_distances_naive(keys)


def test_cyclic_scan_distance_equals_working_set():
    keys = list(range(10)) * 3
    d = reuse_distances(keys)
    # after the cold pass, every reuse sees 9 distinct items in between
    assert all(x == 9 for x in d[10:])


def test_miss_count_and_hit_ratio():
    keys = list(range(10)) * 3
    d = reuse_distances(keys)
    # capacity 10 holds the whole working set: only cold misses
    assert miss_count(d, 10) == 10
    assert miss_count(d, 10, count_cold=False) == 0
    # capacity 9 thrashes completely
    assert miss_count(d, 9) == 30
    assert hit_ratio(d, 10) == pytest.approx(20 / 30)


def test_miss_ratio_curve_matches_direct_counting():
    import numpy as np

    from repro.locality import miss_ratio_curve

    rng = np.random.default_rng(3)
    keys = rng.integers(0, 64, 4000)
    d = reuse_distances(keys)
    curve = miss_ratio_curve(d, [1, 4, 16, 64, 256])
    for capacity, ratio in curve.items():
        assert ratio == pytest.approx(miss_count(d, capacity) / len(d))
    # monotone non-increasing in capacity
    values = [curve[c] for c in sorted(curve)]
    assert all(a >= b for a, b in zip(values, values[1:]))
