"""CLI tests for ``repro lint`` and ``repro verify-pass``."""

import json

import pytest

from repro.cli import main

GOOD = """
program kern
param N
real A[N], B[N]
for i = 2, N { A[i] = f(A[i - 1], B[i]) }
"""

OOB = """
program oob
param N
real A[N]
for i = 1, N { A[i] = A[i + 1] }
"""

ALIGN_ORIG = """
program align
param N
real A[N], B[N], C[N]
for i = 1, N { A[i] = f1(B[i]) }
for i = 1, N - 1 { C[i] = f2(A[i + 1]) }
"""

ALIGN_BROKEN = """
program align
param N
real A[N], B[N], C[N]
for i = 1, N {
  A[i] = f1(B[i])
  when i in [1:N - 1] { C[i] = f2(A[i + 1]) }
}
"""


@pytest.fixture
def files(tmp_path):
    def write(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


def test_lint_clean_file(files, capsys):
    assert main(["lint", files("k.loop", GOOD)]) == 0
    out = capsys.readouterr().out
    assert "lint kern" in out


def test_lint_reports_out_of_bounds(files, capsys):
    assert main(["lint", files("oob.loop", OOB)]) == 1
    out = capsys.readouterr().out
    assert "V102" in out
    assert "overflow" in out


def test_lint_app_by_name(capsys):
    assert main(["lint", "adi"]) == 0
    assert "lint adi" in capsys.readouterr().out


def test_lint_json_output(files, capsys):
    assert main(["lint", files("oob.loop", OOB), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["program"] == "oob"
    assert payload["counts"]["error"] == 1
    assert payload["diagnostics"][0]["code"] == "V102"


def test_lint_strict_fails_on_warnings(files, capsys):
    dead = """
    program t
    param N
    real A[N], Z[N]
    for i = 1, N { A[i] = 0.0 }
    """
    path = files("dead.loop", dead)
    assert main(["lint", path]) == 0
    assert main(["lint", path, "--strict"]) == 1


def test_verify_pass_certifies_app(capsys):
    assert main(["verify-pass", "adi", "--levels", "fusion"]) == 0
    out = capsys.readouterr().out
    assert "ok adi/fusion" in out
    assert "fusion" in out


def test_verify_pass_json(capsys):
    assert main(["verify-pass", "adi", "--levels", "noopt", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (result,) = payload["results"]
    assert result["certified"] is True
    assert "inline" in result["passes"]
    assert payload["failures"] == 0


def test_verify_pass_before_after_certifies(files, capsys):
    rc = main([
        "verify-pass",
        "--before", files("orig.loop", ALIGN_ORIG),
        "--after", files("orig2.loop", ALIGN_ORIG),
        "--pass-name", "noop",
    ])
    assert rc == 0
    assert "certified" in capsys.readouterr().out


def test_verify_pass_rejects_broken_alignment(files, capsys):
    rc = main([
        "verify-pass",
        "--before", files("orig.loop", ALIGN_ORIG),
        "--after", files("broken.loop", ALIGN_BROKEN),
        "--pass-name", "fuse",
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "ILLEGAL" in out
    assert "flow dependence on A[2] violated" in out
    assert "source: A[i] = f1(B[i])  @ i=2" in out


def test_verify_pass_before_after_json(files, capsys):
    rc = main([
        "verify-pass",
        "--before", files("orig.loop", ALIGN_ORIG),
        "--after", files("broken.loop", ALIGN_BROKEN),
        "--json",
    ])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["certified"] is False
    assert payload["counts"]["error"] > 0


def test_verify_pass_before_without_after_errors(files):
    with pytest.raises(SystemExit):
        main(["verify-pass", "--before", files("orig.loop", ALIGN_ORIG)])


def _has_ruff() -> bool:
    try:
        import ruff  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.mark.skipif(_has_ruff(), reason="ruff installed; --self delegates to it")
def test_lint_self_without_ruff_is_informative(capsys):
    # ruff is not installed in this environment: --self must say so and
    # point at the pyproject configuration rather than crash
    assert main(["lint", "--self"]) == 0
    err = capsys.readouterr().err
    assert "ruff" in err
    assert "pyproject.toml" in err


def test_lint_requires_target_or_self():
    with pytest.raises(SystemExit):
        main(["lint"])
