"""The diagnostic-code registry and ``lint --explain`` snapshot.

The registry in ``repro.verify.codes`` is the single declaration point
for every stable diagnostic id; this file pins its hygiene so the table
cannot rot: no duplicate ``_register`` calls in the source, every code
documented (non-empty summary AND full explanation), every family
prefix known, and the CLI ``lint --explain`` / ``lint --codes`` paths
rendering all of it.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.verify.codes import (
    FAMILIES,
    REGISTRY,
    all_codes,
    explain_code,
    format_code_table,
    get_code,
)

CODES_SOURCE = (
    Path(__file__).resolve().parents[2]
    / "src" / "repro" / "verify" / "codes.py"
)


def test_no_duplicate_register_calls_in_source():
    # the registry dict asserts at import, but a duplicate would then
    # hide behind whichever registration ran first — scan the source
    text = CODES_SOURCE.read_text()
    declared = re.findall(r'_register\(\s*\n?\s*"([A-Z]\d{3})"', text)
    assert len(declared) == len(set(declared)), (
        f"duplicate diagnostic ids declared: "
        f"{sorted({c for c in declared if declared.count(c) > 1})}"
    )
    assert set(declared) == set(REGISTRY), (
        "source scan and registry disagree — _register call style changed?"
    )


def test_every_code_is_documented():
    assert all_codes(), "registry is empty"
    for info in all_codes():
        assert re.fullmatch(r"[A-Z]\d{3}", info.code), info.code
        assert info.family in FAMILIES, f"{info.code}: unknown family"
        assert info.summary.strip(), f"{info.code}: empty summary"
        assert info.doc.strip(), f"{info.code}: empty doc"
        assert len(info.doc.strip()) > len(info.summary.strip()), (
            f"{info.code}: doc should explain more than the summary line"
        )


def test_every_code_explains():
    for info in all_codes():
        text = explain_code(info.code)
        assert info.code in text
        assert info.summary in text
        assert FAMILIES[info.family] in text


def test_coherence_codes_are_registered():
    # the R52x sub-family introduced with the coherence analyzer
    assert get_code("R520").summary.startswith("false-sharing")
    assert "pad" in get_code("R520").doc.lower()
    assert "true sharing" in get_code("R521").summary
    assert "schedule" in get_code("R522").summary


def test_lookup_is_case_insensitive_and_helpful():
    assert get_code("r520").code == "R520"
    with pytest.raises(KeyError, match="known codes"):
        get_code("R999")


def test_code_table_groups_every_code():
    table = format_code_table()
    for info in all_codes():
        assert info.code in table
    for fam in sorted({i.family for i in all_codes()}):
        assert f"{fam}xxx — {FAMILIES[fam]}" in table


def test_cli_lint_explain_snapshot(capsys):
    # every registered code renders through the real CLI path
    for info in all_codes():
        assert main(["lint", "--explain", info.code]) == 0
        out = capsys.readouterr().out
        assert out.strip(), f"lint --explain {info.code} printed nothing"
        assert info.code in out


def test_cli_lint_codes_table(capsys):
    assert main(["lint", "--codes"]) == 0
    out = capsys.readouterr().out
    for code in ("V001", "S501", "R520", "R521", "R522"):
        assert code in out
