"""Pass-legality certification tests.

The positive direction: every pass of the real pipeline is certified on
every registry program.  The negative direction (the point of the
framework): deliberately broken transformations — a mis-aligned fusion,
a lost statement, reordered writes — are rejected with diagnostics that
name the violated dependence edge.
"""

import pytest

from repro.core import compile_variant
from repro.core.fusion import fuse_program
from repro.core.pipeline import preliminary
from repro.lang import parse, validate
from repro.programs import registry
from repro.transform import propagate_scalar_constants, simplify_program
from repro.verify import (
    MAX_DIAGS_PER_CODE,
    PassLegalityError,
    PassVerifier,
    check_legality,
    snapshot_program,
    verify_pass,
)

ALL_BENCHMARKS = sorted(set(registry.APPLICATIONS) | set(registry.STUDY_PROGRAMS))


def build(source: str):
    return validate(parse(source))


# -- the real pipeline is legal ----------------------------------------------


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_full_pipeline_certifies(name):
    program = registry.get(name).build()
    verifier = PassVerifier(program)
    compile_variant(program, "new", verify=verifier)
    passes = [pass_name for pass_name, _ in verifier.history]
    assert "fusion" in passes
    assert all(not bag.has_errors() for _, bag in verifier.history)


def test_verify_true_flag_smoke():
    program = registry.get("adi").build()
    variant = compile_variant(program, "fusion", verify=True)
    assert variant.level == "fusion"


@pytest.mark.parametrize("level", ["sgi", "mckinley"])
def test_baseline_compilers_certify(level):
    program = registry.get("tomcatv").build()
    compile_variant(program, level, verify=True)


# -- broken transformations are rejected --------------------------------------

ALIGN_ORIG = """
program align
param N
real A[N], B[N], C[N]

for i = 1, N {
  A[i] = f1(B[i])
}
for i = 1, (N - 1) {
  C[i] = f2(A[(i + 1)])
}
"""

# fusing the two loops needs alignment +1 (C reads A[i+1]); fusing at
# shift 0 moves the consumer ahead of its producer
ALIGN_BROKEN = """
program align
param N
real A[N], B[N], C[N]

for i = 1, N {
  A[i] = f1(B[i])
  when i in [1:(N - 1)] {
    C[i] = f2(A[(i + 1)])
  }
}
"""


def test_broken_alignment_rejected_naming_the_edge():
    bag = verify_pass(build(ALIGN_ORIG), build(ALIGN_BROKEN), pass_name="fuse")
    assert bag.has_errors()
    diag = bag.errors[0]
    assert diag.code == "L101"
    assert "flow dependence on A[2] violated" in diag.message
    # the diagnostic names the violated dependence edge completely:
    # kind, array element, producing statement instance, consuming one
    assert diag.details["kind"] == "flow"
    assert diag.details["element"] == "A[2]"
    assert "A[i] = f1(B[i])  @ i=2" in str(diag.details["source"])
    assert "C[i] = f2(A[(i + 1)])  @ i=1" in str(diag.details["sink"])
    assert diag.details["pass"] == "fuse"


def test_correct_alignment_certifies():
    # the legal fusion: shift the consumer by +1 and peel
    fused = """
    program align
    param N
    real A[N], B[N], C[N]

    for i = 1, N {
      A[i] = f1(B[i])
      when i in [2:N] {
        C[(i - 1)] = f2(A[i])
      }
    }
    """
    bag = verify_pass(build(ALIGN_ORIG), build(fused), pass_name="fuse")
    assert not bag.has_errors(), bag.render()


def test_lost_statement_rejected():
    after = """
    program align
    param N
    real A[N], B[N], C[N]

    for i = 1, N {
      A[i] = f1(B[i])
    }
    """
    bag = verify_pass(build(ALIGN_ORIG), build(after), pass_name="distribute")
    assert any(d.code == "L102" and "never after" in d.message for d in bag.errors)


def test_duplicated_writes_rejected():
    doubled = """
    program t
    param N
    real A[N]
    for i = 1, N { A[i] = 1.0 }
    for i = 1, N { A[i] = 1.0 }
    """
    single = """
    program t
    param N
    real A[N]
    for i = 1, N { A[i] = 1.0 }
    """
    bag = verify_pass(build(single), build(doubled), pass_name="unroll")
    assert any(d.code == "L103" and "duplicated" in d.message for d in bag.errors)


def test_reordered_writes_rejected_as_output_dependence():
    before = """
    program t
    param N
    real A[N]
    for i = 1, N { A[1] = f1(A[1]) }
    """
    # reversing a sequential accumulation reorders every write to A[1]
    after = """
    program t
    param N
    real A[N]
    for i = 1, N { A[1] = f1(A[1]) }
    """
    b = snapshot_program(build(before), {"N": 4})
    a = snapshot_program(build(after), {"N": 4})
    # simulate a reordering pass by reversing the observed chain
    a.writes[("A", (1,))] = list(reversed(a.writes[("A", (1,))]))
    bag = check_legality(b, a, pass_name="interchange")
    assert bag.has_errors()
    codes = {d.code for d in bag.errors}
    assert codes & {"L101", "L105"}, bag.render()


def test_diagnostics_are_capped():
    big_orig = ALIGN_ORIG
    big_broken = ALIGN_BROKEN
    bag = verify_pass(
        build(big_orig), build(big_broken), pass_name="fuse",
        params={"N": 40},
    )
    assert len(bag.errors) == MAX_DIAGS_PER_CODE
    assert any(d.code == "L000" for d in bag)


def test_mismatched_params_rejected():
    p = build(ALIGN_ORIG)
    b = snapshot_program(p, {"N": 4})
    a = snapshot_program(p, {"N": 5})
    bag = check_legality(b, a)
    assert any(d.code == "L100" for d in bag.errors)


# -- strict vs relaxed --------------------------------------------------------


def test_constprop_needs_relaxed_mode():
    before = """
    program t
    param N
    real A[N]
    scalar c
    c = 2.0
    for i = 1, N { A[i] = f(A[i], c) }
    """
    after = """
    program t
    param N
    real A[N]
    scalar c
    c = 2.0
    for i = 1, N { A[i] = f(A[i], 2.0) }
    """
    # strict mode flags the changed reads; the pass registry knows
    # constprop legitimately rewrites arithmetic and relaxes the check
    strict = verify_pass(build(before), build(after), pass_name="other",
                         strict=True)
    assert strict.has_errors()
    relaxed = verify_pass(build(before), build(after), pass_name="constprop")
    assert not relaxed.has_errors(), relaxed.render()


def test_relaxed_mode_still_catches_array_violations():
    bag = verify_pass(
        build(ALIGN_ORIG), build(ALIGN_BROKEN), pass_name="simplify"
    )
    assert bag.has_errors()


# -- PassVerifier -------------------------------------------------------------


def test_pass_verifier_blames_the_breaking_pass():
    program = registry.get("adi").build()
    verifier = PassVerifier(program)
    good = preliminary(program)
    verifier.check("preliminary", good, strict=False)
    with pytest.raises(PassLegalityError) as exc:
        # replay an old stage as if a pass had dropped the fusion result:
        # baseline is now `good`, and a program with statements removed
        # must be rejected
        verifier.check("broken", good.with_body(good.body[:1]))
    assert "pass 'broken'" in str(exc.value)
    assert exc.value.bag.has_errors()


def test_pass_verifier_rebaselines_after_success():
    program = build(ALIGN_ORIG)
    verifier = PassVerifier(program)
    p2 = propagate_scalar_constants(program)
    verifier.check("constprop", p2)
    p3 = simplify_program(p2)
    verifier.check("simplify", p3)
    assert [name for name, _ in verifier.history] == ["constprop", "simplify"]


def test_fuse_program_output_certifies_on_fig4():
    # the paper's running example: fuse and verify the real fusion pass
    program = build(ALIGN_ORIG)
    fused, report = fuse_program(program, max_levels=8)
    bag = verify_pass(program, fused, pass_name="fusion")
    assert not bag.has_errors(), bag.render()
