"""Differential tests: transformed variants are bit-identical to originals.

The fused/aligned/embedded variants of the paper's applications must
produce exactly the interpreter output of the unoptimized programs —
the dynamic counterpart of the static legality certificates.
"""

import numpy as np
import pytest

from conftest import resolve_slice

from repro.core import compile_variant
from repro.programs import registry

APPS = ("adi", "swim", "tomcatv")
LEVELS = ("fusion1", "fusion", "new")

SMALL_SIZES = (8, 11)


def _outputs(program, params, steps):
    from repro.interp import run_program

    return run_program(program, params, steps=steps)


def _compare(reference, variant_program, params, steps):
    out = _outputs(variant_program, params, steps)
    decls = {d.name: d for d in variant_program.arrays}
    for name, data in out.items():
        decl = decls[name]
        if decl.origin_slice is not None:
            expected = resolve_slice(reference, decl.origin_slice)
        else:
            expected = reference[name]
        assert np.array_equal(expected, data), (
            f"{variant_program.name}: array {name} differs"
        )


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("app", APPS)
def test_variants_bit_identical(app, level):
    bench = registry.get(app)
    original = bench.build()
    variant = compile_variant(original, level).program
    steps = min(bench.steps, 2)
    for n in SMALL_SIZES:
        params = {name: n for name in original.params}
        reference = _outputs(original, params, steps)
        _compare(reference, variant, params, steps)


@pytest.mark.parametrize("app", APPS)
def test_multiple_steps_stay_identical(app):
    # cross-step dependences: two body repetitions, fused vs original
    bench = registry.get(app)
    original = bench.build()
    variant = compile_variant(original, "fusion").program
    params = {name: 8 for name in original.params}
    reference = _outputs(original, params, steps=3)
    _compare(reference, variant, params, steps=3)
