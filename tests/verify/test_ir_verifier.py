"""IR verifier (lint) tests: bounds, sanity, def-use, registry cleanliness."""

import pytest

from repro.lang import parse, validate
from repro.programs import registry
from repro.verify import lint_program

ALL_BENCHMARKS = sorted(set(registry.APPLICATIONS) | set(registry.STUDY_PROGRAMS))


def lint(source: str, assume=None):
    return lint_program(parse(source), assume=assume)


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_registry_programs_lint_clean(name):
    bag = lint_program(validate(registry.get(name).build()))
    assert not bag.has_errors(), bag.render()
    assert not bag.warnings, bag.render()


def test_subscript_overflow_detected():
    bag = lint(
        """
        program t
        param N
        real A[N]
        for i = 1, N { A[i] = A[(i + 1)] }
        """
    )
    (err,) = bag.errors
    assert err.code == "V102"
    assert "can reach N + 1 > extent N" in err.message
    assert err.stmt == "A[i] = A[(i + 1)]"


def test_subscript_underflow_detected():
    bag = lint(
        """
        program t
        param N
        real A[N]
        for i = 1, N { A[i] = A[(i - 1)] }
        """
    )
    (err,) = bag.errors
    assert err.code == "V101"
    assert "underflow" in err.message


def test_guard_narrows_subscript_range():
    # without the guard, A[i-1] would underflow at i=1; the guard makes
    # the reference provably safe, so lint must stay quiet
    bag = lint(
        """
        program t
        param N
        real A[N]
        for i = 1, N {
          when i in [2:N] { A[i] = A[(i - 1)] }
        }
        """
    )
    assert not bag.has_errors(), bag.render()


def test_triangular_loop_bounds_resolved():
    bag = lint(
        """
        program t
        param N
        real A[N]
        for i = 1, N {
          for j = i, N { A[j] = 0.0 }
        }
        """
    )
    assert not bag.has_errors(), bag.render()


def test_never_executing_loop_warned():
    bag = lint(
        """
        program t
        param N
        real A[N]
        for i = (N + 2), N { A[1] = 0.0 }
        """
    )
    assert any(d.code == "V104" for d in bag.warnings), bag.render()


def test_empty_guard_interval_warned():
    bag = lint(
        """
        program t
        param N
        real A[N]
        for i = 1, N {
          when i in [(N + 1):N] { A[i] = 0.0 }
        }
        """
    )
    codes = {d.code for d in bag.warnings}
    assert "V105" in codes, bag.render()


def test_unassigned_scalar_read_warned():
    bag = lint(
        """
        program t
        param N
        real A[N]
        scalar s
        for i = 1, N { A[i] = s }
        """
    )
    assert any(d.code == "V201" for d in bag.warnings), bag.render()


def test_dead_scalar_write_warned():
    bag = lint(
        """
        program t
        param N
        real A[N]
        scalar s
        s = 1.0
        for i = 1, N { A[i] = 0.0 }
        """
    )
    assert any(d.code == "V202" for d in bag.warnings), bag.render()


def test_unreferenced_array_warned():
    bag = lint(
        """
        program t
        param N
        real A[N], Z[N]
        for i = 1, N { A[i] = 0.0 }
        """
    )
    warn = next(d for d in bag.warnings if d.code == "V203")
    assert "'Z'" in warn.message


def test_read_only_array_reported_as_info():
    bag = lint(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N { A[i] = B[i] }
        """
    )
    assert any(d.code == "V204" and "'B'" in d.message for d in bag)
    assert not bag.has_errors()


def test_structural_errors_short_circuit_deeper_layers():
    # undeclared array (only constructible via the AST — the parser
    # rejects it at parse time): lint reports V001 and must not crash on
    # the bounds/def-use layers (which assume declared names)
    from repro.lang import ArrayDecl, ArrayRef, Assign, Const, Loop, Param, Program

    body = (
        Loop(
            "i",
            Const(1),
            Param("N"),
            (
                Assign(
                    ArrayRef("A", (Const(1),)),
                    ArrayRef("Z", (Const(1),)),
                ),
            ),
        ),
    )
    program = Program(
        "t", ("N",), (ArrayDecl("A", (Param("N"),)),), body
    )
    bag = lint_program(program)
    assert bag.has_errors()
    assert all(d.code == "V001" for d in bag.errors)


def test_assume_controls_symbolic_comparison():
    # at N >= 8 the read A[N - 6] is safe; an assumption of N >= 1 cannot
    # prove it but conservatively stays quiet; the *underflow* is only
    # provable when the range is entirely below 1
    src = """
    program t
    param N
    real A[N]
    A[(0 - 2)] = 1.0
    """
    bag = lint(src)
    (err,) = bag.errors
    assert err.code == "V101"
    assert "always" in err.message


def test_scalar_only_program_lints():
    bag = lint(
        """
        program t
        param N
        real A[N]
        scalar s
        s = 1.0
        for i = 1, N { A[i] = s }
        """
    )
    assert not bag.has_errors()
    assert not bag.warnings
