"""Diagnostic records, bags, rendering, and the exception bridge."""

import json

import pytest

from repro.lang import ValidationError, ValidationIssue
from repro.verify import (
    DiagnosticBag,
    PassLegalityError,
    Severity,
    VerificationError,
)


def test_add_and_query():
    bag = DiagnosticBag()
    bag.error("V001", "broken", where="body[0]")
    bag.warning("V104", "suspicious")
    bag.info("V204", "observation")
    assert len(bag) == 3
    assert bag.has_errors()
    assert [d.code for d in bag.errors] == ["V001"]
    assert [d.code for d in bag.warnings] == ["V104"]
    assert bag.counts() == {"error": 1, "warning": 1, "info": 1}


def test_render_orders_and_counts():
    bag = DiagnosticBag()
    bag.error("L101", "flow violated", where="A[2]", stmt="A[i] = B[i]",
              kind="flow", element="A[2]")
    text = bag.render()
    assert "error[L101] A[2]: flow violated" in text
    assert "in: A[i] = B[i]" in text
    assert "kind: flow" in text
    assert "1 error(s), 0 warning(s), 0 info" in text


def test_render_empty_bag():
    assert "clean" in DiagnosticBag().render()


def test_render_min_severity_filters():
    bag = DiagnosticBag()
    bag.info("V204", "just so you know")
    assert "V204" not in bag.render(min_severity=Severity.WARNING)
    assert "V204" in bag.render(min_severity=Severity.INFO)


def test_json_round_trips():
    bag = DiagnosticBag()
    bag.error("L103", "lost writes", where="C[1]", stmt="C[i] = 0.0",
              count=3)
    payload = json.loads(bag.to_json(program="adi"))
    assert payload["program"] == "adi"
    assert payload["counts"]["error"] == 1
    (diag,) = payload["diagnostics"]
    assert diag["code"] == "L103"
    assert diag["severity"] == "error"
    assert diag["details"]["count"] == "3"


def test_add_issue_wraps_validation_issue():
    bag = DiagnosticBag()
    bag.add_issue(ValidationIssue("body[2]", "undeclared array 'Z'"))
    (diag,) = bag.errors
    assert diag.code == "V001"
    assert diag.where == "body[2]"


def test_raise_if_errors():
    bag = DiagnosticBag()
    bag.warning("V104", "only a warning")
    bag.raise_if_errors()  # warnings never raise

    bag.error("L101", "flow violated on A[2]")
    with pytest.raises(VerificationError, match="flow violated on A"):
        bag.raise_if_errors("pass 'fuse'")


def test_verification_error_is_a_validation_error():
    bag = DiagnosticBag()
    bag.error("L101", "boom", where="A[1]")
    err = VerificationError.from_bag("ctx", bag)
    assert isinstance(err, ValidationError)
    assert err.bag is bag
    assert err.issues and err.issues[0].message == "boom"
    assert issubclass(PassLegalityError, VerificationError)


def test_extend_merges_bags():
    a, b = DiagnosticBag(), DiagnosticBag()
    a.error("V001", "x")
    b.info("V204", "y")
    a.extend(b)
    assert [d.code for d in a] == ["V001", "V204"]
