"""Access-snapshot tests: write chains, epochs, substitution invariance,
and split-array cell canonicalization."""

from repro.lang import parse, validate
from repro.transform import split_arrays, unroll_small_loops
from repro.verify import (
    format_cell,
    is_scalar_cell,
    scalar_cell,
    snapshot_program,
)


def snap(source: str, params=None, steps=1):
    return snapshot_program(validate(parse(source)), params, steps)


SIMPLE = """
program t
param N
real A[N], B[N]
for i = 1, N {
  A[i] = f(B[i], A[i])
}
"""


def test_write_chain_per_cell():
    s = snap(SIMPLE, {"N": 4})
    assert s.write_count() == 4
    for i in range(1, 5):
        (inst,) = s.writes[("A", (i,))]
        assert inst.iters == (("i", i),)
        assert inst.stmt == "A[i] = f(B[i], A[i])"


def test_read_epochs_observe_producing_write():
    s = snap(
        """
        program t
        param N
        real A[N]
        for i = 1, N { A[i] = 1.0 }
        for i = 1, N { A[i] = f(A[i]) }
        """,
        {"N": 3},
    )
    for i in range(1, 4):
        first, second = s.writes[("A", (i,))]
        assert first.reads == ()
        # the second write reads what the first wrote: epoch 0
        assert second.reads == ((("A", (i,)), 0),)


def test_initial_value_reads_have_epoch_minus_one():
    s = snap(SIMPLE, {"N": 2})
    inst = s.writes[("A", (1,))][0]
    assert ((("B", (1,)), -1)) in inst.reads
    assert ((("A", (1,)), -1)) in inst.reads


def test_scalar_cells():
    s = snap(
        """
        program t
        param N
        real A[N]
        scalar t
        t = 2.0
        for i = 1, N { A[i] = t }
        """,
        {"N": 2},
    )
    cell = scalar_cell("t")
    assert is_scalar_cell(cell)
    assert format_cell(cell) == "t"
    assert len(s.writes[cell]) == 1
    assert s.writes[("A", (1,))][0].reads == ((cell, 0),)


def test_steps_repeat_the_body():
    one = snap(SIMPLE, {"N": 3}, steps=1)
    two = snap(SIMPLE, {"N": 3}, steps=2)
    assert two.write_count() == 2 * one.write_count()
    # the second step's write observes the first step's (epoch 0)
    chain = two.writes[("A", (2,))]
    assert (("A", (2,)), 0) in chain[1].reads
    assert (("A", (2,)), -1) in chain[0].reads


def test_signatures_fold_indices_away():
    # unrolling replaces the index variable by literals; signatures must
    # be identical so the unrolled program matches the original
    p = validate(
        parse(
            """
            program t
            param N
            real A[N, 3]
            for i = 1, N {
              for j = 1, 3 { A[i, j] = f(A[i, j], j) }
            }
            """
        )
    )
    unrolled = unroll_small_loops(p, max_trip=5)
    assert unrolled != p  # the pass fired
    a = snapshot_program(p, {"N": 4})
    b = snapshot_program(unrolled, {"N": 4})
    assert a.cells() == b.cells()
    for cell, chain in a.writes.items():
        other = b.writes[cell]
        assert [w.sig for w in chain] == [w.sig for w in other], cell


def test_split_array_cells_canonicalized():
    p = validate(
        parse(
            """
            program t
            param N
            real A[N, 2]
            for i = 1, N {
              A[i, 1] = 1.0
              A[i, 2] = f(A[i, 1])
            }
            """
        )
    )
    split = split_arrays(p, max_extent=5)
    assert any(d.origin_slice is not None for d in split.arrays), (
        "split_arrays should have split A"
    )
    a = snapshot_program(p, {"N": 3})
    b = snapshot_program(split, {"N": 3})
    # cells of the split program are expressed in the original's terms
    assert a.cells() == b.cells()
    assert ("A", (2, 1)) in b.cells()


def test_default_params_used_when_absent():
    s = snap(SIMPLE)
    assert s.params == {"N": 8}
    assert s.write_count() == 8


def test_format_cell():
    assert format_cell(("A", (2, 3))) == "A[2, 3]"
