"""Schema v1 events: construction, validation, and the golden log."""

import json
from pathlib import Path

import pytest

from repro.obs import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    RunLog,
    SchemaError,
    make_event,
    summarize_run,
    validate_event,
)

GOLDEN = Path(__file__).parent / "data" / "golden_events.jsonl"


def test_make_event_stamps_version_and_ts():
    event = make_event("run_start", run_id="r1", total=3)
    assert event["v"] == SCHEMA_VERSION
    assert event["kind"] == "run_start"
    assert isinstance(event["ts"], float)


def test_make_event_rejects_bad_payload():
    with pytest.raises(SchemaError):
        make_event("run_start", run_id="r1")  # missing total
    with pytest.raises(SchemaError):
        make_event("run_start", run_id="r1", total="three")
    with pytest.raises(SchemaError):
        make_event("run_start", run_id="r1", total=3, extra=1)
    with pytest.raises(SchemaError):
        make_event("no_such_kind")


def test_validate_rejects_bool_as_int():
    event = make_event("spec_start", index=0, program="adi", level="new")
    event["index"] = True
    with pytest.raises(SchemaError):
        validate_event(event)


def test_validate_rejects_unknown_version():
    event = make_event("run_start", run_id="r1", total=1)
    event["v"] = SCHEMA_VERSION + 1
    with pytest.raises(SchemaError, match="unknown schema version"):
        validate_event(event)


def test_optional_fields_are_typed():
    # peak_kb is optional on span events, but must be numeric when present
    base = dict(
        name="l1", path="l1", depth=0, start_s=0.0, dur_s=0.1, attrs={}
    )
    validate_event(make_event("span", **base))
    validate_event(make_event("span", peak_kb=12.5, **base))
    with pytest.raises(SchemaError):
        make_event("span", peak_kb="big", **base)


@pytest.mark.parametrize("kind", sorted(EVENT_KINDS))
def test_every_kind_round_trips_through_json(kind):
    samples = {
        "run_start": dict(run_id="r", total=2),
        "spec_start": dict(index=0, program="adi", level="new"),
        "span": dict(
            name="compile", path="compile", depth=0, start_s=0.0,
            dur_s=0.25, attrs={"level": "new"},
        ),
        "metrics": dict(counters={"trace.generated": 1}, gauges={}),
        "spec_end": dict(index=0, program="adi", level="new", seconds=1.5),
        "run_end": dict(run_id="r", completed=2, total=2, seconds=3.0),
    }
    event = make_event(kind, ts=123.0, **samples[kind])
    parsed = json.loads(json.dumps(event))
    validate_event(parsed)
    assert parsed == event


def test_golden_log_validates_line_by_line():
    """The checked-in golden log is schema-v1, line for line."""
    lines = GOLDEN.read_text().splitlines()
    assert lines, "golden file must not be empty"
    for line in lines:
        validate_event(json.loads(line))


def test_golden_log_summary(tmp_path):
    """summarize_run over the golden log pins the documented aggregates."""
    run_dir = tmp_path / "golden-run"
    run_dir.mkdir()
    (run_dir / "events.jsonl").write_text(GOLDEN.read_text())
    summary = summarize_run(run_dir)
    assert summary["total"] == 2
    assert summary["completed"] == 2
    assert summary["events"] == len(GOLDEN.read_text().splitlines())
    assert summary["programs"] == ["adi"]
    assert summary["levels"] == ["new", "noopt"]
    assert summary["slowest"]["level"] == "new"
    assert summary["seconds"] == pytest.approx(0.75)


def test_runlog_skips_corrupt_and_foreign_lines(tmp_path):
    log = RunLog.create(tmp_path, "r1")
    log.write(make_event("run_start", run_id="r1", total=1))
    with open(log.path, "a") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps({"v": 999, "kind": "run_start", "ts": 1.0}) + "\n")
    log.write(make_event("run_end", run_id="r1", completed=1, total=1, seconds=0.1))
    events = log.events()
    assert [e["kind"] for e in events] == ["run_start", "run_end"]


def test_runlog_write_refuses_invalid_events(tmp_path):
    log = RunLog.create(tmp_path, "r2")
    with pytest.raises(SchemaError):
        log.write({"v": SCHEMA_VERSION, "kind": "run_start", "ts": 1.0})
    assert not log.path.exists()
