"""Span tracing: nesting, attributes, detached timing, memory peaks."""

import time

from repro.obs import SpanCollector, current_collector, format_span_tree, span


def test_detached_span_still_times():
    # no collector: the span records nothing but measures its duration
    assert current_collector() is None
    with span("alone", tag="x") as sp:
        time.sleep(0.01)
    assert sp.duration_s >= 0.01
    assert sp.attrs == {"tag": "x"}
    assert sp.depth == 0


def test_collector_records_preorder_nesting():
    with SpanCollector() as collector:
        with span("compile", level="new"):
            with span("fusion"):
                pass
            with span("regroup"):
                pass
        with span("trace-gen"):
            pass
    names = [(e.name, e.depth, e.path) for e in collector.events]
    assert names == [
        ("compile", 0, "compile"),
        ("fusion", 1, "compile.fusion"),
        ("regroup", 1, "compile.regroup"),
        ("trace-gen", 0, "trace-gen"),
    ]
    compile_ev = collector.events[0]
    children = [e for e in collector.events if e.depth == 1]
    assert all(e.duration_s <= compile_ev.duration_s for e in children)


def test_collector_deactivates_on_exit():
    with SpanCollector() as collector:
        assert current_collector() is collector
    assert current_collector() is None


def test_attrs_attached_after_the_fact():
    with SpanCollector() as collector:
        with span("l1", engine="fast") as sp:
            sp.attrs["misses"] = 42
    event = collector.events[0]
    assert event.attrs == {"engine": "fast", "misses": 42}


def test_memory_collector_tracks_peaks_and_propagates():
    with SpanCollector(memory=True) as collector:
        with span("parent"):
            with span("child"):
                blob = bytearray(512 * 1024)  # ~512 kB inside the child
                del blob
    parent, child = collector.events
    assert child.peak_kb is not None and child.peak_kb >= 256
    # a parent's peak is at least any child's peak
    assert parent.peak_kb >= child.peak_kb


def test_span_to_event_is_schema_valid():
    from repro.obs import validate_event

    with SpanCollector() as collector:
        with span("compile", level="new", shape=(3, 4)):
            pass
    event = collector.events[0].to_event(ts=1.0)
    validate_event(event)
    # exotic attribute values become JSON-safe
    assert event["attrs"]["shape"] == [3, 4]


def test_format_span_tree_renders_indentation_and_columns():
    with SpanCollector() as collector:
        with span("compile", level="new"):
            with span("fusion"):
                pass
    text = format_span_tree(collector.events, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert any(line.lstrip().startswith("compile") for line in lines)
    assert any("  fusion" in line for line in lines)
    assert "seconds" in lines[1]
    # no memory tracked -> no peak MB column
    assert "peak MB" not in lines[1]
