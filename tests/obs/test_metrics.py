"""The process-wide metrics registry: counters, gauges, snapshot deltas."""

import threading

from repro.obs import MetricsRegistry, format_metric_delta


def test_counters_accumulate():
    reg = MetricsRegistry()
    reg.inc("cache.trace.hits")
    reg.inc("cache.trace.hits", 4)
    assert reg.snapshot()["counters"]["cache.trace.hits"] == 5


def test_gauges_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("pool.jobs", 4)
    reg.gauge("pool.jobs", 8)
    assert reg.snapshot()["gauges"]["pool.jobs"] == 8


def test_snapshot_is_a_copy():
    reg = MetricsRegistry()
    reg.inc("a")
    snap = reg.snapshot()
    reg.inc("a")
    assert snap["counters"]["a"] == 1


def test_delta_reports_changes_only():
    reg = MetricsRegistry()
    reg.inc("stable", 3)
    reg.gauge("g", 1)
    before = reg.snapshot()
    reg.inc("stable", 0)  # no net change
    reg.inc("fresh", 2)
    reg.gauge("g", 7)
    delta = MetricsRegistry.delta(before, reg.snapshot())
    assert delta == {"counters": {"fresh": 2}, "gauges": {"g": 7}}


def test_reset_clears_everything():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.gauge("b", 1)
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {}}


def test_thread_safety_under_contention():
    reg = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            reg.inc("hits")

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.snapshot()["counters"]["hits"] == 8000


def test_harness_populates_default_registry():
    """A real measurement leaves the documented metric names behind."""
    from repro.harness import RunRequest, run
    from repro.obs import REGISTRY

    before = REGISTRY.snapshot()
    run(RunRequest(program="adi", levels=("noopt",), params={"N": 24}))
    delta = MetricsRegistry.delta(before, REGISTRY.snapshot())
    assert delta["counters"]["trace.generated"] == 1
    assert delta["counters"]["trace.accesses"] > 0
    assert any(name.startswith("engine.") for name in delta["counters"])


def test_format_metric_delta_alignment():
    text = format_metric_delta(
        {"counters": {"trace.generated": 1}, "gauges": {"pool.jobs": 4}}
    )
    assert "trace.generated" in text and "+1" in text
    assert "pool.jobs" in text and "=4" in text
    assert format_metric_delta({"counters": {}, "gauges": {}}).endswith("(none)")
