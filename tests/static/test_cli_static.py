"""CLI tests for ``repro static-reuse`` and ``repro lint --static``."""

import json

import pytest

from repro.cli import main

STREAM = """
program stream
param N
real A[N], B[N], C[N]
for i = 2, N { A[i] = f(A[i - 1], B[i]) }
for i = 1, N { C[i] = g(A[i], B[i]) }
"""


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "stream.dsl"
    path.write_text(STREAM)
    return str(path)


def test_static_reuse_runs_without_tracing(capsys):
    # exit code 1 would mean trace.* metrics moved during the analysis
    assert main(["static-reuse", "adi", "-p", "N=24", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["program"] == "adi"
    assert payload["metrics"]["trace.accesses"] == 0
    assert payload["metrics"]["analysis.static.runs"] == 1
    assert payload["classes"]
    assert payload["predicted"]["params"] == {"N": 24}
    assert sum(payload["predicted"]["histogram"]) > 0


def test_static_reuse_text_output(capsys):
    assert main(["static-reuse", "adi"]) == 0
    out = capsys.readouterr().out
    assert "static reuse profile: adi" in out
    assert "trace events generated: 0" in out


def test_static_reuse_at_a_level(capsys):
    assert main(["static-reuse", "adi", "--level", "fusion", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"]["trace.accesses"] == 0


def test_lint_static_emits_s_codes(capsys, stream_file):
    main(["lint", stream_file, "--static", "--json"])
    payload = json.loads(capsys.readouterr().out)
    codes = {d["code"] for d in payload["diagnostics"]}
    assert any(c.startswith("S3") for c in codes)


def test_lint_explain_documents_static_codes(capsys):
    assert main(["lint", "--explain", "S301"]) == 0
    out = capsys.readouterr().out
    assert "S301" in out and "evadable" in out


def test_lint_baseline_accepts_current_and_rejects_regressions(
    capsys, tmp_path, stream_file
):
    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                "lint", stream_file, "--static",
                "--write-baseline", str(baseline),
            ]
        )
        == 0
    )
    capsys.readouterr()
    # the recorded baseline accepts exactly the current diagnostics
    assert (
        main(["lint", stream_file, "--static", "--baseline", str(baseline)])
        == 0
    )
    capsys.readouterr()
    # an emptied baseline turns every current diagnostic into a regression
    counts = json.loads(baseline.read_text())
    if any(c for c in counts.values()):
        baseline.write_text(json.dumps({k: {} for k in counts}))
        assert (
            main(
                ["lint", stream_file, "--static", "--baseline", str(baseline)]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "new diagnostics not in baseline" in out


def test_lint_all_apps_against_checked_in_baseline(capsys):
    # the repo gate: every bundled program, V+L+S families, no regressions
    assert (
        main(["lint", "--static", "--all-apps", "--baseline",
              "lint-baseline.json"])
        == 0
    )
