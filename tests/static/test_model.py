"""The static model mirrors the dynamic trace's reference numbering.

Every cross-validation guarantee rests on one invariant: the ref_ids the
extractor assigns by walking the IR are *the same ids* the trace
generator stamps on dynamic accesses.  These tests pin that
correspondence — identities, per-reference access counts, and loop
scopes — on real programs.
"""

import numpy as np
import pytest

from repro.interp import trace_program
from repro.programs import registry
from repro.static import build_model

from conftest import build

STREAM = """
program stream
param N
real A[N], B[N]
for i = 2, N { A[i] = f(A[i - 1], B[i]) }
for i = 1, N { B[i] = g(A[i]) }
"""


def test_ref_ids_match_trace_ids():
    p = build(STREAM)
    model = build_model(p)
    tr = trace_program(p, {"N": 32})
    assert {r.ref_id for r in model.refs} == set(np.unique(tr.ref_ids).tolist())
    # the model's text for each id matches the trace's reference table
    for r in model.refs:
        assert tr.refs[r.ref_id].text == r.text


def test_exec_counts_match_trace_counts():
    p = build(STREAM)
    model = build_model(p)
    n = 17
    tr = trace_program(p, {"N": n})
    counts = np.bincount(tr.ref_ids, minlength=len(model.refs))
    for r in model.refs:
        assert int(r.exec_count().evaluate({"N": n})) == int(counts[r.ref_id])


@pytest.mark.parametrize("name", ["sp", "adi"])
def test_registry_programs_correspond(name):
    entry = registry.get(name)
    program = entry.build()
    model = build_model(program)
    params = dict(entry.small_params)
    tr = trace_program(program, params)  # one body pass is enough
    assert {r.ref_id for r in model.refs} == set(np.unique(tr.ref_ids).tolist())
    counts = np.bincount(tr.ref_ids, minlength=len(model.refs))
    for r in model.refs:
        assert int(r.exec_count().evaluate(params)) == int(counts[r.ref_id])
    # total accesses is the sum of the per-reference counts
    assert int(model.total_accesses().evaluate(params)) == len(tr.ref_ids)


def test_scopes_carry_exact_trip_counts():
    p = build(STREAM)
    model = build_model(p)
    for r in model.refs:
        env = {"N": 23}
        trip = 1
        for ctx in r.scope:
            width = ctx.hi.evaluate(env) - ctx.lo.evaluate(env) + 1
            assert int(ctx.trip.evaluate(env)) == int(width)
            trip *= int(width)
        assert int(r.exec_count().evaluate(env)) == trip
