"""Unit tests for the shared interval + gcd lane-distance test.

``attainable`` is the conservative screen (False must be a proof),
``solve_sum`` is the exact bounded solver (a solution must satisfy the
equation; a proved None must match brute-force infeasibility), and
``lane_conflict`` is the executor's packaged decision procedure.  Each
is checked against direct enumeration on small boxes.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.static.dependence_test import (
    MAX_DISTANCE_ENUM,
    attainable,
    lane_conflict,
    solve_sum,
)


def brute_force(target, base, terms):
    """All solutions of base + sum(c*t) == target by enumeration."""
    boxes = [range(lo, hi + 1) for _, lo, hi in terms]
    out = []
    for values in itertools.product(*boxes):
        if base + sum(c * v for (c, _, _), v in zip(terms, values)) == target:
            out.append(values)
    return out


# -- attainable ---------------------------------------------------------------


def test_attainable_no_terms():
    assert attainable(5, 5, [])
    assert not attainable(5, 4, [])


def test_attainable_interval_screen():
    # 10 + t, t in [0, 3] covers [10, 13] only
    assert attainable(12, 10, [(1, 0, 3)])
    assert not attainable(14, 10, [(1, 0, 3)])
    assert not attainable(9, 10, [(1, 0, 3)])


def test_attainable_negative_coefficient_interval():
    # -2t for t in [1, 4] covers [-8, -2]
    assert attainable(-4, 0, [(-2, 1, 4)])
    assert not attainable(-1, 0, [(-2, 1, 4)])


def test_attainable_gcd_screen():
    # 4a + 6b has gcd 2: odd targets are infeasible
    terms = [(4, -5, 5), (6, -5, 5)]
    assert not attainable(3, 0, terms)
    assert attainable(2, 0, terms)


def test_attainable_is_necessary_not_sufficient():
    # 3a + 5b = 4 with a,b in [0,1]: passes interval ([0,8]) and gcd
    # (gcd=1) but has no solution — attainable may say True
    terms = [(3, 0, 1), (5, 0, 1)]
    assert attainable(4, 0, terms)
    assert brute_force(4, 0, terms) == []


@pytest.mark.parametrize("seed", range(20))
def test_attainable_never_rejects_a_real_solution(seed):
    rng = random.Random(seed)
    terms = []
    for _ in range(rng.randint(1, 4)):
        lo = rng.randint(-4, 4)
        hi = lo + rng.randint(0, 5)
        terms.append((rng.randint(-6, 6), lo, hi))
    base = rng.randint(-10, 10)
    values = [rng.randint(lo, hi) for _, lo, hi in terms]
    target = base + sum(c * v for (c, _, _), v in zip(terms, values))
    assert attainable(target, base, terms)


# -- solve_sum ----------------------------------------------------------------


def check_solution(target, base, terms, values):
    assert len(values) == len(terms)
    for (c, lo, hi), v in zip(terms, values):
        assert lo <= v <= hi
    assert base + sum(c * v for (c, _, _), v in zip(terms, values)) == target


def test_solve_sum_simple_solution():
    values, proved = solve_sum(7, 1, [(2, 0, 5), (3, -2, 2)])
    assert proved and values is not None
    check_solution(7, 1, [(2, 0, 5), (3, -2, 2)], values)


def test_solve_sum_proves_infeasible():
    # 3a + 5b = 4 with a,b in [0,1] — the attainable() blind spot
    values, proved = solve_sum(4, 0, [(3, 0, 1), (5, 0, 1)])
    assert values is None and proved


def test_solve_sum_empty_box_is_proved_infeasible():
    values, proved = solve_sum(0, 0, [(1, 3, 2)])
    assert values is None and proved


def test_solve_sum_zero_coefficients():
    values, proved = solve_sum(0, 0, [(0, 1, 4), (0, 2, 2)])
    assert proved and values is not None
    check_solution(0, 0, [(0, 1, 4), (0, 2, 2)], values)


def test_solve_sum_budget_exhaustion_is_not_a_proof():
    # many coupled terms with a tiny budget: must answer (None, False),
    # never claim a proof it did not finish
    terms = [(2, 0, 50), (3, 0, 50), (5, 0, 50), (7, 0, 50)]
    values, proved = solve_sum(1, 0, terms, budget=3)
    if values is None:
        assert not proved
    else:  # a budget this small may still find an easy solution
        check_solution(1, 0, terms, values)


@pytest.mark.parametrize("seed", range(40))
def test_solve_sum_matches_brute_force(seed):
    rng = random.Random(1000 + seed)
    terms = []
    for _ in range(rng.randint(1, 3)):
        lo = rng.randint(-3, 3)
        hi = lo + rng.randint(0, 4)
        terms.append((rng.randint(-5, 5), lo, hi))
    base = rng.randint(-8, 8)
    target = rng.randint(-15, 15)
    values, proved = solve_sum(target, base, terms)
    all_solutions = brute_force(target, base, terms)
    if values is not None:
        check_solution(target, base, terms, values)
        assert all_solutions, "solver invented a solution brute force lacks"
    else:
        assert proved, "tiny systems must never exhaust the budget"
        assert all_solutions == [], (
            f"solver claimed infeasible but {all_solutions[:3]} solve it"
        )


# -- lane_conflict ------------------------------------------------------------


def test_lane_conflict_stencil_carried():
    # A[i] = f(A[i-1]): writes A[i], reads A[i-1] -> lanes collide
    assert lane_conflict(
        0, {"i": 1}, -1, {"i": 1}, "i", 7, 1, {}, {}
    )


def test_lane_conflict_independent_lanes():
    # A[i] = f(B[i]): same subscript, but check A-write vs A-write only
    # touches one element per lane -> no cross-lane conflict
    assert not lane_conflict(
        0, {"i": 1}, 0, {"i": 1}, "i", 7, 1, {}, {}
    )


def test_lane_conflict_axis_not_in_subscript():
    # A[j] written from every i lane: conflict across lanes
    assert lane_conflict(
        0, {"j": 1}, 0, {"j": 1}, "i", 7, 1, {}, {"j": (1, 8)}
    )


def test_lane_conflict_unknown_variable_is_conservative():
    # a subscript variable bound in neither outer nor inner: assume conflict
    assert lane_conflict(
        0, {"q": 1}, 0, {"q": 1}, "i", 7, 1, {}, {}
    )


def test_lane_conflict_strided_lanes_disjoint():
    # A[2i] vs A[2i+1]: even vs odd elements never meet
    assert not lane_conflict(
        0, {"i": 2}, 1, {"i": 2}, "i", 7, 1, {}, {}
    )


def test_lane_conflict_reversal_collides():
    # A[i] vs A[N-i] (folded N=9 -> A[9-i]), i in [1,8]: lanes meet
    assert lane_conflict(
        0, {"i": 1}, 9, {"i": -1}, "i", 7, 1, {}, {}
    )


def test_lane_conflict_outer_shared_variable():
    # A[j, i] write vs A[j-1, i] read along axis j (outer i shared):
    # folded column-major with stride 16 -> base -16, coeff 16 on j
    assert lane_conflict(
        0, {"j": 16, "i": 1}, -16, {"j": 16, "i": 1}, "j", 14, 1,
        {"i": (1, 16)}, {},
    )


def test_lane_conflict_span_beyond_enum_cap_is_conservative():
    assert lane_conflict(
        0, {"i": 1}, -1, {"i": 1}, "i", MAX_DISTANCE_ENUM + 1, 1, {}, {}
    )


def brute_lane_conflict(kf, tf, kg, tg, axis, span, axis_lo, outer, inner):
    """Direct enumeration of the cross-lane conflict question."""
    axis_vals = range(axis_lo, axis_lo + span + 1)
    outer_names = sorted(outer)
    inner_names = sorted(inner)

    def elem(k, t, ax, o_env, i_env):
        total = k + t.get(axis, 0) * ax
        for n in outer_names:
            total += t.get(n, 0) * o_env[n]
        for n in inner_names:
            total += t.get(n, 0) * i_env[n]
        return total

    outer_boxes = [range(outer[n][0], outer[n][1] + 1) for n in outer_names]
    inner_boxes = [range(inner[n][0], inner[n][1] + 1) for n in inner_names]
    for o_vals in itertools.product(*outer_boxes):
        o_env = dict(zip(outer_names, o_vals))
        for a1 in axis_vals:
            for a2 in axis_vals:
                if a1 == a2:
                    continue
                for iv1 in itertools.product(*inner_boxes):
                    for iv2 in itertools.product(*inner_boxes):
                        e1 = elem(kf, tf, a1, o_env, dict(zip(inner_names, iv1)))
                        e2 = elem(kg, tg, a2, o_env, dict(zip(inner_names, iv2)))
                        if e1 == e2:
                            return True
    return False


@pytest.mark.parametrize("seed", range(30))
def test_lane_conflict_never_misses_a_real_conflict(seed):
    """Soundness: brute-force conflict implies lane_conflict() True."""
    rng = random.Random(2000 + seed)
    axis = "i"
    span = rng.randint(1, 4)
    axis_lo = rng.randint(0, 2)
    outer = {}
    inner = {}
    if rng.random() < 0.6:
        lo = rng.randint(0, 2)
        outer["o"] = (lo, lo + rng.randint(0, 3))
    if rng.random() < 0.6:
        lo = rng.randint(0, 2)
        inner["j"] = (lo, lo + rng.randint(0, 3))

    def subscript():
        t = {axis: rng.randint(-2, 2)}
        for n in list(outer) + list(inner):
            if rng.random() < 0.8:
                t[n] = rng.randint(-2, 2)
        return rng.randint(-3, 3), t

    kf, tf = subscript()
    kg, tg = subscript()
    truth = brute_lane_conflict(kf, tf, kg, tg, axis, span, axis_lo, outer, inner)
    claimed = lane_conflict(kf, tf, kg, tg, axis, span, axis_lo, outer, inner)
    if truth:
        assert claimed, (
            f"missed conflict: {kf}+{tf} vs {kg}+{tg} over span {span}"
        )
