"""The shared OpenMP schedule machinery (repro.static.schedule).

One partitioning implementation serves the static predictors
(multicore, coherence) and the dynamic interleaved replay; these tests
pin its contract: spec parsing, chunk shapes per schedule, chunk-
boundary placement for ``static,k`` and ``guided``, affinity, the
dynamic rotation, and the round-robin drain order.
"""

from __future__ import annotations

import pytest

from repro.static.schedule import (
    chunk_count,
    parse_schedule,
    preserves_affinity,
    round_robin_order,
    schedule_assignments,
    schedule_chunks,
    thread_span,
)

# -- parsing -------------------------------------------------------------------


def test_parse_plain_kinds():
    assert parse_schedule("static") == ("static", 0)
    assert parse_schedule("dynamic") == ("dynamic", 0)
    assert parse_schedule("guided") == ("guided", 0)
    assert parse_schedule(" STATIC , 3 ") == ("static", 3)


def test_parse_static_chunk():
    assert parse_schedule("static,1") == ("static", 1)
    assert parse_schedule("static,16") == ("static", 16)


@pytest.mark.parametrize(
    "bad", ["stat", "static,0", "static,-2", "static,x", "guided,2",
            "dynamic,4", ""]
)
def test_parse_rejects(bad):
    with pytest.raises(ValueError):
        parse_schedule(bad)


def test_affinity():
    assert preserves_affinity("static")
    assert preserves_affinity("static,2")
    assert preserves_affinity("guided")
    assert not preserves_affinity("dynamic")


# -- static blocks -------------------------------------------------------------


def test_static_blocks_cover_range_contiguously():
    asg = schedule_assignments(1, 10, 4, "static")
    assert asg == [(1, 3, 0), (4, 6, 1), (7, 9, 2), (10, 10, 3)]


def test_static_more_threads_than_iterations():
    asg = schedule_assignments(1, 2, 4, "static")
    assert asg == [(1, 1, 0), (2, 2, 1)]
    chunks = schedule_chunks(1, 2, 4, "static")
    assert chunks[2] == [] and chunks[3] == []


def test_empty_range():
    assert schedule_assignments(5, 4, 2, "static") == []
    assert thread_span(5, 4, 2, 0, "static") == (5, 4)


# -- static,k chunk boundaries -------------------------------------------------


def test_static_k_deals_chunks_round_robin():
    # 10 iterations, chunk 2, 3 threads: chunks at 1-2,3-4,5-6,7-8,9-10
    # dealt 0,1,2,0,1
    asg = schedule_assignments(1, 10, 3, "static,2")
    assert asg == [
        (1, 2, 0), (3, 4, 1), (5, 6, 2), (7, 8, 0), (9, 10, 1),
    ]
    chunks = schedule_chunks(1, 10, 3, "static,2")
    assert chunks[0] == [(1, 2), (7, 8)]
    assert chunks[2] == [(5, 6)]


def test_static_k_ragged_tail():
    # chunk 4 over 9 iterations: last chunk is short
    asg = schedule_assignments(1, 9, 2, "static,4")
    assert asg == [(1, 4, 0), (5, 8, 1), (9, 9, 0)]


def test_static_k_chunk_boundaries_count():
    # C chunks = ceil(n/k); extra boundaries beyond plain blocking are
    # what the multicore boundary model charges for
    assert chunk_count(1, 16, 4, "static") == 4
    assert chunk_count(1, 16, 4, "static,2") == 8
    assert chunk_count(1, 16, 4, "static,1") == 16


def test_static_k_affinity_across_invocations():
    # static,k ignores the invocation counter: same chunks every time
    a = schedule_assignments(1, 12, 3, "static,2", invocation=0)
    b = schedule_assignments(1, 12, 3, "static,2", invocation=5)
    assert a == b


def test_static_k_span_is_noncontiguous_hull():
    # thread 0's chunks 1-2 and 7-8: the span hull covers the gap
    assert thread_span(1, 10, 3, 0, "static,2") == (1, 8)


# -- guided --------------------------------------------------------------------


def test_guided_chunks_decrease_and_cover():
    asg = schedule_assignments(1, 20, 4, "guided")
    # ceil(remaining/T): 5,4,3,2,2,1,1,1,1
    sizes = [b - a + 1 for a, b, _ in asg]
    assert sizes == [5, 4, 3, 2, 2, 1, 1, 1, 1]
    assert all(s1 >= s2 for s1, s2 in zip(sizes, sizes[1:]))
    # covers [1,20] in order without gaps
    flat = [(a, b) for a, b, _ in asg]
    assert flat[0][0] == 1 and flat[-1][1] == 20
    for (a1, b1), (a2, b2) in zip(flat, flat[1:]):
        assert a2 == b1 + 1
    # dealt round-robin
    assert [t for _, _, t in asg] == [0, 1, 2, 3, 0, 1, 2, 3, 0]


def test_guided_never_stalls_at_zero():
    asg = schedule_assignments(1, 3, 8, "guided")
    assert [b - a + 1 for a, b, _ in asg] == [1, 1, 1]


def test_guided_deterministic_across_invocations():
    a = schedule_assignments(1, 20, 4, "guided", invocation=0)
    b = schedule_assignments(1, 20, 4, "guided", invocation=3)
    assert a == b


# -- dynamic rotation ----------------------------------------------------------


def test_dynamic_rotates_thread_assignment_per_invocation():
    base = schedule_assignments(1, 12, 3, "dynamic", invocation=0)
    rot = schedule_assignments(1, 12, 3, "dynamic", invocation=1)
    assert [(a, b) for a, b, _ in base] == [(a, b) for a, b, _ in rot]
    assert [t for _, _, t in rot] == [(t + 1) % 3 for _, _, t in base]
    # full cycle returns to the original assignment
    cyc = schedule_assignments(1, 12, 3, "dynamic", invocation=3)
    assert cyc == base


# -- every schedule: partition invariants --------------------------------------


@pytest.mark.parametrize(
    "schedule", ["static", "static,1", "static,3", "guided", "dynamic"]
)
@pytest.mark.parametrize("lo,hi,threads", [(1, 17, 4), (0, 0, 3), (2, 25, 7)])
def test_partition_is_exact_cover(schedule, lo, hi, threads):
    seen = []
    for a, b, t in schedule_assignments(lo, hi, threads, schedule):
        assert 0 <= t < threads
        assert lo <= a <= b <= hi
        seen.extend(range(a, b + 1))
    assert seen == list(range(lo, hi + 1))


def test_threads_must_be_positive():
    with pytest.raises(ValueError):
        schedule_assignments(1, 10, 0, "static")


# -- round-robin drain order ---------------------------------------------------


def test_round_robin_order_block1():
    # streams of length 3,1,2 drain 0,1,2, 0,2, 0
    order = round_robin_order([3, 1, 2], 1)
    assert order == [
        (0, 0, 1), (1, 0, 1), (2, 0, 1),
        (0, 1, 2), (2, 1, 2),
        (0, 2, 3),
    ]


def test_round_robin_order_blocked():
    order = round_robin_order([5, 2], 2)
    assert order == [(0, 0, 2), (1, 0, 2), (0, 2, 4), (0, 4, 5)]


def test_round_robin_order_rejects_bad_block():
    with pytest.raises(ValueError):
        round_robin_order([1, 2], 0)


def test_round_robin_order_total_preserved():
    lengths = [7, 0, 3, 11]
    order = round_robin_order(lengths, 3)
    drained = [0] * len(lengths)
    for k, p, q in order:
        assert drained[k] == p  # runs arrive in stream order
        drained[k] = q
    assert drained == lengths
