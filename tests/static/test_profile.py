"""StaticProfile invariants: evaluation, histograms, classification.

The profile is symbolic — one analysis, evaluable at any size — so the
tests here check conservation laws (accesses are never created or lost),
consistency between the evaluated views, and above all that *no trace is
generated anywhere* (``analysis.static.*`` metrics tick, ``trace.*``
stay put).
"""

from repro.locality import classify_evadable_stats
from repro.obs import snapshot
from repro.programs import registry
from repro.static import analyze_program

from conftest import build

SRC = """
program t
param N
real A[N], B[N]
for i = 2, N { A[i] = f(A[i - 1]) }
for i = 1, N { B[i] = g(A[i]) }
"""


def _trace_counter_total(counters) -> float:
    return sum(v for k, v in counters.items() if k.startswith("trace."))


def test_analysis_is_trace_free():
    before = snapshot()["counters"]
    profile = analyze_program(build(SRC))
    after = snapshot()["counters"]
    assert after.get("analysis.static.runs", 0) > before.get(
        "analysis.static.runs", 0
    )
    assert _trace_counter_total(after) == _trace_counter_total(before)
    assert profile.classes  # and it actually produced something


def test_access_conservation_at_any_size():
    profile = analyze_program(build(SRC))
    for n in (16, 64, 257):
        params = {"N": n}
        total = float(profile.total_accesses().evaluate(params))
        evaluated = profile.evaluate(params)
        accounted = sum(ec.reuses + ec.cold for ec in evaluated)
        assert accounted == total
        hist = profile.histogram(params)
        assert hist.total == int(total)


def test_histogram_cold_matches_footprint():
    # every distinct element is cold exactly once per run
    profile = analyze_program(build(SRC))
    params = {"N": 100}
    hist = profile.histogram(params)
    assert hist.cold == int(profile.footprint.evaluate(params))


def test_miss_count_monotone_in_capacity():
    profile = analyze_program(build(SRC))
    params = {"N": 128}
    misses = [profile.miss_count(params, c) for c in (4, 16, 64, 256, 4096)]
    assert misses == sorted(misses, reverse=True)
    # an infinite cache keeps only the cold misses
    assert misses[-1] >= float(profile.histogram(params).cold)


def test_symbolic_evadable_flags_the_cross_loop_read():
    profile = analyze_program(build(SRC))
    evadable = profile.symbolic_evadable()
    texts = {profile.classes[r].ref.text for r in evadable}
    assert "A[i]" in texts  # second loop re-reads A a whole sweep later
    assert "A[(i - 1)]" not in texts  # recurrence reuse is constant


def test_evadable_classes_uses_the_shared_decision_rule():
    profile = analyze_program(build(SRC))
    small, large = {"N": 128}, {"N": 512}
    expected = classify_evadable_stats(
        profile.class_stats(small), profile.class_stats(large)
    ).evadable_classes
    assert profile.evadable_classes(small, large) == expected


def test_render_and_json_roundtrip():
    entry = registry.get("adi")
    profile = analyze_program(entry.build(), steps=entry.steps)
    text = profile.render(dict(entry.small_params))
    assert "static reuse profile: adi" in text
    assert "evadable" in text
    payload = profile.to_json(dict(entry.small_params))
    assert payload["program"] == "adi"
    assert payload["classes"]
    assert payload["predicted"]["histogram"]
    assert payload["evadable_symbolic"]
