"""Static-vs-dynamic cross-validation on the bundled applications.

The symbolic profile must agree with the trace-driven engine it
replaces: identical access totals, cold counts within a pinned
tolerance, mean log₂ reuse distance within a pinned tolerance, and —
the headline guarantee — *exact* per-class evadable agreement on the
unoptimized programs at the Fig. 10 sizes (small_params and its
doubling), since that classification is what drives every downstream
transform decision.

The fast tier pins the smallest program (sp) and adi; the ``slow``
marker sweeps the full 6-program × 3-level matrix.
"""

import pytest

from repro.core import PIPELINES, PassManager
from repro.interp import trace_program
from repro.locality import ReuseHistogram, classify_evadable, reuse_distances
from repro.programs import registry
from repro.programs.fft import SMALL_N
from repro.programs.registry import build_fft
from repro.static import analyze_program

#: |dynamic - static| ceiling for mean log2 reuse distance, all programs
MLD_TOLERANCE = 0.5
#: relative cold-miss error ceiling (fft's guarded bit-reversal pass is
#: the one program where interval fallbacks overestimate sharing)
COLD_TOLERANCE = {"fft": 0.35}
COLD_TOLERANCE_DEFAULT = 0.08

LEVELS = ("noopt", "fusion", "new")
SYMBOLIC_PROGRAMS = ("adi", "sp", "swim", "tomcatv", "sweep3d")


def _variant(program, level):
    if level == "noopt":
        return program
    return PassManager().run(program, PIPELINES[level]).program


def _dynamic_histogram(program, params, steps):
    tr = trace_program(program, dict(params), steps=steps)
    return ReuseHistogram.from_distances(reuse_distances(tr.global_keys()))


def _check_histogram(name, program, params, steps, level):
    variant = _variant(program, level)
    static = analyze_program(variant, steps=steps).histogram(params)
    dynamic = _dynamic_histogram(variant, params, steps)
    assert static.total == dynamic.total, (
        f"{name}/{level}: totals {static.total} != {dynamic.total}"
    )
    cold_tol = COLD_TOLERANCE.get(name, COLD_TOLERANCE_DEFAULT)
    assert abs(static.cold - dynamic.cold) <= cold_tol * dynamic.cold, (
        f"{name}/{level}: cold {static.cold} vs {dynamic.cold}"
    )
    mld_s = static.mean_log_distance()
    mld_d = dynamic.mean_log_distance()
    assert abs(mld_s - mld_d) <= MLD_TOLERANCE, (
        f"{name}/{level}: MLD {mld_s:.2f} vs {mld_d:.2f}"
    )


def _check_evadable_agreement(name, level):
    entry = registry.get(name)
    variant = _variant(entry.build(), level)
    small = dict(entry.small_params)
    large = {k: 2 * v for k, v in small.items()}
    dynamic = classify_evadable(
        trace_program(variant, small, steps=entry.steps),
        trace_program(variant, large, steps=entry.steps),
    ).evadable_classes
    static = analyze_program(variant, steps=entry.steps).evadable_classes(
        small, large
    )
    assert static == dynamic, (
        f"{name}/{level}: onlyDynamic={sorted(dynamic - static)} "
        f"onlyStatic={sorted(static - dynamic)}"
    )


# -- fast tier ------------------------------------------------------------


def test_sp_histogram_crossvalidates_noopt():
    entry = registry.get("sp")
    _check_histogram(
        "sp", entry.build(), dict(entry.small_params), entry.steps, "noopt"
    )


def test_adi_histogram_crossvalidates_noopt():
    entry = registry.get("adi")
    _check_histogram(
        "adi", entry.build(), dict(entry.small_params), entry.steps, "noopt"
    )


def test_sp_evadable_agreement_is_exact():
    _check_evadable_agreement("sp", "noopt")


def test_fft_histogram_crossvalidates():
    _check_histogram("fft", build_fft(SMALL_N), {}, 1, "noopt")


def test_static_histogram_extrapolates_beyond_measured_size():
    # the point of a symbolic profile: one analysis, any size — check a
    # size never traced stays conserved and monotone in total accesses
    entry = registry.get("sp")
    profile = analyze_program(entry.build(), steps=entry.steps)
    big = {k: 4 * v for k, v in entry.small_params.items()}
    hist = profile.histogram(big)
    assert hist.total == int(profile.total_accesses().evaluate(big))


# -- full matrix ----------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("name", SYMBOLIC_PROGRAMS)
def test_full_histogram_matrix(name, level):
    entry = registry.get(name)
    _check_histogram(
        name, entry.build(), dict(entry.small_params), entry.steps, level
    )


@pytest.mark.slow
@pytest.mark.parametrize("level", LEVELS)
def test_fft_histogram_all_levels(level):
    _check_histogram("fft", build_fft(SMALL_N), {}, 1, level)


@pytest.mark.slow
@pytest.mark.parametrize("name", SYMBOLIC_PROGRAMS)
def test_noopt_evadable_agreement_is_exact(name):
    _check_evadable_agreement(name, "noopt")
