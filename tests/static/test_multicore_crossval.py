"""Cross-validation of the static multicore reuse prediction.

:func:`repro.static.predict_program_multicore` predicts, without running
the program, the shared-cache and per-thread private-cache reuse-distance
histograms of an OpenMP-style scheduled execution.  The oracle is
:func:`repro.interp.interleave_trace`, which actually interleaves the
per-thread traces round-robin and measures both views.

Tolerances mirror the sequential model's acceptance bar: access totals
must match exactly, and the mean log2 reuse distance (MLD) of each view
must agree within 0.5 — on *both* views, for every program, sp
included.  (sp's private view needed the thread-coverage refinement of
the cross-nest attribution: its consumer nests partition a different
axis than their producers, so on-thread reuse is the box overlap of the
two thread chunks rather than all-or-nothing.  Measured worst case at
these sizes: sp private 0.43 at T=4.)

The chunked schedules (``static,k``, ``guided``) are covered both here
(crossval smoke) and by unit tests on the chunk-boundary degradation in
``test_schedule.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.interp import interleave_trace, trace_program
from repro.locality import ReuseHistogram, reuse_distances
from repro.programs import registry
from repro.static import predict_program_multicore

SHARED_MLD_TOL = 0.5
PRIVATE_MLD_TOL = 0.5

#: programs whose both views are checked at tier-1 sizes
FULL_CHECK = ["adi", "swim", "tomcatv"]


def crossval(name: str, n: int, threads: int, schedule: str = "static"):
    entry = registry.get(name)
    program = entry.build()
    params = {"N": n}
    run = interleave_trace(
        program, params, threads, steps=entry.steps, schedule=schedule
    )
    pred = predict_program_multicore(
        program, params, threads=threads, schedule=schedule, steps=entry.steps
    )
    shared = ReuseHistogram.from_distances(reuse_distances(run.merged))
    private = ReuseHistogram()
    for seg in run.per_thread:
        private = private + ReuseHistogram.from_distances(reuse_distances(seg))
    return run, pred, shared, private


def mld_delta(a: ReuseHistogram, b: ReuseHistogram) -> float:
    return abs(a.mean_log_distance() - b.mean_log_distance())


# -- static schedule, both thread counts --------------------------------------


@pytest.mark.parametrize("threads", [2, 4])
@pytest.mark.parametrize("name", FULL_CHECK)
def test_prediction_matches_interleaved_run(name, threads):
    run, pred, shared, private = crossval(name, 16, threads)
    assert pred.total == run.total, (
        f"{name} T={threads}: predicted {pred.total} accesses, ran {run.total}"
    )
    sh = mld_delta(pred.shared_histogram(), shared)
    pr = mld_delta(pred.private_histogram(), private)
    assert sh <= SHARED_MLD_TOL, f"{name} T={threads}: shared MLD off by {sh:.2f}"
    assert pr <= PRIVATE_MLD_TOL, f"{name} T={threads}: private MLD off by {pr:.2f}"


@pytest.mark.parametrize("threads", [2, 4])
def test_sp_both_views_match(threads):
    # N=10 keeps the interleaved oracle under ~5s; measured deltas are
    # shared 0.21/0.42 and private 0.31/0.43 (T=2/T=4)
    run, pred, shared, private = crossval("sp", 10, threads)
    assert pred.total == run.total
    sh = mld_delta(pred.shared_histogram(), shared)
    pr = mld_delta(pred.private_histogram(), private)
    assert sh <= SHARED_MLD_TOL, f"sp T={threads}: shared MLD off by {sh:.2f}"
    assert pr <= PRIVATE_MLD_TOL, f"sp T={threads}: private MLD off by {pr:.2f}"


# -- chunked schedules ---------------------------------------------------------


@pytest.mark.parametrize("schedule", ["static,2", "guided"])
def test_chunked_schedule_crossval(schedule):
    run, pred, shared, private = crossval("adi", 16, 4, schedule=schedule)
    assert pred.total == run.total
    assert mld_delta(pred.shared_histogram(), shared) <= SHARED_MLD_TOL
    assert mld_delta(pred.private_histogram(), private) <= PRIVATE_MLD_TOL


def test_finer_chunks_never_predict_better_private_locality():
    # static,1 maximizes chunk boundaries; the boundary degradation must
    # be monotone: its predicted private misses >= plain static's
    entry = registry.get("swim")
    program = entry.build()
    cap = 1024
    by_schedule = {}
    for schedule in ("static", "static,4", "static,1"):
        pred = predict_program_multicore(
            program, {"N": 16}, threads=4,
            schedule=schedule, steps=entry.steps,
        )
        by_schedule[schedule] = pred.private_miss_count(cap)
    assert by_schedule["static"] <= by_schedule["static,4"] + 1e-9
    assert by_schedule["static,4"] <= by_schedule["static,1"] + 1e-9


# -- degeneracies -------------------------------------------------------------


def test_single_thread_degenerates_to_sequential_trace():
    entry = registry.get("adi")
    program = entry.build()
    run = interleave_trace(program, {"N": 12}, 1, steps=entry.steps)
    plain = trace_program(program, {"N": 12}, steps=entry.steps).global_keys()
    assert np.array_equal(run.merged, plain)
    assert len(run.per_thread) == 1
    assert np.array_equal(run.per_thread[0], plain)


def test_all_serial_program_is_unchanged_by_threads():
    # sweep3d's wavefront nests are all serial: no axis to split, so the
    # interleaved trace IS the sequential trace at any thread count
    entry = registry.get("sweep3d")
    program = entry.build()
    run = interleave_trace(program, {"N": 6}, 4, steps=entry.steps)
    plain = trace_program(program, {"N": 6}, steps=entry.steps).global_keys()
    assert run.parallel_nests == ()
    assert np.array_equal(run.merged, plain)
    pred = predict_program_multicore(program, {"N": 6}, threads=4, steps=entry.steps)
    assert pred.parallel_nests == ()
    assert pred.total == run.total


def test_dynamic_schedule_smoke():
    run, pred, shared, _ = crossval("swim", 12, 4, schedule="dynamic")
    assert pred.total == run.total
    assert mld_delta(pred.shared_histogram(), shared) <= SHARED_MLD_TOL


# -- full matrix at fig-10 sizes ----------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("threads", [2, 4])
@pytest.mark.parametrize("name", ["adi", "sp", "swim", "tomcatv"])
def test_fig10_size_crossval(name, threads):
    entry = registry.get(name)
    n = entry.default_params.get("N", 16)
    run, pred, shared, private = crossval(name, n, threads)
    assert pred.total == run.total
    assert mld_delta(pred.shared_histogram(), shared) <= SHARED_MLD_TOL
    assert mld_delta(pred.private_histogram(), private) <= PRIVATE_MLD_TOL
