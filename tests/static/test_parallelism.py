"""The static parallelism analyzer: verdicts, witnesses, caching, lints.

Covers the acceptance contract of the analyzer itself:

* every loop axis of every golden (program, level) variant gets a
  definitive verdict (never ``unknown``), and every serial verdict
  carries either a concrete witness pair or a stated reason;
* the fig-10 verdict counts and race witnesses for adi / swim / tomcatv
  are pinned at both ``noopt`` and ``fusion``;
* reductions are recognized (and reported via R503);
* ``cached_parallelism`` hits on identity and drops on invalidation;
* ``doall_preservation_check`` reports R510 when a fusion-shaped
  rewrite turns a DOALL axis serial.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "integration"))

from golden_pipelines import (  # noqa: E402
    GOLDEN_LEVELS,
    build_golden_program,
    reset_fusion_uids,
)

from repro.analysis import AnalysisManager, analysis_scope, cached_parallelism
from repro.core import compile_variant
from repro.lang import Loop, parse, validate
from repro.static import analyze_parallelism
from repro.verify import doall_preservation_check, lint_races

#: sizes small enough for the exhaustive tier everywhere it is needed
SMALL_PARAMS = {
    "adi": {"N": 8},
    "fft": {},
    "sp": {"N": 7},
    "sweep3d": {"N": 6},
    "swim": {"N": 8},
    "tomcatv": {"N": 8},
}


def build(source: str):
    return validate(parse(source))


def count_loops(stmts) -> int:
    total = 0
    for stmt in stmts:
        body = getattr(stmt, "body", ())
        else_body = getattr(stmt, "else_body", ())
        if isinstance(stmt, Loop):
            total += 1
        total += count_loops(tuple(body) + tuple(else_body))
    return total


# -- full-matrix coverage -----------------------------------------------------


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_every_axis_of_every_level_gets_a_verdict(name):
    params = SMALL_PARAMS[name]
    for level in GOLDEN_LEVELS:
        program = build_golden_program(name)
        reset_fusion_uids()
        variant = compile_variant(program, level)
        profile = analyze_parallelism(variant.program, params)
        assert len(profile.verdicts) == count_loops(variant.program.body), (
            f"{name}/{level}: some loop axis got no verdict"
        )
        for v in profile.verdicts:
            assert v.verdict in ("doall", "reduction", "serial"), (
                f"{name}/{level}: axis {v.index!r} is {v.verdict!r}"
            )
            if v.verdict == "serial":
                assert v.witness is not None or v.reason, (
                    f"{name}/{level}: serial axis {v.index!r} has no evidence"
                )


def assert_witness_well_formed(v):
    w = v.witness
    assert w is not None
    assert w.iter_a != w.iter_b
    assert w.write_a or w.write_b
    assert w.axis == v.index
    assert dict(w.env_a).get(w.axis) == w.iter_a
    assert dict(w.env_b).get(w.axis) == w.iter_b


# -- pinned fig-10 verdicts and witnesses -------------------------------------


def test_adi_noopt_verdicts_pinned():
    profile = analyze_parallelism(build_golden_program("adi"), {"N": 11})
    assert profile.counts() == {
        "doall": 6, "reduction": 0, "serial": 4, "unknown": 0,
    }
    serial = {
        (v.nest, ".".join(v.path), v.witness.array) for v in profile.races
    }
    # the four inner sweeps carry the tridiagonal recurrence on X
    assert serial == {
        (2, "i.j", "X"), (3, "i.j", "X"), (4, "j.i", "X"), (5, "j.i", "X"),
    }
    for v in profile.races:
        assert_witness_well_formed(v)
        assert abs(v.witness.iter_a - v.witness.iter_b) == 1, (
            "adi's recurrences are distance-1"
        )
    # every outer axis is parallel: one per top-level nest
    assert profile.parallel_nests() == (0, 1, 2, 3, 4, 5)


def test_swim_noopt_all_doall():
    profile = analyze_parallelism(build_golden_program("swim"), {"N": 11})
    assert profile.counts() == {
        "doall": 12, "reduction": 0, "serial": 0, "unknown": 0,
    }
    assert profile.races == ()


def test_tomcatv_noopt_verdicts_pinned():
    profile = analyze_parallelism(build_golden_program("tomcatv"), {"N": 11})
    counts = profile.counts()
    assert counts["serial"] == 2 and counts["unknown"] == 0
    serial = {
        (v.nest, ".".join(v.path), v.witness.array) for v in profile.races
    }
    assert serial == {(2, "i.j", "D"), (3, "i.j", "RX")}
    for v in profile.races:
        assert_witness_well_formed(v)


def fused_variant(name, params):
    program = build_golden_program(name)
    reset_fusion_uids()
    return compile_variant(program, "fusion").program


def test_adi_fusion_loses_parallel_outer_axes():
    before = build_golden_program("adi")
    after = fused_variant("adi", {"N": 11})
    p_before = analyze_parallelism(before, {"N": 11})
    p_after = analyze_parallelism(after, {"N": 11})
    assert len(p_before.parallel_nests()) == 6
    assert len(p_after.parallel_nests()) == 1
    # the newly-serial outer axes carry concrete witnesses
    for v in p_after.races:
        if v.depth == 0:
            assert_witness_well_formed(v)


def test_swim_fusion_preserves_parallel_outer_axes():
    before = build_golden_program("swim")
    after = fused_variant("swim", {"N": 11})
    p_before = analyze_parallelism(before, {"N": 11})
    p_after = analyze_parallelism(after, {"N": 11})
    # swim's stencils fuse without serializing: the parallel-nest count
    # grows (peeled boundary rows become their own parallel nests), so
    # the preservation check stays clean
    assert len(p_after.parallel_nests()) >= len(p_before.parallel_nests())
    bag = doall_preservation_check(before, after, "fuse-swim", {"N": 11})
    assert [d for d in bag if d.code == "R510"] == []


# -- reductions ---------------------------------------------------------------


def test_scalar_accumulation_is_a_reduction():
    program = build(
        """
        program red
        param N
        real A[N]
        scalar S
        for i = 1, N { S = S + A[i] }
        """
    )
    profile = analyze_parallelism(program, {"N": 10})
    (v,) = profile.verdicts
    assert v.verdict == "reduction"
    assert v.reduction_targets == ("S",)
    assert v.parallel


def test_scalar_overwrite_is_a_race_not_a_reduction():
    program = build(
        """
        program scl
        param N
        real A[N]
        scalar S
        for i = 1, N { S = f(A[i]) }
        """
    )
    profile = analyze_parallelism(program, {"N": 10})
    (v,) = profile.verdicts
    assert v.verdict == "serial"


def test_array_accumulation_is_a_reduction():
    program = build(
        """
        program ared
        param N
        real A[N], H[N]
        for i = 1, N { H[1] = H[1] + f(A[i]) }
        """
    )
    profile = analyze_parallelism(program, {"N": 10})
    (v,) = profile.verdicts
    assert v.verdict == "reduction"
    assert v.reduction_targets == ("H[1]",)


# -- analysis-manager caching -------------------------------------------------


def test_cached_parallelism_hits_and_invalidates():
    program = build_golden_program("adi")
    am = AnalysisManager()
    with analysis_scope(am):
        p1 = cached_parallelism(program, {"N": 8})
        p2 = cached_parallelism(program, {"N": 8})
        assert p1 is p2
        assert am.kind_stats["parallelism"]["hits"] == 1
        # a different binding is a different key
        p3 = cached_parallelism(program, {"N": 9})
        assert p3 is not p1
        am.invalidate(frozenset())
        p4 = cached_parallelism(program, {"N": 8})
        assert p4 is not p1
        assert am.kind_stats["parallelism"]["evictions"] == 2


def test_cached_parallelism_without_manager_is_passthrough():
    program = build_golden_program("adi")
    p1 = cached_parallelism(program, {"N": 8})
    p2 = cached_parallelism(program, {"N": 8})
    assert p1 is not p2
    assert p1.counts() == p2.counts()


def test_preserving_pass_keeps_parallelism_entries():
    program = build_golden_program("adi")
    am = AnalysisManager()
    with analysis_scope(am):
        cached_parallelism(program, {"N": 8})
        am.invalidate(frozenset({"parallelism"}))
        cached_parallelism(program, {"N": 8})
        assert am.kind_stats["parallelism"]["hits"] == 1


# -- R5xx lint surface --------------------------------------------------------


def test_lint_races_reports_adi_recurrences():
    bag = lint_races(build_golden_program("adi"), {"N": 11})
    r501 = [d for d in bag if d.code == "R501"]
    assert len(r501) == 4
    for d in r501:
        assert "serial" in d.message and "X[" in d.message


def test_lint_races_reports_reduction_info():
    program = build(
        """
        program red
        param N
        real A[N]
        scalar S
        for i = 1, N { S = S + A[i] }
        """
    )
    bag = lint_races(program, {"N": 10})
    r503 = [d for d in bag if d.code == "R503"]
    assert len(r503) == 1
    assert "S" in r503[0].message
    assert not bag.has_errors()


def test_lint_races_scalar_race_uses_r502():
    program = build(
        """
        program scl
        param N
        real A[N]
        scalar S
        for i = 1, N { S = f(A[i]) }
        """
    )
    bag = lint_races(program, {"N": 10})
    assert [d.code for d in bag if d.code.startswith("R5")] == ["R502"]


# -- R510: passes that destroy DOALL axes -------------------------------------


#: the DESIGN worked example: two DOALL nests whose fusion is serial
FUSABLE_BUT_SERIAL_BEFORE = """
program ex
param N
real A[N], B[N], C[N]
for i = 2, N { A[i] = f(B[i]) }
for i = 2, N { C[i] = g(A[i - 1]) }
"""

FUSABLE_BUT_SERIAL_AFTER = """
program ex
param N
real A[N], B[N], C[N]
for i = 2, N {
  A[i] = f(B[i])
  C[i] = g(A[i - 1])
}
"""


def test_doall_preservation_reports_r510():
    before = build(FUSABLE_BUT_SERIAL_BEFORE)
    after = build(FUSABLE_BUT_SERIAL_AFTER)
    assert len(analyze_parallelism(before, {"N": 9}).parallel_nests()) == 2
    assert analyze_parallelism(after, {"N": 9}).parallel_nests() == ()
    bag = doall_preservation_check(before, after, "fuse", {"N": 9})
    r510 = [d for d in bag if d.code == "R510"]
    assert len(r510) == 1
    assert "fuse" in r510[0].message
    assert "now serial" in r510[0].message


def test_doall_preservation_clean_when_axes_survive():
    before = build(FUSABLE_BUT_SERIAL_BEFORE)
    bag = doall_preservation_check(before, before, "noop", {"N": 9})
    assert [d for d in bag if d.code == "R510"] == []


def test_adi_fusion_fires_r510_with_witnesses():
    before = build_golden_program("adi")
    after = fused_variant("adi", {"N": 11})
    bag = doall_preservation_check(before, after, "fuse-adi", {"N": 11})
    r510 = [d for d in bag if d.code == "R510"]
    assert r510, "adi fusion serializes outer axes and must be reported"
    assert any("of 6 parallel outer axes" in d.message for d in r510)
