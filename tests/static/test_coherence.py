"""The static coherence & false-sharing analyzer on synthetic kernels.

Two hand-built kernels carry the acceptance contract:

* ``colsweep`` — parallel over columns of a ``real A[10,M]`` array whose
  leading dimension is *not* a multiple of the 4-element cache line, so
  thread-boundary columns share lines without sharing elements: pure
  **false sharing**.  Padding the leading dimension to 12 aligns every
  column chunk and clears it (the R520 fix-it).
* ``rowcol`` — one nest parallel over columns writes A, the next nest
  parallel over rows rewrites it, so threads exchange the very same
  elements across nests: pure **true sharing**.

Both are cross-validated *exactly* (per-thread invalidations, colds and
upgrades) against the dynamic MSI oracle replaying the interleaved
trace, across schedules and thread counts.  The benchmark programs get
the same exactness check in ``test_coherence_crossval.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.interp import interleave_trace
from repro.lang import parse, validate
from repro.lang.errors import AnalysisError
from repro.memsim.coherence import simulate_msi
from repro.memsim.geometry import ELEM_BYTES, L1_LINE_BYTES
from repro.static import analyze_coherence
from repro.verify import lint_coherence

LINE_ELEMS = L1_LINE_BYTES // ELEM_BYTES  # 4 elements per line

#: leading dimension 10 is not a multiple of 4, so ceil-block column
#: chunks of M=28 / T=4 = 7 columns end mid-line at two of the three
#: thread boundaries (keys 69|70 and 209|210 share a line)
COLSWEEP = """
program colsweep
param M
real A[10,M]
real B[10,M]
for j = 1, M {
  for i = 1, 10 {
    A[i,j] = B[i,j] + A[i,j]
  }
}
"""

COLSWEEP_PADDED = COLSWEEP.replace("[10,M]", "[12,M]")

ROWCOL = """
program rowcol
param N
real A[N,N]
for j = 1, N {
  for i = 1, N {
    A[i,j] = A[i,j] + 1.0
  }
}
for i = 1, N {
  for j = 1, N {
    A[i,j] = A[i,j] * 0.5
  }
}
"""


def build(source: str):
    return validate(parse(source))


def oracle(program, params, threads, steps, schedule="static"):
    """Replay the interleaved trace through the dynamic MSI oracle."""
    run = interleave_trace(
        program, params, threads, steps=steps, schedule=schedule
    )
    return simulate_msi(
        np.asarray(run.merged) // LINE_ELEMS,
        np.asarray(run.merged.writes, dtype=bool),
        run.merged_threads,
        threads,
    )


# -- false sharing: the unpadded column sweep ----------------------------------


def test_colsweep_false_sharing_detected():
    prof = analyze_coherence(
        build(COLSWEEP), {"M": 28}, threads=4, steps=2
    )
    assert prof.total_invalidations == 4
    assert prof.false_invalidations == 4
    assert prof.true_invalidations == 0
    assert prof.invalidations == (1, 1, 1, 1)
    # the dependence screen proves no element is cross-thread shared,
    # so every invalidation is false sharing by construction
    assert prof.false_only == ("A", "B")
    assert prof.screened_out == ()
    a = next(s for s in prof.arrays if s.array == "A")
    assert a.false_lines == 2 and a.true_lines == 0
    assert {w.kind for w in prof.witnesses} == {"false"}


def test_colsweep_witness_pinpoints_the_boundary():
    prof = analyze_coherence(
        build(COLSWEEP), {"M": 28}, threads=4, steps=2
    )
    rendered = [w.render() for w in prof.witnesses]
    # ceil-blocks of 7 columns: t0 ends at column 7, t1 starts at 8;
    # A[10,7] (key 69) and A[1,8] (key 70) share line 17
    assert (
        "false sharing on A line 17: t0 @(j=7, i=10) vs t1 @(j=8, i=1)"
        " — distinct elements +1/+2" in rendered
    )


def test_padding_the_leading_dimension_clears_it():
    prof = analyze_coherence(
        build(COLSWEEP_PADDED), {"M": 28}, threads=4, steps=2
    )
    assert prof.total_invalidations == 0
    # with lead 12 every column chunk is line-aligned, so the hull
    # screen proves both arrays line-private without replaying them
    assert prof.screened_out == ("A", "B")
    assert prof.witnesses == ()


def test_r520_fires_unpadded_and_padding_clears_it():
    # the end-to-end acceptance path: lint reports the hotspot with a
    # concrete witness and the padding fix, and the fix silences it
    bag = lint_coherence(build(COLSWEEP), {"M": 28}, threads=4, steps=2)
    codes = [d.code for d in bag]
    assert "R520" in codes
    r520 = next(d for d in bag if d.code == "R520")
    assert "false sharing on A line 17" in r520.message
    assert "pad" in r520.message.lower()
    assert [
        d.code
        for d in lint_coherence(
            build(COLSWEEP_PADDED), {"M": 28}, threads=4, steps=2
        )
    ] == []


# -- true sharing: transposed nests --------------------------------------------


def test_rowcol_true_sharing_detected():
    prof = analyze_coherence(build(ROWCOL), {"N": 16}, threads=4, steps=2)
    assert prof.parallel_nests == (0, 1)
    assert prof.true_invalidations == 96
    assert prof.false_invalidations == 0
    assert prof.invalidations == (24, 24, 24, 24)
    assert {w.kind for w in prof.witnesses} == {"true"}


def test_r521_and_r522_fire_on_rowcol():
    bag = lint_coherence(build(ROWCOL), {"N": 16}, threads=4, steps=2)
    codes = [d.code for d in bag]
    assert "R521" in codes and "R522" in codes
    assert "R520" not in codes
    r522 = next(d for d in bag if d.code == "R522")
    # static,1 shreds the column chunks: 624 invalidations vs 96
    assert "96" in r522.message and "624" in r522.message


# -- exact MSI crossval on the synthetics --------------------------------------


@pytest.mark.parametrize(
    "schedule", ["static", "static,2", "guided", "dynamic"]
)
@pytest.mark.parametrize("threads", [2, 4])
def test_colsweep_matches_oracle_exactly(threads, schedule):
    program = build(COLSWEEP)
    prof = analyze_coherence(
        program, {"M": 28}, threads=threads, schedule=schedule, steps=2
    )
    ref = oracle(program, {"M": 28}, threads, 2, schedule)
    assert prof.accesses == ref.accesses
    assert prof.invalidations == tuple(ref.invalidations.tolist())
    assert prof.cold == tuple(ref.cold.tolist())
    assert prof.upgrades == ref.total_upgrades


@pytest.mark.parametrize("schedule", ["static", "static,3", "guided"])
def test_rowcol_matches_oracle_exactly(schedule):
    program = build(ROWCOL)
    prof = analyze_coherence(
        program, {"N": 13}, threads=4, schedule=schedule, steps=2
    )
    ref = oracle(program, {"N": 13}, 4, 2, schedule)
    assert prof.invalidations == tuple(ref.invalidations.tolist())
    assert prof.cold == tuple(ref.cold.tolist())
    assert prof.upgrades == ref.total_upgrades


# -- degeneracies and guard rails ----------------------------------------------


def test_single_thread_has_no_sharing():
    prof = analyze_coherence(build(ROWCOL), {"N": 12}, threads=1, steps=2)
    assert prof.total_invalidations == 0
    assert prof.sharing_arrays() == ()


def test_finer_line_means_less_false_sharing():
    # with 8-byte lines (one element each) false sharing is impossible
    prof = analyze_coherence(
        build(COLSWEEP), {"M": 28}, threads=4, steps=2,
        line_bytes=ELEM_BYTES,
    )
    assert prof.total_invalidations == 0


def test_access_budget_is_enforced():
    with pytest.raises(AnalysisError, match="accesses"):
        analyze_coherence(
            build(COLSWEEP), {"M": 28}, threads=4, steps=2, max_accesses=10
        )


def test_witnesses_can_be_disabled():
    prof = analyze_coherence(
        build(COLSWEEP), {"M": 28}, threads=4, steps=2, witnesses=False
    )
    assert prof.total_invalidations == 4
    assert prof.witnesses == ()


def test_with_invalidations_adds_to_private_misses():
    # the tune fold: invalidation misses stack on top of the capacity
    # model and can be excluded to recover the capacity-only view
    from repro.static import predict_program_multicore

    program = build(ROWCOL)
    pred = predict_program_multicore(
        program, {"N": 16}, threads=4, steps=2
    )
    assert pred.invalidations == ()
    prof = analyze_coherence(
        program, {"N": 16}, threads=4, steps=2, witnesses=False
    )
    folded = pred.with_invalidations(prof.invalidations)
    assert folded.total_invalidations == 96
    cap = 256
    base = pred.private_miss_count(cap)
    assert folded.private_miss_count(cap) == pytest.approx(base + 96)
    assert folded.private_miss_count(
        cap, include_invalidations=False
    ) == pytest.approx(base)
    # the shared view models the physically shared cache: no fold there
    assert folded.shared_miss_count(cap) == pred.shared_miss_count(cap)
    with pytest.raises(ValueError, match="4 threads"):
        pred.with_invalidations((1.0, 2.0))


def test_profile_serializes():
    prof = analyze_coherence(build(COLSWEEP), {"M": 28}, threads=4, steps=2)
    d = prof.as_dict()
    assert d["invalidations"] == [1, 1, 1, 1]
    assert d["line_bytes"] == L1_LINE_BYTES
    assert any(a["array"] == "A" for a in d["arrays"])
    text = prof.render()
    assert "colsweep" in text and "false" in text
