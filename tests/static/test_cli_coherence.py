"""CLI surface of the coherence analyzer.

``repro coherence`` (text and ``--json``), ``repro report --coherence``,
the R52x codes flowing through ``repro lint --static``, and the
``--schedule`` argument validation shared by ``parallelism``,
``coherence`` and ``tune``.
"""

import json

import pytest

from repro.cli import main

#: leading dimension 10 misaligns 4-element lines at thread-boundary
#: columns: the canonical false-sharing kernel (see test_coherence.py).
#: Two nests re-touch the boundary lines within one step, and the
#: column count lands on 28 at the default N=16 binding, so the lint
#: path (default params, steps=1) sees the invalidations.
COLSWEEP = """
program colsweep
param N
real A[10,N + 12]
real B[10,N + 12]
for j = 1, N + 12 {
  for i = 1, 10 {
    A[i,j] = B[i,j] + A[i,j]
  }
}
for j = 1, N + 12 {
  for i = 1, 10 {
    A[i,j] = f(A[i,j])
  }
}
"""


@pytest.fixture
def colsweep_file(tmp_path):
    path = tmp_path / "colsweep.dsl"
    path.write_text(COLSWEEP)
    return str(path)


def test_coherence_text_report(capsys):
    assert main(["coherence", "adi", "-p", "N=12"]) == 0
    out = capsys.readouterr().out
    assert "adi" in out
    assert "invalidation" in out


def test_coherence_json_payload(capsys):
    assert main([
        "coherence", "adi", "-p", "N=12", "--threads", "4", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["program"] == "adi"
    assert payload["threads"] == 4
    assert payload["schedule"] == "static"
    assert len(payload["invalidations"]) == 4
    assert sum(payload["invalidations"]) > 0
    assert payload["accesses"] > 0


def test_coherence_on_a_dsl_file(capsys, colsweep_file):
    assert main([
        "coherence", colsweep_file, "-p", "N=16", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["program"] == "colsweep"
    assert sum(payload["invalidations"]) == 4


def test_coherence_respects_schedule(capsys, colsweep_file):
    assert main([
        "coherence", colsweep_file, "-p", "N=16",
        "--schedule", "static,1", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schedule"] == "static,1"
    # shredding the chunks multiplies the boundary false sharing
    assert sum(payload["invalidations"]) > 4


def test_coherence_needs_a_target():
    with pytest.raises(SystemExit, match="all-apps"):
        main(["coherence"])


@pytest.mark.parametrize("command", ["coherence", "parallelism"])
def test_bad_schedule_rejected_at_parse_time(command, capsys):
    with pytest.raises(SystemExit):
        main([command, "adi", "--schedule", "bogus"])
    err = capsys.readouterr().err
    assert "schedule" in err


def test_report_coherence_table(capsys):
    assert main([
        "report", "tomcatv", "-p", "N=12", "--coherence",
    ]) == 0
    out = capsys.readouterr().out
    assert "coherence prediction" in out
    assert "invalidations" in out
    # one row per optimization level of the report
    assert "noopt" in out


def test_lint_static_reports_false_sharing(capsys, colsweep_file):
    # the acceptance lint: an unpadded kernel earns a confirmed R520
    main(["lint", colsweep_file, "--static"])
    out = capsys.readouterr().out
    assert "R520" in out
    assert "false sharing" in out


def test_lint_static_clears_after_padding(capsys, tmp_path):
    path = tmp_path / "padded.dsl"
    path.write_text(COLSWEEP.replace("[10,", "[12,"))
    main(["lint", str(path), "--static"])
    out = capsys.readouterr().out
    assert "R520" not in out
