"""Exact cross-validation of the static coherence analyzer.

Unlike the reuse-distance crossval (MLD tolerance), the coherence
contract is **exact**: the static analyzer enumerates the very same
per-thread access streams and merges them in the very same round-robin
order as ``interleave_trace``, so its per-thread invalidation-miss,
cold-miss and upgrade counts must equal the dynamic MSI oracle's —
access for access — on all six benchmark programs, at every thread
count and schedule.

Tier-1 runs the six programs at small sizes under the default static
schedule; the full schedule matrix and the fig-10 default sizes ride
the slow marker (``coherence-crossval`` CI job).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.interp import interleave_trace
from repro.memsim.coherence import simulate_msi
from repro.memsim.geometry import ELEM_BYTES, L1_LINE_BYTES
from repro.programs import registry
from repro.static import analyze_coherence

LINE_ELEMS = L1_LINE_BYTES // ELEM_BYTES

#: (name, tier-1 params) — small enough for the interleaved oracle;
#: fft has its size baked in at build time, so no params
SMALL = [
    ("adi", {"N": 16}),
    ("swim", {"N": 16}),
    ("tomcatv", {"N": 16}),
    ("sp", {"N": 10}),
    ("sweep3d", {"N": 10}),
    ("fft", {}),
]


def build(name: str):
    if name == "fft":
        return registry.build_fft(64), 1
    entry = registry.get(name)
    return entry.build(), entry.steps


def assert_exact(name, params, threads, schedule="static"):
    program, steps = build(name)
    prof = analyze_coherence(
        program, params or None, threads=threads,
        schedule=schedule, steps=steps,
    )
    run = interleave_trace(
        program, params, threads, steps=steps, schedule=schedule
    )
    ref = simulate_msi(
        np.asarray(run.merged) // LINE_ELEMS,
        np.asarray(run.merged.writes, dtype=bool),
        run.merged_threads,
        threads,
    )
    assert prof.accesses == ref.accesses, (
        f"{name} T={threads} {schedule}: enumerated {prof.accesses} "
        f"accesses, oracle saw {ref.accesses}"
    )
    assert prof.invalidations == tuple(ref.invalidations.tolist()), (
        f"{name} T={threads} {schedule}: invalidations "
        f"{prof.invalidations} != oracle {ref.invalidations.tolist()}"
    )
    assert prof.cold == tuple(ref.cold.tolist())
    assert prof.upgrades == ref.total_upgrades
    return prof


@pytest.mark.parametrize("threads", [2, 4])
@pytest.mark.parametrize("name,params", SMALL, ids=[s[0] for s in SMALL])
def test_exact_invalidation_totals(name, params, threads):
    assert_exact(name, params, threads)


@pytest.mark.parametrize("schedule", ["static,2", "guided"])
@pytest.mark.parametrize("name,params", [SMALL[0], SMALL[1]], ids=["adi", "swim"])
def test_exact_under_chunked_schedules(name, params, schedule):
    assert_exact(name, params, 4, schedule)


def test_exact_under_dynamic_schedule():
    # dynamic rotates the assignment per nest invocation; the analyzer
    # must track the invocation counter identically to the replay
    assert_exact("swim", {"N": 12}, 4, "dynamic")


def test_adi_shares_truly_not_falsely():
    # adi's nests partition alternating axes: threads exchange whole
    # rows/columns of elements, so its sharing is dominated by true
    # sharing (this is what R521 reports on adi in the baseline)
    prof = assert_exact("adi", {"N": 16}, 4)
    assert prof.total_invalidations > 0
    assert prof.true_invalidations > prof.false_invalidations


def test_sweep3d_serial_program_never_invalidates():
    prof = assert_exact("sweep3d", {"N": 10}, 4)
    assert prof.parallel_nests == ()
    assert prof.total_invalidations == 0


# -- full matrix at fig-10 sizes ----------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("schedule", ["static", "static,2", "guided", "dynamic"])
@pytest.mark.parametrize("threads", [2, 4])
@pytest.mark.parametrize("name,params", SMALL, ids=[s[0] for s in SMALL])
def test_small_size_full_matrix(name, params, threads, schedule):
    assert_exact(name, params, threads, schedule)


@pytest.mark.slow
@pytest.mark.parametrize("threads", [2, 4])
@pytest.mark.parametrize("name", ["adi", "swim", "tomcatv", "sp"])
def test_fig10_size_exact(name, threads):
    entry = registry.get(name)
    assert_exact(name, dict(entry.default_params), threads)
