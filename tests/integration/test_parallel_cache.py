"""Integration coverage for the parallel harness and the on-disk cache.

Pins the determinism contract of :class:`repro.harness.ParallelRunner`
(parallel == serial, bit for bit, in input order) and the correctness
contract of :class:`repro.harness.TraceCache` (warm results identical,
keys invalidate when the program or the data layout changes).
"""

import dataclasses

import numpy as np

from repro.core import compile_variant
from repro.harness import (
    ExperimentSpec,
    ParallelRunner,
    RunRequest,
    TraceCache,
    layout_fingerprint,
    machine_for,
    run,
)
from repro.lang import validate
from repro.programs import registry
from repro.stream import AddressStream

SMALL = {"N": 40}


def _specs(cache_dir=None):
    return [
        ExperimentSpec(
            app="adi",
            level=level,
            params=SMALL,
            steps=1,
            cache_dir=str(cache_dir) if cache_dir else None,
        )
        for level in ("noopt", "fusion", "new")
    ]


class TestParallelRunner:
    def test_parallel_matches_serial_bit_identical(self, tmp_path):
        serial = ParallelRunner(jobs=1).run(_specs())
        parallel = ParallelRunner(jobs=3).run(_specs())
        assert [r.level for r in parallel] == ["noopt", "fusion", "new"]
        for s, p in zip(serial, parallel):
            assert s.stats == p.stats  # MemStats is a frozen dataclass: == is exact
            assert s.trace_length == p.trace_length
            assert s.program == p.program and s.params == p.params

    def test_parallel_workers_share_disk_cache(self, tmp_path):
        cold = ParallelRunner(jobs=3).run(_specs(tmp_path))
        info = TraceCache(tmp_path).info()
        assert info["traces"] == 3 and info["results"] == 3
        warm = ParallelRunner(jobs=3).run(_specs(tmp_path))
        assert [r.stats for r in warm] == [r.stats for r in cold]

    def test_run_order_and_engines(self, tmp_path):
        fast = run(
            RunRequest(program="adi", levels=("noopt", "new"), params=SMALL, steps=1)
        ).records()
        ref = run(
            RunRequest(
                program="adi", levels=("noopt", "new"), params=SMALL, steps=1,
                engine="reference",
            )
        ).records()
        assert [r.level for r in fast] == ["noopt", "new"]
        assert [r.stats for r in fast] == [r.stats for r in ref]


class TestTraceCache:
    def _measure(self, cache, level="noopt", engine=None):
        entry = registry.get("adi")
        program = validate(entry.build())
        return run(
            RunRequest(
                program=program,
                levels=(level,),
                params=SMALL,
                machine=machine_for(entry.machine_spec),
                steps=1,
                cache=cache,
                engine=engine,
            )
        ).results[0]

    def test_cache_hit_returns_identical_results(self, tmp_path):
        cache = TraceCache(tmp_path)
        cold = self._measure(cache)
        assert "trace-gen" in cold.timings  # actually traced
        warm = self._measure(cache)
        assert warm.stats == cold.stats
        assert warm.trace_length == cold.trace_length
        assert "trace-gen" not in warm.timings  # served from disk

    def test_trace_reused_across_machines_result_not(self, tmp_path):
        cache = TraceCache(tmp_path)
        self._measure(cache)
        assert cache.info() == {**cache.info(), "traces": 1, "results": 1}
        # same trace, different engine: new result entry, same trace entry
        self._measure(cache, engine="reference")
        info = cache.info()
        assert info["traces"] == 1 and info["results"] == 2

    def test_layout_hash_invalidates_key(self, tmp_path):
        entry = registry.get("adi")
        program = validate(entry.build())
        variant = compile_variant(program, "noopt")
        layout = variant.layout(SMALL)
        cache = TraceCache(tmp_path)
        base_key = cache.trace_key(
            str(variant.program), SMALL, 1, layout_fingerprint(layout)
        )
        # moving one array (regrouping would do this) must change the key
        name, placement = next(iter(sorted(layout.placements.items())))
        moved = dict(layout.placements)
        moved[name] = dataclasses.replace(placement, offset=placement.offset + 1)
        moved_layout = dataclasses.replace(layout, placements=moved)
        assert layout_fingerprint(moved_layout) != layout_fingerprint(layout)
        moved_key = cache.trace_key(
            str(variant.program), SMALL, 1, layout_fingerprint(moved_layout)
        )
        assert moved_key != base_key
        assert cache.load_trace(moved_key) is None

    def test_program_change_invalidates_key(self, tmp_path):
        entry = registry.get("adi")
        program = validate(entry.build())
        cache = TraceCache(tmp_path)
        texts = [
            str(compile_variant(program, level).program)
            for level in ("noopt", "fusion")
        ]
        keys = {cache.trace_key(t, SMALL, 1, "same-layout") for t in texts}
        assert len(keys) == 2

    def test_clear_and_corrupt_entry(self, tmp_path):
        cache = TraceCache(tmp_path)
        cold = self._measure(cache)
        # corrupt the trace entry: must be treated as a miss, then rewritten
        for path in tmp_path.iterdir():
            if path.name.startswith("trace-"):
                path.write_bytes(b"not an npz")
        for path in tmp_path.iterdir():
            if path.name.startswith("result-"):
                path.unlink()
        again = self._measure(cache)
        assert again.stats == cold.stats
        removed = cache.clear()
        assert removed == cache.info()["traces"] + 2  # all entries gone
        assert cache.info() == {"traces": 0, "results": 0, "tune": 0, "bytes": 0}

    def test_roundtrip_stream(self, tmp_path):
        cache = TraceCache(tmp_path)
        addresses = np.arange(100, dtype=np.int64) * 8
        writes = (np.arange(100) % 3 == 0)
        stream = AddressStream(addresses, writes)
        cache.store_trace("k" * 32, stream)
        loaded = cache.load_trace("k" * 32)
        assert np.array_equal(loaded.addresses, addresses)
        assert np.array_equal(loaded.writes, writes)
        assert loaded.fingerprint() == stream.fingerprint()
