"""Integration tests for ``repro trace`` and ``repro bench-membw``."""

import json

import pytest

from repro.cli import main

KERNEL = """
program kern
param N
real A[N], B[N]
for i = 2, N { A[i] = f(A[i - 1], B[i]) }
for i = 1, N - 1 { B[i] = g(A[i + 1]) }
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kern.loop"
    path.write_text(KERNEL)
    return str(path)


class TestTraceExport:
    def test_binary_then_info_then_import(self, kernel_file, tmp_path, capsys):
        out = tmp_path / "kern.ast"
        assert (
            main(
                ["trace", "export", kernel_file, "-o", str(out), "-p", "N=24"]
            )
            == 0
        )
        exported = capsys.readouterr().out
        assert "binary" in exported and "fingerprint" in exported
        assert out.exists()

        assert main(["trace", "info", str(out)]) == 0
        info = capsys.readouterr().out
        assert "kern/new" in info
        assert '"unit": "bytes"' in info
        assert "MISSING" not in info  # exported streams carry geometry

        assert main(["trace", "import", str(out)]) == 0
        captured = capsys.readouterr()
        assert "L1 misses" in captured.out
        assert "effective bandwidth" in captured.out
        assert "S501" not in captured.err

    def test_csv_export_roundtrips_fingerprint(
        self, kernel_file, tmp_path, capsys
    ):
        binary = tmp_path / "kern.ast"
        csv = tmp_path / "kern.csv"
        main(["trace", "export", kernel_file, "-o", str(binary), "-p", "N=24"])
        fp_binary = capsys.readouterr().out.split("fingerprint ")[1].strip()
        main(["trace", "export", kernel_file, "-o", str(csv), "-p", "N=24"])
        out = capsys.readouterr().out
        assert "csv" in out  # .csv suffix auto-selects the CSV format
        assert fp_binary in out  # same trace, same content hash

    def test_export_source_file_requires_params(self, kernel_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "export", kernel_file, "-o", str(tmp_path / "x.ast")])

    def test_export_registry_app(self, tmp_path, capsys):
        out = tmp_path / "adi.ast"
        assert (
            main(
                [
                    "trace", "export", "adi", "-o", str(out),
                    "-p", "N=32", "--steps", "1", "--level", "noopt",
                ]
            )
            == 0
        )
        assert "accesses" in capsys.readouterr().out
        assert out.exists()


class TestTraceImport:
    def test_foreign_csv_warns_s501_and_simulates(self, tmp_path, capsys):
        foreign = tmp_path / "foreign.csv"
        # a bare address list from some other tracer: no metadata at all
        foreign.write_text(
            "\n".join(str(i * 8) for i in range(4096)) + "\n"
        )
        assert main(["trace", "import", str(foreign)]) == 0
        captured = capsys.readouterr()
        assert "S501" in captured.err
        assert "L1 misses" in captured.out

    def test_reuse_histogram_flag(self, tmp_path, capsys):
        foreign = tmp_path / "foreign.csv"
        foreign.write_text("0\n8\n16\n0\n8\n16\n")
        assert main(["trace", "import", str(foreign), "--reuse"]) == 0
        out = capsys.readouterr().out
        assert "3 reuses" in out
        assert "3 cold" in out

    def test_import_with_named_machine(self, tmp_path, capsys):
        foreign = tmp_path / "foreign.csv"
        foreign.write_text("0\n128\n256\n")
        assert (
            main(["trace", "import", str(foreign), "--machine", "octane"]) == 0
        )
        assert "octane" in capsys.readouterr().out

    def test_unreadable_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "import", str(tmp_path / "missing.ast")])

    def test_info_flags_missing_geometry(self, tmp_path, capsys):
        foreign = tmp_path / "foreign.csv"
        foreign.write_text("0\n8\n")
        assert main(["trace", "info", str(foreign)]) == 0
        assert "MISSING (S501)" in capsys.readouterr().out


class TestBenchMembw:
    def test_fft_quick_run_merges_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_membw.json"
        # pre-seed with an entry for another program: the merge must keep it
        out.write_text(
            json.dumps(
                {"benchmark": "x", "results": {"adi/new": {"sentinel": 1}}}
            )
        )
        assert (
            main(
                [
                    "bench-membw", "--apps", "fft", "--levels", "noopt",
                    "--json-out", str(out),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "fft" in stdout
        data = json.loads(out.read_text())
        assert data["results"]["adi/new"] == {"sentinel": 1}
        record = data["results"]["fft/noopt"]
        assert record["program"] == "fft"
        assert record["accesses"] > 0
        assert record["data_transferred_bytes"] > 0
        assert record["dram_energy_nj"] > 0

    def test_check_requires_baseline(self):
        with pytest.raises(SystemExit):
            main(
                ["bench-membw", "--apps", "fft", "--levels", "noopt", "--check"]
            )
