"""Smoke tests: the example scripts must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_regrouping_fig7_example():
    out = run_example("regrouping_fig7.py")
    assert "A[1,1] B[1,1]" in out  # the element interleave
    assert "C[1,1]" in out


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "semantics check" in out
    assert "optimized" in out


@pytest.mark.slow
def test_custom_kernel_example():
    out = run_example("custom_kernel.py")
    assert "semantics preserved" in out
