"""Shared fixture logic for the pinned pipeline-equivalence suite.

``variant_fingerprint`` renders everything an optimization level
produces — the transformed program (printer output), the concrete layout
placements at a small size, the fusion report, the regrouping plan, and
the recorded stage checkpoints — into one deterministic text blob.  The
golden files under ``golden/pipelines/`` pin these blobs for every
program x level variant; the pass-manager refactor (and any future one)
must reproduce them bit for bit.

Run ``python tests/integration/golden_pipelines.py`` to (re)generate the
golden files from the current implementation.  Do that only when an
intentional behavior change is being made, and say so in the commit.
"""

from __future__ import annotations

import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "golden" / "pipelines"

#: small concrete sizes for layout materialization (fft bakes its size in)
GOLDEN_PARAMS = {
    "adi": {"N": 11},
    "sp": {"N": 9},
    "sweep3d": {"N": 8},
    "swim": {"N": 11},
    "tomcatv": {"N": 11},
    "fft": {},
}

GOLDEN_LEVELS = (
    "noopt",
    "sgi",
    "mckinley",
    "fusion1",
    "fusion",
    "regroup",
    "new",
)


def build_golden_program(name):
    from repro.lang import validate
    from repro.programs import build_fft, registry

    if name == "fft":
        return validate(build_fft(16))
    return validate(registry.get(name).build())


def reset_fusion_uids() -> None:
    """Pin the ``fusedN`` label counter so goldens are order-independent.

    ``_Item`` numbers fused units with a process-global counter; resetting
    it before each compile makes labels a function of the (program, level)
    pair alone.
    """
    from repro.core.fusion import greedy

    greedy._Item._uid = 0


def variant_fingerprint(variant, params) -> str:
    from repro.lang import to_source

    lines = [f"level: {variant.level}"]
    lines.append(f"stages: {', '.join(variant.stages)}")
    if variant.fusion_report is not None:
        lines.append("fusion report:")
        lines.append("  " + variant.fusion_report.summary().replace("\n", "\n  "))
    if variant.regroup is not None:
        lines.append("regroup plan:")
        lines.append("  " + variant.regroup.describe().replace("\n", "\n  "))
    layout = variant.layout(params)
    lines.append(f"layout at {dict(sorted(params.items()))}:")
    for name, placement in sorted(layout.placements.items()):
        lines.append(
            f"  {name}: offset {placement.offset}, "
            f"strides {tuple(placement.strides)}"
        )
    lines.append("program:")
    lines.append(to_source(variant.program).rstrip("\n"))
    return "\n".join(lines) + "\n"


def compile_fingerprint(name: str, level: str) -> str:
    from repro.core import compile_variant

    program = build_golden_program(name)
    reset_fusion_uids()
    variant = compile_variant(program, level)
    return variant_fingerprint(variant, GOLDEN_PARAMS[name])


def golden_path(name: str, level: str) -> Path:
    return GOLDEN_DIR / f"{name}-{level.replace('+', '_')}.txt"


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    count = 0
    for name in sorted(GOLDEN_PARAMS):
        for level in GOLDEN_LEVELS:
            text = compile_fingerprint(name, level)
            golden_path(name, level).write_text(text)
            count += 1
            print(f"wrote {golden_path(name, level)}")
    print(f"{count} golden files")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    raise SystemExit(main())
