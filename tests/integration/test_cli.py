"""Command-line front end tests."""

import pytest

from repro.cli import main

KERNEL = """
program kern
param N
real A[N], B[N]
for i = 2, N { A[i] = f(A[i - 1], B[i]) }
for i = 1, N - 1 { B[i] = g(A[i + 1]) }
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kern.loop"
    path.write_text(KERNEL)
    return str(path)


def test_levels(capsys):
    assert main(["levels"]) == 0
    out = capsys.readouterr().out
    for level in ("noopt", "sgi", "mckinley", "fusion", "new"):
        assert level in out


def test_apps(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for app in ("swim", "tomcatv", "adi", "sp"):
        assert app in out


def test_fuse_outputs_valid_source(kernel_file, capsys):
    assert main(["fuse", kernel_file]) == 0
    out = capsys.readouterr().out
    from repro.lang import parse, validate

    fused = validate(parse(out))
    assert fused.loop_count() == 1  # the two loops fused


def test_fuse_levels_differ(kernel_file, capsys):
    main(["fuse", kernel_file, "--level", "noopt"])
    noopt = capsys.readouterr().out
    main(["fuse", kernel_file, "--level", "fusion"])
    fused = capsys.readouterr().out
    assert noopt != fused


def test_regroup_with_params(kernel_file, capsys):
    assert main(["regroup", kernel_file, "-p", "N=16"]) == 0
    out = capsys.readouterr().out
    assert "interleave" in out
    assert "offset" in out


def test_report_on_file(kernel_file, capsys):
    assert main(["report", kernel_file, "-p", "N=513", "--levels", "noopt,new"]) == 0
    out = capsys.readouterr().out
    assert "L1 misses" in out
    assert "new" in out


def test_report_requires_params_for_files(kernel_file):
    with pytest.raises(SystemExit):
        main(["report", kernel_file])


def test_unknown_level_rejected(kernel_file):
    with pytest.raises(SystemExit):
        main(["report", kernel_file, "--levels", "warp9", "-p", "N=64"])


def test_missing_file_is_an_error(capsys):
    assert main(["fuse", "/no/such/file.loop"]) == 2


def test_bad_param_syntax(kernel_file):
    with pytest.raises(SystemExit):
        main(["regroup", kernel_file, "-p", "N"])


def test_bench_engine_smoke(capsys):
    """The fast engine must match the reference on a small program."""
    assert (
        main(
            [
                "bench-engine",
                "adi",
                "-p",
                "N=40",
                "--levels",
                "noopt,new",
                "--repeats",
                "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "metrics bit-identical across engines: True" in out
    assert "speedup" in out
    for engine in ("fast", "reference"):
        assert engine in out


def test_report_with_engine_and_timings(kernel_file, capsys):
    assert (
        main(
            [
                "report",
                kernel_file,
                "-p",
                "N=128",
                "--levels",
                "noopt,new",
                "--engine",
                "reference",
                "--timings",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "trace-gen" in out and "tlb" in out


def test_cache_subcommand(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(["cache", "--dir", str(cache_dir)]) == 0
    assert "0 traces" in capsys.readouterr().out
    # populate via a cached report, then inspect and clear
    assert (
        main(
            [
                "report",
                "adi",
                "--levels",
                "noopt",
                "--cache",
                "--cache-dir",
                str(cache_dir),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["cache", "--dir", str(cache_dir)]) == 0
    assert "1 traces" in capsys.readouterr().out
    assert main(["cache", "--dir", str(cache_dir), "--clear"]) == 0
    out = capsys.readouterr().out
    assert "removed 2 entries" in out and "0 traces" in out


def test_profile_prints_span_tree(capsys):
    assert main(["profile", "adi", "--level", "new", "--params", "N=40"]) == 0
    out = capsys.readouterr().out
    # nested pass spans under compile, plus every simulation stage
    for name in ("compile", "fusion", "regroup", "trace-gen", "l1", "l2", "tlb"):
        assert name in out
    assert "seconds" in out and "peak MB" in out
    assert "metric deltas:" in out
    assert "trace.generated" in out


def test_profile_json_is_schema_valid(capsys):
    import json

    from repro.obs import SCHEMA_VERSION, validate_event

    assert main(["profile", "adi", "--level", "noopt", "-p", "N=40", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["v"] == SCHEMA_VERSION
    assert data["level"] == "noopt" and data["params"] == {"N": 40}
    assert data["spans"], "profile --json must carry span events"
    for event in data["spans"]:
        validate_event(event)


def test_profile_on_file_requires_params(kernel_file):
    with pytest.raises(SystemExit):
        main(["profile", kernel_file])


def test_profile_no_memory_drops_column(kernel_file, capsys):
    rc = main(["profile", kernel_file, "-p", "N=64", "--level", "fusion", "--no-memory"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "peak MB" not in out


def test_runs_empty_and_populated(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
    assert main(["runs"]) == 0
    assert "no run logs" in capsys.readouterr().out

    from repro.harness import RunRequest, run
    from repro.obs import TraceConfig

    run(
        RunRequest(
            program="adi", levels=("noopt",), params={"N": 40}, steps=1,
            trace=TraceConfig(events=True),
        )
    )
    assert main(["runs"]) == 0
    out = capsys.readouterr().out
    assert "adi/noopt" in out and "1/1" in out

    import json

    assert main(["runs", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["runs"]) == 1
    assert data["runs"][0]["programs"] == ["adi"]


def test_report_verify_flag(kernel_file, capsys):
    assert (
        main(
            ["report", kernel_file, "-p", "N=64", "--levels", "noopt,new", "--verify"]
        )
        == 0
    )
    assert "level" in capsys.readouterr().out


def test_pipeline_list_enumerates_every_level(capsys):
    from repro.core import OPT_LEVELS

    assert main(["pipeline", "--list"]) == 0
    out = capsys.readouterr().out
    for level in OPT_LEVELS:
        assert level in out
    assert "inline -> " in out  # pass sequences are shown


def test_pipeline_describe(capsys):
    assert main(["pipeline", "--describe", "new"]) == 0
    out = capsys.readouterr().out
    assert "fusion(max_levels=8)" in out
    assert "preserves:" in out
    assert "checkpoint: preliminary" in out


def test_pipeline_describe_unknown_level(capsys):
    assert main(["pipeline", "--describe", "fusionXYZ"]) == 1
    assert "known levels" in capsys.readouterr().err


def test_pipeline_lint_clean(capsys):
    assert main(["pipeline", "--lint"]) == 0
    assert "clean" in capsys.readouterr().out


def test_report_with_passes_override(kernel_file, capsys):
    assert (
        main(["report", kernel_file, "-p", "N=64", "--passes", "inline,simplify"])
        == 0
    )
    out = capsys.readouterr().out
    assert "passes:inline,simplify" in out


def test_report_with_bogus_pass_name(kernel_file, capsys):
    assert main(["report", kernel_file, "-p", "N=64", "--passes", "warpdrive"]) == 1
    assert "registered passes" in capsys.readouterr().err


def test_profile_shows_analysis_cache_summary(capsys):
    assert main(["profile", "adi", "--level", "new", "-p", "N=40",
                 "--no-memory"]) == 0
    out = capsys.readouterr().out
    assert "analysis cache:" in out
    assert "hit rate" in out
    assert "loop_accesses" in out


def test_verify_pass_with_passes_override(kernel_file, capsys):
    assert main(["verify-pass", kernel_file, "--passes", "inline,distribute"]) == 0
    out = capsys.readouterr().out
    assert "passes:inline,distribute" in out and "certified" in out
