"""Harness (experiment driver) tests."""

import pytest

from repro.harness import (
    NORMALIZED_HEADERS,
    RunRequest,
    format_table,
    geometric_mean,
    machine_for,
    normalized_rows,
    ratio,
    run,
    trace_for,
)
from repro.lang import parse, validate
from repro.programs.registry import MachineSpec


def test_machine_for_spec():
    m = machine_for(MachineSpec(l1_bytes=4096, l2_bytes=32768, tlb_entries=8, page_bytes=1024))
    assert m.l1.size_bytes == 4096
    assert m.l2.size_bytes == 32768
    assert m.tlb.entries == 8


def test_machine_for_name():
    assert machine_for("octane").l2.size_bytes == 1024 * 1024


def test_run_program():
    program = validate(
        parse(
            """
            program t
            param N
            real A[N], B[N]
            for i = 1, N { B[i] = f(A[i]) }
            """
        )
    )
    machine = machine_for(MachineSpec())
    result = run(
        RunRequest(
            program=program, levels=("noopt",), params={"N": 100},
            machine=machine, steps=2,
        )
    ).results[0]
    assert result.stats.accesses == 2 * 2 * 100
    assert result.level == "noopt"
    assert result.trace_length == result.stats.accesses
    row = result.row()
    assert row["program"] == "t" and row["l2"] >= 0


def test_run_application_small():
    results = run(
        RunRequest(program="adi", levels=("noopt", "new"), params={"N": 33}, steps=1)
    ).results
    assert [r.level for r in results] == ["noopt", "new"]
    rows = normalized_rows(results)
    assert rows[0][1] == 1.0  # base normalizes to itself
    table = format_table(NORMALIZED_HEADERS, rows, title="t")
    assert "time/base" in table


def test_trace_for():
    trace = trace_for("adi", params={"N": 17}, steps=1)
    assert len(trace) > 0
    trace_i = trace_for("adi", params={"N": 17}, with_instr=True)
    assert trace_i.instr_ids is not None


def test_ratio_and_geomean():
    assert ratio(4, 2) == 2
    assert ratio(0, 0) == 0.0
    assert ratio(1, 0) == float("inf")
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0


def test_compound_level_fusion1_regroup():
    results = run(
        RunRequest(program="adi", levels=("fusion1+regroup",), params={"N": 33})
    ).results
    assert results[0].variant.regroup is not None
    assert results[0].variant.fusion_report is not None


def test_scaling_sweep_and_growth():
    from repro.harness import growth_factor, scaling_sweep

    points = scaling_sweep("adi", ["noopt"], [17, 33], steps=1)
    assert len(points) == 2
    assert points[0].n == 17 and points[1].n == 33
    assert all(0 <= p.l2_rate <= 1 for p in points)
    g = growth_factor(points, "noopt")
    assert g > 0
