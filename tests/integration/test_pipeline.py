"""End-to-end pipeline integration: every app x every level, small sizes.

This is the central guarantee of the whole reproduction: the paper's
optimizations are *transparent* — outputs are bit-identical to the
original program at every optimization level.
"""

import numpy as np
import pytest

from repro.core import OPT_LEVELS, compile_variant
from repro.interp import run_program
from repro.lang import validate
from repro.programs import APPLICATIONS

from conftest import resolve_slice

SIZES = {"swim": 11, "tomcatv": 11, "adi": 11, "sp": 9}
STEPS = 2


@pytest.fixture(scope="module")
def originals():
    """Lazy per-app originals: deselected apps (sp in tier 1) never run."""
    cache = {}

    def get(name):
        if name not in cache:
            p = validate(APPLICATIONS[name].build())
            cache[name] = (p, run_program(p, {"N": SIZES[name]}, steps=STEPS))
        return cache[name]

    return get


# mini-SP's 3-D traces make it by far the slowest app here; the full
# sp x level sweep runs in tier 2 (-m slow), with a smoke version below
APP_PARAMS = [
    pytest.param(app, marks=pytest.mark.slow) if app == "sp" else app
    for app in sorted(APPLICATIONS)
]


@pytest.mark.parametrize("level", OPT_LEVELS)
@pytest.mark.parametrize("app", APP_PARAMS)
def test_semantics_preserved(app, level, originals):
    program, ref = originals(app)
    variant = compile_variant(program, level)
    validate(variant.program)
    out = run_program(variant.program, {"N": SIZES[app]}, steps=STEPS)
    for name, data in ref.items():
        if name in out:
            assert np.array_equal(data, out[name]), f"{app}/{level}: {name}"
        else:
            for decl in variant.program.arrays:
                if decl.origin == name and decl.origin_slice is not None:
                    expected = resolve_slice(ref, decl.origin_slice)
                    assert np.array_equal(expected, out[decl.name]), (
                        f"{app}/{level}: slice {decl.name}"
                    )


def test_semantics_preserved_sp_smoke():
    """Tier-1 stand-in for the slow sp sweep: one size, the combined
    strategy (which exercises the full fusion + regrouping pipeline)."""
    program = validate(APPLICATIONS["sp"].build())
    ref = run_program(program, {"N": 8}, steps=1)
    variant = compile_variant(program, "new")
    validate(variant.program)
    out = run_program(variant.program, {"N": 8}, steps=1)
    for name, data in ref.items():
        if name in out:
            assert np.array_equal(data, out[name]), f"sp/new: {name}"


@pytest.mark.parametrize("app", sorted(APPLICATIONS))
def test_layouts_bijective(app):
    program = validate(APPLICATIONS[app].build())
    for level in ("noopt", "sgi", "new"):
        variant = compile_variant(program, level)
        variant.layout({"N": SIZES[app]}).check_bijective()


def test_new_reduces_l2_misses_on_adi():
    """The headline claim, at test scale: the combined strategy cuts
    memory traffic on ADI."""
    from repro.harness import RunRequest, machine_for, run
    from repro.programs import registry

    entry = registry.get("adi")
    program = validate(entry.build())
    machine = machine_for(entry.machine_spec)
    base, new = run(
        RunRequest(
            program=program, levels=("noopt", "new"), params={"N": 65},
            machine=machine, steps=1,
        )
    ).results
    assert new.stats.l2_misses < base.stats.l2_misses
    assert new.stats.seconds < base.stats.seconds


def test_unknown_level_rejected():
    from repro.lang import TransformError

    program = validate(APPLICATIONS["adi"].build())
    with pytest.raises(TransformError):
        compile_variant(program, "turbo")


def test_stage_bookkeeping():
    program = validate(APPLICATIONS["sp"].build())
    variant = compile_variant(program, "new")
    assert "preliminary" in variant.stages
    assert "fused" in variant.stages
    assert variant.stages["regrouped"]["merged_arrays"] < variant.stages[
        "preliminary"
    ]["arrays"]
