"""The run(RunRequest) front door and its deprecation shims.

Pins the api-redesign contract: the old trio (``measure``,
``measure_application``, ``run_application``) still works, warns
``DeprecationWarning`` exactly once per call site, and matches the new
front door bit-for-bit; ``verify=`` actually reaches the compiler; and
the observability sinks (events.jsonl, progress lines) fire.
"""

import io
import warnings

import pytest

from repro.harness import (
    ExperimentSpec,
    ParallelRunner,
    RunRequest,
    RunResult,
    machine_for,
    measure,
    measure_application,
    run,
    run_application,
)
from repro.lang import ReproError, validate
from repro.obs import RunLog, TraceConfig, summarize_run
from repro.programs import registry
from repro.verify import PassVerifier

SMALL = {"N": 24}


def _adi():
    entry = registry.get("adi")
    return validate(entry.build()), machine_for(entry.machine_spec)


class TestFrontDoor:
    def test_levels_accept_string_sequence_and_comma(self):
        a = run(RunRequest(program="adi", levels="noopt,new", params=SMALL, steps=1))
        b = run(
            RunRequest(program="adi", levels=("noopt", "new"), params=SMALL, steps=1)
        )
        assert [r.level for r in a] == ["noopt", "new"]
        assert a.rows() == b.rows()

    def test_registry_defaults_fill_params_and_steps(self):
        result = run(RunRequest(program="adi", levels=("noopt",), params=SMALL))
        entry = registry.get("adi")
        assert result[0].params == dict(SMALL)
        # default steps come from the registry entry (adi: 2)
        lone = run(RunRequest(program="adi", levels=("noopt",), params=SMALL, steps=1))
        assert result[0].trace_length == lone[0].trace_length * entry.steps

    def test_program_object_requires_params(self):
        program, _ = _adi()
        with pytest.raises(ReproError, match="requires params"):
            run(RunRequest(program=program, levels=("noopt",)))

    def test_empty_levels_rejected(self):
        with pytest.raises(ReproError, match="levels is empty"):
            run(RunRequest(program="adi", levels=""))

    def test_result_container_protocols(self):
        result = run(RunRequest(program="adi", levels=("noopt", "new"), params=SMALL, steps=1))
        assert isinstance(result, RunResult)
        assert len(result) == 2
        assert result[1].level == "new"
        assert [r.level for r in result] == ["noopt", "new"]
        records = result.records()
        assert [(r.program, r.level) for r in records] == [
            ("adi", "noopt"),
            ("adi", "new"),
        ]
        assert records[0].stats == result[0].stats

    def test_serial_results_carry_spans_and_metrics(self):
        result = run(RunRequest(program="adi", levels=("noopt",), params=SMALL, steps=1))
        spans = result[0].spans
        names = {s.name for s in spans}
        assert {"compile", "trace-gen", "l1", "l2", "tlb"} <= names
        assert result[0].seconds > 0
        assert result[0].metrics["counters"].get("trace.generated") == 1


class TestShimEquivalence:
    @pytest.mark.parametrize("app", ["adi", "swim"])
    def test_measure_matches_run(self, app):
        entry = registry.get(app)
        program = validate(entry.build())
        machine = machine_for(entry.machine_spec)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = measure(program, "new", SMALL, machine, steps=1)
        new = run(
            RunRequest(
                program=program, levels=("new",), params=SMALL,
                machine=machine, steps=1,
            )
        ).results[0]
        assert old.row() == new.row()
        assert old.trace_length == new.trace_length

    @pytest.mark.parametrize("app", ["adi", "swim"])
    def test_measure_application_matches_run(self, app):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = measure_application(app, ["noopt", "new"], params=SMALL, steps=1)
        new = run(
            RunRequest(program=app, levels=("noopt", "new"), params=SMALL, steps=1)
        )
        assert [r.row() for r in old] == new.rows()

    def test_run_application_matches_run_records(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = run_application("adi", ["noopt", "new"], params=SMALL, steps=1)
        new = run(
            RunRequest(program="adi", levels=("noopt", "new"), params=SMALL, steps=1)
        ).records()
        assert [(r.level, r.stats, r.trace_length) for r in old] == [
            (r.level, r.stats, r.trace_length) for r in new
        ]

    def test_shims_warn_once_per_call_site(self):
        program, machine = _adi()
        with warnings.catch_warnings(record=True) as caught:
            warnings.resetwarnings()
            warnings.simplefilter("default")  # dedup per (site, message)
            for _ in range(3):  # one call site, three calls
                measure(program, "noopt", SMALL, machine, steps=1)
            measure(program, "noopt", SMALL, machine, steps=1)  # second site
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2
        assert "run(RunRequest(...))" in str(deprecations[0].message)


class TestVerifyThreading:
    def test_run_threads_verifier_to_the_compiler(self):
        program, machine = _adi()
        verifier = PassVerifier(program, SMALL, steps=1)
        run(
            RunRequest(
                program=program, levels=("fusion",), params=SMALL,
                machine=machine, steps=1, verify=verifier,
            )
        )
        assert verifier.history, "verify= must reach compile_variant"

    def test_measure_shim_forwards_verifier(self):
        # the historical bug: measure() dropped verify= on the floor
        program, machine = _adi()
        verifier = PassVerifier(program, SMALL, steps=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            measure(program, "fusion", SMALL, machine, steps=1, verify=verifier)
        assert verifier.history

    def test_verify_off_by_default(self):
        result = run(RunRequest(program="adi", levels=("fusion",), params=SMALL, steps=1))
        verify_spans = [s for s in result[0].spans if s.name == "verify"]
        assert not verify_spans

    def test_verify_true_adds_verify_spans(self):
        result = run(
            RunRequest(
                program="adi", levels=("fusion",), params=SMALL, steps=1, verify=True
            )
        )
        verify_spans = [s for s in result[0].spans if s.name == "verify"]
        assert verify_spans
        assert all("certifies" in s.attrs for s in verify_spans)


class TestObservabilitySinks:
    def test_serial_run_writes_event_log(self, tmp_path):
        result = run(
            RunRequest(
                program="adi", levels=("noopt", "new"), params=SMALL, steps=1,
                trace=TraceConfig(events=True, runs_root=str(tmp_path)),
            )
        )
        assert result.run_dir is not None
        events = RunLog(result.run_dir).events()
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("spec_start") == 2 and kinds.count("spec_end") == 2
        assert any(k == "span" for k in kinds)
        summary = summarize_run(result.run_dir)
        assert summary["completed"] == 2 and summary["total"] == 2
        assert summary["slowest"] is not None

    def test_parallel_runner_streams_events_and_progress(self, tmp_path):
        stream = io.StringIO()
        specs = [
            ExperimentSpec(app="adi", level=level, params=SMALL, steps=1)
            for level in ("noopt", "new")
        ]
        runner = ParallelRunner(
            jobs=2,
            trace=TraceConfig(events=True, runs_root=str(tmp_path), progress=True),
            progress_stream=stream,
        )
        records = runner.run(specs)
        assert [r.level for r in records] == ["noopt", "new"]
        assert all(r.seconds > 0 for r in records)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[1/2]") and lines[1].startswith("[2/2]")
        assert "ETA" in lines[0] and "slowest" in lines[0]
        summary = summarize_run(runner.last_run_dir)
        assert summary["completed"] == 2
        assert summary["events"] >= 6  # run_start/end + 2x(spec_start/spec_end)

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        serial = run(
            RunRequest(program="adi", levels=("noopt", "new"), params=SMALL, steps=1)
        )
        parallel = run(
            RunRequest(
                program="adi", levels=("noopt", "new"), params=SMALL, steps=1,
                jobs=2,
            )
        )
        assert serial.rows() == parallel.rows()


class TestResultCacheKnob:
    def test_result_cache_off_still_replays_traces(self, tmp_path):
        request = dict(
            program="adi", levels=("noopt",), params=SMALL, steps=1,
            cache=str(tmp_path),
        )
        cold = run(RunRequest(**request, result_cache=False))
        warm = run(RunRequest(**request, result_cache=False))
        assert cold.rows() == warm.rows()
        # trace replayed from disk, but the simulation stages re-ran
        assert "trace-gen" not in warm[0].timings
        assert "l1" in warm[0].timings

    def test_result_cache_on_skips_simulation(self, tmp_path):
        request = dict(
            program="adi", levels=("noopt",), params=SMALL, steps=1,
            cache=str(tmp_path),
        )
        cold = run(RunRequest(**request))
        warm = run(RunRequest(**request))
        assert cold.rows() == warm.rows()
        assert "l1" not in warm[0].timings
