"""The run(RunRequest) front door.

Pins the api-redesign contract: the old trio (``measure``,
``measure_application``, ``run_application``) is *gone* in v2.0 — not
deprecated, removed; ``verify=`` actually reaches the compiler; and
the observability sinks (events.jsonl, progress lines) fire.
"""

import io

import pytest

import repro.harness
from repro.harness import (
    ExperimentSpec,
    ParallelRunner,
    RunRequest,
    RunResult,
    machine_for,
    run,
)
from repro.lang import ReproError, validate
from repro.obs import RunLog, TraceConfig, summarize_run
from repro.programs import registry
from repro.verify import PassVerifier

SMALL = {"N": 24}


def _adi():
    entry = registry.get("adi")
    return validate(entry.build()), machine_for(entry.machine_spec)


class TestFrontDoor:
    def test_levels_accept_string_sequence_and_comma(self):
        a = run(RunRequest(program="adi", levels="noopt,new", params=SMALL, steps=1))
        b = run(
            RunRequest(program="adi", levels=("noopt", "new"), params=SMALL, steps=1)
        )
        assert [r.level for r in a] == ["noopt", "new"]
        assert a.rows() == b.rows()

    def test_registry_defaults_fill_params_and_steps(self):
        result = run(RunRequest(program="adi", levels=("noopt",), params=SMALL))
        entry = registry.get("adi")
        assert result[0].params == dict(SMALL)
        # default steps come from the registry entry (adi: 2)
        lone = run(RunRequest(program="adi", levels=("noopt",), params=SMALL, steps=1))
        assert result[0].trace_length == lone[0].trace_length * entry.steps

    def test_program_object_requires_params(self):
        program, _ = _adi()
        with pytest.raises(ReproError, match="requires params"):
            run(RunRequest(program=program, levels=("noopt",)))

    def test_empty_levels_rejected(self):
        with pytest.raises(ReproError, match="levels is empty"):
            run(RunRequest(program="adi", levels=""))

    def test_result_container_protocols(self):
        result = run(RunRequest(program="adi", levels=("noopt", "new"), params=SMALL, steps=1))
        assert isinstance(result, RunResult)
        assert len(result) == 2
        assert result[1].level == "new"
        assert [r.level for r in result] == ["noopt", "new"]
        records = result.records()
        assert [(r.program, r.level) for r in records] == [
            ("adi", "noopt"),
            ("adi", "new"),
        ]
        assert records[0].stats == result[0].stats

    def test_serial_results_carry_spans_and_metrics(self):
        result = run(RunRequest(program="adi", levels=("noopt",), params=SMALL, steps=1))
        spans = result[0].spans
        names = {s.name for s in spans}
        assert {"compile", "trace-gen", "l1", "l2", "tlb"} <= names
        assert result[0].seconds > 0
        assert result[0].metrics["counters"].get("trace.generated") == 1


class TestLegacyApiRemoved:
    """The v2.0 contract: the shims are gone, not just deprecated."""

    @pytest.mark.parametrize(
        "name", ["measure", "measure_application", "run_application"]
    )
    def test_shim_gone(self, name):
        assert not hasattr(repro.harness, name)
        assert name not in repro.harness.__all__

    def test_no_internal_references_remain(self):
        from pathlib import Path

        harness_dir = Path(repro.harness.__file__).parent
        hits = []
        for path in sorted(harness_dir.rglob("*.py")):
            text = path.read_text()
            for pattern in ("def measure(", "def measure_application(",
                            "def run_application("):
                if pattern in text:
                    hits.append(f"{path}: {pattern}")
        assert not hits, hits


class TestVerifyThreading:
    def test_run_threads_verifier_to_the_compiler(self):
        program, machine = _adi()
        verifier = PassVerifier(program, SMALL, steps=1)
        run(
            RunRequest(
                program=program, levels=("fusion",), params=SMALL,
                machine=machine, steps=1, verify=verifier,
            )
        )
        assert verifier.history, "verify= must reach compile_variant"

    def test_verify_off_by_default(self):
        result = run(RunRequest(program="adi", levels=("fusion",), params=SMALL, steps=1))
        verify_spans = [s for s in result[0].spans if s.name == "verify"]
        assert not verify_spans

    def test_verify_true_adds_verify_spans(self):
        result = run(
            RunRequest(
                program="adi", levels=("fusion",), params=SMALL, steps=1, verify=True
            )
        )
        verify_spans = [s for s in result[0].spans if s.name == "verify"]
        assert verify_spans
        assert all("certifies" in s.attrs for s in verify_spans)


class TestObservabilitySinks:
    def test_serial_run_writes_event_log(self, tmp_path):
        result = run(
            RunRequest(
                program="adi", levels=("noopt", "new"), params=SMALL, steps=1,
                trace=TraceConfig(events=True, runs_root=str(tmp_path)),
            )
        )
        assert result.run_dir is not None
        events = RunLog(result.run_dir).events()
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("spec_start") == 2 and kinds.count("spec_end") == 2
        assert any(k == "span" for k in kinds)
        summary = summarize_run(result.run_dir)
        assert summary["completed"] == 2 and summary["total"] == 2
        assert summary["slowest"] is not None

    def test_parallel_runner_streams_events_and_progress(self, tmp_path):
        stream = io.StringIO()
        specs = [
            ExperimentSpec(app="adi", level=level, params=SMALL, steps=1)
            for level in ("noopt", "new")
        ]
        runner = ParallelRunner(
            jobs=2,
            trace=TraceConfig(events=True, runs_root=str(tmp_path), progress=True),
            progress_stream=stream,
        )
        records = runner.run(specs)
        assert [r.level for r in records] == ["noopt", "new"]
        assert all(r.seconds > 0 for r in records)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[1/2]") and lines[1].startswith("[2/2]")
        assert "ETA" in lines[0] and "slowest" in lines[0]
        summary = summarize_run(runner.last_run_dir)
        assert summary["completed"] == 2
        assert summary["events"] >= 6  # run_start/end + 2x(spec_start/spec_end)

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        serial = run(
            RunRequest(program="adi", levels=("noopt", "new"), params=SMALL, steps=1)
        )
        parallel = run(
            RunRequest(
                program="adi", levels=("noopt", "new"), params=SMALL, steps=1,
                jobs=2,
            )
        )
        assert serial.rows() == parallel.rows()


class TestResultCacheKnob:
    def test_result_cache_off_still_replays_traces(self, tmp_path):
        request = dict(
            program="adi", levels=("noopt",), params=SMALL, steps=1,
            cache=str(tmp_path),
        )
        cold = run(RunRequest(**request, result_cache=False))
        warm = run(RunRequest(**request, result_cache=False))
        assert cold.rows() == warm.rows()
        # trace replayed from disk, but the simulation stages re-ran
        assert "trace-gen" not in warm[0].timings
        assert "l1" in warm[0].timings

    def test_result_cache_on_skips_simulation(self, tmp_path):
        request = dict(
            program="adi", levels=("noopt",), params=SMALL, steps=1,
            cache=str(tmp_path),
        )
        cold = run(RunRequest(**request))
        warm = run(RunRequest(**request))
        assert cold.rows() == warm.rows()
        assert "l1" not in warm[0].timings
