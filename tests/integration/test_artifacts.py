"""The read-merge-rewrite discipline behind every ``BENCH_*.json``."""

import json

from repro.harness import merge_json_artifact


class TestMergeJsonArtifact:
    def test_fresh_file(self, tmp_path):
        path = tmp_path / "BENCH.json"
        merged = merge_json_artifact(
            path, {"adi": {"l2": 10}}, {"benchmark": "x"}
        )
        assert merged == {"adi": {"l2": 10}}
        data = json.loads(path.read_text())
        assert data == {"benchmark": "x", "programs": {"adi": {"l2": 10}}}

    def test_merge_into_existing_file_keeps_other_entries(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(
            json.dumps(
                {
                    "benchmark": "old header",
                    "programs": {"adi": {"l2": 10}, "swim": {"l2": 20}},
                }
            )
        )
        merged = merge_json_artifact(
            path, {"swim": {"l2": 99}}, {"benchmark": "new header"}
        )
        # overwritten where keys collide, preserved where they don't
        assert merged == {"adi": {"l2": 10}, "swim": {"l2": 99}}
        data = json.loads(path.read_text())
        assert data["benchmark"] == "new header"
        assert data["programs"]["adi"] == {"l2": 10}
        assert data["programs"]["swim"] == {"l2": 99}

    def test_entries_sorted_for_stable_diffs(self, tmp_path):
        path = tmp_path / "BENCH.json"
        merge_json_artifact(path, {"zz": 1, "aa": 2, "mm": 3})
        keys = list(json.loads(path.read_text())["programs"])
        assert keys == sorted(keys)

    def test_corrupt_existing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("{not json at all")
        merged = merge_json_artifact(path, {"adi": 1})
        assert merged == {"adi": 1}

    def test_wrong_shape_existing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps([1, 2, 3]))  # a list, not a mapping
        merged = merge_json_artifact(path, {"adi": 1})
        assert merged == {"adi": 1}

    def test_custom_key(self, tmp_path):
        path = tmp_path / "BENCH.json"
        merge_json_artifact(path, {"a/noopt": {"x": 1}}, key="results")
        merge_json_artifact(path, {"b/new": {"x": 2}}, key="results")
        data = json.loads(path.read_text())
        assert set(data["results"]) == {"a/noopt", "b/new"}
