"""Source-level regrouping emission tests."""

import numpy as np

from repro.core.regroup import emit_source, regroup_plan
from repro.core.regroup.layout import default_layout
from repro.interp import run_program, trace_program
from repro.lang import to_source, validate

from conftest import build


ELEMENT_GROUP = """
program t
param N
real A[N, N], B[N, N]
for i = 1, N {
  for j = 1, N { A[j, i] = f(A[j, i], B[j, i]) }
}
for i = 1, N {
  for j = 1, N { B[j, i] = g(A[j, i], B[j, i]) }
}
"""


def test_element_group_emits_merged_array():
    p = build(ELEMENT_GROUP)
    plan = regroup_plan(p)
    src = emit_source(plan)
    validate(src.program)
    assert not src.unexpressible
    (merged, ordinal_a, level) = src.mapping["A"]
    assert level == 0 and ordinal_a == 1
    assert src.mapping["B"][1] == 2
    decl = src.program.array(merged)
    assert decl.ndim == 3
    text = to_source(src.program)
    assert f"{merged}[1, j, i]" in text


def test_emitted_source_preserves_semantics():
    p = build(ELEMENT_GROUP)
    src = emit_source(regroup_plan(p))
    n = 9
    ref = run_program(p, {"N": n}, steps=2)
    # seed the merged array with the originals' initial values by running
    # the rewritten program and comparing slice-wise against a rewritten
    # initial state: instead, compare the *relationship* — every member
    # slice of the merged result must equal the original array computed
    # from the same initial values.  We achieve identical initial values
    # by running the original program on the merged initial data.
    merged_name = src.mapping["A"][0]
    out = run_program(src.program, {"N": n}, steps=2)
    merged = out[merged_name]
    # reconstruct an "original" run from the merged initial state
    from repro.interp import init_arrays

    init = init_arrays(src.program, {"N": n})
    from repro.interp.interpreter import Interpreter

    interp = Interpreter(p, {"N": n})
    interp.arrays = {
        "A": init[merged_name][0].copy(),
        "B": init[merged_name][1].copy(),
    }
    interp.scalars = {}
    for decl in p.arrays:
        interp._extent_cache[decl.name] = decl.shape({"N": n})
    for _ in range(2):
        interp.exec_body(p.body)
    assert np.array_equal(interp.arrays["A"], merged[0])
    assert np.array_equal(interp.arrays["B"], merged[1])


def test_emitted_addresses_match_layout_engine():
    """The rewritten program under the *default* layout must touch exactly
    the addresses the layout engine assigns to the original program."""
    p = build(ELEMENT_GROUP)
    plan = regroup_plan(p)
    src = emit_source(plan)
    n = 6
    orig_trace = trace_program(p, {"N": n})
    new_trace = trace_program(src.program, {"N": n})
    orig_addrs = plan.materialize({"N": n}).addresses(orig_trace, in_bytes=False)
    new_addrs = default_layout(src.program, {"N": n}).addresses(
        new_trace, in_bytes=False
    )
    assert np.array_equal(orig_addrs, new_addrs)


def test_fig7_nested_group_reported_unexpressible(fig7_program):
    plan = regroup_plan(fig7_program)
    src = emit_source(plan)
    assert src.unexpressible  # A/B nested inside the row group
    validate(src.program)  # arrays fall back to their original form
