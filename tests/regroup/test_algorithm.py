"""Data-regrouping algorithm tests (paper §3, Figs. 7-8)."""

from repro.core.regroup import (
    GroupNode,
    RegroupOptions,
    default_layout,
    padded_layout,
    regroup_plan,
)

from conftest import build


def test_fig7_exact_layout(fig7_program):
    plan = regroup_plan(fig7_program)
    assert plan.merged_array_count() == 1
    (node,) = plan.items
    assert isinstance(node, GroupNode)
    assert node.level == 1  # rows interleaved
    inner = [c for c in node.children if isinstance(c, GroupNode)]
    assert len(inner) == 1 and inner[0].level == 0
    assert sorted(inner[0].children) == ["A", "B"]
    layout = plan.materialize({"N": 4})
    layout.check_bijective()
    # A[j,i] -> D[1,j,1,i]; B -> D[2,j,1,i]; C -> D[j,2,i]
    assert layout.placements["A"].offset == 0
    assert layout.placements["A"].strides == (2, 12)
    assert layout.placements["B"].offset == 1
    assert layout.placements["C"].offset == 8
    assert layout.placements["C"].strides == (1, 12)


def test_order_rule_blocks_outer_grouping():
    # two phases traverse in opposite orders: only element-level grouping
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N]
        for i = 1, N { for j = 1, N { A[j, i] = f(A[j, i], B[j, i]) } }
        for j = 1, N { for i = 1, N { A[j, i] = g(A[j, i], B[j, i]) } }
        """
    )
    plan = regroup_plan(p)
    assert plan.group_count() == 1
    (node,) = [it for it in plan.items if isinstance(it, GroupNode)]
    assert node.level == 0  # full element interleave, no row grouping
    plan.materialize({"N": 5}).check_bijective()


def test_never_together_stays_apart_in_strict_mode():
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N]
        for i = 1, N { for j = 1, N { A[j, i] = f(A[j, i]) } }
        for i = 1, N { for j = 1, N { B[j, i] = g(B[j, i]) } }
        """
    )
    # strict = the paper's conservative guarantee: never grouped
    plan = regroup_plan(p, RegroupOptions(strict=True))
    assert plan.group_count() == 0
    assert plan.merged_array_count() == 2
    # default: the two conflict-free sweeps form one phase, allowing
    # block-level (never element-level) grouping with bounded line spill
    relaxed = regroup_plan(p)
    for item in relaxed.items:
        if isinstance(item, GroupNode):
            assert item.level >= 1
            assert all(not isinstance(c, GroupNode) for c in item.children)


def test_conflicting_phases_stay_apart_by_default():
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N]
        for i = 1, N { for j = 1, N { A[j, i] = f(A[j, i]) } }
        for i = 1, N { for j = 1, N { A[j, i] = g(A[j, i]) } }
        for i = 1, N { for j = 1, N { B[j, i] = g(B[j, i], A[1, 1]) } }
        """
    )
    # the B sweep reads A -> conflicts -> separate phase -> no grouping
    plan = regroup_plan(p)
    assert plan.group_count() == 0


def test_incompatible_shapes_stay_apart():
    p = build(
        """
        program t
        param N
        real A[N, N], B[N]
        for i = 1, N {
          B[i] = 0.0
          for j = 1, N { A[j, i] = f(A[j, i], B[i]) }
        }
        """
    )
    plan = regroup_plan(p)
    assert plan.group_count() == 0


def test_min_level_option_disables_element_grouping(fig7_program):
    plan = regroup_plan(fig7_program, RegroupOptions(min_level=1))
    (node,) = plan.items
    assert isinstance(node, GroupNode)
    assert node.level == 1
    # A and B no longer element-interleaved
    assert all(not isinstance(c, GroupNode) for c in node.children)
    layout = plan.materialize({"N": 4})
    layout.check_bijective()
    assert layout.placements["A"].strides[0] == 1


def test_narrow_wrap_loops_do_not_split_groups():
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N]
        for i = 1, N { for j = 1, N { A[j, i] = f(A[j, i], B[j, i]) } }
        A[1, 1] = 0.0
        for i = 1, N { for j = 1, N { B[j, i] = g(A[j, i], B[j, i]) } }
        """
    )
    plan = regroup_plan(p)
    assert plan.group_count() == 1


def test_materialize_is_compact():
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N], C[N, N]
        for i = 1, N { for j = 1, N { A[j, i] = f(B[j, i], C[j, i]) } }
        """
    )
    plan = regroup_plan(p)
    layout = plan.materialize({"N": 6})
    layout.check_bijective()
    assert layout.total_elems == 3 * 36  # no holes


def test_padded_layout_bijective_and_staggered():
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N]
        for i = 1, N { for j = 1, N { A[j, i] = f(B[j, i]) } }
        """
    )
    layout = padded_layout(p, {"N": 8})
    layout.check_bijective()
    base = default_layout(p, {"N": 8})
    assert layout.placements["B"].offset > base.placements["B"].offset
