"""Layout engine tests: address translation must be exact and vectorized."""

import pytest

from repro.core.regroup import default_layout, regroup_plan
from repro.core.regroup.layout import ArrayPlacement, Layout
from repro.interp import trace_program
from repro.lang import SimulationError

from conftest import build


def test_default_layout_sequential():
    p = build(
        "program t\nparam N\nreal A[N, N], B[N]\nA[1, 1] = B[1]"
    )
    layout = default_layout(p, {"N": 4})
    assert layout.placements["A"].offset == 0
    assert layout.placements["B"].offset == 16
    assert layout.total_elems == 20


def test_addresses_match_manual_computation():
    p = build(
        """
        program t
        param N
        real A[N, N]
        for i = 1, N { for j = 1, N { A[j, i] = f(A[j, i]) } }
        """
    )
    n = 5
    trace = trace_program(p, {"N": n})
    layout = default_layout(p, {"N": n})
    addrs = layout.addresses(trace, in_bytes=False)
    # manual: column-major (j fastest), A[j,i] -> (j-1) + (i-1)*n
    k = 0
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            expected = (j - 1) + (i - 1) * n
            assert addrs[k] == expected  # read
            assert addrs[k + 1] == expected  # write
            k += 2


def test_byte_addresses_scale_by_elem_size():
    p = build("program t\nparam N\nreal A[N]\nA[2] = A[1]")
    trace = trace_program(p, {"N": 4})
    layout = default_layout(p, {"N": 4})
    assert list(layout.addresses(trace, in_bytes=False)) == [0, 1]
    assert list(layout.addresses(trace, in_bytes=True)) == [0, 8]


def test_regrouped_addresses_use_new_strides(fig7_program):
    n = 4
    trace = trace_program(fig7_program, {"N": n})
    layout = regroup_plan(fig7_program).materialize({"N": n})
    addrs = layout.addresses(trace, in_bytes=False)
    # first iteration accesses A[1,1] (addr 0), B[1,1] (addr 1)
    names = [fig7_program.arrays[a].name for a in trace.array_ids[:4]]
    assert addrs[0] == 0  # A[1,1] read
    assert addrs[1] == 1  # B[1,1] read


def test_collision_detected():
    bad = Layout(
        {
            "A": ArrayPlacement("A", (4,), 0, (1,)),
            "B": ArrayPlacement("B", (4,), 2, (1,)),  # overlaps A
        },
        8,
    )
    with pytest.raises(SimulationError, match="collision"):
        bad.check_bijective()


def test_mixed_rank_arrays_in_one_layout():
    p = build(
        """
        program t
        param N
        real A[N, N, N], B[N]
        for i = 1, N { B[i] = f(A[1, 1, i]) }
        """
    )
    trace = trace_program(p, {"N": 4})
    layout = default_layout(p, {"N": 4})
    addrs = layout.addresses(trace, in_bytes=False)
    layout.check_bijective()
    assert addrs[0] == 0 + 0 * 4 + 0 * 16  # A[1,1,1]
    assert addrs[1] == 64  # B[1] right after A
