"""The autotuner's candidate search space."""

import pytest

from repro.core.pm import ALL_KINDS, PASSES
from repro.lang import TransformError
from repro.tune import (
    ENABLERS,
    FUSION_LEVELS,
    candidate_fields,
    canonical_enabler_order,
    enumerate_candidates,
    make_candidate,
    neighbors,
    parse_signature,
    spec_signature,
)


class TestCanonicalOrder:
    def test_invalidating_passes_first(self):
        order = canonical_enabler_order(("constprop", "unroll"))
        assert order == ("unroll", "constprop")  # unroll invalidates ALL_KINDS

    def test_registry_order_within_groups(self):
        order = canonical_enabler_order(("constprop", "distribute"))
        assert order == ("distribute", "constprop")
        full = canonical_enabler_order(ENABLERS[::-1])
        assert full == ENABLERS

    def test_unknown_enabler_rejected(self):
        with pytest.raises(TransformError):
            canonical_enabler_order(("bogus",))

    def test_order_is_metadata_derived(self):
        """The ordering invariant: a pass that invalidates every analysis
        kind must come before passes that preserve object analyses."""
        order = canonical_enabler_order(ENABLERS)
        invalidating = [n for n in order if PASSES[n].invalidates == ALL_KINDS]
        preserving = [n for n in order if PASSES[n].invalidates != ALL_KINDS]
        assert order == tuple(invalidating + preserving)


class TestMakeCandidate:
    def test_minimal_candidate(self):
        spec = make_candidate()
        assert spec.pass_names() == ("inline", "simplify")

    def test_full_candidate_shape(self):
        spec = make_candidate(enablers=ENABLERS, fusion=2, regroup=True)
        names = spec.pass_names()
        assert names[0] == "inline"
        assert names[-1] == "regroup"
        assert "fusion" in names
        fusion_step = next(s for s in spec.steps if s.name == "fusion")
        assert fusion_step.kwargs() == {"max_levels": 2}

    def test_fusion_zero_means_no_fusion(self):
        spec = make_candidate(fusion=0)
        assert "fusion" not in spec.pass_names()

    def test_all_candidates_validate(self):
        for spec in enumerate_candidates():
            spec.validate()


class TestSignatures:
    def test_round_trip(self):
        spec = make_candidate(enablers=("unroll", "distribute"), fusion=4,
                              regroup=True)
        signature = spec_signature(spec)
        assert parse_signature(signature).steps == spec.steps

    def test_fusion_option_spelled_in_signature(self):
        assert "fusion:2" in spec_signature(make_candidate(fusion=2))

    def test_bad_signature_rejected(self):
        with pytest.raises(TransformError):
            parse_signature("inline+bogus")

    def test_candidate_fields(self):
        spec = make_candidate(enablers=("split_arrays",), fusion=1)
        enablers, fusion, regroup = candidate_fields(spec)
        assert enablers == ("split_arrays",)
        assert fusion == 1
        assert regroup is False


class TestEnumeration:
    def test_grid_size(self):
        grid = enumerate_candidates(
            enablers=("unroll",), fusion_levels=(0, 1), regroup=True
        )
        # 2 subsets x 2 fusion levels x 2 regroup choices
        assert len(grid) == 8

    def test_cheapest_first(self):
        grid = enumerate_candidates()
        lengths = [len(s.steps) for s in grid]
        assert lengths[0] == min(lengths)

    def test_max_candidates_caps(self):
        grid = enumerate_candidates(max_candidates=5)
        assert len(grid) == 5

    def test_full_grid_count(self):
        grid = enumerate_candidates()
        assert len(grid) == 2 ** len(ENABLERS) * len(FUSION_LEVELS) * 2

    def test_signatures_unique(self):
        grid = enumerate_candidates()
        signatures = [spec_signature(s) for s in grid]
        assert len(set(signatures)) == len(signatures)


class TestNeighbors:
    def test_moves_are_single_step(self):
        spec = make_candidate(enablers=("unroll",), fusion=1, regroup=False)
        near = neighbors(spec)
        assert near
        for n in near:
            enablers, fusion, regroup = candidate_fields(n)
            changes = (
                (set(enablers) != {"unroll"})
                + (fusion != 1)
                + (regroup is not False)
            )
            assert changes == 1

    def test_excludes_self(self):
        spec = make_candidate()
        assert all(n.steps != spec.steps for n in neighbors(spec))

    def test_fusion_moves_adjacent(self):
        spec = make_candidate(fusion=2)
        fusion_values = {
            candidate_fields(n)[1]
            for n in neighbors(spec)
            if candidate_fields(n)[1] != 2
        }
        assert fusion_values <= {1, 4}
