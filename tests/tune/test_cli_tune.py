"""The ``repro tune`` subcommand and ``repro pipeline --json``."""

import json

import pytest

from repro.cli import main

FAST = [
    "tune", "adi", "--enablers", "", "--fusion-levels", "0,1",
    "--top-k", "0", "--no-validate",
]


def _run(capsys, *extra, cache_dir=None):
    argv = list(FAST) + list(extra)
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    else:
        argv += ["--no-cache"]
    code = main(argv)
    return code, capsys.readouterr().out


def test_tune_table_output(capsys, tmp_path):
    code, out = _run(capsys, cache_dir=tmp_path)
    assert code == 0
    assert "adi autotune" in out
    assert "noopt" in out and "inline+simplify" in out
    assert "best:" in out


def test_tune_json_output(capsys, tmp_path):
    code, out = _run(capsys, "--json", cache_dir=tmp_path)
    assert code == 0
    payload = json.loads(out)
    entry = payload["programs"]["adi"]
    assert entry["target"] == "adi"
    assert set(entry["named"]) == {
        "noopt", "sgi", "mckinley", "fusion1", "fusion", "regroup", "new"
    }
    assert entry["best"]["spec"]["steps"][0]["name"] == "inline"
    assert isinstance(entry["strict_win"], bool)


def test_tune_json_out_merges(capsys, tmp_path):
    out_file = tmp_path / "BENCH_tune.json"
    code, _ = _run(capsys, "--json-out", str(out_file), cache_dir=tmp_path)
    assert code == 0
    first = json.loads(out_file.read_text())
    assert set(first["programs"]) == {"adi"}
    # a second run for another target merges instead of overwriting
    code = main([
        "tune", "fft", "--enablers", "", "--fusion-levels", "0",
        "--no-validate", "--no-cache", "-p", "n=16",
        "--json-out", str(out_file),
    ])
    capsys.readouterr()
    assert code == 0
    merged = json.loads(out_file.read_text())
    assert set(merged["programs"]) == {"adi", "fft16"}
    assert merged["programs"]["fft16"]["target"] == "fft"


def test_tune_requires_target(capsys):
    with pytest.raises(SystemExit, match="app names"):
        main(["tune"])


def test_tune_check_gate(capsys, tmp_path):
    out_file = tmp_path / "BENCH_tune.json"
    _run(capsys, "--json-out", str(out_file), cache_dir=tmp_path)
    code = main([
        "tune", "--check", "--baseline", str(out_file),
        "--cache-dir", str(tmp_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "tune --check ok" in out
    # tamper: inflate the committed best beyond every named level
    payload = json.loads(out_file.read_text())
    payload["programs"]["adi"]["best"]["score"] *= 10
    out_file.write_text(json.dumps(payload))
    code = main([
        "tune", "--check", "--baseline", str(out_file),
        "--cache-dir", str(tmp_path),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "regressions detected" in out


def test_tune_check_requires_baseline():
    with pytest.raises(SystemExit, match="baseline"):
        main(["tune", "--check"])


def test_tune_at_sizes(capsys, tmp_path):
    _, out = _run(capsys, "--json", "--at", "N=33", cache_dir=tmp_path)
    payload = json.loads(out)
    assert payload["programs"]["adi"]["sizes"] == [{"N": 33}]
    # -p binds the first size explicitly, --at appends more
    code = main(list(FAST) + [
        "--json", "--no-cache", "-p", "N=17", "--at", "N=33",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["programs"]["adi"]["sizes"] == [{"N": 17}, {"N": 33}]


def test_pipeline_json_registry(capsys):
    assert main(["pipeline", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "fusion" in payload["pipelines"]
    assert payload["opt_levels"][0] == "noopt"
    assert payload["passes"]["fusion"]["certify"] is True
    assert payload["passes"]["regroup"]["certify"] is False
    steps = payload["pipelines"]["fusion"]["steps"]
    assert {"name": "fusion", "options": {"max_levels": 8}} in [
        {"name": s["name"], "options": s["options"]} for s in steps
    ]


def test_pipeline_json_describe_one(capsys):
    assert main(["pipeline", "--describe", "fusion1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "fusion1"
    from repro.core.pm import spec_from_json

    spec = spec_from_json(payload)
    assert spec.pass_names()[-1] == "simplify"


def test_pipeline_json_round_trips_all(capsys):
    """The shared schema: every pipeline in the registry dump rebuilds."""
    main(["pipeline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    from repro.core.pm import PIPELINES, spec_from_json

    for name, entry in payload["pipelines"].items():
        assert spec_from_json(entry).steps == PIPELINES[name].steps
