"""The tune() front door: static ranking, dedup, caching, validation,
observability, and the check_baseline CI gate."""

import json

import pytest

from repro.core.pm import OPT_LEVELS
from repro.lang import ReproError
from repro.obs import REGISTRY, RunLog, TraceConfig
from repro.programs.registry import MachineSpec
from repro.tune import (
    TuneCache,
    TuneRequest,
    TuneResult,
    check_baseline,
    tune,
)

#: a small grid keeps one search under a couple of seconds on adi
FAST = dict(
    program="adi",
    enablers=("distribute",),
    fusion_levels=(0, 1),
    top_k=2,
    cache=False,
)


def _tune(**overrides):
    return tune(TuneRequest(**{**FAST, **overrides}))


class TestFrontDoor:
    def test_result_shape(self):
        result = _tune()
        assert isinstance(result, TuneResult)
        assert result.program == "adi"
        assert {c.label for c in result.named} == set(OPT_LEVELS)
        # 2 enabler subsets x 2 fusion levels x 2 regroup choices
        assert len(result.candidates) == 8
        assert result.candidates == sorted(
            result.candidates, key=lambda c: c.score
        )

    def test_default_sizes_come_from_registry(self):
        result = _tune(validate_top=False)
        from repro.programs import registry

        assert result.sizes == [dict(registry.get("adi").default_params)]

    def test_named_levels_bound_the_search(self):
        """No candidate may predict fewer misses than is possible — the
        best candidate is at least as good as reproducing noopt."""
        result = _tune(validate_top=False)
        noopt = next(c for c in result.named if c.label == "noopt")
        assert result.best.score <= noopt.score

    def test_dedup_shares_scores(self):
        result = _tune(validate_top=False)
        deduped = [c for c in result.candidates if c.deduped_from]
        assert deduped, "regroup candidates must dedup against fusion ones"
        by_label = {c.label: c for c in result.candidates + result.named}
        for c in deduped:
            assert c.score == by_label[c.deduped_from].score
            assert c.analysis_seconds == 0.0

    def test_unknown_objective_rejected(self):
        with pytest.raises(ReproError, match="objective"):
            _tune(objective="bogus")

    def test_program_object_requires_sizes(self):
        from repro.lang import validate
        from repro.programs import registry

        program = validate(registry.get("adi").build())
        with pytest.raises(ReproError, match="sizes"):
            tune(TuneRequest(program=program, cache=False))

    def test_parallel_misses_objective(self):
        serial = _tune(validate_top=False, max_candidates=2)
        par = _tune(
            validate_top=False, max_candidates=2,
            objective="parallel-misses", threads=4,
        )
        assert par.objective == "parallel-misses"
        assert par.to_json()["threads"] == 4
        serial_scores = {c.label: c.score for c in serial.candidates}
        par_scores = {c.label: c.score for c in par.candidates}
        assert set(serial_scores) == set(par_scores)
        assert all(score > 0 for score in par_scores.values())

    def test_parallel_misses_folds_invalidations(self):
        # the objective charges coherence invalidation misses on top of
        # the capacity model; every scored entry reports the fold
        result = _tune(
            validate_top=False, max_candidates=2,
            objective="parallel-misses", threads=4, sizes=[{"N": 16}],
        )
        for c in list(result.candidates) + list(result.named):
            for entry in c.per_size:
                assert "invalidations" in entry, c.label
                assert entry["invalidations"] >= 0
        # adi's alternating-axis nests truly share lines at any level
        noopt = next(c for c in result.named if c.label == "noopt")
        assert noopt.per_size[0]["invalidations"] > 0

    def test_machine_override_changes_scores(self):
        small = _tune(validate_top=False, max_candidates=2,
                      machine=MachineSpec(l1_bytes=1024, l2_bytes=4096))
        big = _tune(validate_top=False, max_candidates=2,
                    machine=MachineSpec(l1_bytes=65536, l2_bytes=1 << 20))
        assert small.l1_elems == 128 and big.l1_elems == 8192
        assert small.best.score > big.best.score


class TestValidation:
    def test_top_k_measured(self):
        result = _tune()
        assert len(result.validated) == 2
        for c in result.validated:
            assert c.measured is not None
            assert c.measured["misses"] == c.measured["l1"] + c.measured["l2"]
            assert c.measured["accesses"] > 0
        assert result.rank_agreement is True

    def test_no_validate_skips_measurement(self):
        result = _tune(validate_top=False)
        assert result.validated == []
        assert result.rank_agreement is None
        assert all(c.measured is None for c in result.candidates)


class TestCaching:
    def test_warm_search_hits_cache(self, tmp_path):
        cold = _tune(cache=str(tmp_path), validate_top=False)
        # a candidate whose signature reproduces a named level (here
        # inline+simplify == noopt) resumes from the entry stored moments
        # earlier in the same search; everything else evaluates fresh
        assert sum(c.cached for c in cold.candidates) < len(cold.candidates)
        warm = _tune(cache=str(tmp_path), validate_top=False)
        assert all(c.cached for c in warm.candidates)
        assert [c.score for c in warm.candidates] == [
            c.score for c in cold.candidates
        ]
        assert warm.seconds < cold.seconds

    def test_cache_entries_share_trace_cache_dir(self, tmp_path):
        from repro.harness import TraceCache

        _tune(cache=str(tmp_path))
        info = TraceCache(tmp_path).info()
        assert info["tune"] > 0
        assert info["traces"] > 0  # validation traces land in the same root
        removed = TraceCache(tmp_path).clear()
        assert removed == info["tune"] + info["traces"] + info["results"]

    def test_key_depends_on_grid_axes(self, tmp_path):
        cache = TuneCache(tmp_path)
        base = dict(
            source_text="src", signature="inline+simplify", steps=1,
            sizes=[{"N": 8}], l1_elems=64, l2_elems=256,
            objective="misses", threads=4, schedule="static",
        )
        key = cache.key(**base)
        for field, value in [
            ("source_text", "other"),
            ("signature", "inline+simplify+regroup"),
            ("steps", 2),
            ("sizes", [{"N": 16}]),
            ("l1_elems", 128),
            ("l2_elems", 512),
            ("objective", "parallel-misses"),
        ]:
            assert cache.key(**{**base, field: value}) != key

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TuneCache(tmp_path)
        cache.store("k" * 32, {"score": 1.0})
        (tmp_path / f"tune-{'k' * 32}.json").write_text("{not json")
        assert cache.load("k" * 32) is None


class TestObservability:
    def test_events_stream(self, tmp_path):
        result = _tune(
            validate_top=False,
            trace=TraceConfig(events=True, runs_root=str(tmp_path)),
        )
        assert result.run_dir is not None
        events = RunLog(result.run_dir).events()
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        total = len(result.candidates) + len(result.named)
        assert kinds.count("spec_start") == total
        labels = {
            e["level"] for e in events if e["kind"] == "spec_start"
        }
        assert "noopt" in labels
        assert any("fusion:1" in label for label in labels)

    def test_tune_metrics_counted(self):
        before = REGISTRY.snapshot()["counters"].get("tune.evaluations", 0)
        _tune(validate_top=False, cache=False)
        after = REGISTRY.snapshot()["counters"].get("tune.evaluations", 0)
        assert after > before


class TestCheckBaseline:
    def _baseline(self, tmp_path):
        result = _tune(cache=str(tmp_path))
        entry = result.to_json()
        entry["target"] = "adi"
        return {"programs": {"adi": entry}}, result

    def test_fresh_baseline_passes(self, tmp_path):
        baseline, _ = self._baseline(tmp_path)
        assert check_baseline(baseline, cache=str(tmp_path)) == []

    def test_best_worse_than_named_fails(self, tmp_path):
        baseline, _ = self._baseline(tmp_path)
        baseline["programs"]["adi"]["best"]["score"] *= 10
        failures = check_baseline(baseline, cache=str(tmp_path))
        assert any("more misses than the best named" in f for f in failures)

    def test_committed_score_regression_fails(self, tmp_path):
        baseline, _ = self._baseline(tmp_path)
        # pretend the committed prediction was better than today's analyzer
        baseline["programs"]["adi"]["best"]["score"] *= 0.5
        for record in baseline["programs"]["adi"]["named"].values():
            record["score"] *= 0.5
        failures = check_baseline(baseline, cache=False)
        assert any("regressed" in f for f in failures)

    def test_budget_freezes_expensive_pipelines(self, tmp_path):
        baseline, _ = self._baseline(tmp_path)
        # mark everything expensive: nothing recomputes, committed
        # invariants still hold, so the gate passes without analysis
        for record in baseline["programs"]["adi"]["named"].values():
            record["analysis_seconds"] = 1e9
        baseline["programs"]["adi"]["best"]["analysis_seconds"] = 1e9
        baseline["programs"]["adi"]["best"]["score"] = 1.0  # would fail if recomputed
        assert check_baseline(baseline, budget_seconds=30.0, cache=False) == []

    def test_unknown_target_reported(self):
        baseline = {
            "programs": {
                "ghost": {
                    "target": "ghost",
                    "best": {"signature": "inline+simplify", "score": 1.0,
                             "analysis_seconds": 0.0},
                    "named": {"noopt": {"signature": "x", "score": 1.0,
                                        "analysis_seconds": 1e9}},
                    "sizes": [{"N": 8}], "steps": 1,
                    "l1_elems": 64, "l2_elems": 256,
                }
            }
        }
        failures = check_baseline(baseline, cache=False)
        assert any("cannot rebuild" in f for f in failures)

    def test_committed_artifact_round_trips_json(self, tmp_path):
        baseline, _ = self._baseline(tmp_path)
        text = json.dumps(baseline)
        assert check_baseline(json.loads(text), cache=str(tmp_path)) == []


class TestFftTarget:
    def test_fft_resolves_and_scores(self):
        result = tune(
            TuneRequest(
                program="fft", sizes=[{"n": 16}], enablers=(),
                fusion_levels=(0, 1), top_k=1, cache=False,
            )
        )
        assert result.program == "fft16"
        assert result.best.score > 0
        assert result.validated and result.validated[0].measured
