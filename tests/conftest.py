"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang import Program, parse, validate
from repro.interp import run_program


def build(source: str) -> Program:
    """Parse + validate a DSL snippet."""
    return validate(parse(source))


def assert_same_semantics(
    original: Program,
    transformed: Program,
    sizes=(8, 11, 16),
    steps: int = 1,
    param: str = "N",
) -> None:
    """Bit-exact output equality across several input sizes.

    Split arrays are compared against the matching slice of the original.
    """
    validate(transformed)
    for n in sizes:
        ref = run_program(original, {param: n}, steps=steps)
        out = run_program(transformed, {param: n}, steps=steps)
        for name, data in ref.items():
            if name in out:
                assert np.array_equal(data, out[name]), (
                    f"array {name} differs at {param}={n}"
                )
            else:
                for decl in transformed.arrays:
                    if decl.origin == name and decl.origin_slice is not None:
                        expected = resolve_slice(ref, decl.origin_slice)
                        assert np.array_equal(expected, out[decl.name]), (
                            f"slice {decl.name} of {name} differs at {param}={n}"
                        )


def resolve_slice(ref: dict, origin) -> np.ndarray:
    """Apply a (possibly chained) SliceOrigin to the original array data."""
    chain = []
    step = origin
    while step is not None:
        chain.append(step)
        step = step.parent
    data = ref[chain[-1].name]
    for step in reversed(chain):
        data = np.take(data, step.index - 1, axis=step.dim)
    return data


@pytest.fixture
def fig4a_program() -> Program:
    """The paper's Fig. 4(a) input."""
    return build(
        """
        program fig4a
        param N
        real A[N], B[N]
        for i = 3, N - 2 { A[i] = f(A[i - 1]) }
        A[1] = A[N]
        A[2] = 0.0
        for i = 3, N { B[i] = g(A[i - 2]) }
        """
    )


@pytest.fixture
def fig4b_program() -> Program:
    """The paper's Fig. 4(b): loops that cannot be fused."""
    return build(
        """
        program fig4b
        param N
        real A[N]
        for i = 2, N { A[i] = f(A[i - 1]) }
        A[1] = A[N]
        for i = 2, N { A[i] = f(A[i - 1]) }
        """
    )


@pytest.fixture
def fig7_program() -> Program:
    """The paper's Fig. 7 multi-level regrouping example."""
    return build(
        """
        program fig7
        param N
        real A[N, N], B[N, N], C[N, N]
        for i = 1, N {
          for j = 1, N { A[j, i] = g(A[j, i], B[j, i]) }
          for j = 1, N { C[j, i] = t(C[j, i]) }
        }
        """
    )


@pytest.fixture
def stencil_2d() -> Program:
    """A pair of fusible 2-D stencil nests."""
    return build(
        """
        program stencil
        param N
        real A[N, N], B[N, N], C[N, N]
        for i = 1, N {
          for j = 2, N { A[j, i] = f(A[j - 1, i], B[j, i]) }
        }
        for i = 1, N {
          for j = 2, N - 1 { C[j, i] = g(A[j, i], A[j + 1, i]) }
        }
        """
    )
