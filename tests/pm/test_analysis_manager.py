"""Unit tests for the identity-keyed analysis cache."""

import pytest

from repro.analysis.manager import (
    ANALYSIS_KINDS,
    AnalysisManager,
    analysis_scope,
    cached_loop_accesses,
    current_analysis_manager,
)
from repro.lang import parse, validate

SOURCE = """
program cachecheck
param N
real A[N], B[N]
for i = 1, N { A[i] = f(B[i]) }
for i = 1, N { B[i] = g(A[i]) }
"""


def build():
    return validate(parse(SOURCE))


def test_get_memoizes_and_counts():
    am = AnalysisManager()
    calls = []

    def compute():
        calls.append(1)
        return "value"

    obj = object()
    key = (id(obj),)
    assert am.get("loop_accesses", key, (obj,), compute) == "value"
    assert am.get("loop_accesses", key, (obj,), compute) == "value"
    assert len(calls) == 1
    assert am.hits == 1 and am.misses == 1
    assert am.kind_stats["loop_accesses"]["hits"] == 1
    assert am.kind_stats["loop_accesses"]["misses"] == 1


def test_unknown_kind_rejected():
    am = AnalysisManager()
    with pytest.raises(ValueError, match="unknown analysis kind"):
        am.get("bogus", (), (), lambda: None)
    with pytest.raises(ValueError, match="unknown analysis kinds"):
        am.invalidate(frozenset({"bogus"}))


def test_preserved_kind_survives_invalidation():
    am = AnalysisManager()
    obj = object()
    am.get("loop_accesses", (id(obj),), (obj,), lambda: "kept")
    am.get("dependence_graph", (id(obj),), (obj,), lambda: "dropped")
    am.invalidate(frozenset({"loop_accesses"}))
    assert am.cached_kinds() == {"loop_accesses": 1}
    assert am.evictions == 1
    assert am.kind_stats["dependence_graph"]["evictions"] == 1
    # the preserved entry still hits; the evicted one recomputes
    assert am.get("loop_accesses", (id(obj),), (obj,), lambda: "new") == "kept"
    assert (
        am.get("dependence_graph", (id(obj),), (obj,), lambda: "recomputed")
        == "recomputed"
    )
    assert am.hits == 1
    assert am.misses == 3


def test_invalidate_all_by_default():
    am = AnalysisManager()
    for kind in ANALYSIS_KINDS:
        am.get(kind, ("k",), (), lambda: kind)
    am.invalidate()
    assert am.cached_kinds() == {}
    assert am.evictions == len(ANALYSIS_KINDS)


def test_scope_installs_and_restores():
    assert current_analysis_manager() is None
    am = AnalysisManager()
    with analysis_scope(am) as installed:
        assert installed is am
        assert current_analysis_manager() is am
        inner = AnalysisManager()
        with analysis_scope(inner):
            assert current_analysis_manager() is inner
        assert current_analysis_manager() is am
    assert current_analysis_manager() is None


def test_cached_entry_point_passthrough_without_manager():
    p = build()
    loop = p.body[0]
    # no active manager: plain computation, same result as with one
    direct = cached_loop_accesses(loop, ())
    am = AnalysisManager()
    with analysis_scope(am):
        first = cached_loop_accesses(loop, ())
        second = cached_loop_accesses(loop, ())
    assert am.hits == 1 and am.misses == 1
    assert first is second  # memoized object
    assert [str(a) for a in direct] == [str(a) for a in first]


def test_identity_keying_distinguishes_equal_objects():
    p = build()
    q = build()  # structurally identical, different objects
    am = AnalysisManager()
    with analysis_scope(am):
        cached_loop_accesses(p.body[0], ())
        cached_loop_accesses(q.body[0], ())
    assert am.misses == 2 and am.hits == 0
