"""RunRequest(pipeline=...) and analysis-cache effectiveness end to end."""

import pytest

from repro.harness import RunRequest, run
from repro.lang import TransformError
from repro.obs import metrics
from repro.programs import registry

SMALL = {"N": 16}


def _hits_delta(fn):
    before = metrics.snapshot()["counters"].get("analysis.cache.hits", 0)
    out = fn()
    after = metrics.snapshot()["counters"].get("analysis.cache.hits", 0)
    return out, after - before


class TestRunPipeline:
    def test_named_pipeline_matches_level(self):
        by_level = run(
            RunRequest(program="adi", levels=("new",), params=SMALL, steps=1)
        )
        by_pipeline = run(
            RunRequest(program="adi", pipeline="new", params=SMALL, steps=1)
        )
        assert by_pipeline[0].level == "new"
        assert by_level.rows() == by_pipeline.rows()

    def test_pass_list_pipeline_runs_serially(self):
        result = run(
            RunRequest(
                program="adi",
                pipeline=["inline", "simplify"],
                params=SMALL,
                steps=1,
            )
        )
        assert result[0].level == "passes:inline,simplify"
        # pass-list compile leaves loops unfused; same trace as noopt
        noopt = run(
            RunRequest(program="adi", levels=("noopt",), params=SMALL, steps=1)
        )
        assert result[0].trace_length == noopt[0].trace_length

    def test_spec_object_pipeline(self):
        from repro.core.pm import PIPELINES

        result = run(
            RunRequest(
                program="adi", pipeline=PIPELINES["fusion"], params=SMALL, steps=1
            )
        )
        assert result[0].level == "fusion"

    def test_bogus_pipeline_and_level_names_raise(self):
        with pytest.raises(TransformError, match="known levels"):
            run(RunRequest(program="adi", pipeline="fusionXYZ", params=SMALL))
        with pytest.raises(TransformError, match="known levels"):
            run(RunRequest(program="adi", levels=("fusionBOGUS",), params=SMALL))


class TestCacheEffectiveness:
    """ISSUE acceptance: compiling ``new`` shows analysis-cache hits > 0."""

    @pytest.mark.parametrize("app", ["adi", "sp"])
    def test_compile_new_hits_analysis_cache(self, app):
        from repro.core import compile_variant
        from repro.lang import validate

        program = validate(registry.get(app).build())
        _, hits = _hits_delta(lambda: compile_variant(program, "new"))
        assert hits > 0

    def test_no_manager_means_no_cache_traffic(self):
        from repro.analysis.manager import cached_loop_accesses
        from repro.lang import parse, validate

        p = validate(
            parse(
                "program plain\nparam N\nreal A[N]\n"
                "for i = 1, N { A[i] = f(A[i]) }\n"
            )
        )
        before = metrics.snapshot()["counters"]
        cached_loop_accesses(p.body[0], ())
        after = metrics.snapshot()["counters"]
        for key in ("analysis.cache.hits", "analysis.cache.misses"):
            assert after.get(key, 0) == before.get(key, 0)
