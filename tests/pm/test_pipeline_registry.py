"""The declarative pipeline registry and the pass-metadata contract."""

import pytest

from repro.core import OPT_LEVELS, compile_variant
from repro.core.pm import (
    ALL_KINDS,
    PASSES,
    PIPELINES,
    FunctionPass,
    PassManager,
    custom_pipeline,
    declares_metadata,
    effective_preserves,
    get_pass,
    known_levels,
    lint_passes,
    register_pass,
    resolve_pipeline,
)
from repro.lang import TransformError, parse, validate

SOURCE = """
program reg
param N
real A[N], B[N]
for i = 1, N { A[i] = f(B[i]) }
for i = 1, N { B[i] = g(A[i]) }
"""


def build():
    return validate(parse(SOURCE))


# -- strict level validation (the old loose matching accepted these) ----------


@pytest.mark.parametrize("bogus", ["fusionXYZ", "noopt+regroup", "fusion2", ""])
def test_bogus_level_names_rejected(bogus):
    with pytest.raises(TransformError) as exc:
        resolve_pipeline(bogus)
    assert "known levels" in str(exc.value)
    for level in OPT_LEVELS:
        assert level in str(exc.value)


def test_compile_variant_rejects_bogus_level():
    with pytest.raises(TransformError, match="fusionXYZ"):
        compile_variant(build(), "fusionXYZ")


def test_every_opt_level_is_registered():
    assert set(OPT_LEVELS) <= set(known_levels())
    for name in ("fusion+regroup", "fusion1+regroup"):
        assert name in known_levels()


def test_compound_spellings_still_compile():
    variant = compile_variant(build(), "fusion1+regroup")
    assert variant.level == "fusion1+regroup"
    assert variant.regroup is not None


# -- pipeline resolution ------------------------------------------------------


def test_resolve_accepts_spec_and_pass_lists():
    spec = resolve_pipeline("new")
    assert resolve_pipeline(spec) is spec
    custom = resolve_pipeline(["inline", "simplify"])
    assert custom.pass_names() == ("inline", "simplify")
    assert custom.name == "passes:inline,simplify"


def test_custom_pipeline_validates_pass_names():
    with pytest.raises(TransformError, match="registered passes"):
        custom_pipeline(["inline", "nonsense"])
    with pytest.raises(TransformError, match="at least one pass"):
        custom_pipeline([])


def test_custom_pipeline_compiles():
    from repro.core import compile_pipeline

    variant = compile_pipeline(build(), ["inline", "simplify"])
    assert variant.level == "passes:inline,simplify"
    assert variant.program.loop_count() == 2  # nothing fused


def test_pipeline_specs_describe_their_passes():
    spec = PIPELINES["new"]
    names = spec.pass_names()
    assert names[0] == "inline"
    assert "fusion" in names and "regroup" in names
    assert names.index("fusion") < names.index("regroup")


# -- pass registry and metadata ----------------------------------------------


def test_registry_rejects_duplicates_and_unknown_kinds():
    with pytest.raises(TransformError, match="already registered"):
        register_pass(FunctionPass("inline", lambda p, ctx: p))
    with pytest.raises(TransformError, match="unknown analysis kinds"):
        register_pass(
            FunctionPass(
                "brandnew", lambda p, ctx: p, preserves=frozenset({"bogus"})
            )
        )
    assert "brandnew" not in PASSES


def test_get_pass_error_lists_registered():
    with pytest.raises(TransformError, match="registered passes"):
        get_pass("nonsense")


def test_effective_preserves_semantics():
    preserves = FunctionPass("a", None, preserves=frozenset({"alignment"}))
    invalidates = FunctionPass("b", None, invalidates=frozenset({"alignment"}))
    neither = FunctionPass("c", None)
    assert effective_preserves(preserves) == frozenset({"alignment"})
    assert effective_preserves(invalidates) == ALL_KINDS - {"alignment"}
    assert effective_preserves(neither) == frozenset()
    assert declares_metadata(preserves) and declares_metadata(invalidates)
    assert not declares_metadata(neither)


def test_all_builtin_passes_declare_metadata():
    missing = [n for n, p in PASSES.items() if not declares_metadata(p)]
    assert missing == []


def test_lint_passes_flags_missing_metadata():
    assert not len(lint_passes())  # built-ins are clean
    undeclared = FunctionPass("lint_probe", lambda p, ctx: p)
    register_pass(undeclared)
    try:
        bag = lint_passes()
        codes = [d.code for d in bag]
        assert "L201" in codes
        assert any("lint_probe" in d.message for d in bag)
        assert not bag.has_errors()  # a warning, not an error
    finally:
        del PASSES["lint_probe"]


# -- manager-level invalidation wiring ---------------------------------------


def test_manager_invalidates_per_pass_metadata():
    from repro.analysis.manager import AnalysisManager
    from repro.core.pm.passes import PassContext
    from repro.core.pm.pipelines import PassStep

    am = AnalysisManager()
    manager = PassManager()
    ctx = PassContext(level="fusion")
    obj = object()
    am.get("loop_accesses", (id(obj),), (obj,), lambda: "accesses")
    am.get("dependence_graph", (id(obj),), (obj,), lambda: "graph")
    # distribute preserves the object analyses but not dependence graphs
    manager.run_passes(build(), (PassStep("distribute"),), ctx, am)
    assert am.cached_kinds() == {"loop_accesses": 1}
    # inline invalidates everything
    manager.run_passes(build(), (PassStep("inline"),), ctx, am)
    assert am.cached_kinds() == {}


def test_pipeline_run_populates_stage_checkpoints():
    variant = PassManager().run(build(), PIPELINES["fusion"])
    assert list(variant.stages) == ["input", "preliminary", "fused"]
    assert variant.level == "fusion"
