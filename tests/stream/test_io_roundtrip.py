"""Round-trip properties for the stream serialization formats.

The binary writer picks between raw and delta-RLE per chunk and the CSV
path is the tolerant import funnel, so both are exercised under
hypothesis-generated streams — including streams long enough to span
several chunks, so chunk-boundary reassembly is covered, and strided
affine-looking sequences that trigger the RLE encoding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream import (
    AddressStream,
    StreamFormatError,
    StreamMeta,
    read_stream,
    read_stream_binary,
    read_stream_csv,
    read_stream_text,
    write_stream,
    write_stream_csv,
)


@st.composite
def streams(draw):
    """Random streams biased toward the shapes real tracers emit."""
    n = draw(st.integers(min_value=0, max_value=600))
    kind = draw(st.sampled_from(["random", "strided", "blocks"]))
    if kind == "random":
        addresses = np.asarray(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=2**40),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=np.int64,
        )
    elif kind == "strided":
        base = draw(st.integers(min_value=0, max_value=2**30))
        stride = draw(st.integers(min_value=-512, max_value=512))
        addresses = base + stride * np.arange(n, dtype=np.int64)
    else:  # a few constant-stride blocks stitched together, RLE's sweet spot
        parts = []
        remaining = n
        while remaining > 0:
            m = min(remaining, draw(st.integers(min_value=1, max_value=200)))
            base = draw(st.integers(min_value=0, max_value=2**30))
            stride = draw(st.integers(min_value=-64, max_value=64))
            parts.append(base + stride * np.arange(m, dtype=np.int64))
            remaining -= m
        addresses = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
    writes = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    if draw(st.booleans()):
        refs = np.asarray(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=40), min_size=n, max_size=n
                )
            ),
            dtype=np.int32,
        )
    else:
        refs = None
    meta = StreamMeta(
        name=draw(st.sampled_from(["t", "adi/new", "x y"])),
        source=draw(st.sampled_from(["interp", "codegen", "import"])),
        unit=draw(st.sampled_from(["bytes", "elements"])),
        line_bytes=draw(st.sampled_from([None, 32, 128])),
        elem_bytes=draw(st.sampled_from([None, 4, 8])),
    )
    return AddressStream(addresses, writes, refs, meta=meta)


def _assert_equal(a: AddressStream, b: AddressStream, check_meta=True) -> None:
    assert np.array_equal(a.addresses, b.addresses)
    assert np.array_equal(a.writes, b.writes)
    if a.ref_ids is None:
        assert b.ref_ids is None
    else:
        assert np.array_equal(a.ref_ids, b.ref_ids)
    assert a.fingerprint() == b.fingerprint()
    if check_meta:
        assert a.meta == b.meta


class TestBinaryRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(stream=streams(), chunk_size=st.sampled_from([7, 64, 1 << 16]))
    def test_roundtrip(self, tmp_path_factory, stream, chunk_size):
        path = tmp_path_factory.mktemp("ast") / "s.ast"
        write_stream(path, stream, chunk_size=chunk_size)
        _assert_equal(stream, read_stream_binary(path))
        # the auto-detecting reader lands on the same decoder
        _assert_equal(stream, read_stream(path))

    def test_chunk_boundaries_do_not_merge_runs(self, tmp_path):
        # one long constant-stride run crossing many tiny chunks
        stream = AddressStream(np.arange(1000, dtype=np.int64) * 8)
        path = write_stream(tmp_path / "s.ast", stream, chunk_size=3)
        _assert_equal(stream, read_stream_binary(path))

    def test_not_binary_raises(self, tmp_path):
        path = tmp_path / "s.ast"
        path.write_bytes(b"this is not a stream at all")
        with pytest.raises(StreamFormatError):
            read_stream_binary(path)

    def test_truncated_file_raises(self, tmp_path):
        stream = AddressStream(np.arange(500, dtype=np.int64))
        path = write_stream(tmp_path / "s.ast", stream)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(StreamFormatError):
            read_stream_binary(path)

    def test_delta_rle_beats_raw_on_affine_streams(self, tmp_path):
        affine = AddressStream(np.arange(50_000, dtype=np.int64) * 8)
        path = write_stream(tmp_path / "a.ast", affine)
        assert path.stat().st_size < 50_000 * 8 // 100  # >100x smaller


class TestCsvRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(stream=streams())
    def test_roundtrip(self, tmp_path_factory, stream):
        path = tmp_path_factory.mktemp("csv") / "s.csv"
        write_stream_csv(path, stream)
        for loaded in (read_stream_csv(path), read_stream(path)):
            assert np.array_equal(stream.addresses, loaded.addresses)
            assert np.array_equal(stream.writes, loaded.writes)
            if stream.ref_ids is not None and len(stream):
                assert np.array_equal(stream.ref_ids, loaded.ref_ids)
                assert stream.fingerprint() == loaded.fingerprint()
            assert stream.meta == loaded.meta

    def test_bare_address_list(self):
        loaded = read_stream_text("100\n200\n300\n")
        assert np.array_equal(loaded.addresses, [100, 200, 300])
        assert not loaded.writes.any()
        assert loaded.ref_ids is None
        assert loaded.meta.source == "import"
        assert not loaded.meta.has_geometry

    def test_hex_addresses_and_header(self):
        loaded = read_stream_text("address,write\n0x40,1\n0X80,0\n")
        assert np.array_equal(loaded.addresses, [0x40, 0x80])
        assert loaded.writes[0] and not loaded.writes[1]

    def test_bad_address_mid_file_raises(self):
        with pytest.raises(StreamFormatError):
            read_stream_text("10\nbogus\n")

    def test_bad_write_flag_raises(self):
        with pytest.raises(StreamFormatError):
            read_stream_text("10,yes\n")

    def test_metadata_comment_restores_geometry(self):
        meta = StreamMeta(
            name="ext", source="import", unit="bytes", line_bytes=64, elem_bytes=4
        )
        stream = AddressStream(np.asarray([0, 64, 128], dtype=np.int64), meta=meta)
        text = "\n".join(
            [
                "# repro-address-stream v1 "
                + __import__("json").dumps(meta.to_json()),
                "0",
                "64",
                "128",
            ]
        )
        loaded = read_stream_text(text)
        assert loaded.meta == meta
        assert loaded.meta.has_geometry
        assert np.array_equal(loaded.addresses, stream.addresses)
