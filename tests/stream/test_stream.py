"""Unit coverage for the AddressStream type and its builder."""

import numpy as np
import pytest

from repro.core import compile_variant
from repro.lang import parse, validate
from repro.interp import trace_program
from repro.stream import AddressStream, StreamBuilder, StreamMeta

SOURCE = """
program s
param N
real A[N], B[N]
for i = 1, N { A[i] = f(B[i]) }
for i = 2, N { B[i] = g(A[i - 1]) }
"""


def _stream(n=100):
    addresses = np.arange(n, dtype=np.int64) * 8
    writes = np.arange(n) % 3 == 0
    refs = (np.arange(n) % 5).astype(np.int32)
    return AddressStream(addresses, writes, refs)


class TestAddressStream:
    def test_columns_and_len(self):
        s = _stream()
        assert len(s) == 100
        assert s.addresses.dtype == np.int64
        assert s.writes.dtype == bool
        assert s.ref_ids.dtype == np.int32

    def test_default_write_column_is_all_loads(self):
        s = AddressStream(np.arange(5, dtype=np.int64))
        assert not s.writes.any()
        assert s.ref_ids is None

    def test_column_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            AddressStream(np.arange(5, dtype=np.int64), np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            AddressStream(
                np.arange(5, dtype=np.int64), ref_ids=np.zeros(4, dtype=np.int32)
            )

    def test_array_protocol_yields_addresses(self):
        s = _stream()
        assert np.array_equal(np.asarray(s), s.addresses)
        assert np.asarray(s, dtype=np.float64).dtype == np.float64

    def test_lines_requires_a_line_size(self):
        s = _stream()
        with pytest.raises(ValueError):
            s.lines()
        assert np.array_equal(s.lines(32), s.addresses // 32)
        s.meta.line_bytes = 128
        assert np.array_equal(s.lines(), s.addresses // 128)

    def test_chunks_cover_the_stream_in_order(self):
        s = _stream(100)
        chunks = list(s.chunks(32))
        assert [len(a) for a, _, _ in chunks] == [32, 32, 32, 4]
        assert np.array_equal(np.concatenate([a for a, _, _ in chunks]), s.addresses)

    def test_fingerprint_is_content_addressed(self):
        a, b = _stream(), _stream()
        assert a.fingerprint() == b.fingerprint()
        c = AddressStream(a.addresses + 8, a.writes, a.ref_ids)
        assert c.fingerprint() != a.fingerprint()
        # the write column participates
        d = AddressStream(a.addresses, ~a.writes, a.ref_ids)
        assert d.fingerprint() != a.fingerprint()

    def test_concat(self):
        a, b = _stream(10), _stream(7)
        cat = AddressStream.concat([a, b])
        assert len(cat) == 17
        assert np.array_equal(cat.addresses[:10], a.addresses)
        assert cat.ref_ids is not None
        # refs drop out when any part lacks them
        bare = AddressStream(np.arange(3, dtype=np.int64))
        assert AddressStream.concat([a, bare]).ref_ids is None

    def test_meta_unit_validated(self):
        with pytest.raises(ValueError):
            StreamMeta(unit="cachelines")

    def test_meta_json_roundtrip(self):
        meta = StreamMeta(
            name="t", source="interp", unit="bytes", line_bytes=128, elem_bytes=8
        )
        assert StreamMeta.from_json(meta.to_json()) == meta
        assert meta.has_geometry
        assert not StreamMeta().has_geometry


class TestFromTrace:
    def test_with_layout_yields_byte_addresses(self):
        program = validate(parse(SOURCE))
        variant = compile_variant(program, "noopt")
        params = {"N": 16}
        trace = trace_program(variant.program, params)
        layout = variant.layout(params)
        stream = AddressStream.from_trace(trace, layout, name="s", source="interp")
        assert np.array_equal(
            stream.addresses, layout.addresses(trace, in_bytes=True)
        )
        assert np.array_equal(stream.writes, trace.writes)
        assert stream.meta.unit == "bytes" and stream.meta.has_geometry

    def test_without_layout_yields_element_keys(self):
        program = validate(parse(SOURCE))
        trace = trace_program(program, {"N": 16})
        stream = AddressStream.from_trace(trace)
        assert stream.meta.unit == "elements"
        assert np.array_equal(stream.addresses, trace.global_keys())


class TestStreamBuilder:
    def test_appends_concatenate(self):
        b = StreamBuilder(StreamMeta(name="built"))
        b.append(np.arange(4), np.array([1, 0, 0, 1], dtype=bool), np.zeros(4))
        b.append(np.arange(4, 8), None, np.ones(4))
        s = b.build()
        assert len(s) == 8
        assert np.array_equal(s.addresses, np.arange(8))
        assert s.writes[0] and not s.writes[4]
        assert s.ref_ids is not None and s.meta.name == "built"

    def test_refs_downgrade_when_a_chunk_lacks_them(self):
        b = StreamBuilder()
        b.append(np.arange(4), ref_ids=np.zeros(4))
        b.append(np.arange(4))  # no refs here
        assert b.build().ref_ids is None

    def test_empty_build(self):
        s = StreamBuilder().build()
        assert len(s) == 0
