"""Fused-loop code generation tests (segmented + guarded emitters)."""

from repro.core.fusion import FusionUnit, unit_to_stmts
from repro.lang import Affine, Guard, Loop, validate
from repro.transform.subst import FreshNames

from conftest import assert_same_semantics, build


def _loops(source):
    p = build(source)
    return p, [s for s in p.body if isinstance(s, Loop)]


def test_simple_loop_passthrough():
    p, (loop,) = _loops(
        "program t\nparam N\nreal A[N]\nfor i = 1, N { A[i] = 0.0 }"
    )
    unit = FusionUnit.from_loop(loop, p.params)
    out = unit_to_stmts(unit, FreshNames({"N"}))
    assert out == [loop]


def test_segmented_emission_with_shift():
    p, (l1, l2) = _loops(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N { A[i] = 1.0 }
        for i = 1, N - 1 { B[i] = g(A[i + 1]) }
        """
    )
    unit = FusionUnit.from_loop(l1, p.params).fuse_with(
        FusionUnit.from_loop(l2, p.params), 1
    )
    out = unit_to_stmts(unit, FreshNames({"N"}))
    # segments: [1,1] (only l1), [2,N] (both)
    loops = [s for s in out if isinstance(s, Loop)]
    assert len(loops) == 1  # the width-1 prologue is inlined straight-line
    transformed = p.with_body(tuple(out))
    assert_same_semantics(p, transformed)


def test_embed_lands_in_own_width1_segment():
    p, (l1,) = _loops(
        "program t\nparam N\nreal A[N]\nfor i = 1, N { A[i] = f(A[i]) }"
    )
    stmt = build("program s\nparam N\nreal A[N]\nA[3] = 9.0").body[0]
    unit = FusionUnit.from_loop(l1, p.params).with_embed_last(
        [stmt], Affine.constant(3)
    )
    out = unit_to_stmts(unit, FreshNames({"N"}))
    flat = []
    for s in out:
        flat.extend([s] if isinstance(s, Loop) else [s])
    # expect: loop [1,2], inline i=3 body + stmt, loop [4,N]
    assert any(not isinstance(s, Loop) for s in out)
    transformed = p.with_body(tuple(out))
    validate(transformed)


def test_guarded_fallback_on_incomparable_bounds():
    p = build(
        """
        program t
        param N, M
        real A[N], B[N]
        for i = 1, N { A[i] = 1.0 }
        for i = 1, M { B[i] = 2.0 }
        """
    )
    l1, l2 = p.body
    unit = FusionUnit.from_loop(l1, p.params).fuse_with(
        FusionUnit.from_loop(l2, p.params), 0
    )
    # N vs M order unknown -> hull unknown -> cannot emit
    assert unit.hull(8) is None


def test_guarded_fallback_emits_guards():
    # comparable hull but incomparable interior breakpoints
    p = build(
        """
        program t
        param N, M
        real A[N, N + M], B[N, N + M]
        for i = 1, N + M { A[1, i] = 1.0 }
        for i = 1, N { B[1, i] = 2.0 }
        for i = 1, M { B[2, i] = 3.0 }
        """
    )
    l1, l2, l3 = p.body
    unit = (
        FusionUnit.from_loop(l1, p.params)
        .fuse_with(FusionUnit.from_loop(l2, p.params), 0)
        .fuse_with(FusionUnit.from_loop(l3, p.params), 0)
    )
    out = unit_to_stmts(unit, FreshNames({"N", "M"}))
    assert len(out) == 1
    assert any(isinstance(s, Guard) for s in out[0].body)
    transformed = p.with_body(tuple(out))
    validate(transformed)
    import numpy as np
    from repro.interp import run_program

    for n, m in ((8, 9), (12, 8)):
        ref = run_program(p, {"N": n, "M": m})
        got = run_program(transformed, {"N": n, "M": m})
        assert all(np.array_equal(ref[k], got[k]) for k in ref)


def test_member_label_propagates():
    p, (l1, l2) = _loops(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N { A[i] = 1.0 }
        for i = 2, N { B[i] = g(A[i]) }
        """
    )
    unit = FusionUnit.from_loop(l1, p.params).fuse_with(
        FusionUnit.from_loop(l2, p.params), 0
    )
    out = unit_to_stmts(unit, FreshNames({"N"}), label="fused42")
    labels = {s.label for s in out if isinstance(s, Loop)}
    assert "fused42" in labels
