"""FusionUnit mechanics and multi-level report tests."""

from repro.core.fusion import FusionUnit, fuse_program
from repro.lang import Affine, validate

from conftest import build


def two_loops():
    p = build(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N { A[i] = 1.0 }
        for i = 2, N { B[i] = g(A[i]) }
        """
    )
    l1, l2 = p.body
    return p, l1, l2


class TestUnit:
    def test_from_loop_simple(self):
        p, l1, _ = two_loops()
        unit = FusionUnit.from_loop(l1, p.params)
        assert unit.is_simple_loop()
        assert not unit.is_loose
        assert unit.loop_count() == 1

    def test_fuse_with_shifts_members(self):
        p, l1, l2 = two_loops()
        u = FusionUnit.from_loop(l1, p.params).fuse_with(
            FusionUnit.from_loop(l2, p.params), 3
        )
        assert [m.shift for m in u.members] == [0, 3]
        assert u.members[1].fused_lo == Affine.constant(5)
        assert u.members[1].fused_hi == Affine.var("N") + 3
        assert not u.is_simple_loop()

    def test_embeds_track_points(self):
        p, l1, _ = two_loops()
        stmt = build("program s\nparam N\nreal A[N]\nA[1] = 0.0").body[0]
        u = FusionUnit.from_loop(l1, p.params).with_embed_last(
            [stmt], Affine.var("N")
        )
        assert len(u.embeds) == 1
        lo, hi = u.hull(8)
        assert lo == Affine.constant(1)
        assert hi == Affine.var("N")

    def test_accesses_shift_with_alignment(self):
        p, l1, l2 = two_loops()
        u = FusionUnit.from_loop(l1, p.params).fuse_with(
            FusionUnit.from_loop(l2, p.params), -1
        )
        # B's write B[i] with shift -1 appears as offset +1 in the fused frame
        b_writes = [a for a in u.accesses() if a.array == "B" and a.is_write]
        assert b_writes[0].dims[0].value == Affine.constant(1)

    def test_describe_mentions_shifts(self):
        p, l1, l2 = two_loops()
        u = FusionUnit.from_loop(l1, p.params).fuse_with(
            FusionUnit.from_loop(l2, p.params), 2
        )
        assert "@+2" in u.describe()


class TestReports:
    def test_multilevel_report_structure(self, stencil_2d):
        _, report = fuse_program(stencil_2d)
        assert report.loops_before(1) == 2
        assert report.total_events() >= 2
        text = report.summary()
        assert "level 1" in text and "fused units" in text

    def test_peel_event_recorded_for_adi(self):
        from repro.core import preliminary
        from repro.programs import APPLICATIONS

        p = validate(APPLICATIONS["adi"].build())
        _, report = fuse_program(preliminary(p))
        kinds = {e.kind for lr in report.levels for e in lr.events}
        assert "peel" in kinds  # boundary splitting exercised
        assert "fuse" in kinds
