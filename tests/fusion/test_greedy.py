"""Reuse-based fusion tests: the Fig. 4/6 behaviours end to end."""


from repro.core.fusion import FusionOptions, fuse_program
from repro.lang import validate

from conftest import assert_same_semantics, build


def fused_of(program, **kw):
    fused, report = fuse_program(program, **kw)
    validate(fused)
    return fused, report


def test_fig4a_fuses_and_preserves_semantics(fig4a_program):
    fused, report = fused_of(fig4a_program)
    assert_same_semantics(fig4a_program, fused, sizes=(8, 10, 16, 33))
    # both loops end up in one unit; boundary statements embedded/peeled
    assert report.levels[0].units_after < 2 + 1
    kinds = {e.kind for e in report.levels[0].events}
    assert "fuse" in kinds and "embed" in kinds


def test_fig4b_is_infusible(fig4b_program):
    fused, report = fused_of(fig4b_program)
    assert fused.loop_count() == 2  # untouched
    assert report.levels[0].infusible
    assert_same_semantics(fig4b_program, fused, sizes=(9, 17))


def test_negative_alignment():
    p = build(
        """
        program t
        param N
        real A[N], B[N]
        for i = 2, N { A[i] = f(A[i - 1]) }
        for i = 4, N { B[i] = g(A[i - 2]) }
        """
    )
    fused, report = fused_of(p)
    assert_same_semantics(p, fused)
    detail = next(e.detail for e in report.levels[0].events if e.kind == "fuse")
    assert "-2" in detail  # shifted up by two iterations, like the paper


def test_positive_alignment_delays_consumer():
    p = build(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N - 2 { A[i] = 1.0 }
        for i = 1, N - 2 { B[i] = g(A[i + 2]) }
        """
    )
    fused, report = fused_of(p)
    assert_same_semantics(p, fused)
    detail = next(e.detail for e in report.levels[0].events if e.kind == "fuse")
    assert "+2" in detail


def test_peeling_boundary_iterations():
    # the second loop's first iteration reads a cell produced by a
    # column-boundary loop over the other dimension: peel + fuse
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N]
        for i = 1, N {
          for j = 2, N { A[j, i] = f(A[j - 1, i]) }
        }
        for j = 1, N { B[j, 1] = g(A[j, 1]) }
        for i = 2, N {
          for j = 1, N { B[j, i] = h(B[j, i - 1], A[j, i]) }
        }
        """
    )
    fused, report = fused_of(p)
    assert_same_semantics(p, fused)


def test_multilevel_fusion(stencil_2d):
    fused, report = fused_of(stencil_2d)
    assert_same_semantics(stencil_2d, fused)
    assert len(report.levels) >= 2
    assert report.levels[0].units_after == 1
    # inner level fused too
    assert any(e.kind == "fuse" for e in report.levels[1].events)


def test_max_levels_one_keeps_inner_loops(stencil_2d):
    fused, report = fused_of(stencil_2d, max_levels=1)
    assert_same_semantics(stencil_2d, fused)
    assert len([lv for lv in report.levels if lv.events]) == 1


def test_embedding_disabled():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 3, N { A[i] = f(A[i - 1]) }
        A[2] = 0.0
        """
    )
    fused, report = fused_of(p, options=FusionOptions(embedding=False))
    assert_same_semantics(p, fused)
    assert not any(e.kind == "embed" for e in report.levels[0].events)
    assert len(fused.body) == 2  # statement left in place


def test_alignment_disabled_blocks_shifted_fusion():
    p = build(
        """
        program t
        param N
        real A[N], B[N]
        for i = 2, N { A[i] = f(A[i - 1]) }
        for i = 3, N { B[i] = g(A[i - 2]) }
        """
    )
    fused, report = fused_of(p, options=FusionOptions(alignment=False))
    assert_same_semantics(p, fused)
    assert fused.loop_count() == 2  # would need alignment -2


def test_identical_bounds_restriction():
    p = build(
        """
        program t
        param N
        real A[N], B[N]
        for i = 1, N { A[i] = 1.0 }
        for i = 1, N - 1 { B[i] = g(A[i]) }
        """
    )
    restricted = FusionOptions(
        embedding=False, alignment=False, splitting=False, identical_bounds=True
    )
    fused, _ = fused_of(p, options=restricted)
    assert fused.loop_count() == 2  # bounds differ -> no fusion
    # but the full algorithm fuses them
    fused2, _ = fused_of(p)
    assert_same_semantics(p, fused2)
    assert fused2.loop_count() < 2 + 1


def test_intervening_nonsharing_statement_is_overtaken():
    p = build(
        """
        program t
        param N
        real A[N], B[N], C[N]
        for i = 1, N { A[i] = 1.0 }
        C[1] = 5.0
        for i = 1, N { B[i] = g(A[i]) }
        """
    )
    fused, report = fused_of(p)
    assert_same_semantics(p, fused)
    assert any(e.kind == "fuse" for e in report.levels[0].events)


def test_scalar_dependence_blocks_fusion():
    p = build(
        """
        program t
        param N
        real A[N], B[N]
        scalar t
        for i = 1, N { t = f(A[i], t) }
        for i = 1, N { B[i] = g(t, B[i]) }
        """
    )
    fused, _ = fused_of(p)
    assert_same_semantics(p, fused)
    assert fused.loop_count() == 2  # the reduction serializes


def test_frame_name_collision_renamed():
    # the second loop binds "i" inside a nest whose outer index is "k";
    # fusing with a loop named "i" must alpha-rename
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N]
        for i = 1, N {
          for j = 1, N { A[j, i] = 1.0 }
        }
        for k = 1, N {
          for i = 1, N { B[i, k] = g(A[i, k]) }
        }
        """
    )
    fused, _ = fused_of(p)
    assert_same_semantics(p, fused)
