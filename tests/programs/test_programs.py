"""Benchmark-program structural tests (Fig. 9 fidelity)."""

import pytest

from repro.lang import validate
from repro.programs import APPLICATIONS, STUDY_PROGRAMS, build_fft, get


@pytest.mark.parametrize("name", sorted(APPLICATIONS))
def test_builds_and_validates(name):
    p = validate(APPLICATIONS[name].build())
    assert p.name == name


def test_adi_structure():
    p = APPLICATIONS["adi"].build()
    assert p.array_count() == 3
    lo, hi = p.nest_depth_range()
    assert (lo, hi) == (1, 2)
    assert p.loop_count() >= 8  # the paper's 8 sweep loops + boundaries


def test_swim_structure():
    p = APPLICATIONS["swim"].build()
    assert p.array_count() == 15
    assert p.loop_nest_count() == 8
    assert p.nest_depth_range() == (1, 2)


def test_tomcatv_structure():
    p = APPLICATIONS["tomcatv"].build()
    assert p.array_count() == 7
    assert p.loop_nest_count() == 5


def test_sp_structure():
    p = APPLICATIONS["sp"].build()
    assert p.array_count() == 15
    lo, hi = p.nest_depth_range()
    assert (lo, hi) == (3, 4)  # component loops give the 4th level
    assert p.loop_nest_count() >= 15


def test_sp_array_splitting_count():
    from repro.transform import split_arrays, unroll_small_loops, inline_procedures

    p = APPLICATIONS["sp"].build()
    q = split_arrays(unroll_small_loops(inline_procedures(p)))
    # the paper: 15 arrays -> 42 after splitting; our mini-SP's component
    # dims give 5+5+5+3 slices + 11 plain = 29
    assert q.array_count() == 29
    assert q.array_count() > p.array_count()


def test_fft_power_of_two_only():
    validate(build_fft(64))
    with pytest.raises(ValueError):
        build_fft(48)
    with pytest.raises(ValueError):
        build_fft(2)


def test_fft_stage_count():
    import math

    n = 128
    p = build_fft(n)
    assert p.loop_nest_count() == int(math.log2(n))


def test_sweep3d_octants_and_angles():
    from repro.programs.sweep3d import ANGLES

    p = validate(STUDY_PROGRAMS["sweep3d"].build())
    assert p.loop_nest_count() == 4 * ANGLES


def test_registry_get():
    assert get("adi").name == "adi"
    assert get("sweep3d").name == "sweep3d"
    with pytest.raises(KeyError):
        get("nope")


@pytest.mark.parametrize("name", sorted(APPLICATIONS))
def test_paper_facts_present(name):
    facts = APPLICATIONS[name].paper_facts
    assert "arrays" in facts and "loop_nests" in facts
