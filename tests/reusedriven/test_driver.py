"""Reuse-driven execution tests (paper §2.2, Fig. 2)."""

import numpy as np
import pytest

from repro.interp import trace_program
from repro.locality import ReuseHistogram, reuse_distances
from repro.reusedriven import build_dataflow, producers_by_instruction, reuse_driven_order

from conftest import build

TWO_PASS = """
program t
param N
real A[N], B[N]
for i = 1, N { A[i] = f(A[i]) }
for i = 1, N { B[i] = g(A[i], B[i]) }
"""


def traced(src, n=64):
    p = build(src)
    return trace_program(p, {"N": n}, with_instr=True)


class TestDataflow:
    def test_producers(self):
        t = traced(TWO_PASS, 8)
        info = build_dataflow(t)
        producers = producers_by_instruction(t, info)
        # instruction i in the second loop consumes A[i] from the first
        for k in range(8):
            assert k in producers[8 + k]

    def test_levels(self):
        t = traced(TWO_PASS, 8)
        info = build_dataflow(t)
        assert set(info.level[:8]) == {0}
        assert set(info.level[8:]) == {1}

    def test_chain_levels(self):
        t = traced(
            """
            program t
            param N
            real A[N]
            for i = 2, N { A[i] = f(A[i - 1]) }
            """,
            8,
        )
        info = build_dataflow(t)
        assert list(info.level) == list(range(7))  # a pure recurrence chain

    def test_next_use(self):
        t = traced(TWO_PASS, 8)
        info = build_dataflow(t)
        # instruction 0 writes A[1]; its next use is instruction 8
        assert info.next_use[0] == 8
        assert info.next_use[15] == -1  # last instruction has none

    def test_ideal_order_is_level_major(self):
        t = traced(TWO_PASS, 8)
        info = build_dataflow(t)
        levels = info.level[info.ideal_order]
        assert np.all(np.diff(levels) >= 0)

    def test_requires_instruction_ids(self):
        p = build(TWO_PASS)
        t = trace_program(p, {"N": 8})  # no instr ids
        from repro.lang import AnalysisError

        with pytest.raises(AnalysisError):
            build_dataflow(t)


class TestReuseDriven:
    def test_permutation(self):
        t = traced(TWO_PASS)
        res = reuse_driven_order(t)
        assert len(res.trace) == len(t)
        assert sorted(res.execution_order.tolist()) == list(
            range(int(t.instr_ids[-1]) + 1)
        )

    def test_flow_dependences_preserved(self):
        t = traced(TWO_PASS)
        res = reuse_driven_order(t)
        info = build_dataflow(t)
        producers = producers_by_instruction(t, info)
        pos = {instr: k for k, instr in enumerate(res.execution_order.tolist())}
        for consumer, prods in enumerate(producers):
            for p in prods:
                assert pos[p] < pos[consumer], (p, consumer)

    def test_brings_reuses_together(self):
        t = traced(TWO_PASS, 256)
        before = ReuseHistogram.from_distances(reuse_distances(t.global_keys()))
        res = reuse_driven_order(t)
        after = ReuseHistogram.from_distances(
            reuse_distances(res.trace.global_keys())
        )
        assert after.mean_log_distance() < before.mean_log_distance()
        # the cross-loop reuse of A collapses to O(1) distance
        assert after.fraction_ge(64) < 0.1 * max(before.fraction_ge(64), 1e-9)

    def test_forced_instructions_counted(self):
        t = traced(TWO_PASS, 32)
        res = reuse_driven_order(t)
        assert res.forced > 0  # second-loop instructions pulled forward

    def test_wavefront_chains_resist_reordering(self):
        # Two identical wavefront sweeps: every instruction's closest
        # reuse is its own successor, so Fig. 2's greedy chasing
        # reproduces program order — reuse-driven execution cannot improve
        # dependence-chained kernels (the paper sees the same on FFT).
        t = traced(
            """
            program t
            param N
            real PHI[N, N], S[N, N]
            for i = 2, N {
              for j = 2, N { PHI[j, i] = w(PHI[j - 1, i], PHI[j, i - 1], S[j, i]) }
            }
            for i = 2, N {
              for j = 2, N { PHI[j, i] = w(PHI[j - 1, i], PHI[j, i - 1], S[j, i]) }
            }
            """,
            24,
        )
        before = ReuseHistogram.from_distances(reuse_distances(t.global_keys()))
        res = reuse_driven_order(t)
        after = ReuseHistogram.from_distances(
            reuse_distances(res.trace.global_keys())
        )
        # no degradation, and (for this kernel) no improvement either
        assert after.fraction_ge(256) <= before.fraction_ge(256)
        assert after.counts.tolist() == before.counts.tolist()
