"""State initialization and slice-provenance tests."""

import numpy as np
import pytest

from repro.interp import init_arrays, check_params
from repro.lang import ArrayDecl, Param, Program, SliceOrigin, ValidationError


def prog(arrays):
    return Program("t", ("N",), tuple(arrays), ())


def test_deterministic_per_name():
    p = prog([ArrayDecl("A", (Param("N"),)), ArrayDecl("B", (Param("N"),))])
    s1 = init_arrays(p, {"N": 8})
    s2 = init_arrays(p, {"N": 8})
    assert np.array_equal(s1["A"], s2["A"])
    assert not np.array_equal(s1["A"], s1["B"])


def test_adding_arrays_does_not_perturb_existing():
    p1 = prog([ArrayDecl("A", (Param("N"),))])
    p2 = prog([ArrayDecl("Z", (Param("N"),)), ArrayDecl("A", (Param("N"),))])
    assert np.array_equal(
        init_arrays(p1, {"N": 16})["A"], init_arrays(p2, {"N": 16})["A"]
    )


def test_slice_origin_reconstructs_parent_data():
    full = prog([ArrayDecl("U", (Param("N"), Param("N"), Param("N")))])
    ref = init_arrays(full, {"N": 6})["U"]
    # U_2 = U[:, 1, :] in 0-based terms (split dim 1, index 2, extent 6)
    split = prog(
        [
            ArrayDecl(
                "U_2",
                (Param("N"), Param("N")),
                origin="U",
                origin_slice=SliceOrigin("U", 1, 2, 6),
            )
        ]
    )
    got = init_arrays(split, {"N": 6})["U_2"]
    assert np.array_equal(got, ref[:, 1, :])


def test_chained_slice_origin():
    full = prog([ArrayDecl("U", (Param("N"), Param("N"), Param("N")))])
    ref = init_arrays(full, {"N": 5})["U"]
    chain = SliceOrigin("U_3", 0, 2, 5, parent=SliceOrigin("U", 2, 3, 5))
    split = prog(
        [ArrayDecl("X", (Param("N"),), origin="U", origin_slice=chain)]
    )
    got = init_arrays(split, {"N": 5})["X"]
    # parent slice first (dim 2, index 3), then leaf slice (dim 0, index 2)
    assert np.array_equal(got, ref[:, :, 2][1, :])


def test_check_params():
    p = prog([ArrayDecl("A", (Param("N"),))])
    assert check_params(p, {"N": 4}) == {"N": 4}
    with pytest.raises(ValidationError):
        check_params(p, {})
    with pytest.raises(ValidationError):
        check_params(p, {"N": -1})
