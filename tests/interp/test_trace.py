"""AccessTrace container tests."""

import numpy as np

from repro.interp import TraceBuilder
from repro.interp.trace import RefInfo


def make_trace():
    builder = TraceBuilder(
        ["A", "B"], [10, 20], [RefInfo(0, 0, "A", False, "A[i]")], with_instr=True
    )
    builder.append(
        np.array([0, 1, 0]),
        np.array([3, 5, 3]),
        np.array([False, True, True]),
        np.array([0, 0, 0]),
        np.array([0, 0, 1]),
    )
    builder.append(
        np.array([1]),
        np.array([19]),
        np.array([False]),
        np.array([0]),
        np.array([2]),
    )
    return builder.build()


def test_builder_concatenates():
    t = make_trace()
    assert len(t) == 4
    assert t.array_names == ("A", "B")
    assert list(t.elems) == [3, 5, 3, 19]


def test_global_keys_offsets_by_array_size():
    t = make_trace()
    keys = t.global_keys()
    # A occupies [0, 10), B occupies [10, 30)
    assert list(keys) == [3, 15, 3, 29]


def test_reordered_permutes_all_columns():
    t = make_trace()
    order = np.array([3, 2, 1, 0])
    r = t.reordered(order)
    assert list(r.elems) == [19, 3, 5, 3]
    assert list(r.instr_ids) == [2, 1, 0, 0]
    assert list(r.array_ids) == [1, 0, 1, 0]


def test_slice():
    t = make_trace()
    s = t.slice(1, 3)
    assert len(s) == 2
    assert list(s.elems) == [5, 3]


def test_iter_accesses():
    t = make_trace()
    rows = list(t.iter_accesses())
    assert rows[0] == ("A", 3, False)
    assert rows[3] == ("B", 19, False)
