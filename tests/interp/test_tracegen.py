"""Trace-generator tests, including an interpreter-derived oracle."""

import numpy as np
import pytest

from repro.interp import trace_program
from repro.interp.interpreter import Interpreter
from repro.lang import AnalysisError, ArrayRef, Assign, array_reads, parse

from conftest import build


def reference_trace(program, params, steps=1):
    """Oracle: a tracing subclass of the reference interpreter.

    Records (array, 0-based subscripts, is_write) in execution order with
    the same per-statement convention as the trace generator: reads in
    expression order, then the write.
    """
    events = []

    class Tracer(Interpreter):
        def exec_stmt(self, stmt):
            if isinstance(stmt, Assign):
                for ref in array_reads(stmt.expr):
                    events.append((ref.array, self._subscripts(ref), False))
                if isinstance(stmt.target, ArrayRef):
                    tgt = (stmt.target.array, self._subscripts(stmt.target), True)
                    self.arrays[stmt.target.array][tgt[1]] = self.eval(stmt.expr)
                    events.append(tgt)
                else:
                    self.scalars[stmt.target.name] = self.eval(stmt.expr)
            else:
                super().exec_stmt(stmt)

    Tracer(program, params).run(steps=steps)
    return events


def canonical(program, params, name, subscripts):
    """Column-major canonical element index for a subscript tuple."""
    shape = program.array(name).shape(params)
    lin, stride = 0, 1
    for k, idx in enumerate(subscripts):
        lin += idx * stride
        stride *= shape[k]
    return lin


PROGRAMS = [
    """
    program simple
    param N
    real A[N], B[N]
    for i = 2, N { A[i] = f(A[i - 1], B[i]) }
    """,
    """
    program guarded
    param N
    real A[N], B[N]
    for i = 1, N {
      when i in [1, N] { A[i] = 0.0 } else { A[i] = g(B[i], B[i - 1]) }
    }
    """,
    """
    program nested
    param N
    real A[N, N]
    for i = 1, N {
      A[1, i] = 0.0
      for j = 2, N { A[j, i] = f(A[j - 1, i]) }
    }
    """,
    """
    program multiguard
    param N
    real A[N]
    for i = 1, N {
      when i in [2:4] { A[i] = 1.0 }
      when i in [3:N - 1] { A[i] = f(A[i - 1]) } else { A[1] = A[i] }
    }
    """,
]


@pytest.mark.parametrize("source", PROGRAMS)
@pytest.mark.parametrize("n", [8, 13])
def test_trace_matches_interpreter_order(source, n):
    p = build(source)
    params = {"N": n}
    trace = trace_program(p, params)
    oracle = reference_trace(p, params)
    assert len(trace) == len(oracle)
    for k, (name, elem, wr) in enumerate(trace.iter_accesses()):
        oname, osubs, owr = oracle[k]
        assert name == oname, f"access {k}: array {name} != {oname}"
        assert wr == owr, f"access {k}: write flag"
        assert elem == canonical(p, params, oname, osubs), f"access {k}: element"


def test_instruction_ids_monotone_and_grouped():
    p = build(PROGRAMS[0])
    t = trace_program(p, {"N": 10}, with_instr=True)
    diffs = np.diff(t.instr_ids)
    assert np.all(diffs >= 0)
    # 3 accesses per instruction in this kernel
    _, counts = np.unique(t.instr_ids, return_counts=True)
    assert set(counts) == {3}


def test_steps_concatenates():
    p = build(PROGRAMS[0])
    t1 = trace_program(p, {"N": 10}, steps=1)
    t2 = trace_program(p, {"N": 10}, steps=2)
    assert len(t2) == 2 * len(t1)
    assert np.array_equal(t2.elems[: len(t1)], t1.elems)


def test_call_requires_inlining():
    p = build(
        """
        program t
        param N
        real A[N]
        proc z(k) { A[k] = 0.0 }
        call z(1)
        """
    )
    with pytest.raises(AnalysisError, match="inlined"):
        trace_program(p, {"N": 8})


def test_out_of_bounds_detected():
    p = parse(
        """
        program t
        param N
        real A[N]
        for i = 1, N { A[i + 1] = 0.0 }
        """
    )
    with pytest.raises(AnalysisError, match="out-of-bounds"):
        trace_program(p, {"N": 8})


def test_global_keys_disjoint_between_arrays():
    p = build(PROGRAMS[0])
    t = trace_program(p, {"N": 10})
    keys_a = set(t.global_keys()[t.array_ids == 0].tolist())
    keys_b = set(t.global_keys()[t.array_ids == 1].tolist())
    assert not keys_a & keys_b
