"""Deterministic function table tests."""

import math

from repro.interp import DEFAULT_FUNCTIONS, FunctionTable


def test_deterministic_across_tables():
    a = FunctionTable().call("f", [1.0, 2.0])
    b = FunctionTable().call("f", [1.0, 2.0])
    assert a == b


def test_distinct_by_name():
    f = DEFAULT_FUNCTIONS.call("f", [1.0, 2.0])
    g = DEFAULT_FUNCTIONS.call("g", [1.0, 2.0])
    assert f != g


def test_distinct_by_arity():
    one = DEFAULT_FUNCTIONS.call("f", [1.0])
    two = DEFAULT_FUNCTIONS.call("f", [1.0, 0.0])
    assert one != two


def test_contraction_keeps_values_bounded():
    # iterating any generated function must not blow up
    x = 1.0
    for _ in range(10_000):
        x = DEFAULT_FUNCTIONS.call("fwd", [x, 0.3, -0.2])
    assert abs(x) < 10.0


def test_builtins():
    assert DEFAULT_FUNCTIONS.call("sqrt", [4.0]) == 2.0
    assert DEFAULT_FUNCTIONS.call("sqrt", [-4.0]) == 2.0  # |x| guard
    assert DEFAULT_FUNCTIONS.call("abs", [-3.0]) == 3.0
    assert DEFAULT_FUNCTIONS.call("max", [1.0, 5.0]) == 5.0
    assert DEFAULT_FUNCTIONS.call("exp", [100.0]) < 1e-10  # bounded on purpose
    assert math.isclose(DEFAULT_FUNCTIONS.call("sin", [0.0]), 0.0)
