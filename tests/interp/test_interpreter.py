"""Interpreter unit tests."""

import numpy as np
import pytest

from repro.interp import run_program
from repro.lang import ValidationError, parse

from conftest import build


def test_simple_loop_effect():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 1, N { A[i] = 2.0 }
        """
    )
    out = run_program(p, {"N": 5})
    assert np.all(out["A"] == 2.0)


def test_recurrence_order():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 2, N { A[i] = A[i - 1] + 1.0 }
        """
    )
    out = run_program(p, {"N": 6})
    base = out["A"][0]
    assert np.allclose(out["A"], base + np.arange(6))


def test_guard_branches():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 1, N {
          when i in [1, N] { A[i] = 0.0 } else { A[i] = 1.0 }
        }
        """
    )
    out = run_program(p, {"N": 8})
    assert out["A"][0] == 0.0 and out["A"][-1] == 0.0
    assert np.all(out["A"][1:-1] == 1.0)


def test_procedure_call():
    p = build(
        """
        program t
        param N
        real A[N]
        proc setk(k) { A[k] = 9.0 }
        call setk(2)
        call setk(N)
        """
    )
    out = run_program(p, {"N": 8})
    assert out["A"][1] == 9.0 and out["A"][7] == 9.0


def test_determinism_across_runs():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 2, N { A[i] = f(A[i - 1]) }
        """
    )
    a = run_program(p, {"N": 12})
    b = run_program(p, {"N": 12})
    assert np.array_equal(a["A"], b["A"])


def test_seed_changes_initial_state():
    p = build("program t\nparam N\nreal A[N]\nA[1] = A[2]")
    a = run_program(p, {"N": 8}, seed=1)
    b = run_program(p, {"N": 8}, seed=2)
    assert not np.array_equal(a["A"], b["A"])


def test_steps_repeat_body():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 1, N { A[i] = A[i] + 1.0 }
        """
    )
    one = run_program(p, {"N": 4}, steps=1)
    three = run_program(p, {"N": 4}, steps=3)
    assert np.allclose(three["A"] - one["A"], 2.0)


def test_out_of_bounds_raises():
    p = build(
        """
        program t
        param N
        real A[N]
        for i = 1, N { A[i] = A[i] }
        """
    )
    bad = parse(
        """
        program t
        param N
        real A[N]
        for i = 1, N { A[i] = A[i + 1] }
        """
    )
    run_program(p, {"N": 5})
    with pytest.raises(ValidationError, match="outside"):
        run_program(bad, {"N": 5})


def test_unbound_parameter_rejected():
    p = build("program t\nparam N\nreal A[N]\nA[1] = 0.0")
    with pytest.raises(ValidationError, match="unbound"):
        run_program(p, {})


def test_nonpositive_parameter_rejected():
    p = build("program t\nparam N\nreal A[N]\nA[1] = 0.0")
    with pytest.raises(ValidationError, match="positive"):
        run_program(p, {"N": 0})


def test_scalars():
    p = build(
        """
        program t
        param N
        real A[N]
        scalar t
        t = 3.0
        for i = 1, N { A[i] = t }
        """
    )
    out = run_program(p, {"N": 4})
    assert np.all(out["A"] == 3.0)
