"""Baseline comparator tests (SGI-like and McKinley fusion)."""

import numpy as np

from repro.core import compile_variant
from repro.interp import run_program
from repro.lang import validate
from repro.programs import APPLICATIONS

from conftest import build


def test_sgi_keeps_top_level_structure():
    p = validate(APPLICATIONS["swim"].build())
    variant = compile_variant(p, "sgi")
    # the SGI stand-in never fuses across top-level nests
    assert len(variant.program.body) == len(p.body)


def test_sgi_pads_layout():
    p = validate(APPLICATIONS["tomcatv"].build())
    sgi = compile_variant(p, "sgi").layout({"N": 16})
    noopt = compile_variant(p, "noopt").layout({"N": 16})
    assert sgi.total_elems > noopt.total_elems  # padding holes
    sgi.check_bijective()


def test_sgi_fuses_within_a_nest():
    p = build(
        """
        program t
        param N
        real A[N, N], B[N, N]
        for i = 1, N {
          for j = 1, N { A[j, i] = f(A[j, i]) }
          for j = 1, N { B[j, i] = g(A[j, i], B[j, i]) }
        }
        """
    )
    variant = compile_variant(p, "sgi")
    # intra-nest: the two j loops share bounds and need no alignment
    assert variant.program.loop_count() == 2
    ref = run_program(p, {"N": 10})
    out = run_program(variant.program, {"N": 10})
    assert all(np.array_equal(ref[k], out[k]) for k in ref)


def test_mckinley_fuses_only_identical_bounds():
    p = build(
        """
        program t
        param N
        real A[N], B[N], C[N]
        for i = 1, N { A[i] = 1.0 }
        for i = 1, N { B[i] = g(A[i]) }
        for i = 2, N { C[i] = g(B[i]) }
        """
    )
    variant = compile_variant(p, "mckinley")
    # first two fuse (same bounds, forward dep); third has different bounds
    assert variant.program.loop_count() == 2
    ref = run_program(p, {"N": 10})
    out = run_program(variant.program, {"N": 10})
    assert all(np.array_equal(ref[k], out[k]) for k in ref)


def test_mckinley_is_weaker_than_full_fusion():
    p = validate(APPLICATIONS["swim"].build())
    mck = compile_variant(p, "mckinley")
    full = compile_variant(p, "fusion")
    mck_units = mck.fusion_report.levels[0].units_after
    full_units = full.fusion_report.levels[0].units_after
    assert full_units < mck_units
