# Developer entry points. `make check` is what CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test self-lint benchmarks

check: lint test self-lint

# ruff is optional in minimal environments; skip (loudly) when absent
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed; skipping style lint (pip install ruff)"; \
	fi

# tier-1: everything but the trace-heavy slow markers
test:
	$(PYTHON) -m pytest -x -q -m "not slow"

# the repo's own lint front door (delegates to ruff when available)
self-lint:
	$(PYTHON) -m repro lint --self

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
