# Developer entry points. `make check` is what CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test self-lint static-lint parallelism-lint smoke benchmarks bench-codegen

check: lint test self-lint static-lint parallelism-lint smoke

# ruff is optional in minimal environments; skip (loudly) when absent
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed; skipping style lint (pip install ruff)"; \
	fi

# tier-1: everything but the trace-heavy slow markers
test:
	$(PYTHON) -m pytest -x -q -m "not slow"

# the repo's own lint front door (delegates to ruff when available)
self-lint:
	$(PYTHON) -m repro lint --self

# predictive-lint gate: legality (V), locality (L), and static (S)
# diagnostics across every registered program must not regress past the
# checked-in baseline (refresh with `repro lint --static --all-apps
# --write-baseline lint-baseline.json` when a change is intentional)
static-lint:
	$(PYTHON) -m repro lint --static --all-apps --baseline lint-baseline.json

# parallelism gate: every loop axis of every registered program must get
# a definitive DOALL / reduction / serial verdict (no unknowns)
parallelism-lint:
	$(PYTHON) -m repro parallelism --all-apps --check

# pass-manager smoke: the pipeline registry enumerates, lints clean, and a
# custom --passes pipeline compiles and simulates end to end
smoke:
	$(PYTHON) -m repro pipeline --list
	$(PYTHON) -m repro pipeline --lint
	$(PYTHON) -m repro report adi --passes inline,simplify -p N=16 --steps 1

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# interpreter-vs-codegen tracer benchmark at the fig-10 sizes; fails if
# the traces are not bit-identical.  Refreshes BENCH_codegen.json.
bench-codegen:
	$(PYTHON) -m repro bench-codegen --json-out BENCH_codegen.json
