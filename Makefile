# Developer entry points. `make check` is what CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test self-lint static-lint parallelism-lint coherence-lint smoke tune-check bandwidth-check benchmarks bench-codegen bench-tune bench-membw

check: lint test self-lint static-lint parallelism-lint coherence-lint smoke tune-check bandwidth-check

# ruff is optional in minimal environments; skip (loudly) when absent
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed; skipping style lint (pip install ruff)"; \
	fi

# tier-1: everything but the trace-heavy slow markers
test:
	$(PYTHON) -m pytest -x -q -m "not slow"

# the repo's own lint front door (delegates to ruff when available)
self-lint:
	$(PYTHON) -m repro lint --self

# predictive-lint gate: legality (V), locality (L), and static (S)
# diagnostics across every registered program must not regress past the
# checked-in baseline (refresh with `repro lint --static --all-apps
# --write-baseline lint-baseline.json` when a change is intentional)
static-lint:
	$(PYTHON) -m repro lint --static --all-apps --baseline lint-baseline.json

# parallelism gate: every loop axis of every registered program must get
# a definitive DOALL / reduction / serial verdict (no unknowns)
parallelism-lint:
	$(PYTHON) -m repro parallelism --all-apps --check

# coherence gate: every registered program gets a static coherence
# profile (invalidation misses, true/false sharing) without error, and
# the checked-in lint baseline has no drift: regenerating it must be a
# bit-for-bit no-op (refresh with `repro lint --static --all-apps
# --write-baseline lint-baseline.json` when a change is intentional)
coherence-lint:
	$(PYTHON) -m repro coherence --all-apps > /dev/null
	@$(PYTHON) -m repro lint --static --all-apps --write-baseline .lint-baseline.tmp.json > /dev/null; \
	if ! cmp -s .lint-baseline.tmp.json lint-baseline.json; then \
		echo "lint-baseline.json drift — current diagnostics differ from the checked-in baseline:"; \
		diff -u lint-baseline.json .lint-baseline.tmp.json | head -40; \
		rm -f .lint-baseline.tmp.json; exit 1; \
	fi; \
	rm -f .lint-baseline.tmp.json; \
	echo "lint-baseline.json is drift-free"

# pass-manager smoke: the pipeline registry enumerates, lints clean, and a
# custom --passes pipeline compiles and simulates end to end
smoke:
	$(PYTHON) -m repro pipeline --list
	$(PYTHON) -m repro pipeline --lint
	$(PYTHON) -m repro report adi --passes inline,simplify -p N=16 --steps 1

# autotuner regression gate: the committed BENCH_tune.json best pipelines
# must never predict more misses than any named level, and every
# prediction cheap enough to recompute (<= 30s committed analysis cost)
# must reproduce under the current analyzer.  Expensive entries (sp's
# fused pipelines) stay frozen; refresh them with `make bench-tune`.
tune-check:
	$(PYTHON) -m repro tune --check --baseline BENCH_tune.json

# effective-bandwidth gate: every committed BENCH_membw.json row (memory
# traffic, DRAM row-buffer behaviour, energy) must reproduce exactly,
# and trace export/import must round-trip to an identical simulation
bandwidth-check:
	$(PYTHON) -m repro bench-membw --check --baseline BENCH_membw.json

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# interpreter-vs-codegen tracer benchmark at the fig-10 sizes; fails if
# the traces are not bit-identical.  Refreshes BENCH_codegen.json.
bench-codegen:
	$(PYTHON) -m repro bench-codegen --json-out BENCH_codegen.json

# refresh the committed autotuning artifact: full grid for the cheap
# programs, reduced grid for sp (its fused symbolic analysis runs for
# minutes; the named levels still bound the search there)
bench-tune:
	$(PYTHON) -m repro tune adi sweep3d fft tomcatv swim --json-out BENCH_tune.json
	$(PYTHON) -m repro tune sp --enablers "" --fusion-levels 0,1 --json-out BENCH_tune.json

# refresh the committed effective-bandwidth artifact (all six programs)
bench-membw:
	$(PYTHON) -m repro bench-membw --json-out BENCH_membw.json
