"""Interleaved multi-thread trace generation (OpenMP-style execution).

The dynamic counterpart of ``repro.static.multicore``: execute a program
the way a ``T``-thread OpenMP runtime would — every top-level nest whose
outermost axis is parallel (DOALL or reduction per the static
parallelism analyzer) is block-partitioned over its outer range, each
thread traces its own chunk, and the per-chunk streams are merged
round-robin ``block`` accesses at a time.  Serial nests run entirely on
thread 0.  An implicit barrier separates consecutive nests (and steps),
exactly like OpenMP's parallel-for join.

Two views come out of a run, both as typed
:class:`~repro.stream.AddressStream` objects in element units (the
canonical global keys — streams support the array protocol, so numpy
consumers see the key column directly):

``merged``
    the interleaved access stream every thread sees — feed it to
    :func:`~repro.locality.reuse_distances` to model a *shared* cache;
``per_thread``
    each thread's own stream (its chunks plus, for thread 0, the serial
    nests) — the *private*-cache view.

Scheduling: ``static`` gives chunk ``t`` to thread ``t`` on every
invocation (affinity preserved, so cross-nest reuse stays on-thread);
``dynamic`` rotates the assignment by one on each parallel nest
invocation — a deterministic stand-in for a work-stealing runtime that
destroys chunk affinity without destroying the partition.

Tracing a nest per (step, thread) re-uses the ordinary
:func:`trace_program` machinery on a single-statement program; all array
declarations are kept, so ``global_keys`` agree across every segment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence

import numpy as np

from ..lang import Loop, Program
from ..obs import metrics, span
from ..stream import AddressStream
from .tracegen import trace_program


@dataclass(frozen=True)
class InterleavedRun:
    """The access streams of one simulated multi-thread execution."""

    program_name: str
    threads: int
    schedule: str
    block: int
    parallel_nests: tuple[int, ...]
    merged: AddressStream  # global keys, round-robin interleaved
    per_thread: tuple[AddressStream, ...]  # each thread's private stream

    @property
    def total(self) -> int:
        return len(self.merged)


def round_robin(
    streams: Sequence[np.ndarray], block: int = 1
) -> np.ndarray:
    """Merge streams round-robin, ``block`` elements per turn.

    Streams of unequal length simply drop out as they drain (threads
    with smaller chunks finish early and wait at the barrier).
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    live = [np.asarray(s, dtype=np.int64) for s in streams if len(s)]
    if not live:
        return np.empty(0, dtype=np.int64)
    if len(live) == 1:
        return live[0]
    out = np.empty(sum(len(s) for s in live), dtype=np.int64)
    pos = [0] * len(live)
    filled = 0
    while filled < out.size:
        for k, s in enumerate(live):
            p = pos[k]
            if p >= len(s):
                continue
            q = min(p + block, len(s))
            out[filled : filled + (q - p)] = s[p:q]
            filled += q - p
            pos[k] = q
    return out


def _chunks(lo: int, hi: int, threads: int) -> list[tuple[int, int]]:
    """OpenMP static block partition of the inclusive range [lo, hi]."""
    n = hi - lo + 1
    if n <= 0:
        return []
    size = -(-n // threads)  # ceil
    out = []
    for t in range(threads):
        a = lo + t * size
        b = min(hi, a + size - 1)
        if a <= b:
            out.append((a, b))
    return out


def interleave_trace(
    program: Program,
    params: Mapping[str, int],
    threads: int,
    steps: int = 1,
    schedule: str = "static",
    block: int = 1,
    parallel_nests: Optional[Sequence[int]] = None,
) -> InterleavedRun:
    """Simulate a ``threads``-way OpenMP-style execution of ``program``.

    ``parallel_nests`` names the top-level statement positions to
    partition; by default the static parallelism analyzer decides
    (every nest whose outermost axis is DOALL or a reduction).
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if schedule not in ("static", "dynamic"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if parallel_nests is None:
        # lazy: repro.static never imports the interpreter, so this
        # direction is the acyclic one — but keep it out of module scope
        from ..static.parallelism import analyze_parallelism

        parallel_nests = analyze_parallelism(
            program, params
        ).parallel_nests()
    parallel = frozenset(parallel_nests)

    with span(
        "interleave-trace",
        program=program.name,
        threads=threads,
        schedule=schedule,
    ):
        merged: list[np.ndarray] = []
        private: list[list[np.ndarray]] = [[] for _ in range(threads)]
        invocation = 0
        for _ in range(steps):
            for k, stmt in enumerate(program.body):
                if (
                    threads > 1
                    and k in parallel
                    and isinstance(stmt, Loop)
                ):
                    keys = _parallel_nest_keys(
                        program, stmt, params, threads, schedule, invocation
                    )
                    invocation += 1
                    for t, stream in enumerate(keys):
                        if len(stream):
                            private[t].append(stream)
                    merged.append(round_robin(keys, block))
                else:
                    keys = trace_program(
                        program.with_body((stmt,)), params
                    ).global_keys()
                    if len(keys):
                        private[0].append(keys)
                        merged.append(keys)
        merged_keys = (
            np.concatenate(merged) if merged else np.empty(0, np.int64)
        )
        per_thread = tuple(
            AddressStream.from_keys(
                np.concatenate(p) if p else np.empty(0, np.int64),
                name=f"{program.name}/t{t}",
            )
            for t, p in enumerate(private)
        )
        metrics.inc("trace.interleaved_runs")
        metrics.inc("trace.interleaved_accesses", int(merged_keys.size))
        return InterleavedRun(
            program_name=program.name,
            threads=threads,
            schedule=schedule,
            block=block,
            parallel_nests=tuple(sorted(parallel)),
            merged=AddressStream.from_keys(
                merged_keys, name=f"{program.name}/shared"
            ),
            per_thread=per_thread,
        )


def _parallel_nest_keys(
    program: Program,
    loop: Loop,
    params: Mapping[str, int],
    threads: int,
    schedule: str,
    invocation: int,
) -> list[np.ndarray]:
    """Per-thread key streams of one partitioned parallel nest."""
    env = dict(params)
    lo = int(loop.lower.affine().evaluate(env))
    hi = int(loop.upper.affine().evaluate(env))
    chunks = _chunks(lo, hi, threads)
    streams = [np.empty(0, dtype=np.int64) for _ in range(threads)]
    for c, (a, b) in enumerate(chunks):
        t = (c + invocation) % threads if schedule == "dynamic" else c
        sub = replace(loop, lower=a, upper=b)
        streams[t] = trace_program(
            program.with_body((sub,)), params
        ).global_keys()
    return streams
