"""Interleaved multi-thread trace generation (OpenMP-style execution).

The dynamic counterpart of ``repro.static.multicore`` and
``repro.static.coherence``: execute a program the way a ``T``-thread
OpenMP runtime would — every top-level nest whose outermost axis is
parallel (DOALL or reduction per the static parallelism analyzer) is
partitioned over its outer range by an OpenMP schedule
(:mod:`repro.static.schedule`: ``static``, ``static,k``, ``guided``,
``dynamic``), each thread traces its own chunks, and the per-chunk
streams are merged round-robin ``block`` accesses at a time.  Serial
nests run entirely on thread 0.  An implicit barrier separates
consecutive nests (and steps), exactly like OpenMP's parallel-for join.

Two views come out of a run, both as typed
:class:`~repro.stream.AddressStream` objects in element units (the
canonical global keys — streams support the array protocol, so numpy
consumers see the key column directly):

``merged``
    the interleaved access stream every thread sees — feed it to
    :func:`~repro.locality.reuse_distances` to model a *shared* cache;
``per_thread``
    each thread's own stream (its chunks plus, for thread 0, the serial
    nests) — the *private*-cache view.

Both views carry the interpreter's write mask, and the merged view also
records which thread issued every access (``merged_threads``), so the
per-line MSI coherence oracle (:mod:`repro.memsim.coherence`) can replay
invalidations over the exact interleaving.

Tracing a nest per (chunk, thread) re-uses the ordinary
:func:`trace_program` machinery on a single-statement program; all array
declarations are kept, so ``global_keys`` agree across every segment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence

import numpy as np

from ..lang import Loop, Program
from ..obs import metrics, span
from ..stream import AddressStream
from .tracegen import trace_program


@dataclass(frozen=True)
class InterleavedRun:
    """The access streams of one simulated multi-thread execution."""

    program_name: str
    threads: int
    schedule: str
    block: int
    parallel_nests: tuple[int, ...]
    merged: AddressStream  # global keys, round-robin interleaved
    per_thread: tuple[AddressStream, ...]  # each thread's private stream
    #: issuing thread of every merged access (int32, aligned with
    #: ``merged``) — the coherence oracle's third column
    merged_threads: np.ndarray

    @property
    def total(self) -> int:
        return len(self.merged)


def _merge_runs(
    lengths: Sequence[int], block: int
) -> list[tuple[int, int, int]]:
    """Round-robin drain order over streams of the given lengths, as
    ``(stream_index, start, stop)`` runs of up to ``block`` accesses.

    Delegates to :func:`repro.static.schedule.round_robin_order` — the
    one definition of the interleaving contract the static coherence
    analyzer also orders by.
    """
    from ..static.schedule import round_robin_order

    return round_robin_order(lengths, block)


def round_robin(
    streams: Sequence[np.ndarray], block: int = 1
) -> np.ndarray:
    """Merge streams round-robin, ``block`` elements per turn."""
    live = [np.asarray(s, dtype=np.int64) for s in streams if len(s)]
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    if not live:
        return np.empty(0, dtype=np.int64)
    if len(live) == 1:
        return live[0]
    out = np.empty(sum(len(s) for s in live), dtype=np.int64)
    filled = 0
    for k, p, q in _merge_runs([len(s) for s in live], block):
        out[filled : filled + (q - p)] = live[k][p:q]
        filled += q - p
    return out


def _chunks(lo: int, hi: int, threads: int) -> list[tuple[int, int]]:
    """OpenMP static block partition of the inclusive range [lo, hi]."""
    from ..static.schedule import schedule_chunks

    per_thread = schedule_chunks(lo, hi, threads, "static")
    return [c[0] for c in per_thread if c]


def interleave_trace(
    program: Program,
    params: Mapping[str, int],
    threads: int,
    steps: int = 1,
    schedule: str = "static",
    block: int = 1,
    parallel_nests: Optional[Sequence[int]] = None,
) -> InterleavedRun:
    """Simulate a ``threads``-way OpenMP-style execution of ``program``.

    ``parallel_nests`` names the top-level statement positions to
    partition; by default the static parallelism analyzer decides
    (every nest whose outermost axis is DOALL or a reduction).
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    # lazy: repro.static never imports the interpreter, so this
    # direction is the acyclic one — but keep it out of module scope
    from ..static.schedule import parse_schedule

    parse_schedule(schedule)  # validate the spec before tracing
    if parallel_nests is None:
        from ..static.parallelism import analyze_parallelism

        parallel_nests = analyze_parallelism(
            program, params
        ).parallel_nests()
    parallel = frozenset(parallel_nests)

    with span(
        "interleave-trace",
        program=program.name,
        threads=threads,
        schedule=schedule,
    ):
        merged_keys: list[np.ndarray] = []
        merged_writes: list[np.ndarray] = []
        merged_tids: list[np.ndarray] = []
        priv_keys: list[list[np.ndarray]] = [[] for _ in range(threads)]
        priv_writes: list[list[np.ndarray]] = [[] for _ in range(threads)]
        invocation = 0
        for _ in range(steps):
            for k, stmt in enumerate(program.body):
                if (
                    threads > 1
                    and k in parallel
                    and isinstance(stmt, Loop)
                ):
                    columns = _parallel_nest_columns(
                        program, stmt, params, threads, schedule, invocation
                    )
                    invocation += 1
                    for t, (keys, writes) in enumerate(columns):
                        if len(keys):
                            priv_keys[t].append(keys)
                            priv_writes[t].append(writes)
                    mk = np.empty(
                        sum(len(c[0]) for c in columns), dtype=np.int64
                    )
                    mw = np.empty(len(mk), dtype=bool)
                    mt = np.empty(len(mk), dtype=np.int32)
                    filled = 0
                    live = [
                        (t, c) for t, c in enumerate(columns) if len(c[0])
                    ]
                    for i, p, q in _merge_runs(
                        [len(c[0]) for _, c in live], block
                    ):
                        t, (ck, cw) = live[i]
                        mk[filled : filled + (q - p)] = ck[p:q]
                        mw[filled : filled + (q - p)] = cw[p:q]
                        mt[filled : filled + (q - p)] = t
                        filled += q - p
                    merged_keys.append(mk)
                    merged_writes.append(mw)
                    merged_tids.append(mt)
                else:
                    trace = trace_program(
                        program.with_body((stmt,)), params
                    )
                    keys = trace.global_keys()
                    if len(keys):
                        writes = np.asarray(trace.writes, dtype=bool)
                        priv_keys[0].append(keys)
                        priv_writes[0].append(writes)
                        merged_keys.append(keys)
                        merged_writes.append(writes)
                        merged_tids.append(
                            np.zeros(len(keys), dtype=np.int32)
                        )
        all_keys = (
            np.concatenate(merged_keys)
            if merged_keys
            else np.empty(0, np.int64)
        )
        all_writes = (
            np.concatenate(merged_writes)
            if merged_writes
            else np.empty(0, bool)
        )
        all_tids = (
            np.concatenate(merged_tids)
            if merged_tids
            else np.empty(0, np.int32)
        )
        per_thread = tuple(
            _elem_stream(
                np.concatenate(p) if p else np.empty(0, np.int64),
                np.concatenate(w) if w else np.empty(0, bool),
                name=f"{program.name}/t{t}",
            )
            for t, (p, w) in enumerate(zip(priv_keys, priv_writes))
        )
        metrics.inc("trace.interleaved_runs")
        metrics.inc("trace.interleaved_accesses", int(all_keys.size))
        return InterleavedRun(
            program_name=program.name,
            threads=threads,
            schedule=schedule,
            block=block,
            parallel_nests=tuple(sorted(parallel)),
            merged=_elem_stream(
                all_keys, all_writes, name=f"{program.name}/shared"
            ),
            per_thread=per_thread,
            merged_threads=all_tids,
        )


def _elem_stream(
    keys: np.ndarray, writes: np.ndarray, name: str
) -> AddressStream:
    """An element-unit stream with the write column preserved."""
    from ..memsim.geometry import ELEM_BYTES
    from ..stream.stream import StreamMeta

    meta = StreamMeta(
        name=name, source="interleave", unit="elements", elem_bytes=ELEM_BYTES
    )
    return AddressStream(keys, writes, meta=meta)


def _parallel_nest_columns(
    program: Program,
    loop: Loop,
    params: Mapping[str, int],
    threads: int,
    schedule: str,
    invocation: int,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-thread ``(keys, writes)`` columns of one partitioned nest.

    A thread's chunks execute back-to-back in chunk order — for
    ``static,k`` and ``guided`` that is the order the deterministic
    dealer hands them out.
    """
    from ..static.schedule import schedule_chunks

    env = dict(params)
    lo = int(loop.lower.affine().evaluate(env))
    hi = int(loop.upper.affine().evaluate(env))
    per_thread = schedule_chunks(lo, hi, threads, schedule, invocation)
    columns: list[tuple[np.ndarray, np.ndarray]] = []
    for chunks in per_thread:
        keys: list[np.ndarray] = []
        writes: list[np.ndarray] = []
        for a, b in chunks:
            sub = replace(loop, lower=a, upper=b)
            trace = trace_program(program.with_body((sub,)), params)
            keys.append(trace.global_keys())
            writes.append(np.asarray(trace.writes, dtype=bool))
        columns.append(
            (
                np.concatenate(keys) if keys else np.empty(0, np.int64),
                np.concatenate(writes) if writes else np.empty(0, bool),
            )
        )
    return columns
