"""Memory access traces.

An :class:`AccessTrace` is the common currency between the trace
generator, the locality analyses, the reuse-driven execution study, and
the cache simulator.  It is a struct-of-arrays over numpy so multi-million
access traces stay compact and the analyses can vectorize.

Canonical element numbering
---------------------------
``elems[t]`` is the *column-major* linear index of the accessed element
within its array (first subscript fastest — Fortran order, matching the
paper).  This numbering is purely canonical: actual memory addresses are
produced later by composing the trace with a
:class:`repro.core.regroup.layout.Layout`, which is how data regrouping
changes cache behaviour without touching the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class RefInfo:
    """Static description of one array reference in the source."""

    ref_id: int
    stmt_id: int
    array: str
    is_write: bool
    text: str


@dataclass
class AccessTrace:
    """A sequence of memory accesses in execution order."""

    array_names: tuple[str, ...]
    array_ids: np.ndarray  # int32, index into array_names
    elems: np.ndarray  # int64, canonical column-major element index
    writes: np.ndarray  # bool
    ref_ids: np.ndarray  # int32, static reference ids
    instr_ids: Optional[np.ndarray] = None  # int64, dynamic instruction ids
    refs: tuple[RefInfo, ...] = ()
    array_sizes: tuple[int, ...] = ()  # elements per array, aligned with names

    def __len__(self) -> int:
        return len(self.elems)

    @property
    def num_arrays(self) -> int:
        return len(self.array_names)

    def global_keys(self) -> np.ndarray:
        """A single int64 key per access, unique per (array, element).

        Arrays are laid out back-to-back in canonical element order, so the
        key doubles as the address under the identity layout.
        """
        bases = np.zeros(len(self.array_names) + 1, dtype=np.int64)
        np.cumsum(np.asarray(self.array_sizes, dtype=np.int64), out=bases[1:])
        return bases[self.array_ids] + self.elems

    def slice(self, start: int, stop: int) -> "AccessTrace":
        return AccessTrace(
            array_names=self.array_names,
            array_ids=self.array_ids[start:stop],
            elems=self.elems[start:stop],
            writes=self.writes[start:stop],
            ref_ids=self.ref_ids[start:stop],
            instr_ids=None if self.instr_ids is None else self.instr_ids[start:stop],
            refs=self.refs,
            array_sizes=self.array_sizes,
        )

    def reordered(self, order: np.ndarray) -> "AccessTrace":
        """A new trace with accesses permuted into ``order``."""
        return AccessTrace(
            array_names=self.array_names,
            array_ids=self.array_ids[order],
            elems=self.elems[order],
            writes=self.writes[order],
            ref_ids=self.ref_ids[order],
            instr_ids=None if self.instr_ids is None else self.instr_ids[order],
            refs=self.refs,
            array_sizes=self.array_sizes,
        )

    def iter_accesses(self) -> Iterator[tuple[str, int, bool]]:
        """Slow row-wise view, for tests and tiny examples only."""
        for aid, elem, wr in zip(self.array_ids, self.elems, self.writes):
            yield self.array_names[aid], int(elem), bool(wr)


class TraceBuilder:
    """Accumulates chunks of accesses and finalizes an :class:`AccessTrace`."""

    def __init__(
        self,
        array_names: Sequence[str],
        array_sizes: Sequence[int],
        refs: Sequence[RefInfo],
        with_instr: bool = False,
    ) -> None:
        self.array_names = tuple(array_names)
        self.array_sizes = tuple(int(s) for s in array_sizes)
        self.refs = tuple(refs)
        self.with_instr = with_instr
        self._array_ids: list[np.ndarray] = []
        self._elems: list[np.ndarray] = []
        self._writes: list[np.ndarray] = []
        self._ref_ids: list[np.ndarray] = []
        self._instr_ids: list[np.ndarray] = []
        self.instr_count = 0

    def append(
        self,
        array_ids: np.ndarray,
        elems: np.ndarray,
        writes: np.ndarray,
        ref_ids: np.ndarray,
        instr_ids: Optional[np.ndarray] = None,
    ) -> None:
        self._array_ids.append(np.asarray(array_ids, dtype=np.int32))
        self._elems.append(np.asarray(elems, dtype=np.int64))
        self._writes.append(np.asarray(writes, dtype=bool))
        self._ref_ids.append(np.asarray(ref_ids, dtype=np.int32))
        if self.with_instr:
            assert instr_ids is not None
            self._instr_ids.append(np.asarray(instr_ids, dtype=np.int64))

    def build(self) -> AccessTrace:
        def cat(chunks: list[np.ndarray], dtype) -> np.ndarray:
            if not chunks:
                return np.empty(0, dtype=dtype)
            return np.concatenate(chunks)

        return AccessTrace(
            array_names=self.array_names,
            array_ids=cat(self._array_ids, np.int32),
            elems=cat(self._elems, np.int64),
            writes=cat(self._writes, bool),
            ref_ids=cat(self._ref_ids, np.int32),
            instr_ids=cat(self._instr_ids, np.int64) if self.with_instr else None,
            refs=self.refs,
            array_sizes=self.array_sizes,
        )
