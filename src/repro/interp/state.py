"""Program state: deterministic array initialization and environments.

Arrays are numpy float64 buffers indexed 1-based (the accessor subtracts
one); the same deterministic initial contents are produced for every run
with the same seed, so "optimized output == original output" is a
meaningful bit-level check.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..lang import Program, ValidationError


def init_arrays(
    program: Program, params: Mapping[str, int], seed: int = 2001
) -> dict[str, np.ndarray]:
    """Allocate and deterministically initialize every declared array.

    Each array gets values from its own :class:`numpy.random.Generator`
    stream keyed by ``(seed, array name)``, so adding or regrouping other
    arrays never perturbs its contents.
    """
    state: dict[str, np.ndarray] = {}
    decls = {a.name: a for a in program.arrays}

    def generate(name: str, shape: tuple[int, ...]) -> np.ndarray:
        rng = np.random.default_rng(
            np.frombuffer(
                f"{seed}/{name}".encode().ljust(16, b"\0")[:16], dtype=np.uint32
            )
        )
        return rng.uniform(-1.0, 1.0, size=shape)

    def origin_data(origin, shape: tuple[int, ...]) -> np.ndarray:
        # reconstruct the pre-split array's data and take the slice, so
        # split programs start from identical values as the original
        full_shape = shape[: origin.dim] + (origin.extent,) + shape[origin.dim :]
        if origin.parent is not None:
            full = origin_data(origin.parent, full_shape)
        else:
            full = generate(origin.name, full_shape)
        return np.take(full, origin.index - 1, axis=origin.dim).copy()

    for decl in program.arrays:
        shape = decl.shape(params)
        if decl.origin_slice is not None:
            state[decl.name] = origin_data(decl.origin_slice, shape)
        else:
            state[decl.name] = generate(decl.name, shape)
    return state


def check_params(program: Program, params: Mapping[str, int]) -> dict[str, int]:
    """Validate that every program parameter is bound to a positive int."""
    bound: dict[str, int] = {}
    for name in program.params:
        if name not in params:
            raise ValidationError(f"parameter {name!r} is unbound")
        value = int(params[name])
        if value <= 0:
            raise ValidationError(f"parameter {name!r} must be positive, got {value}")
        bound[name] = value
    return bound
