"""Execution substrate: value interpreter, deterministic state, traces."""

from .funcs import DEFAULT_FUNCTIONS, FunctionTable
from .interleave import InterleavedRun, interleave_trace, round_robin
from .interpreter import Interpreter, run_program
from .state import check_params, init_arrays
from .trace import AccessTrace, RefInfo, TraceBuilder
from .tracegen import trace_program, trace_stream

__all__ = [
    "AccessTrace",
    "DEFAULT_FUNCTIONS",
    "FunctionTable",
    "InterleavedRun",
    "Interpreter",
    "RefInfo",
    "TraceBuilder",
    "check_params",
    "init_arrays",
    "interleave_trace",
    "round_robin",
    "run_program",
    "trace_program",
    "trace_stream",
]
