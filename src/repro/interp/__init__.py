"""Execution substrate: value interpreter, deterministic state, traces."""

from .funcs import DEFAULT_FUNCTIONS, FunctionTable
from .interpreter import Interpreter, run_program
from .state import check_params, init_arrays
from .trace import AccessTrace, RefInfo, TraceBuilder
from .tracegen import trace_program

__all__ = [
    "AccessTrace",
    "DEFAULT_FUNCTIONS",
    "FunctionTable",
    "Interpreter",
    "RefInfo",
    "TraceBuilder",
    "check_params",
    "init_arrays",
    "run_program",
    "trace_program",
]
