"""Vectorized memory-trace generation.

Generating the address stream does not require computing values: every
subscript is affine in loop indices, so the accesses of an innermost loop
form arithmetic sequences.  The generator compiles a program into a small
internal form (precomputed affine linearizations per reference), walks
outer loops in Python, and emits each innermost loop as a block of numpy
arithmetic — including fused loops with boundary :class:`Guard` statements,
which are segmented into runs where the active statement list is constant.

This is the fast path the guides call for: the per-access work in the hot
dimension is a handful of vectorized ops rather than a Python-level eval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

import numpy as np

from ..lang import (
    Affine,
    AnalysisError,
    ArrayRef,
    Assign,
    CallStmt,
    Guard,
    Loop,
    Program,
    Stmt,
    array_reads,
)
from .state import check_params
from .trace import AccessTrace, RefInfo, TraceBuilder

_FLUSH_THRESHOLD = 65536


@dataclass(frozen=True)
class _CRef:
    ref_id: int
    array_id: int
    is_write: bool
    linform: Affine  # canonical element index as an affine form


@dataclass(frozen=True)
class _CAssign:
    stmt_id: int
    refs: tuple[_CRef, ...]  # reads in expression order, then the write


@dataclass(frozen=True)
class _CGuard:
    index: str
    intervals: tuple[tuple[Affine, Affine], ...]
    body: tuple["_CNode", ...]
    else_body: tuple["_CNode", ...]


@dataclass(frozen=True)
class _CLoop:
    index: str
    lower: Affine
    upper: Affine
    body: tuple["_CNode", ...]
    flat: bool  # True when no loop is nested anywhere below


_CNode = Union[_CAssign, _CGuard, _CLoop]


class _Compiler:
    """Lowers the AST into the internal form, assigning static ids."""

    def __init__(self, program: Program, params: Mapping[str, int]) -> None:
        self.program = program
        self.params = params
        self.array_ids = {a.name: k for k, a in enumerate(program.arrays)}
        self.strides: dict[str, tuple[int, ...]] = {}
        self.sizes: list[int] = []
        for decl in program.arrays:
            shape = decl.shape(params)
            strides = []
            acc = 1
            for extent in shape:  # column-major: first subscript fastest
                strides.append(acc)
                acc *= extent
            self.strides[decl.name] = tuple(strides)
            self.sizes.append(acc)
        self.refs: list[RefInfo] = []
        self.stmt_count = 0
        self._linform_cache: dict[ArrayRef, Affine] = {}

    def linform(self, ref: ArrayRef) -> Affine:
        # memoized and accumulated in a flat dict: textually repeated
        # references are common, and building the sum through Affine
        # operators churns intermediate Fraction tuples
        form = self._linform_cache.get(ref)
        if form is None:
            strides = self.strides[ref.array]
            const = 0
            terms: dict[str, object] = {}
            for k, sub in enumerate(ref.indices):
                a = sub.affine()
                s = strides[k]
                const += a.const * s - s
                for n, c in a.coeffs:
                    terms[n] = terms.get(n, 0) + c * s
            form = self._linform_cache[ref] = Affine.from_terms(const, terms)
        return form

    def make_ref(self, ref: ArrayRef, stmt_id: int, is_write: bool) -> _CRef:
        ref_id = len(self.refs)
        self.refs.append(
            RefInfo(ref_id, stmt_id, ref.array, is_write, str(ref))
        )
        return _CRef(ref_id, self.array_ids[ref.array], is_write, self.linform(ref))

    def compile_body(self, body: Sequence[Stmt]) -> tuple[_CNode, ...]:
        return tuple(self.compile_stmt(s) for s in body)

    def compile_stmt(self, stmt: Stmt) -> _CNode:
        if isinstance(stmt, Assign):
            stmt_id = self.stmt_count
            self.stmt_count += 1
            refs = [
                self.make_ref(r, stmt_id, False) for r in array_reads(stmt.expr)
            ]
            if isinstance(stmt.target, ArrayRef):
                refs.append(self.make_ref(stmt.target, stmt_id, True))
            return _CAssign(stmt_id, tuple(refs))
        if isinstance(stmt, Guard):
            return _CGuard(
                stmt.index,
                tuple((iv.lower, iv.upper) for iv in stmt.intervals),
                self.compile_body(stmt.body),
                self.compile_body(stmt.else_body),
            )
        if isinstance(stmt, Loop):
            body = self.compile_body(stmt.body)
            flat = not any(_contains_loop(n) for n in body)
            return _CLoop(stmt.index, stmt.lower.affine(), stmt.upper.affine(), body, flat)
        if isinstance(stmt, CallStmt):
            raise AnalysisError(
                f"trace generation requires inlined programs; found call to {stmt.proc!r}"
            )
        raise AnalysisError(f"cannot trace statement {type(stmt).__name__}")


def _contains_loop(node: _CNode) -> bool:
    if isinstance(node, _CLoop):
        return True
    if isinstance(node, _CGuard):
        return any(_contains_loop(n) for n in node.body + node.else_body)
    return False


class _Generator:
    def __init__(
        self, compiled: tuple[_CNode, ...], compiler: _Compiler, with_instr: bool
    ) -> None:
        self.compiled = compiled
        self.with_instr = with_instr
        self.builder = TraceBuilder(
            [a.name for a in compiler.program.arrays],
            compiler.sizes,
            compiler.refs,
            with_instr=with_instr,
        )
        self.sizes = compiler.sizes
        self.env: dict[str, int] = {}
        # scalar-path buffers
        self._buf_aid: list[int] = []
        self._buf_elem: list[int] = []
        self._buf_write: list[bool] = []
        self._buf_ref: list[int] = []
        self._buf_instr: list[int] = []

    # -- scalar path -----------------------------------------------------------

    def _flush(self) -> None:
        if not self._buf_aid:
            return
        self.builder.append(
            np.asarray(self._buf_aid, dtype=np.int32),
            np.asarray(self._buf_elem, dtype=np.int64),
            np.asarray(self._buf_write, dtype=bool),
            np.asarray(self._buf_ref, dtype=np.int32),
            np.asarray(self._buf_instr, dtype=np.int64) if self.with_instr else None,
        )
        self._buf_aid.clear()
        self._buf_elem.clear()
        self._buf_write.clear()
        self._buf_ref.clear()
        self._buf_instr.clear()

    def _emit_assign_scalar(self, node: _CAssign) -> None:
        instr = self.builder.instr_count
        self.builder.instr_count += 1
        for ref in node.refs:
            elem = int(ref.linform.evaluate(self.env))
            if not 0 <= elem < self.sizes[ref.array_id]:
                raise AnalysisError(
                    f"out-of-bounds access: element {elem} of array "
                    f"#{ref.array_id} (size {self.sizes[ref.array_id]}) at {self.env}"
                )
            self._buf_aid.append(ref.array_id)
            self._buf_elem.append(elem)
            self._buf_write.append(ref.is_write)
            self._buf_ref.append(ref.ref_id)
            if self.with_instr:
                self._buf_instr.append(instr)
        if len(self._buf_aid) >= _FLUSH_THRESHOLD:
            self._flush()

    # -- walking ------------------------------------------------------------

    def run_body(self, body: tuple[_CNode, ...]) -> None:
        for node in body:
            self.run_node(node)

    def run_node(self, node: _CNode) -> None:
        if isinstance(node, _CAssign):
            self._emit_assign_scalar(node)
        elif isinstance(node, _CGuard):
            value = self.env[node.index]
            if self._member(node, value):
                self.run_body(node.body)
            else:
                self.run_body(node.else_body)
        elif isinstance(node, _CLoop):
            lo = int(node.lower.evaluate(self.env))
            hi = int(node.upper.evaluate(self.env))
            if lo > hi:
                return
            if node.flat:
                self._run_flat(node, lo, hi)
            else:
                for i in range(lo, hi + 1):
                    self.env[node.index] = i
                    self.run_body(node.body)
                del self.env[node.index]
        else:  # pragma: no cover - compiler produces only the above
            raise AnalysisError(f"unknown node {node!r}")

    def _member(self, guard: _CGuard, value: int) -> bool:
        for lo, hi in guard.intervals:
            if lo.evaluate(self.env) <= value <= hi.evaluate(self.env):
                return True
        return False

    # -- vectorized innermost loop ---------------------------------------------

    def _run_flat(self, node: _CLoop, lo: int, hi: int) -> None:
        self._flush()
        for seg_lo, seg_hi, assigns in self._segments(node.body, node.index, lo, hi):
            if not assigns:
                # instructions with no memory accesses still advance time
                self.builder.instr_count += 0
                continue
            self._emit_segment(node.index, seg_lo, seg_hi, assigns)

    def _segments(
        self, body: tuple[_CNode, ...], var: str, lo: int, hi: int
    ) -> list[tuple[int, int, list[_CAssign]]]:
        """Split [lo, hi] into runs on which guard membership is constant."""
        cuts: set[int] = {lo, hi + 1}
        self._collect_cuts(body, var, lo, hi, cuts)
        points = sorted(cuts)
        out: list[tuple[int, int, list[_CAssign]]] = []
        for a, b in zip(points[:-1], points[1:]):
            seg_hi = b - 1
            if a > seg_hi:
                continue
            assigns: list[_CAssign] = []
            self._resolve(body, var, a, assigns)
            out.append((a, seg_hi, assigns))
        return out

    def _collect_cuts(
        self, body: tuple[_CNode, ...], var: str, lo: int, hi: int, cuts: set[int]
    ) -> None:
        for node in body:
            if isinstance(node, _CGuard):
                if node.index == var:
                    for lo_f, hi_f in node.intervals:
                        if lo_f.coeff(var) != 0 or hi_f.coeff(var) != 0:
                            raise AnalysisError(
                                f"guard interval on {var!r} may not reference {var!r}"
                            )
                        a = int(lo_f.evaluate(self.env))
                        b = int(hi_f.evaluate(self.env))
                        if a <= hi and b >= lo:
                            cuts.add(max(a, lo))
                            cuts.add(min(b + 1, hi + 1))
                self._collect_cuts(node.body, var, lo, hi, cuts)
                self._collect_cuts(node.else_body, var, lo, hi, cuts)

    def _resolve(
        self, body: tuple[_CNode, ...], var: str, point: int, out: list[_CAssign]
    ) -> None:
        """Flatten guards for the segment starting at ``point``."""
        for node in body:
            if isinstance(node, _CAssign):
                out.append(node)
            elif isinstance(node, _CGuard):
                if node.index == var:
                    member = any(
                        lo.evaluate(self.env) <= point <= hi.evaluate(self.env)
                        for lo, hi in node.intervals
                    )
                else:
                    member = self._member(node, self.env[node.index])
                self._resolve(node.body if member else node.else_body, var, point, out)
            else:  # pragma: no cover - flat loops contain no loops
                raise AnalysisError("loop inside flat segment")

    def _emit_segment(
        self, var: str, lo: int, hi: int, assigns: list[_CAssign]
    ) -> None:
        n = hi - lo + 1
        cols_aid: list[int] = []
        cols_write: list[bool] = []
        cols_ref: list[int] = []
        cols_stmt_ord: list[int] = []
        specs: list[tuple[int, int]] = []  # (base, slope) per column
        env = self.env
        env[var] = 0
        for ordinal, assign in enumerate(assigns):
            for ref in assign.refs:
                slope = ref.linform.coeff(var)
                base = ref.linform.evaluate(env)
                specs.append((int(base), int(slope)))
                cols_aid.append(ref.array_id)
                cols_write.append(ref.is_write)
                cols_ref.append(ref.ref_id)
                cols_stmt_ord.append(ordinal)
                # endpoint bounds check (linear in var => endpoints suffice)
                for endpoint in (lo, hi):
                    elem = int(base) + int(slope) * endpoint
                    if not 0 <= elem < self.sizes[ref.array_id]:
                        del env[var]
                        raise AnalysisError(
                            f"out-of-bounds access: array #{ref.array_id} element "
                            f"{elem} (size {self.sizes[ref.array_id]}) "
                            f"for {var}={endpoint} in segment [{lo},{hi}]"
                        )
        del env[var]
        ncols = len(specs)
        if ncols == 0:
            return
        iters = np.arange(lo, hi + 1, dtype=np.int64)
        mat = np.empty((n, ncols), dtype=np.int64)
        for c, (base, slope) in enumerate(specs):
            np.multiply(iters, slope, out=mat[:, c])
            mat[:, c] += base
        elems = mat.reshape(-1)
        aids = np.tile(np.asarray(cols_aid, dtype=np.int32), n)
        writes = np.tile(np.asarray(cols_write, dtype=bool), n)
        refids = np.tile(np.asarray(cols_ref, dtype=np.int32), n)
        instr = None
        if self.with_instr:
            nstmts = len(assigns)
            base_instr = self.builder.instr_count
            row_part = (np.arange(n, dtype=np.int64) * nstmts)[:, None]
            instr = (
                base_instr + row_part + np.asarray(cols_stmt_ord, dtype=np.int64)[None, :]
            ).reshape(-1)
            self.builder.instr_count += n * nstmts
        self.builder.append(aids, elems, writes, refids, instr)

    def finish(self) -> AccessTrace:
        self._flush()
        return self.builder.build()


def trace_program(
    program: Program,
    params: Mapping[str, int],
    steps: int = 1,
    with_instr: bool = False,
) -> AccessTrace:
    """Generate the memory access trace of ``program`` at the given size.

    ``steps`` repeats the whole body, modelling the outer time-step loop of
    the paper's iterative applications.  ``with_instr=True`` additionally
    records a dynamic instruction id per access (needed by the
    reuse-driven-execution study).
    """
    bound = check_params(program, params)
    compiler = _Compiler(program, bound)
    compiled = compiler.compile_body(program.body)
    gen = _Generator(compiled, compiler, with_instr)
    gen.env.update(bound)
    for _ in range(steps):
        gen.run_body(compiled)
    return gen.finish()


def trace_stream(
    program: Program,
    params: Mapping[str, int],
    steps: int = 1,
    layout=None,
):
    """The trace as a typed :class:`~repro.stream.AddressStream`.

    With a layout the stream carries concrete byte addresses; without
    one it carries the canonical element keys (identity layout).  This
    is the interpreter producer of the shared stream currency — the
    codegen backend, the interleaver, and trace import emit the same
    type, so every consumer downstream of tracing is producer-agnostic.
    """
    from ..stream import AddressStream

    trace = trace_program(program, params, steps=steps)
    return AddressStream.from_trace(
        trace, layout, name=program.name, source="interp"
    )
