"""Reference interpreter for the mini loop language.

This is the *correctness oracle*: every transformation in the compiler is
tested by executing the program before and after on identical initial
state and comparing the final arrays bit for bit.  It favours clarity
over speed — the vectorized trace generator (:mod:`repro.interp.tracegen`)
is the fast path for locality studies.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Optional

import numpy as np

from ..lang import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Expr,
    Guard,
    IndexVar,
    Loop,
    Param,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
    ValidationError,
)
from .funcs import DEFAULT_FUNCTIONS, FunctionTable
from .state import check_params, init_arrays


class Interpreter:
    """Executes a program over numpy arrays.

    Parameters
    ----------
    program:
        The program to run (should already be validated).
    params:
        Binding of every symbolic parameter to a positive int.
    functions:
        Table resolving opaque function names; defaults to the shared
        deterministic table.
    """

    def __init__(
        self,
        program: Program,
        params: Mapping[str, int],
        functions: FunctionTable = DEFAULT_FUNCTIONS,
    ) -> None:
        self.program = program
        self.params = check_params(program, params)
        self.functions = functions
        self.arrays: dict[str, np.ndarray] = {}
        self.scalars: dict[str, float] = {name: 0.0 for name in program.scalars}
        self._env: dict[str, int] = dict(self.params)
        self._extent_cache: dict[str, tuple[int, ...]] = {}

    # -- public API -----------------------------------------------------------

    def run(self, seed: int = 2001, steps: int = 1) -> dict[str, np.ndarray]:
        """Initialize state, execute the body ``steps`` times, return arrays.

        ``steps`` models the paper's outer time-step loop: all measured
        programs are iterative and re-run the same loop sequence.
        """
        self.arrays = init_arrays(self.program, self.params, seed)
        self.scalars = {name: 0.0 for name in self.program.scalars}
        for decl in self.program.arrays:
            self._extent_cache[decl.name] = decl.shape(self.params)
        for _ in range(steps):
            self.exec_body(self.program.body)
        return self.arrays

    # -- execution ------------------------------------------------------------

    def exec_body(self, body: tuple[Stmt, ...]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            value = self.eval(stmt.expr)
            target = stmt.target
            if isinstance(target, ArrayRef):
                self.arrays[target.array][self._subscripts(target)] = value
            else:
                self.scalars[target.name] = value
        elif isinstance(stmt, Loop):
            lo = self._eval_int(stmt.lower)
            hi = self._eval_int(stmt.upper)
            env = self._env
            for i in range(lo, hi + 1):
                env[stmt.index] = i
                self.exec_body(stmt.body)
            env.pop(stmt.index, None)
        elif isinstance(stmt, Guard):
            value = self._env.get(stmt.index)
            if value is None:
                raise ValidationError(f"guard index {stmt.index!r} unbound")
            if self._in_intervals(stmt, value):
                self.exec_body(stmt.body)
            else:
                self.exec_body(stmt.else_body)
        elif isinstance(stmt, CallStmt):
            proc = self.program.procedure(stmt.proc)
            saved = {}
            for formal, arg in zip(proc.formals, stmt.args):
                saved[formal] = self._env.get(formal)
                self._env[formal] = self._eval_int(arg)
            self.exec_body(proc.body)
            for formal, old in saved.items():
                if old is None:
                    self._env.pop(formal, None)
                else:
                    self._env[formal] = old
        else:
            raise ValidationError(f"cannot execute {type(stmt).__name__}")

    def _in_intervals(self, guard: Guard, value: int) -> bool:
        for iv in guard.intervals:
            lo = iv.lower.evaluate(self._env)
            hi = iv.upper.evaluate(self._env)
            if lo <= value <= hi:
                return True
        return False

    # -- expression evaluation ----------------------------------------------

    def eval(self, expr: Expr) -> float:
        if isinstance(expr, Const):
            return float(expr.value)
        if isinstance(expr, (Param, IndexVar)):
            return float(self._env[expr.name])
        if isinstance(expr, ScalarRef):
            return self.scalars[expr.name]
        if isinstance(expr, ArrayRef):
            return float(self.arrays[expr.array][self._subscripts(expr)])
        if isinstance(expr, BinOp):
            lhs = self.eval(expr.left)
            rhs = self.eval(expr.right)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            if expr.op == "/":
                return lhs / rhs
            raise ValidationError(f"unknown operator {expr.op!r}")
        if isinstance(expr, UnaryOp):
            return -self.eval(expr.operand)
        if isinstance(expr, Call):
            args = [self.eval(a) for a in expr.args]
            return float(self.functions.call(expr.func, args))
        raise ValidationError(f"cannot evaluate {expr!r}")

    def _eval_int(self, expr: Expr) -> int:
        value = expr.affine().evaluate(self._env)
        if isinstance(value, Fraction) and value.denominator != 1:
            raise ValidationError(f"non-integral bound {expr} = {value}")
        return int(value)

    def _subscripts(self, ref: ArrayRef) -> tuple[int, ...]:
        extents = self._extent_cache[ref.array]
        out = []
        for k, sub in enumerate(ref.indices):
            idx = self._eval_int(sub)
            if not 1 <= idx <= extents[k]:
                raise ValidationError(
                    f"{ref.array}[...] dim {k}: index {idx} outside 1..{extents[k]}"
                )
            out.append(idx - 1)
        return tuple(out)


def run_program(
    program: Program,
    params: Mapping[str, int],
    seed: int = 2001,
    steps: int = 1,
    functions: Optional[FunctionTable] = None,
) -> dict[str, np.ndarray]:
    """Convenience wrapper: build an interpreter and run it."""
    interp = Interpreter(program, params, functions or DEFAULT_FUNCTIONS)
    return interp.run(seed=seed, steps=steps)
