"""Deterministic numeric bindings for the opaque functions in programs.

The paper's kernels compute through functions the compiler treats as black
boxes (``f``, ``g``, ...).  The interpreter needs *some* concrete
semantics, and transformation tests need bit-for-bit reproducibility:
fusion and regrouping only reorder whole statement instances (never the
operations inside one expression), so any deterministic pure function
works as an oracle.

Every unknown function name resolves to a linear combination whose
coefficients are derived from a stable hash of ``(name, arity, position)``
— so ``f(x, y)`` and ``g(x, y)`` differ, as do ``f(x)`` and ``f(x, y)``.
Linear-with-decay coefficients (all in (0, 1)) keep iterated stencils from
overflowing even over many sweeps.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Sequence

_BUILTINS: dict[str, Callable[..., float]] = {
    "sqrt": lambda x: math.sqrt(abs(x)),
    "abs": abs,
    "min": min,
    "max": max,
    "exp": lambda x: math.exp(-abs(x)),  # bounded on purpose
    "sin": math.sin,
    "cos": math.cos,
}


def _stable_unit(name: str, arity: int, position: int) -> float:
    """A deterministic value in (0.05, 0.95) from a stable digest."""
    digest = hashlib.sha256(f"{name}/{arity}/{position}".encode()).digest()
    raw = int.from_bytes(digest[:8], "big") / 2**64
    return 0.05 + 0.9 * raw


class FunctionTable:
    """Resolves function names to deterministic numeric implementations."""

    def __init__(self) -> None:
        self._cache: dict[tuple[str, int], Callable[..., float]] = {}
        self._specs: dict[tuple[str, int], tuple[tuple[float, ...], float]] = {}

    def linear_spec(
        self, name: str, arity: int
    ) -> "tuple[tuple[float, ...], float] | None":
        """The ``(coeffs, offset)`` of an opaque function; None for builtins.

        The vectorized executor uses this to replay
        ``sum(c * a for ...) + offset`` as batched float64 ops in the exact
        scalar operation order, keeping results bit-for-bit identical.
        """
        if name in _BUILTINS:
            return None
        key = (name, arity)
        spec = self._specs.get(key)
        if spec is None:
            coeffs = tuple(_stable_unit(name, arity, k) for k in range(arity))
            # scale so the combination is an average-like contraction
            total = sum(coeffs) or 1.0
            coeffs = tuple(c / total for c in coeffs)
            offset = (_stable_unit(name, arity, arity) - 0.5) * 0.01
            spec = self._specs[key] = (coeffs, offset)
        return spec

    def resolve(self, name: str, arity: int) -> Callable[..., float]:
        if name in _BUILTINS:
            return _BUILTINS[name]
        key = (name, arity)
        fn = self._cache.get(key)
        if fn is None:
            coeffs, offset = self.linear_spec(name, arity)

            def fn(*args: float, _coeffs=coeffs, _offset=offset) -> float:
                return sum(c * a for c, a in zip(_coeffs, args)) + _offset

            self._cache[key] = fn
        return fn

    def call(self, name: str, args: Sequence[float]) -> float:
        return self.resolve(name, len(args))(*args)


#: Module-level default table shared by interpreter instances.
DEFAULT_FUNCTIONS = FunctionTable()
