"""Command-line front end: the source-to-source tool as a tool.

Subcommands:

* ``fuse FILE``      — parse a mini-language file, run an optimization
  level (default: the paper's full strategy), print the transformed source;
* ``regroup FILE``   — print the data-regrouping decision and, given ``-p
  N=...``, the concrete placements;
* ``report APP``     — Fig. 10-style measurement of a bundled application
  (or a file) across optimization levels on the scaled machine;
* ``profile APP``    — run one (program, level, params) and print the
  nested stage/pass span tree (seconds + peak MB) plus metric deltas;
* ``runs``           — list and summarize past ``runs/<id>/events.jsonl``
  run logs;
* ``levels``         — list the optimization levels;
* ``apps``           — list the bundled benchmark applications;
* ``bench-engine``   — time the fast vs. reference simulation engines on
  one application and assert their metrics are bit-identical;
* ``bench-codegen``  — time the interpreter vs. codegen trace backends
  across applications and assert the traces are bit-identical
  (``--json-out BENCH_codegen.json`` records the payload);
* ``cache``          — inspect or clear the on-disk trace/result cache;
* ``lint``           — static IR verification of a program (structure,
  loop bounds, subscript bounds, def-use hygiene); ``--static`` adds the
  predictive S3xx locality lints and the R5xx parallelism/race lints,
  ``--explain CODE`` documents any diagnostic code;
* ``static-reuse``   — the symbolic (trace-free) reuse profile of a
  program: per-reference distance polynomials, predicted histogram and
  evadable classes at any input size;
* ``parallelism``    — dependence-based parallelism analysis: classify
  every loop axis DOALL / reduction / serial (with a concrete race
  witness for serial axes); ``--threads T`` adds the per-thread
  private-cache + shared-cache reuse prediction;
* ``verify-pass``    — certify that every pass of an optimization level
  preserves the program's dependence structure;
* ``pipeline``       — introspect the pass-pipeline registry (``--json``
  emits the machine-readable pipeline-description schema);
* ``tune``           — static-profile-driven pipeline autotuning: rank
  legal candidate pipelines by predicted misses, dynamically validate
  the top-k frontier, and gate the committed ``BENCH_tune.json``
  artifact with ``--check``.

Examples::

    python -m repro fuse kernel.loop --level fusion
    python -m repro regroup kernel.loop -p N=512
    python -m repro report adi --levels noopt,fusion,new --verify
    python -m repro profile adi --level new --params N=200
    python -m repro profile adi --level new --json
    python -m repro runs
    python -m repro bench-engine adi
    python -m repro cache --clear
    python -m repro lint kernel.loop --json
    python -m repro lint --static --all-apps --baseline lint-baseline.json
    python -m repro lint --explain S301
    python -m repro static-reuse adi -p N=256
    python -m repro static-reuse adi --level fusion --json
    python -m repro parallelism adi --level fusion
    python -m repro parallelism --all-apps --check
    python -m repro parallelism swim --threads 4 --schedule dynamic
    python -m repro verify-pass adi --level new
    python -m repro verify-pass --before a.loop --after b.loop
    python -m repro pipeline --json
    python -m repro tune tomcatv --top-k 3
    python -m repro tune --all-apps --json-out BENCH_tune.json
    python -m repro tune --check --baseline BENCH_tune.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from .core import OPT_LEVELS, compile_pipeline, compile_variant
from .engines import TRACE_ENGINES, engine_spec
from .core.pm import (
    PIPELINES,
    custom_pipeline,
    describe_pipeline,
    known_levels,
    lint_passes,
    resolve_pipeline,
)
from .harness import (
    NORMALIZED_HEADERS,
    TIMING_HEADERS,
    RunRequest,
    TraceCache,
    format_table,
    machine_for,
    merge_json_artifact,
    normalized_rows,
    run,
    timing_rows,
)
from .lang import Program, ReproError, parse, to_source, validate
from .memsim import ENGINES
from .obs import (
    REGISTRY,
    SCHEMA_VERSION,
    MetricsRegistry,
    SpanCollector,
    TraceConfig,
    format_metric_delta,
    format_span_tree,
    list_runs,
    summarize_run,
    validate_event,
)
from .programs import APPLICATIONS, registry
from .programs.registry import MachineSpec
from .tune import ENABLERS as TUNE_ENABLERS
from .verify import PassLegalityError, PassVerifier, Severity, lint_program, verify_pass


def _load_program(path: str) -> Program:
    source = Path(path).read_text()
    return validate(parse(source))


def _parse_params(items: Optional[Sequence[str]]) -> dict[str, int]:
    out: dict[str, int] = {}
    for item in items or ():
        name, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad parameter {item!r}; expected NAME=INT")
        out[name] = int(value)
    return out


def _parse_passes(args: argparse.Namespace):
    """The ``--passes a,b,c`` override as a pipeline spec (or None)."""
    names = getattr(args, "passes", None)
    if not names:
        return None
    return custom_pipeline([n.strip() for n in names.split(",")])


def cmd_fuse(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    variant = compile_variant(program, args.level)
    print(to_source(variant.program), end="")
    if variant.fusion_report is not None and args.verbose:
        print("\n# " + variant.fusion_report.summary().replace("\n", "\n# "),
              file=sys.stderr)
    return 0


def cmd_regroup(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    variant = compile_variant(program, args.level)
    if variant.regroup is None:
        print("optimization level produced no regrouping plan", file=sys.stderr)
        return 1
    print(variant.regroup.describe())
    params = _parse_params(args.param)
    if params:
        layout = variant.layout(params)
        print(f"\nplacements at {params} (element offsets / strides):")
        for name, placement in sorted(layout.placements.items()):
            print(f"  {name}: offset {placement.offset}, strides {placement.strides}")
    return 0


def _resolve_measure_target(args: argparse.Namespace):
    """The shared (program, params, machine, steps) resolution for every
    measuring subcommand: registry names keep registry defaults, files
    require explicit parameters and get the default scaled machine."""
    params = _parse_params(args.param) or None
    if args.target in APPLICATIONS:
        return args.target, params, None, args.steps
    program = _load_program(args.target)
    if params is None:
        raise SystemExit("measuring a file requires -p NAME=INT")
    steps = args.steps if args.steps is not None else 1
    return program, params, machine_for(MachineSpec()), steps


def cmd_report(args: argparse.Namespace) -> int:
    pipeline = _parse_passes(args)
    levels = args.levels.split(",")
    if pipeline is None:
        unknown = [lv for lv in levels if lv not in known_levels()]
        if unknown:
            raise SystemExit(
                f"unknown levels: {unknown}; known levels: "
                f"{', '.join(known_levels())} (see 'repro levels')"
            )
    cache = TraceCache(args.cache_dir) if args.cache else None
    program, params, machine, steps = _resolve_measure_target(args)
    results = run(
        RunRequest(
            program=program,
            levels=levels,
            pipeline=pipeline,
            params=params,
            machine=machine,
            steps=steps,
            engine=args.engine,
            cache=cache,
            verify=args.verify,
        )
    ).results
    if isinstance(program, str):
        title = f"{program} (registry application, scaled machine)"
    else:
        title = f"{program.name} ({args.target})"
    print(format_table(NORMALIZED_HEADERS, normalized_rows(results), title=title))
    if args.bandwidth:
        from .memsim import BANDWIDTH_HEADERS, bandwidth_rows

        print()
        print(
            format_table(
                BANDWIDTH_HEADERS,
                bandwidth_rows(results),
                title="effective bandwidth (memory traffic, DRAM row "
                "buffer, energy)",
            )
        )
    if args.parallelism:
        print()
        print(_parallelism_table(program, results, args.threads))
    if args.coherence:
        print()
        print(_coherence_table(program, results, args.threads))
    if args.timings:
        print()
        print(
            format_table(
                TIMING_HEADERS,
                timing_rows(results),
                title="per-stage seconds ('-' = served from cache)",
            )
        )
    return 0


def _parallelism_table(program, results, threads: int) -> str:
    """Per-level axis verdicts + predicted multicore misses for a report."""
    from .static import analyze_parallelism, predict_program_multicore

    target = program if isinstance(program, str) else program.name
    l1, l2 = _cache_elems(target)
    steps = _lint_steps(target)
    headers = (
        "level", "doall", "reduction", "serial", "par nests",
        f"L1p misses ({l1})", f"L2s misses ({l2})",
    )
    rows: list[list[object]] = []
    for r in results:
        if r.variant is None:
            continue
        prof = analyze_parallelism(r.variant.program, r.params)
        pred = predict_program_multicore(
            r.variant.program, dict(prof.params), threads=threads, steps=steps
        )
        counts = prof.counts()
        outer = sum(1 for v in prof.verdicts if v.depth == 0)
        rows.append([
            r.level,
            counts["doall"],
            counts["reduction"],
            counts["serial"],
            f"{len(prof.parallel_nests())}/{outer}",
            f"{pred.private_miss_count(l1):.0f}",
            f"{pred.shared_miss_count(l2):.0f}",
        ])
    return format_table(
        headers, rows,
        title=f"parallelism & multicore prediction "
        f"({threads} threads, static schedule)",
    )


def _coherence_table(program, results, threads: int) -> str:
    """Per-level predicted coherence behaviour for a report."""
    from .lang import AnalysisError
    from .static import analyze_coherence

    target = program if isinstance(program, str) else program.name
    steps = _lint_steps(target)
    headers = (
        "level", "invalidations", "true", "false",
        "shared lines", "upgrades",
    )
    rows: list[list[object]] = []
    for r in results:
        if r.variant is None:
            continue
        try:
            prof = analyze_coherence(
                r.variant.program, dict(r.params), threads=threads,
                steps=steps, witnesses=False,
            )
        except AnalysisError:
            rows.append([r.level, "-", "-", "-", "-", "-"])
            continue
        rows.append([
            r.level,
            prof.total_invalidations,
            prof.true_invalidations,
            prof.false_invalidations,
            sum(a.shared_lines for a in prof.arrays),
            prof.upgrades,
        ])
    return format_table(
        headers, rows,
        title=f"coherence prediction ({threads} threads, static schedule, "
        f"line granularity)",
    )


def cmd_bench_engine(args: argparse.Namespace) -> int:
    """Time fast vs. reference engines; fail unless metrics are identical."""
    levels = args.levels.split(",")
    entry = registry.get(args.app)
    machine = machine_for(entry.machine_spec)
    params = _parse_params(args.param) or None

    headers = ("level", "engine", "l1", "l2", "tlb", "sim total")
    rows: list[list[object]] = []
    totals = dict.fromkeys(ENGINES, 0.0)
    identical = True
    sim_stages = ("l1", "l2", "tlb")
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        # a throwaway trace cache: repeats replay the address stream from
        # disk; result_cache=False forces every repeat to re-simulate
        cache = TraceCache(tmp)
        for level in levels:
            stats_by = {}
            for engine in ("reference", "fast"):
                best, best_timings, best_stats = float("inf"), {}, None
                for _ in range(args.repeats):
                    result = run(
                        RunRequest(
                            program=args.app,
                            levels=(level,),
                            params=params,
                            steps=args.steps,
                            engine=engine,
                            cache=cache,
                            result_cache=False,
                        )
                    ).results[0]
                    elapsed = sum(result.timings.get(s, 0.0) for s in sim_stages)
                    if elapsed < best:
                        best, best_timings = elapsed, result.timings
                        best_stats = result.stats
                stats_by[engine] = best_stats
                totals[engine] += best
                rows.append(
                    [level, engine]
                    + [best_timings.get(s, 0.0) for s in sim_stages]
                    + [best]
                )
            if stats_by["fast"] != stats_by["reference"]:
                identical = False
                print(f"ENGINE MISMATCH at level {level}:", file=sys.stderr)
                print(f"  reference: {stats_by['reference']}", file=sys.stderr)
                print(f"  fast:      {stats_by['fast']}", file=sys.stderr)

    shown_params = dict(params) if params else dict(entry.default_params)
    title = (
        f"{args.app} engine comparison ({machine.name}, params {shown_params}, "
        f"best of {args.repeats}; seconds)"
    )
    print(format_table(headers, rows, title=title))
    speedup = totals["reference"] / totals["fast"] if totals["fast"] else 0.0
    print(
        f"\nmetrics bit-identical across engines: {identical}\n"
        f"sim wall-clock: reference {totals['reference']:.3f}s, "
        f"fast {totals['fast']:.3f}s -> {speedup:.2f}x speedup"
    )
    return 0 if identical else 1


def cmd_bench_codegen(args: argparse.Namespace) -> int:
    """Time the interpreter vs. codegen tracers; assert traces identical.

    Measures end-to-end ``trace_program`` wall-clock (compile excluded,
    trace construction included) at the registry's default — fig-10 —
    sizes, best of ``--repeats``.  Writes the machine-readable
    ``BENCH_codegen.json`` payload with ``--json-out``.
    """
    import numpy as np

    from .codegen import trace_fingerprint
    from .codegen import trace_program as codegen_trace
    from .interp import trace_program as interp_trace

    apps = args.apps.split(",")
    levels = args.levels.split(",")
    headers = ("program", "level", "accesses", "interp", "codegen", "speedup")
    rows: list[list[object]] = []
    records: list[dict[str, object]] = []
    totals = {"interp": 0.0, "codegen": 0.0}
    identical = True
    for app in apps:
        entry = registry.get(app)
        params = _parse_params(args.param) or dict(entry.default_params)
        steps = args.steps if args.steps is not None else entry.steps
        program = validate(entry.build())
        for level in levels:
            variant = compile_variant(program, level)
            times: dict[str, float] = {}
            traces: dict[str, object] = {}
            for tracer, fn in (("interp", interp_trace), ("codegen", codegen_trace)):
                best = float("inf")
                for _ in range(args.repeats):
                    t0 = time.perf_counter()
                    trace = fn(variant.program, params, steps=steps)
                    best = min(best, time.perf_counter() - t0)
                times[tracer], traces[tracer] = best, trace
            a, b = traces["interp"], traces["codegen"]
            same = (
                a.array_names == b.array_names
                and a.array_sizes == b.array_sizes
                and all(
                    np.array_equal(getattr(a, f), getattr(b, f))
                    for f in ("array_ids", "elems", "writes", "ref_ids")
                )
            )
            if not same:
                identical = False
                print(f"TRACE MISMATCH at {app}/{level}", file=sys.stderr)
            totals["interp"] += times["interp"]
            totals["codegen"] += times["codegen"]
            speedup = times["interp"] / times["codegen"] if times["codegen"] else 0.0
            rows.append(
                [app, level, len(a), times["interp"], times["codegen"],
                 f"{speedup:.1f}x"]
            )
            records.append(
                {
                    "program": app,
                    "level": level,
                    "params": params,
                    "steps": steps,
                    "accesses": len(a),
                    "interp_seconds": round(times["interp"], 6),
                    "codegen_seconds": round(times["codegen"], 6),
                    "speedup": round(speedup, 2),
                    "identical": same,
                    "fingerprint": trace_fingerprint(a),
                }
            )
    overall = totals["interp"] / totals["codegen"] if totals["codegen"] else 0.0
    print(
        format_table(
            headers, rows,
            title=f"tracer comparison (best of {args.repeats}; seconds)",
        )
    )
    print(
        f"\ntraces bit-identical across tracers: {identical}\n"
        f"trace-gen wall-clock: interp {totals['interp']:.3f}s, "
        f"codegen {totals['codegen']:.3f}s -> {overall:.2f}x speedup"
    )
    if args.json_out:
        merged = merge_json_artifact(
            args.json_out,
            {f"{r['program']}/{r['level']}": r for r in records},
            {
                "benchmark": "trace-generation: interpreter vs codegen backend",
                "repeats": args.repeats,
                "overall_speedup": round(overall, 2),
                "identical": identical,
            },
            key="results",
        )
        print(f"wrote {args.json_out} ({len(merged)} variant(s))")
    return 0 if identical else 1


def _resolve_trace_target(args: argparse.Namespace):
    """(program, params, steps, machine) for the trace subcommands."""
    params = _parse_params(args.param) or None
    try:
        entry = registry.get(args.target)
    except KeyError:
        entry = None
    if entry is not None:
        program = validate(entry.build())
        return (
            program,
            dict(params or entry.default_params),
            args.steps if args.steps is not None else entry.steps,
            machine_for(entry.machine_spec),
        )
    if args.target == "fft":
        from .programs.registry import build_fft

        n = (params or {}).get("n", 64)
        return (
            validate(build_fft(n)),
            {},
            args.steps if args.steps is not None else 1,
            machine_for(MachineSpec()),
        )
    program = _load_program(args.target)
    if params is None:
        raise SystemExit("tracing a source file requires -p NAME=INT")
    steps = args.steps if args.steps is not None else 1
    return program, params, steps, machine_for(MachineSpec())


def cmd_trace_export(args: argparse.Namespace) -> int:
    """Trace one (program, level) and write the address stream to disk."""
    from .engines import resolve_engines
    from .stream import AddressStream, write_stream, write_stream_csv

    program, params, steps, _ = _resolve_trace_target(args)
    variant = compile_variant(program, args.level)
    layout = variant.layout(params)
    selection = resolve_engines(args.engine)
    if selection.tracer == "codegen":
        from .codegen import trace_program as tracer
    else:
        from .interp import trace_program as tracer
    trace = tracer(variant.program, params, steps=steps)
    stream = AddressStream.from_trace(
        trace, layout, name=f"{program.name}/{args.level}", source=selection.tracer
    )
    out = Path(args.output)
    as_csv = args.format == "csv" or (args.format == "auto" and out.suffix == ".csv")
    if as_csv:
        write_stream_csv(out, stream)
    else:
        write_stream(out, stream)
    print(
        f"wrote {out} ({'csv' if as_csv else 'binary'}): {len(stream):,} "
        f"accesses, {int(stream.writes.sum()):,} writes, "
        f"fingerprint {stream.fingerprint()}"
    )
    return 0


def _warn_missing_geometry(stream) -> None:
    if not stream.meta.has_geometry:
        print(
            "S501 trace imported without geometry metadata: simulating "
            "under the shared machine geometry (32 B L1 / 128 B L2 lines, "
            "8 B elements); see 'repro lint --explain S501'",
            file=sys.stderr,
        )


def cmd_trace_import(args: argparse.Namespace) -> int:
    """Load a stream from disk (ours or foreign CSV) and simulate it."""
    from .engines import resolve_engines
    from .memsim import (
        BANDWIDTH_HEADERS,
        MACHINES,
        bandwidth_row,
        simulate_stream,
    )
    from .stream import StreamFormatError, read_stream

    try:
        stream = read_stream(args.file)
    except (OSError, StreamFormatError, ValueError) as exc:
        raise SystemExit(f"cannot read {args.file}: {exc}")
    _warn_missing_geometry(stream)
    if args.machine:
        machine = MACHINES[args.machine]()
    elif args.app:
        machine = machine_for(registry.get(args.app).machine_spec)
    else:
        machine = machine_for(MachineSpec())
    engine = resolve_engines(args.engine).sim
    stats = simulate_stream(stream, machine, engine=engine)
    print(f"{args.file}: {stream!r}")
    print(
        f"{machine.name}: L1 misses {stats.l1_misses:,}, "
        f"L2 misses {stats.l2_misses:,}, TLB misses {stats.tlb_misses:,}, "
        f"writebacks {stats.l2_writebacks:,}"
    )
    print(
        format_table(
            BANDWIDTH_HEADERS,
            [bandwidth_row(stream.meta.name, stats)],
            title="effective bandwidth",
        )
    )
    if args.reuse:
        from .locality import reuse_distances

        elem = stream.meta.elem_bytes or 8
        ids = (
            stream.addresses // elem
            if stream.meta.unit == "bytes"
            else stream.addresses
        )
        distances = reuse_distances(ids)
        cold = int((distances == -1).sum())
        reuse = distances[distances != -1]
        mean = float(reuse.mean()) if len(reuse) else 0.0
        print(
            f"exact reuse (element granularity): {len(reuse):,} reuses, "
            f"{cold:,} cold, mean distance {mean:,.1f}"
        )
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    """Print a stream file's metadata without simulating it."""
    from .stream import StreamFormatError, read_stream

    try:
        stream = read_stream(args.file)
    except (OSError, StreamFormatError, ValueError) as exc:
        raise SystemExit(f"cannot read {args.file}: {exc}")
    meta = stream.meta
    print(f"{args.file}: {stream!r}")
    print(f"  fingerprint: {stream.fingerprint()}")
    print(f"  meta: {json.dumps(meta.to_json(), sort_keys=True)}")
    if not meta.has_geometry:
        print("  geometry: MISSING (S501) - simulation will assume defaults")
    return 0


#: the §6 program set ``bench-membw`` reports by default
MEMBW_APPS = "swim,tomcatv,adi,sp,sweep3d,fft"


def _membw_results(app: str, levels: list[str], args: argparse.Namespace):
    """Measured VariantResults for one bench-membw program."""
    if app == "fft":
        from .programs.registry import build_fft

        request = RunRequest(
            program=validate(build_fft()),  # the study kernel at DEFAULT_N
            levels=tuple(levels),
            params={},
            steps=1,
            engine=args.engine,
            name="fft",
        )
    else:
        request = RunRequest(
            program=app, levels=tuple(levels), engine=args.engine
        )
    return run(request).results


def _membw_roundtrip(args: argparse.Namespace) -> list[str]:
    """Export -> import -> re-simulate must reproduce the direct stats."""
    from .engines import resolve_engines
    from .memsim import simulate_stream
    from .stream import (
        AddressStream,
        read_stream,
        write_stream,
        write_stream_csv,
    )

    failures: list[str] = []
    entry = registry.get("adi")
    program = validate(entry.build())
    variant = compile_variant(program, "new")
    params = dict(entry.default_params)
    layout = variant.layout(params)
    selection = resolve_engines(args.engine)
    if selection.tracer == "codegen":
        from .codegen import trace_program as tracer
    else:
        from .interp import trace_program as tracer
    trace = tracer(variant.program, params, steps=entry.steps)
    stream = AddressStream.from_trace(
        trace, layout, name="adi/new", source=selection.tracer
    )
    machine = machine_for(entry.machine_spec)
    direct = simulate_stream(stream, machine, engine=selection.sim)
    with tempfile.TemporaryDirectory(prefix="repro-membw-") as tmp:
        for fmt, writer in (("binary", write_stream), ("csv", write_stream_csv)):
            path = Path(tmp) / ("t.ast" if fmt == "binary" else "t.csv")
            writer(path, stream)
            loaded = read_stream(path)
            if loaded.fingerprint() != stream.fingerprint():
                failures.append(f"round-trip ({fmt}): stream fingerprint changed")
                continue
            replayed = simulate_stream(loaded, machine, engine=selection.sim)
            if replayed != direct:
                failures.append(
                    f"round-trip ({fmt}): simulation diverged after "
                    f"export/import ({replayed} != {direct})"
                )
    return failures


def cmd_bench_membw(args: argparse.Namespace) -> int:
    """Effective-bandwidth report across the §6 program set.

    Per program and level: memory traffic in bytes (the paper's "data
    transferred", as actual quantities), the effective bandwidth over
    the synthesized run time, and the DRAM row-buffer/energy behaviour.
    ``--json-out`` merges the machine-readable rows into
    ``BENCH_membw.json``; ``--check --baseline FILE`` re-derives every
    committed row and verifies the export/import round trip instead.
    """
    from .memsim import BANDWIDTH_HEADERS, bandwidth_record, bandwidth_rows

    apps = args.apps.split(",")
    levels = args.levels.split(",")
    records: dict[str, dict] = {}
    for app in apps:
        results = _membw_results(app, levels, args)
        print(
            format_table(
                BANDWIDTH_HEADERS,
                bandwidth_rows(results),
                title=f"{app} effective bandwidth",
            )
        )
        if app != apps[-1]:
            print()
        for r in results:
            records[f"{app}/{r.level}"] = bandwidth_record(app, r.level, r.stats)

    exit_code = 0
    if args.check:
        if not args.baseline:
            raise SystemExit("bench-membw --check requires --baseline FILE")
        baseline = json.loads(Path(args.baseline).read_text()).get("results", {})
        failures: list[str] = []
        for key, expected in sorted(baseline.items()):
            got = records.get(key)
            if got is None:
                failures.append(f"{key}: committed row was not re-measured")
            elif got != expected:
                diffs = [
                    f"{f}: {expected[f]} -> {got[f]}"
                    for f in expected
                    if got.get(f) != expected[f]
                ]
                failures.append(f"{key}: {'; '.join(diffs)}")
        failures.extend(_membw_roundtrip(args))
        print()
        if failures:
            print("bench-membw --check: bandwidth regressions detected:")
            for line in failures:
                print(f"  {line}")
            exit_code = 1
        else:
            print(
                f"bench-membw --check ok: {len(baseline)} committed row(s) "
                f"reproduce exactly; trace export/import round-trips to "
                f"identical simulation"
            )
    if args.json_out:
        merged = merge_json_artifact(
            args.json_out,
            records,
            {"benchmark": "effective memory bandwidth and DRAM behaviour"},
            key="results",
        )
        print(f"\nwrote {args.json_out} ({len(merged)} row(s))")
    return exit_code


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one (program, level) run: span tree, metrics, peak memory."""
    target, params, machine, steps = _resolve_measure_target(args)
    outcome = run(
        RunRequest(
            program=target,
            levels=(args.level,),
            pipeline=_parse_passes(args),
            params=params,
            machine=machine,
            steps=steps,
            engine=args.engine,
            cache=TraceCache(args.cache_dir) if args.cache else None,
            verify=args.verify,
            trace=TraceConfig(memory=not args.no_memory),
        )
    )
    result = outcome.results[0]
    _profile_parallelism(result)
    if args.json:
        events = [sp.to_event() for sp in result.spans]
        for event in events:
            validate_event(event)
        print(
            json.dumps(
                {
                    "v": SCHEMA_VERSION,
                    "program": result.program,
                    "level": result.level,
                    "params": dict(result.params),
                    "seconds": round(result.seconds, 9),
                    "spans": events,
                    "metrics": result.metrics,
                },
                indent=2,
            )
        )
        return 0
    title = (
        f"{result.program}/{result.level} "
        f"(params {dict(result.params)}; seconds{' / peak MB' if not args.no_memory else ''})"
    )
    print(format_span_tree(result.spans, title=title))
    print()
    print(format_metric_delta(result.metrics))
    summary = _analysis_cache_summary(result.metrics)
    if summary:
        print()
        print(summary)
    print(
        f"\ntotal {result.seconds:.3f}s | trace {result.trace_length:,} accesses"
    )
    return 0


def _profile_parallelism(result) -> None:
    """Fold one parallelism-analysis pass into a profile result.

    Runs the static parallelism analyzer over the compiled variant in
    its own span/metrics window and merges the ``parallelism`` span and
    the ``analysis.parallelism.*`` counters into the run's profile, so
    ``repro profile`` shows the analyzer next to compile/trace/simulate.
    """
    from .static import analyze_parallelism

    if result.variant is None:
        return
    before = REGISTRY.snapshot()
    collector = SpanCollector()
    with collector:
        analyze_parallelism(result.variant.program, dict(result.params))
    delta = MetricsRegistry.delta(before, REGISTRY.snapshot())
    counters = result.metrics.setdefault("counters", {})
    for key, value in delta.get("counters", {}).items():
        counters[key] = counters.get(key, 0) + value
    result.metrics.setdefault("gauges", {}).update(delta.get("gauges", {}))
    result.spans = list(result.spans) + collector.events


def _analysis_cache_summary(delta) -> str:
    """One-look analysis-cache effectiveness (per kind) from a metrics delta."""
    counters = delta.get("counters", {}) if delta else {}
    total = {e: int(counters.get(f"analysis.cache.{e}", 0))
             for e in ("hits", "misses", "evictions")}
    if not any(total.values()):
        return ""
    kinds = sorted(
        {k.split(".")[2] for k in counters
         if k.startswith("analysis.cache.") and k.count(".") == 3}
    )
    parts = []
    for kind in kinds:
        h, m, e = (int(counters.get(f"analysis.cache.{kind}.{ev}", 0))
                   for ev in ("hits", "misses", "evictions"))
        parts.append(f"{kind} {h}h/{m}m/{e}e")
    lookups = total["hits"] + total["misses"]
    rate = 100.0 * total["hits"] / lookups if lookups else 0.0
    return (
        f"analysis cache: {total['hits']} hits, {total['misses']} misses, "
        f"{total['evictions']} evictions ({rate:.0f}% hit rate)\n"
        f"  per kind: " + "; ".join(parts)
    )


def cmd_runs(args: argparse.Namespace) -> int:
    """List past run logs (``runs/<id>/events.jsonl``) with summaries."""
    run_dirs = list_runs(args.runs_root)
    summaries = [summarize_run(d) for d in run_dirs]
    if args.json:
        print(json.dumps({"v": SCHEMA_VERSION, "runs": summaries}, indent=2))
        return 0
    if not summaries:
        root = args.runs_root or "runs"
        print(f"no run logs under {root}/ (enable with TraceConfig(events=True))")
        return 0
    headers = ("run", "started", "specs", "seconds", "events", "slowest")
    rows: list[list[object]] = []
    for s in summaries:
        slowest = s.get("slowest")
        started = s.get("started")
        rows.append(
            [
                s["run_id"],
                (
                    time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(started))
                    if started
                    else "-"
                ),
                f"{s.get('completed', 0)}/{s.get('total', 0)}",
                s.get("seconds", 0.0),
                s["events"],
                (
                    f"{slowest['program']}/{slowest['level']} "
                    f"{slowest['seconds']:.2f}s"
                    if slowest
                    else "-"
                ),
            ]
        )
    print(format_table(headers, rows, title="recorded runs (schema v1 event logs)"))
    return 0


def _load_target(target: str) -> Program:
    """A registry application name or a mini-language source file."""
    try:
        return validate(registry.get(target).build())
    except KeyError:
        return _load_program(target)


def _lint_steps(target: str) -> int:
    """The registry's body-repetition count for an app, 1 for files."""
    try:
        return registry.get(target).steps
    except KeyError:
        return 1


def _schedule_spec(spec: str) -> str:
    """argparse type: validate an OpenMP schedule spec up front."""
    from .static import parse_schedule

    try:
        parse_schedule(spec)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return spec


def _diag_counts(bag) -> dict[str, int]:
    """Per-code diagnostic counts, the unit of the lint baseline."""
    counts: dict[str, int] = {}
    for d in bag:
        counts[d.code] = counts.get(d.code, 0) + 1
    return counts


def cmd_lint(args: argparse.Namespace) -> int:
    from .verify.codes import explain_code, format_code_table

    if args.explain:
        print(explain_code(args.explain))
        return 0
    if args.codes:
        print(format_code_table())
        return 0
    if args.self_check:
        # "repro lint --self" = lint the compiler itself, not a program:
        # delegate to ruff (configured in pyproject.toml) when available
        import subprocess

        try:
            import ruff  # noqa: F401
        except ImportError:
            print(
                "ruff is not installed; install it and run 'ruff check .'\n"
                "(rules are configured under [tool.ruff] in pyproject.toml)",
                file=sys.stderr,
            )
            return 0
        return subprocess.call([sys.executable, "-m", "ruff", "check", "."])

    if args.all_apps:
        from .programs import STUDY_PROGRAMS

        targets = sorted(set(APPLICATIONS) | set(STUDY_PROGRAMS))
    elif args.target:
        targets = [args.target]
    else:
        raise SystemExit(
            "lint needs a program (file or app name), --all-apps, --self, "
            "--codes, or --explain CODE"
        )

    bags: dict[str, object] = {}
    for target in targets:
        program = _load_target(target)
        bag = lint_program(program, assume=args.assume)
        if args.static:
            from .codegen.plan import lint_codegen
            from .static import lint_static
            from .verify import lint_coherence, lint_races

            bag.extend(
                lint_static(
                    program, steps=_lint_steps(target), assume=args.assume
                )
            )
            bag.extend(lint_codegen(program))
            bag.extend(lint_races(program))
            bag.extend(
                lint_coherence(program, steps=_lint_steps(target))
            )
        bags[program.name] = bag

    if args.write_baseline:
        baseline = {name: _diag_counts(bag) for name, bag in bags.items()}
        Path(args.write_baseline).write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        total = sum(sum(c.values()) for c in baseline.values())
        print(
            f"wrote {args.write_baseline}: {total} accepted diagnostic(s) "
            f"across {len(baseline)} program(s)"
        )
        return 0

    regressions: list[str] = []
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        for name, bag in bags.items():
            accepted = baseline.get(name, {})
            for code, count in sorted(_diag_counts(bag).items()):
                if count > int(accepted.get(code, 0)):
                    regressions.append(
                        f"{name}: {code} x{count} "
                        f"(baseline {int(accepted.get(code, 0))})"
                    )

    if args.json:
        if len(bags) == 1 and not args.baseline:
            # single program, no baseline: the original flat payload
            ((name, bag),) = bags.items()
            print(bag.to_json(program=name))
        else:
            payload = {
                "programs": {
                    name: json.loads(bag.to_json())
                    for name, bag in bags.items()
                },
                "regressions": regressions,
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name, bag in bags.items():
            print(f"lint {name}:")
            print(bag.render())
        if regressions:
            print("\nnew diagnostics not in baseline:")
            for line in regressions:
                print(f"  {line}")

    if regressions:
        return 1
    if any(bag.has_errors() for bag in bags.values()):
        return 1
    # with a baseline the baseline is the contract; without one, warnings
    # fail only under --strict
    if args.strict and not args.baseline:
        if any(bag.warnings for bag in bags.values()):
            return 1
    return 0


def cmd_static_reuse(args: argparse.Namespace) -> int:
    """Print the symbolic reuse profile — computed without any trace."""
    from .obs import metrics as _metrics
    from .static import analyze_program

    program = _load_target(args.target)
    steps = args.steps if args.steps is not None else _lint_steps(args.target)
    if args.level:
        program = compile_variant(program, args.level).program
    params = _parse_params(args.param) or None

    before = _metrics.snapshot()["counters"]
    profile = analyze_program(program, steps=steps, assume=args.assume)
    after = _metrics.snapshot()["counters"]
    traced = sum(
        v - before.get(k, 0.0)
        for k, v in after.items()
        if k.startswith("trace.")
    )
    static_runs = after.get("analysis.static.runs", 0.0) - before.get(
        "analysis.static.runs", 0.0
    )

    if args.json:
        payload = profile.to_json(params)
        payload["metrics"] = {
            "analysis.static.runs": static_runs,
            "trace.accesses": traced,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(profile.render(params))
        print(
            f"# analysis.static.runs +{static_runs:g}; "
            f"trace events generated: {traced:g}"
        )
    return 0 if traced == 0 else 1


def _cache_elems(target: str) -> tuple[int, int]:
    """L1/L2 capacities in array elements: the registry entry's scaled
    machine for an app, the default spec for a file."""
    from .memsim.geometry import CacheGeometry

    try:
        spec = registry.get(target).machine_spec
    except KeyError:
        spec = MachineSpec()
    geometry = CacheGeometry.from_spec(spec)
    return geometry.l1_elems, geometry.l2_elems


def cmd_parallelism(args: argparse.Namespace) -> int:
    """Classify every loop axis; optionally predict multicore misses."""
    from .static import analyze_parallelism, predict_program_multicore

    if args.all_apps:
        from .programs import STUDY_PROGRAMS

        targets = sorted(set(APPLICATIONS) | set(STUDY_PROGRAMS))
    elif args.target:
        targets = [args.target]
    else:
        raise SystemExit(
            "parallelism needs a program (file or app name) or --all-apps"
        )

    params = _parse_params(args.param) or None
    payloads: list[dict] = []
    unknown = 0
    for target in targets:
        program = _load_target(target)
        if args.level:
            program = compile_variant(program, args.level).program
        profile = analyze_parallelism(program, params)
        unknown += profile.counts()["unknown"]
        pred = None
        if args.threads:
            steps = args.steps if args.steps is not None else _lint_steps(target)
            pred = predict_program_multicore(
                program,
                dict(profile.params),
                threads=args.threads,
                schedule=args.schedule,
                steps=steps,
            )
        if args.json:
            entry: dict[str, object] = {"parallelism": profile.as_dict()}
            if pred is not None:
                entry["multicore"] = pred.as_dict()
            payloads.append(entry)
            continue
        size = ", ".join(f"{k}={v}" for k, v in profile.params)
        counts = profile.counts()
        summary = ", ".join(f"{v} {k}" for k, v in counts.items() if v)
        print(
            f"parallelism {profile.program_name} at {size}: "
            f"{summary or 'no loops'}"
        )
        for v in profile.verdicts:
            print(f"  {v.describe()}")
        if pred is not None:
            l1, l2 = _cache_elems(target)
            print(pred.render(l1, l2))
        if target != targets[-1]:
            print()

    if args.json:
        if len(payloads) == 1:
            print(json.dumps(payloads[0], indent=2))
        else:
            print(json.dumps(payloads, indent=2))
    if args.check and unknown:
        print(
            f"parallelism --check: {unknown} axis verdict(s) are 'unknown'",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_coherence(args: argparse.Namespace) -> int:
    """Static coherence prediction: invalidation misses, sharing, witnesses."""
    from .lang import AnalysisError
    from .static import analyze_coherence

    if args.all_apps:
        from .programs import STUDY_PROGRAMS

        targets = sorted(set(APPLICATIONS) | set(STUDY_PROGRAMS))
    elif args.target:
        targets = [args.target]
    else:
        raise SystemExit(
            "coherence needs a program (file or app name) or --all-apps"
        )

    params = _parse_params(args.param) or None
    payloads: list[dict] = []
    for target in targets:
        program = _load_target(target)
        if args.level:
            program = compile_variant(program, args.level).program
        steps = args.steps if args.steps is not None else _lint_steps(target)
        try:
            profile = analyze_coherence(
                program,
                params,
                threads=args.threads,
                schedule=args.schedule,
                steps=steps,
            )
        except AnalysisError as exc:
            print(f"coherence {program.name}: skipped ({exc})")
            if target != targets[-1]:
                print()
            continue
        if args.json:
            payloads.append(profile.as_dict())
            continue
        print(profile.render())
        if target != targets[-1]:
            print()
    if args.json:
        print(json.dumps(payloads[0] if len(payloads) == 1 else payloads,
                         indent=2))
    return 0


def cmd_verify_pass(args: argparse.Namespace) -> int:
    params = _parse_params(args.param) or None
    # the verifier snapshots a tiny execution; one body repetition suffices
    args.steps = 1 if args.steps is None else args.steps
    if args.before or args.after:
        if not (args.before and args.after):
            raise SystemExit("--before and --after must be given together")
        before = _load_program(args.before)
        after = _load_program(args.after)
        bag = verify_pass(
            before, after,
            pass_name=args.pass_name, params=params, steps=args.steps,
        )
        if args.json:
            print(bag.to_json(before=before.name, after=after.name,
                              certified=not bag.has_errors()))
        elif bag.has_errors():
            print(f"ILLEGAL: {args.pass_name} broke the dependence structure")
            print(bag.render(min_severity=Severity.ERROR))
        else:
            print(
                f"certified: {args.pass_name} preserves all dependences "
                f"({before.name} -> {after.name})"
            )
        return 1 if bag.has_errors() else 0

    targets = [args.target] if args.target else sorted(APPLICATIONS)
    pipeline = _parse_passes(args)
    levels = [pipeline.name] if pipeline is not None else args.levels.split(",")
    results: list[dict[str, object]] = []
    failures = 0
    for target in targets:
        program = _load_target(target)
        for level in levels:
            verifier = PassVerifier(program, params, steps=args.steps)
            try:
                if pipeline is not None:
                    compile_pipeline(program, pipeline, verify=verifier)
                else:
                    compile_variant(program, level, verify=verifier)
                error = None
            except PassLegalityError as exc:
                failures += 1
                error = exc
            passes = [name for name, _ in verifier.history]
            results.append({
                "program": program.name,
                "level": level,
                "passes": passes,
                "certified": error is None,
                "diagnostics": (
                    [d.to_json() for d in error.bag] if error else []
                ),
            })
            if not args.json:
                if error is None:
                    print(
                        f"ok {program.name}/{level}: "
                        f"{len(passes)} pass(es) certified "
                        f"({', '.join(passes) or 'none'})"
                    )
                else:
                    broken = passes[-1] if passes else level
                    print(f"ILLEGAL {program.name}/{level}: pass {broken!r}")
                    print(error.bag.render(min_severity=Severity.ERROR))
    if args.json:
        import json as _json

        print(_json.dumps({"results": results, "failures": failures}, indent=2))
    return 1 if failures else 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = TraceCache(args.dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}/")
    info = cache.info()
    print(
        f"{cache.root}/: {info['traces']} traces, {info['results']} results, "
        f"{info['tune']} tune scores, {info['bytes'] / 1e6:.1f} MB"
    )
    return 0


def cmd_levels(_args: argparse.Namespace) -> int:
    for level in OPT_LEVELS:
        print(f"  {level:10s} {PIPELINES[level].description}")
    print("  (compound levels like fusion1+regroup are also accepted)")
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    """Introspect the pass-pipeline registry."""
    if args.lint:
        bag = lint_passes()
        print(bag.render())
        return 1 if bag.has_errors() or (args.strict and bag.warnings) else 0
    if args.json:
        from .core.pm import registry_to_json, spec_to_json

        if args.describe:
            print(json.dumps(spec_to_json(resolve_pipeline(args.describe)), indent=2))
        else:
            print(json.dumps(registry_to_json(), indent=2))
        return 0
    if args.describe:
        spec = resolve_pipeline(args.describe)
        print(describe_pipeline(spec))
        return 0
    for name, spec in PIPELINES.items():
        passes = " -> ".join(s.describe() for s in spec.steps)
        print(f"  {name:16s} {spec.description}")
        print(f"  {'':16s}   {passes}")
    return 0


def _parse_size(text: str) -> dict[str, int]:
    """One ``--at N=161,steps...`` binding: comma-separated NAME=INT pairs."""
    out: dict[str, int] = {}
    for piece in text.split(","):
        name, _, value = piece.partition("=")
        if not value:
            raise SystemExit(f"bad size {text!r}; expected NAME=INT[,NAME=INT...]")
        out[name.strip()] = int(value)
    return out


def cmd_tune(args: argparse.Namespace) -> int:
    """Autotune pass pipelines per program by statically predicted misses."""
    from .tune import TuneRequest, check_baseline, tune

    cache = args.cache_dir if args.cache_dir else (None if args.no_cache else True)
    if args.check:
        if not args.baseline:
            raise SystemExit("tune --check requires --baseline FILE")
        baseline = json.loads(Path(args.baseline).read_text())
        failures = check_baseline(
            baseline, budget_seconds=args.budget, cache=cache
        )
        if failures:
            print("tune --check: predicted-miss regressions detected:")
            for line in failures:
                print(f"  {line}")
            return 1
        n = len(baseline.get("programs", {}))
        print(
            f"tune --check ok: {n} program(s), tuned pipelines predict no "
            f"more misses than any named level (budget {args.budget:.0f}s)"
        )
        return 0

    if args.all_apps:
        targets = sorted(APPLICATIONS) + [t for t in args.target if t not in APPLICATIONS]
    elif args.target:
        targets = list(args.target)
    else:
        raise SystemExit("tune needs one or more app names, or --all-apps, or --check")

    sizes = None
    explicit = [_parse_size(t) for t in args.at or ()]
    base = _parse_params(args.param)
    if base or explicit:
        sizes = ([base] if base else []) + explicit

    payload: dict[str, object] = {}
    exit_code = 0
    for target in targets:
        request = TuneRequest(
            program=target,
            sizes=sizes,
            steps=args.steps,
            objective=args.objective,
            threads=args.threads,
            schedule=args.schedule,
            enablers=tuple(args.enablers.split(",")) if args.enablers else (),
            fusion_levels=tuple(
                int(v) for v in args.fusion_levels.split(",")
            ),
            regroup=not args.no_regroup,
            max_candidates=args.max_candidates,
            top_k=args.top_k,
            validate_top=not args.no_validate,
            engine=args.engine,
            cache=cache,
            verify=not args.no_verify,
            trace=TraceConfig(events=True, runs_root=args.runs_root)
            if args.events
            else None,
        )
        result = tune(request)
        entry = result.to_json()
        entry["target"] = target
        payload[result.program] = entry
        if not args.json:
            print(result.table())
            best = result.best
            verdict = (
                "STRICT WIN over every named level"
                if result.strict_win
                else "a grid candidate ties the best named level"
                if best.kind == "candidate"
                else "a named level is already optimal in this grid"
            )
            print(
                f"best: {best.signature} -> {best.score:.0f} predicted misses "
                f"({verdict}; {len(result.candidates)} candidates, "
                f"{result.seconds:.1f}s)"
            )
            if result.rank_agreement is not None:
                print(
                    f"dynamic validation (top {len(result.validated)}): "
                    f"static ranking "
                    f"{'confirmed' if result.rank_agreement else 'NOT confirmed'}"
                )
                if not result.rank_agreement:
                    exit_code = 1
            if target != targets[-1]:
                print()
    if args.json:
        print(json.dumps({"programs": payload}, indent=2))
    if args.json_out:
        merged = merge_json_artifact(
            args.json_out,
            payload,
            {
                "benchmark": "static-profile pipeline autotuning",
                "objective": args.objective,
            },
        )
        print(f"wrote {args.json_out} ({len(merged)} program(s))")
    return exit_code


def cmd_apps(_args: argparse.Namespace) -> int:
    for name, entry in APPLICATIONS.items():
        facts = entry.paper_facts
        print(
            f"  {name:8s} {facts['source']:20s} paper input {facts['input_size']}, "
            f"default {dict(entry.default_params)}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Global cache-reuse compiler (Ding & Kennedy, IPPS 2001) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # shared option groups: every measuring subcommand spells program
    # parameters, the engine choice, verification, and caching the same way
    params_args = argparse.ArgumentParser(add_help=False)
    params_args.add_argument(
        "-p", "--param", "--params", dest="param", action="append",
        metavar="NAME=INT",
        help="one program-parameter binding per flag (repeat for more, "
        "e.g. -p N=161 -p steps=5)",
    )
    params_args.add_argument(
        "--steps", type=int, default=None,
        help="body repetitions (default: the app's registry value, 1 for files)",
    )
    engine_args = argparse.ArgumentParser(add_help=False)
    engine_args.add_argument(
        "--engine", type=engine_spec, default=None, metavar="SPEC",
        help="engine spec: a simulation engine "
        f"({'|'.join(ENGINES)}), a tracer ({'|'.join(TRACE_ENGINES)}), "
        "or both joined by '+' (e.g. fast+interp)",
    )
    verify_args = argparse.ArgumentParser(add_help=False)
    verify_args.add_argument(
        "--verify", action="store_true",
        help="certify pass legality during compilation",
    )
    cache_args = argparse.ArgumentParser(add_help=False)
    cache_args.add_argument(
        "--cache", action="store_true", help="use the on-disk trace/result cache"
    )
    cache_args.add_argument("--cache-dir", default=None, help="cache directory")
    passes_args = argparse.ArgumentParser(add_help=False)
    passes_args.add_argument(
        "--passes", default=None, metavar="P1,P2,...",
        help="compile through this comma-separated pass list instead of a "
        "level ('repro pipeline --json' lists every registered pass with "
        "its metadata)",
    )

    fuse = sub.add_parser("fuse", help="transform a mini-language source file")
    fuse.add_argument("file")
    fuse.add_argument("--level", default="fusion", help="optimization level")
    fuse.add_argument("-v", "--verbose", action="store_true")
    fuse.set_defaults(fn=cmd_fuse)

    regroup = sub.add_parser("regroup", help="show the data-regrouping decision")
    regroup.add_argument("file")
    regroup.add_argument("--level", default="new")
    regroup.add_argument("-p", "--param", action="append", metavar="NAME=INT")
    regroup.set_defaults(fn=cmd_regroup)

    report = sub.add_parser(
        "report",
        help="measure optimization levels",
        parents=[params_args, engine_args, verify_args, cache_args, passes_args],
    )
    report.add_argument("target", help="registry app name or source file")
    report.add_argument("--levels", default="noopt,fusion,new")
    report.add_argument(
        "--timings", action="store_true", help="print per-stage wall-clock table"
    )
    report.add_argument(
        "--bandwidth", action="store_true",
        help="append the effective-bandwidth table (memory traffic in MB, "
        "GB/s over the synthesized run time, DRAM row-buffer hit rate, "
        "energy)",
    )
    report.add_argument(
        "--parallelism", action="store_true",
        help="append per-level axis verdicts and the predicted multicore "
        "miss table (private L1 per thread, shared L2)",
    )
    report.add_argument(
        "--coherence", action="store_true",
        help="append the per-level coherence table (predicted invalidation "
        "misses, true/false sharing lines)",
    )
    report.add_argument(
        "--threads", type=int, default=4,
        help="thread count for the --parallelism and --coherence "
        "predictions (default 4)",
    )
    report.set_defaults(fn=cmd_report)

    profile = sub.add_parser(
        "profile",
        help="span-tree profile of one (program, level) run",
        parents=[params_args, engine_args, verify_args, cache_args, passes_args],
    )
    profile.add_argument("target", help="registry app name or source file")
    profile.add_argument("--level", default="new", help="optimization level")
    profile.add_argument(
        "--no-memory", action="store_true",
        help="skip tracemalloc peak-memory tracking (faster)",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit schema-v1 span events as JSON instead of the tree",
    )
    profile.set_defaults(fn=cmd_profile)

    runs = sub.add_parser("runs", help="list recorded run logs")
    runs.add_argument(
        "--runs-root", default=None,
        help="directory run logs live under (default runs/ or $REPRO_RUNS_DIR)",
    )
    runs.add_argument("--json", action="store_true", help="JSON output")
    runs.set_defaults(fn=cmd_runs)

    bench = sub.add_parser(
        "bench-engine",
        help="compare fast vs. reference simulation engines",
        parents=[params_args],
    )
    bench.add_argument("app", nargs="?", default="adi", help="registry app name")
    bench.add_argument("--levels", default="noopt,fusion,new")
    bench.add_argument("--repeats", type=int, default=3)
    bench.set_defaults(fn=cmd_bench_engine)

    bench_cg = sub.add_parser(
        "bench-codegen",
        help="compare interpreter vs. codegen trace generation",
        parents=[params_args],
    )
    bench_cg.add_argument(
        "--apps", default="adi,swim,tomcatv,sp",
        help="comma-separated registry apps (fig-10 set by default)",
    )
    bench_cg.add_argument("--levels", default="noopt,fusion,new")
    bench_cg.add_argument("--repeats", type=int, default=3)
    bench_cg.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="also write the machine-readable payload (BENCH_codegen.json)",
    )
    bench_cg.set_defaults(fn=cmd_bench_codegen)

    bench_bw = sub.add_parser(
        "bench-membw",
        help="effective-bandwidth and DRAM report across the paper's programs",
        parents=[engine_args],
    )
    bench_bw.add_argument(
        "--apps", default=MEMBW_APPS,
        help=f"comma-separated programs (default {MEMBW_APPS})",
    )
    bench_bw.add_argument("--levels", default="noopt,new")
    bench_bw.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="merge the machine-readable rows into FILE (BENCH_membw.json); "
        "existing rows for other program/level pairs are kept",
    )
    bench_bw.add_argument(
        "--check", action="store_true",
        help="verify the committed --baseline rows reproduce exactly and "
        "the trace export/import round trip preserves the simulation",
    )
    bench_bw.add_argument("--baseline", default=None, metavar="FILE")
    bench_bw.set_defaults(fn=cmd_bench_membw)

    trace = sub.add_parser(
        "trace", help="export, import, or inspect address-stream files"
    )
    trace_sub = trace.add_subparsers(dest="action", required=True)
    texp = trace_sub.add_parser(
        "export",
        help="trace a program and write the address stream to disk",
        parents=[params_args, engine_args],
    )
    texp.add_argument("target", help="registry app name, 'fft', or source file")
    texp.add_argument("-o", "--output", required=True, metavar="FILE")
    texp.add_argument("--level", default="new", help="optimization level")
    texp.add_argument(
        "--format", choices=("auto", "binary", "csv"), default="auto",
        help="on-disk format (auto: csv for .csv paths, binary otherwise)",
    )
    texp.set_defaults(fn=cmd_trace_export)
    timp = trace_sub.add_parser(
        "import",
        help="load a stream (.ast binary or CSV) and simulate it",
        parents=[engine_args],
    )
    timp.add_argument("file", help="stream file (binary .ast or CSV)")
    timp.add_argument(
        "--machine", choices=("octane", "origin2000"), default=None,
        help="simulate on this base machine (default: the default scaled spec)",
    )
    timp.add_argument(
        "--app", default=None,
        help="simulate on this registry app's scaled machine instead",
    )
    timp.add_argument(
        "--reuse", action="store_true",
        help="also run the exact reuse-distance analyzer on the stream",
    )
    timp.set_defaults(fn=cmd_trace_import)
    tinf = trace_sub.add_parser("info", help="print a stream file's metadata")
    tinf.add_argument("file")
    tinf.set_defaults(fn=cmd_trace_info)

    cache = sub.add_parser("cache", help="inspect or clear the trace/result cache")
    cache.add_argument("--dir", default=None, help="cache directory (default .cache)")
    cache.add_argument("--clear", action="store_true")
    cache.set_defaults(fn=cmd_cache)

    lint = sub.add_parser(
        "lint", help="static IR verification of a program"
    )
    lint.add_argument(
        "target", nargs="?", help="registry app name or source file"
    )
    lint.add_argument("--json", action="store_true", help="JSON output")
    lint.add_argument(
        "--strict", action="store_true", help="warnings also fail (exit 1)"
    )
    lint.add_argument(
        "--assume", type=int, default=None, metavar="MIN",
        help="assumed parameter lower bound for symbolic checks (default 8)",
    )
    lint.add_argument(
        "--self", dest="self_check", action="store_true",
        help="lint the compiler's own sources via ruff instead",
    )
    lint.add_argument(
        "--static", action="store_true",
        help="also run the predictive S3xx locality lints "
        "(symbolic reuse profile; no trace is generated)",
    )
    lint.add_argument(
        "--all-apps", action="store_true",
        help="lint every bundled application instead of one target",
    )
    lint.add_argument(
        "--explain", metavar="CODE",
        help="document one diagnostic code (e.g. S301) and exit",
    )
    lint.add_argument(
        "--codes", action="store_true",
        help="print the full diagnostic-code registry table and exit",
    )
    lint.add_argument(
        "--baseline", metavar="FILE",
        help="accepted-diagnostics file; any diagnostic beyond it fails",
    )
    lint.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current diagnostics as the accepted baseline",
    )
    lint.set_defaults(fn=cmd_lint)

    static = sub.add_parser(
        "static-reuse",
        help="symbolic (trace-free) reuse profile of a program",
        parents=[params_args],
    )
    static.add_argument("target", help="registry app name or source file")
    static.add_argument(
        "--level", default=None,
        help="optimization level to apply before analysis (default: none)",
    )
    static.add_argument(
        "--assume", type=int, default=None, metavar="MIN",
        help="assumed parameter lower bound for symbolic comparisons",
    )
    static.add_argument(
        "--json", action="store_true",
        help="emit the profile (and predicted histogram) as JSON",
    )
    static.set_defaults(fn=cmd_static_reuse)

    par = sub.add_parser(
        "parallelism",
        help="dependence-based DOALL/reduction/serial verdict per loop axis",
        parents=[params_args],
    )
    par.add_argument(
        "target", nargs="?", help="registry app name or source file"
    )
    par.add_argument(
        "--all-apps", action="store_true",
        help="analyze every bundled application instead of one target",
    )
    par.add_argument(
        "--level", default=None,
        help="optimization level to apply before analysis (default: none)",
    )
    par.add_argument(
        "--threads", type=int, default=None, metavar="T",
        help="also predict per-thread private + shared cache reuse at T threads",
    )
    par.add_argument(
        "--schedule", type=_schedule_spec, default="static",
        help="OpenMP schedule assumed by the multicore prediction "
        "(static, static,k, guided, dynamic)",
    )
    par.add_argument("--json", action="store_true", help="JSON output")
    par.add_argument(
        "--check", action="store_true",
        help="exit 1 if any axis verdict is 'unknown' (CI gate)",
    )
    par.set_defaults(fn=cmd_parallelism)

    coh = sub.add_parser(
        "coherence",
        help="static coherence prediction: invalidation misses, true/false "
        "sharing at cache-line granularity, concrete witnesses",
        parents=[params_args],
    )
    coh.add_argument(
        "target", nargs="?", help="registry app name or source file"
    )
    coh.add_argument(
        "--all-apps", action="store_true",
        help="analyze every bundled application instead of one target",
    )
    coh.add_argument(
        "--level", default=None,
        help="optimization level to apply before analysis (default: none)",
    )
    coh.add_argument(
        "--threads", type=int, default=4,
        help="thread count to model (default 4)",
    )
    coh.add_argument(
        "--schedule", type=_schedule_spec, default="static",
        help="OpenMP schedule (static, static,k, guided, dynamic)",
    )
    coh.add_argument("--json", action="store_true", help="JSON output")
    coh.set_defaults(fn=cmd_coherence)

    verify = sub.add_parser(
        "verify-pass",
        help="certify that optimization passes preserve all dependences",
        parents=[params_args, passes_args],
    )
    verify.add_argument(
        "target", nargs="?",
        help="registry app name or source file (default: all apps)",
    )
    verify.add_argument("--levels", default="new", help="comma-separated levels")
    verify.add_argument("--before", help="original source file")
    verify.add_argument("--after", help="transformed source file")
    verify.add_argument("--pass-name", default="transform",
                        help="label for --before/--after mode")
    verify.add_argument("--json", action="store_true", help="JSON output")
    verify.set_defaults(fn=cmd_verify_pass)

    levels = sub.add_parser("levels", help="list optimization levels")
    levels.set_defaults(fn=cmd_levels)

    pipeline = sub.add_parser(
        "pipeline", help="introspect the pass-pipeline registry"
    )
    pipeline.add_argument(
        "--list", action="store_true",
        help="list registered pipelines with their pass sequences (default)",
    )
    pipeline.add_argument(
        "--describe", metavar="NAME",
        help="per-pass detail for one pipeline (options, preserved analyses)",
    )
    pipeline.add_argument(
        "--lint", action="store_true",
        help="lint the pass registry (L201: missing preserves/invalidates)",
    )
    pipeline.add_argument(
        "--strict", action="store_true", help="lint warnings also fail (exit 1)"
    )
    pipeline.add_argument(
        "--json", action="store_true",
        help="machine-readable registry dump: every pass (with metadata) "
        "and every pipeline in the shared pipeline-description schema "
        "(with --describe NAME: just that pipeline)",
    )
    pipeline.set_defaults(fn=cmd_pipeline)

    tune = sub.add_parser(
        "tune",
        help="autotune pass pipelines by statically predicted misses",
        parents=[params_args, engine_args],
    )
    tune.add_argument(
        "target", nargs="*",
        help="registry app names or source files ('fft' resolves to the "
        "bundled FFT at -p n=SIZE, default 64)",
    )
    tune.add_argument(
        "--all-apps", action="store_true",
        help="tune every bundled application (plus any extra targets given)",
    )
    tune.add_argument(
        "--at", action="append", metavar="NAME=INT[,NAME=INT...]",
        help="extra target size to score at (repeatable; -p sizes come first)",
    )
    tune.add_argument(
        "--objective", choices=("misses", "parallel-misses", "bytes"),
        default="misses",
        help="ranking objective: single-core L1+L2 predicted misses, the "
        "multicore prediction (private L1 per thread + shared L2), or "
        "predicted bytes moved (misses weighted by line size)",
    )
    tune.add_argument(
        "--threads", type=int, default=4,
        help="thread count for --objective parallel-misses (default 4)",
    )
    tune.add_argument(
        "--schedule", type=_schedule_spec, default="static",
        help="OpenMP schedule assumed by the multicore objective "
        "(static, static,k, guided, dynamic)",
    )
    tune.add_argument(
        "--enablers", default=",".join(TUNE_ENABLERS), metavar="P1,P2,...",
        help="enabler passes the search may toggle (default: "
        f"{','.join(TUNE_ENABLERS)}; pass '' to disable all)",
    )
    tune.add_argument(
        "--fusion-levels", default="0,1,2,4,8", metavar="K1,K2,...",
        help="fusion max_levels values to try; 0 means no fusion",
    )
    tune.add_argument(
        "--no-regroup", action="store_true",
        help="do not try the terminal regroup pass",
    )
    tune.add_argument(
        "--max-candidates", type=int, default=None, metavar="N",
        help="cap the candidate grid (cheapest pipelines first)",
    )
    tune.add_argument(
        "--top-k", type=int, default=3,
        help="dynamically validate this many best candidates (default 3)",
    )
    tune.add_argument(
        "--no-validate", action="store_true",
        help="skip dynamic validation of the top-k frontier",
    )
    tune.add_argument(
        "--no-verify", action="store_true",
        help="skip legality certification of candidate pipelines",
    )
    tune.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed tune/trace cache (on by default)",
    )
    tune.add_argument("--cache-dir", default=None, help="cache directory")
    tune.add_argument(
        "--events", action="store_true",
        help="record schema-v1 tune.* events under the runs root",
    )
    tune.add_argument(
        "--runs-root", default=None,
        help="directory run logs live under (default runs/ or $REPRO_RUNS_DIR)",
    )
    tune.add_argument("--json", action="store_true", help="JSON output")
    tune.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="write/merge the per-program payload (BENCH_tune.json); "
        "existing entries for other programs are kept",
    )
    tune.add_argument(
        "--check", action="store_true",
        help="regression-gate a committed --baseline FILE instead of tuning: "
        "exit 1 if any tuned pipeline predicts more misses than a named "
        "level (recomputing pipelines cheaper than --budget seconds)",
    )
    tune.add_argument(
        "--baseline", metavar="FILE", help="committed BENCH_tune.json to gate"
    )
    tune.add_argument(
        "--budget", type=float, default=30.0, metavar="SECONDS",
        help="--check recomputes only pipelines whose committed analysis "
        "cost is at most this many seconds (default 30)",
    )
    tune.set_defaults(fn=cmd_tune)

    apps = sub.add_parser("apps", help="list bundled applications")
    apps.set_defaults(fn=cmd_apps)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
