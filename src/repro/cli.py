"""Command-line front end: the source-to-source tool as a tool.

Subcommands:

* ``fuse FILE``      — parse a mini-language file, run an optimization
  level (default: the paper's full strategy), print the transformed source;
* ``regroup FILE``   — print the data-regrouping decision and, given ``-p
  N=...``, the concrete placements;
* ``report APP``     — Fig. 10-style measurement of a bundled application
  (or a file) across optimization levels on the scaled machine;
* ``levels``         — list the optimization levels;
* ``apps``           — list the bundled benchmark applications;
* ``bench-engine``   — time the fast vs. reference simulation engines on
  one application and assert their metrics are bit-identical;
* ``cache``          — inspect or clear the on-disk trace/result cache.

Examples::

    python -m repro fuse kernel.loop --level fusion
    python -m repro regroup kernel.loop -p N=512
    python -m repro report adi --levels noopt,fusion,new
    python -m repro bench-engine adi
    python -m repro cache --clear
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .core import OPT_LEVELS, compile_variant
from .harness import (
    NORMALIZED_HEADERS,
    TIMING_HEADERS,
    TraceCache,
    format_table,
    machine_for,
    measure,
    measure_application,
    normalized_rows,
    timing_rows,
)
from .interp import trace_program
from .lang import Program, ReproError, parse, to_source, validate
from .memsim import ENGINES, simulate_addresses
from .programs import APPLICATIONS, registry
from .programs.registry import MachineSpec


def _load_program(path: str) -> Program:
    source = Path(path).read_text()
    return validate(parse(source))


def _parse_params(items: Optional[Sequence[str]]) -> dict[str, int]:
    out: dict[str, int] = {}
    for item in items or ():
        name, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad parameter {item!r}; expected NAME=INT")
        out[name] = int(value)
    return out


def cmd_fuse(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    variant = compile_variant(program, args.level)
    print(to_source(variant.program), end="")
    if variant.fusion_report is not None and args.verbose:
        print("\n# " + variant.fusion_report.summary().replace("\n", "\n# "),
              file=sys.stderr)
    return 0


def cmd_regroup(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    variant = compile_variant(program, args.level)
    if variant.regroup is None:
        print("optimization level produced no regrouping plan", file=sys.stderr)
        return 1
    print(variant.regroup.describe())
    params = _parse_params(args.param)
    if params:
        layout = variant.layout(params)
        print(f"\nplacements at {params} (element offsets / strides):")
        for name, placement in sorted(layout.placements.items()):
            print(f"  {name}: offset {placement.offset}, strides {placement.strides}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    levels = args.levels.split(",")
    unknown = [l for l in levels if l not in OPT_LEVELS and not l.endswith("+regroup")]
    if unknown:
        raise SystemExit(f"unknown levels: {unknown}; see 'repro levels'")
    cache = TraceCache(args.cache_dir) if args.cache else None
    if args.target in APPLICATIONS:
        results = measure_application(
            args.target, levels, engine=args.engine, cache=cache
        )
        title = f"{args.target} (registry application, scaled machine)"
    else:
        program = _load_program(args.target)
        params = _parse_params(args.param)
        if not params:
            raise SystemExit("measuring a file requires -p NAME=INT")
        machine = machine_for(MachineSpec())
        results = [
            measure(
                program,
                level,
                params,
                machine,
                steps=args.steps,
                engine=args.engine,
                cache=cache,
            )
            for level in levels
        ]
        title = f"{program.name} ({args.target})"
    print(format_table(NORMALIZED_HEADERS, normalized_rows(results), title=title))
    if args.timings:
        print()
        print(
            format_table(
                TIMING_HEADERS,
                timing_rows(results),
                title="per-stage seconds ('-' = served from cache)",
            )
        )
    return 0


def cmd_bench_engine(args: argparse.Namespace) -> int:
    """Time fast vs. reference engines; fail unless metrics are identical."""
    levels = args.levels.split(",")
    entry = registry.get(args.app)
    program = validate(entry.build())
    machine = machine_for(entry.machine_spec)
    params = _parse_params(args.param) or entry.default_params
    steps = args.steps if args.steps is not None else entry.steps

    headers = ("level", "engine", "l1", "l2", "tlb", "sim total")
    rows: list[list[object]] = []
    totals = dict.fromkeys(ENGINES, 0.0)
    identical = True
    for level in levels:
        variant = compile_variant(program, level)
        trace = trace_program(variant.program, params, steps=steps)
        addresses = variant.layout(params).addresses(trace, in_bytes=True)
        stats_by = {}
        for engine in ("reference", "fast"):
            best, best_timings = float("inf"), {}
            for _ in range(args.repeats):
                timings: dict[str, float] = {}
                t0 = time.perf_counter()
                stats = simulate_addresses(
                    addresses, trace.writes, machine, engine=engine, timings=timings
                )
                elapsed = time.perf_counter() - t0
                if elapsed < best:
                    best, best_timings = elapsed, timings
            stats_by[engine] = stats
            totals[engine] += best
            rows.append(
                [level, engine]
                + [best_timings.get(s, 0.0) for s in ("l1", "l2", "tlb")]
                + [best]
            )
        if stats_by["fast"] != stats_by["reference"]:
            identical = False
            print(f"ENGINE MISMATCH at level {level}:", file=sys.stderr)
            print(f"  reference: {stats_by['reference']}", file=sys.stderr)
            print(f"  fast:      {stats_by['fast']}", file=sys.stderr)

    title = (
        f"{args.app} engine comparison ({machine.name}, params {dict(params)}, "
        f"best of {args.repeats}; seconds)"
    )
    print(format_table(headers, rows, title=title))
    speedup = totals["reference"] / totals["fast"] if totals["fast"] else 0.0
    print(
        f"\nmetrics bit-identical across engines: {identical}\n"
        f"sim wall-clock: reference {totals['reference']:.3f}s, "
        f"fast {totals['fast']:.3f}s -> {speedup:.2f}x speedup"
    )
    return 0 if identical else 1


def cmd_cache(args: argparse.Namespace) -> int:
    cache = TraceCache(args.dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}/")
    info = cache.info()
    print(
        f"{cache.root}/: {info['traces']} traces, {info['results']} results, "
        f"{info['bytes'] / 1e6:.1f} MB"
    )
    return 0


def cmd_levels(_args: argparse.Namespace) -> int:
    descriptions = {
        "noopt": "inline only (the measured original)",
        "sgi": "SGI-like local baseline: intra-nest fusion + padding",
        "mckinley": "restricted fusion (identical bounds, no enablers)",
        "fusion1": "preliminary passes + 1-level reuse-based fusion",
        "fusion": "preliminary passes + full multi-level fusion",
        "regroup": "data regrouping without fusion (ablation)",
        "new": "the paper's strategy: fusion + regrouping",
    }
    for level in OPT_LEVELS:
        print(f"  {level:10s} {descriptions[level]}")
    print("  (compound levels like fusion1+regroup are also accepted)")
    return 0


def cmd_apps(_args: argparse.Namespace) -> int:
    for name, entry in APPLICATIONS.items():
        facts = entry.paper_facts
        print(
            f"  {name:8s} {facts['source']:20s} paper input {facts['input_size']}, "
            f"default {dict(entry.default_params)}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Global cache-reuse compiler (Ding & Kennedy, IPPS 2001) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuse = sub.add_parser("fuse", help="transform a mini-language source file")
    fuse.add_argument("file")
    fuse.add_argument("--level", default="fusion", help="optimization level")
    fuse.add_argument("-v", "--verbose", action="store_true")
    fuse.set_defaults(fn=cmd_fuse)

    regroup = sub.add_parser("regroup", help="show the data-regrouping decision")
    regroup.add_argument("file")
    regroup.add_argument("--level", default="new")
    regroup.add_argument("-p", "--param", action="append", metavar="NAME=INT")
    regroup.set_defaults(fn=cmd_regroup)

    report = sub.add_parser("report", help="measure optimization levels")
    report.add_argument("target", help="registry app name or source file")
    report.add_argument("--levels", default="noopt,fusion,new")
    report.add_argument("-p", "--param", action="append", metavar="NAME=INT")
    report.add_argument("--steps", type=int, default=1)
    report.add_argument(
        "--engine", choices=ENGINES, default=None, help="simulation engine"
    )
    report.add_argument(
        "--timings", action="store_true", help="print per-stage wall-clock table"
    )
    report.add_argument(
        "--cache", action="store_true", help="use the on-disk trace/result cache"
    )
    report.add_argument("--cache-dir", default=None, help="cache directory")
    report.set_defaults(fn=cmd_report)

    bench = sub.add_parser(
        "bench-engine",
        help="compare fast vs. reference simulation engines",
    )
    bench.add_argument("app", nargs="?", default="adi", help="registry app name")
    bench.add_argument("--levels", default="noopt,fusion,new")
    bench.add_argument("-p", "--param", action="append", metavar="NAME=INT")
    bench.add_argument("--steps", type=int, default=None)
    bench.add_argument("--repeats", type=int, default=3)
    bench.set_defaults(fn=cmd_bench_engine)

    cache = sub.add_parser("cache", help="inspect or clear the trace/result cache")
    cache.add_argument("--dir", default=None, help="cache directory (default .cache)")
    cache.add_argument("--clear", action="store_true")
    cache.set_defaults(fn=cmd_cache)

    levels = sub.add_parser("levels", help="list optimization levels")
    levels.set_defaults(fn=cmd_levels)

    apps = sub.add_parser("apps", help="list bundled applications")
    apps.set_defaults(fn=cmd_apps)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
