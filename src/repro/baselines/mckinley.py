"""Restricted loop fusion after McKinley, Carr & Tseng (paper §5).

The first implemented-and-evaluated fusion the paper compares against
"fused only loops with an equal number of iterations and with no
fusion-preventing dependences" — no statement embedding, no alignment,
no splitting.  The paper notes this fused just 6% of candidate loops and
produced marginal improvements; the comparator benchmarks reproduce that
gap.
"""

from __future__ import annotations

from ..core.fusion import FusionOptions, fuse_program
from ..core.pipeline import CompiledVariant
from ..core.regroup import default_layout
from ..lang import Program, validate
from ..transform import inline_procedures, simplify_program


def mckinley_options() -> FusionOptions:
    return FusionOptions(
        embedding=False,
        alignment=False,
        splitting=False,
        identical_bounds=True,
    )


def mckinley_compile(program: Program, stages: dict) -> CompiledVariant:
    p = validate(simplify_program(inline_procedures(program)))
    fused, report = fuse_program(p, max_levels=8, options=mckinley_options())
    fused = validate(simplify_program(fused))
    stages["mckinley"] = fused.stats()
    return CompiledVariant(
        "mckinley",
        fused,
        lambda params: default_layout(fused, params),
        fusion_report=report,
        stages=stages,
    )
