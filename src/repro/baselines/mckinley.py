"""Restricted loop fusion after McKinley, Carr & Tseng (paper §5).

The first implemented-and-evaluated fusion the paper compares against
"fused only loops with an equal number of iterations and with no
fusion-preventing dependences" — no statement embedding, no alignment,
no splitting.  The paper notes this fused just 6% of candidate loops and
produced marginal improvements; the comparator benchmarks reproduce that
gap.

:func:`mckinley_transform` is the program transformation the
``mckinley`` pipeline pass runs; :func:`mckinley_compile` is the
historical one-call front that also assembles the
:class:`~repro.core.pipeline.CompiledVariant`.
"""

from __future__ import annotations

from functools import partial

from ..core.fusion import FusionOptions, FusionReport, fuse_program
from ..core.pipeline import CompiledVariant
from ..core.regroup import default_layout
from ..lang import Program, validate
from ..transform import inline_procedures, simplify_program


def mckinley_options() -> FusionOptions:
    return FusionOptions(
        embedding=False,
        alignment=False,
        splitting=False,
        identical_bounds=True,
    )


def mckinley_transform(program: Program) -> tuple[Program, FusionReport]:
    """Inline + cleanup + identical-bounds-only fusion."""
    p = validate(simplify_program(inline_procedures(program)))
    fused, report = fuse_program(p, max_levels=8, options=mckinley_options())
    return validate(simplify_program(fused)), report


def mckinley_compile(program: Program, stages: dict) -> CompiledVariant:
    fused, report = mckinley_transform(program)
    stages["mckinley"] = fused.stats()
    return CompiledVariant(
        "mckinley",
        fused,
        partial(default_layout, fused),
        fusion_report=report,
        stages=stages,
    )
