"""The "SGI compiler" comparator (paper §4.2, §6).

The paper compiles everything with ``f77 -mips4 -Ofast`` and credits the
SGI compiler with strong *local* optimization: intra-nest locality,
prefetching, and array padding ("SGI compiler has padding as a part of
its optimization").  What it lacks is exactly what the paper adds —
global (cross-nest) fusion and inter-array regrouping.

This stand-in therefore performs:

* procedure inlining and expression cleanup (parity with every variant);
* *intra-nest* fusion only: loops inside one nest body may fuse when they
  share data and need no alignment — modelling the local scheduling a
  production back end performs — while top-level (cross-nest) loops are
  left untouched;
* inter-array padding in the layout, staggering base offsets to spread
  cache-set pressure.

:func:`sgi_transform` is the program transformation the ``sgi`` pipeline
pass runs; :func:`sgi_compile` is the historical one-call front that also
assembles the :class:`~repro.core.pipeline.CompiledVariant`.
"""

from __future__ import annotations

from functools import partial

from ..core.fusion import FusionOptions
from ..core.pipeline import CompiledVariant
from ..core.regroup import padded_layout
from ..lang import Program, validate
from ..transform import inline_procedures, simplify_program


def sgi_transform(program: Program) -> Program:
    """Inline + cleanup + intra-nest-only fusion (no layout decisions)."""
    p = validate(simplify_program(inline_procedures(program)))
    # local-only fusion: skip level 1 by fusing nothing at the top —
    # restrict to inner levels by running full fusion per top-level nest
    # body only.
    from ..core.fusion.multilevel import _MultiLevel
    from ..lang import Assumptions, Loop
    from ..transform.subst import bound_names

    options = FusionOptions(embedding=False, alignment=False, splitting=False)
    engine = _MultiLevel(p.params, options, max_levels=8)
    engine.fresh.reserve(bound_names(p.body))
    assume = Assumptions(default=options.param_min)
    body = []
    for stmt in p.body:
        if isinstance(stmt, Loop):
            body.append(engine.descend(stmt, 1, tuple(p.params), assume))
        else:
            body.append(stmt)
    return validate(simplify_program(p.with_body(body)))


def sgi_compile(program: Program, stages: dict) -> CompiledVariant:
    p = sgi_transform(program)
    stages["sgi"] = p.stats()
    return CompiledVariant(
        "sgi",
        p,
        partial(padded_layout, p),
        stages=stages,
    )
