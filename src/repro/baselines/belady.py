"""Belady's optimal replacement policy (paper §2.2 framing).

Reuse-driven execution is "in a sense the inverse of Belady's policy":
Belady evicts the line with the furthest next use; reuse-driven execution
runs the instruction with the *closest* next reuse.  This module provides
the classic OPT cache simulation so the extension benchmarks can bound
how much of the miss reduction is achievable by replacement policy alone
(none of the bandwidth, all of the latency) versus by reordering.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..memsim.cache import CacheConfig


def simulate_belady(config: CacheConfig, addresses: np.ndarray) -> np.ndarray:
    """Fully-associative cache with optimal (furthest-next-use) eviction.

    Returns the per-access miss mask.  Set-associative Belady is not
    meaningful for the comparison (the paper's framing is capacity-based),
    so the geometry's total line count is used as the capacity.
    """
    lines = (np.asarray(addresses, dtype=np.int64) // config.line_bytes).tolist()
    n = len(lines)
    INF = n + 1
    # next_use[t] = next position accessing the same line, or INF
    next_use = [INF] * n
    last: dict[int, int] = {}
    for t in range(n - 1, -1, -1):
        line = lines[t]
        next_use[t] = last.get(line, INF)
        last[line] = t
    capacity = config.num_lines
    miss = np.zeros(n, dtype=bool)
    resident: set[int] = set()
    #: the authoritative next use per resident line; heap entries that
    #: disagree are stale and skipped lazily
    current_nu: dict[int, int] = {}
    heap: list[tuple[int, int]] = []  # (-next_use, line)
    for t, line in enumerate(lines):
        nu = next_use[t]
        if line in resident:
            current_nu[line] = nu
            heapq.heappush(heap, (-nu, line))
            continue
        miss[t] = True
        if len(resident) >= capacity:
            while True:
                neg_nu, victim = heapq.heappop(heap)
                if victim in resident and current_nu.get(victim) == -neg_nu:
                    resident.remove(victim)
                    del current_nu[victim]
                    break
        resident.add(line)
        current_nu[line] = nu
        heapq.heappush(heap, (-nu, line))
    return miss
