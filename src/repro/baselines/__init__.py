"""Comparator implementations: SGI-like local optimizer, McKinley fusion,
Belady-optimal replacement."""

from .belady import simulate_belady
from .mckinley import mckinley_compile, mckinley_options
from .sgi_like import sgi_compile

__all__ = [
    "mckinley_compile",
    "mckinley_options",
    "sgi_compile",
    "simulate_belady",
]
