"""Array splitting: eliminate small constant data dimensions (§4.1).

After unrolling, a dimension of small constant size is only ever
subscripted by constants; the array is split into one array per slice
(SP's 15 arrays become 42 this way in the paper).  Split arrays become
independent units for data regrouping — which is the point: regrouping
can then interleave exactly the slices that are used together.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..lang import (
    ArrayDecl,
    SliceOrigin,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Expr,
    Guard,
    Loop,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
)


def _splittable_dim(
    program: Program, decl: ArrayDecl, max_extent: int
) -> Optional[tuple[int, int]]:
    """(dim index, extent) of a splittable dimension, or None.

    A dimension splits when its extent is a constant <= max_extent, the
    array would keep at least one dimension, and every reference
    subscripts it with a constant.
    """
    if decl.ndim < 2:
        return None
    candidates = []
    for k, ext in enumerate(decl.extent_affines()):
        if ext.is_constant() and 1 <= ext.int_value() <= max_extent:
            candidates.append((k, ext.int_value()))
    if not candidates:
        return None
    constant_ok = {k: True for k, _ in candidates}
    for stmt in program.walk():
        if not isinstance(stmt, Assign):
            continue
        for node in list(stmt.expr.walk()) + list(stmt.target.walk()):
            if isinstance(node, ArrayRef) and node.array == decl.name:
                for k, _ in candidates:
                    if not node.indices[k].affine().is_constant():
                        constant_ok[k] = False
    for k, ext in candidates:
        if constant_ok[k]:
            return k, ext
    return None


def _slice_name(base: str, value: int) -> str:
    return f"{base}_{value}"


class _Splitter:
    def __init__(self, splits: dict[str, tuple[int, int]]) -> None:
        self.splits = splits  # array -> (dim, extent)

    def expr(self, e: Expr) -> Expr:
        if isinstance(e, ArrayRef):
            indices = tuple(self.expr(i) for i in e.indices)
            split = self.splits.get(e.array)
            if split is None:
                return ArrayRef(e.array, indices)
            dim, _ = split
            value = indices[dim].affine().int_value()
            rest = indices[:dim] + indices[dim + 1:]
            return ArrayRef(_slice_name(e.array, value), rest)
        if isinstance(e, BinOp):
            return BinOp(e.op, self.expr(e.left), self.expr(e.right))
        if isinstance(e, UnaryOp):
            return UnaryOp(e.op, self.expr(e.operand))
        if isinstance(e, Call):
            return Call(e.func, tuple(self.expr(a) for a in e.args))
        return e

    def stmt(self, s: Stmt) -> Stmt:
        if isinstance(s, Assign):
            target = self.expr(s.target)
            assert isinstance(target, (ArrayRef, ScalarRef))
            return Assign(target, self.expr(s.expr))
        if isinstance(s, Loop):
            return replace(
                s,
                lower=self.expr(s.lower),
                upper=self.expr(s.upper),
                body=tuple(self.stmt(b) for b in s.body),
            )
        if isinstance(s, Guard):
            return Guard(
                s.index,
                s.intervals,
                tuple(self.stmt(b) for b in s.body),
                tuple(self.stmt(b) for b in s.else_body),
            )
        return s


def split_arrays(program: Program, max_extent: int = 5) -> Program:
    """Split every splittable small dimension (repeats to a fixpoint)."""
    while True:
        splits: dict[str, tuple[int, int]] = {}
        for decl in program.arrays:
            found = _splittable_dim(program, decl, max_extent)
            if found is not None:
                splits[decl.name] = found
        if not splits:
            return program
        new_arrays: list[ArrayDecl] = []
        for decl in program.arrays:
            if decl.name in splits:
                dim, extent = splits[decl.name]
                rest = decl.extents[:dim] + decl.extents[dim + 1:]
                for value in range(1, extent + 1):
                    new_arrays.append(
                        ArrayDecl(
                            _slice_name(decl.name, value),
                            rest,
                            elem_size=decl.elem_size,
                            origin=decl.origin or decl.name,
                            origin_slice=SliceOrigin(
                                decl.name, dim, value, extent, decl.origin_slice
                            ),
                        )
                    )
            else:
                new_arrays.append(decl)
        splitter = _Splitter(splits)
        program = replace(
            program,
            arrays=tuple(new_arrays),
            body=tuple(splitter.stmt(s) for s in program.body),
        )
