"""Preliminary transformations (paper §4.1) and rewriting utilities."""

from .distribute import distribute_loops
from .inline import inline_procedures
from .simplify import (
    propagate_scalar_constants,
    simplify_expr,
    simplify_program,
    simplify_stmt,
)
from .split_arrays import split_arrays
from .subst import FreshNames, bound_names, rename_bound, subst_expr, subst_stmt
from .unroll import unroll_small_loops

__all__ = [
    "FreshNames",
    "bound_names",
    "distribute_loops",
    "inline_procedures",
    "propagate_scalar_constants",
    "rename_bound",
    "simplify_expr",
    "simplify_program",
    "simplify_stmt",
    "split_arrays",
    "subst_expr",
    "subst_stmt",
    "unroll_small_loops",
]
