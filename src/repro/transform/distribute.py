"""Maximal loop distribution (§4.1, third preliminary transformation).

Each loop's body statements are partitioned into the strongly connected
components of the body dependence graph (the Allen–Kennedy condition);
each SCC becomes its own loop, emitted in topological order.  Distribution
runs innermost-first so deeply nested code is fully scattered before
fusion rebuilds exactly the groupings that pay off.
"""

from __future__ import annotations


import networkx as nx

from ..analysis.manager import cached_body_dependence_graph
from ..lang import Assumptions, Guard, Loop, Program, Stmt


def _distribute_stmt(
    stmt: Stmt, fixed: tuple[str, ...], assume
) -> list[Stmt]:
    if isinstance(stmt, Guard):
        body: list[Stmt] = []
        for s in stmt.body:
            body.extend(_distribute_stmt(s, fixed, assume))
        else_body: list[Stmt] = []
        for s in stmt.else_body:
            else_body.extend(_distribute_stmt(s, fixed, assume))
        return [Guard(stmt.index, stmt.intervals, tuple(body), tuple(else_body))]
    if not isinstance(stmt, Loop):
        return [stmt]
    # innermost first; the loop's own index is a fixed symbolic constant
    # from the inner loops' point of view
    low = stmt.lower.affine().lower_bound(assume)
    inner_assume = assume.with_var(stmt.index, None if low is None else int(low))
    inner_fixed = fixed + (stmt.index,)
    body = []
    for s in stmt.body:
        body.extend(_distribute_stmt(s, inner_fixed, inner_assume))
    loop = stmt.with_body(body)
    if len(loop.body) <= 1:
        return [loop]
    graph = cached_body_dependence_graph(loop, fixed, assume)
    condensation = nx.condensation(graph)
    order = list(nx.topological_sort(condensation))
    out: list[Stmt] = []
    for comp in order:
        stmt_indices = sorted(condensation.nodes[comp]["members"])
        piece = tuple(loop.body[i] for i in stmt_indices)
        label = loop.label
        if label and len(order) > 1:
            label = f"{label}.{len(out)}"
        out.append(Loop(loop.index, loop.lower, loop.upper, piece, label=label))
    return out


def distribute_loops(program: Program, param_min: int | None = None) -> Program:
    """Maximally distribute every loop in the program."""
    assume = Assumptions() if param_min is None else Assumptions(default=param_min)
    body: list[Stmt] = []
    for stmt in program.body:
        body.extend(_distribute_stmt(stmt, tuple(program.params), assume))
    return program.with_body(tuple(body))
