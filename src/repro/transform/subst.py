"""Capture-avoiding substitution and renaming over the AST.

Loop fusion, statement embedding, peeling, and inlining all rewrite index
variables.  ``subst_stmt`` maps an index variable to an arbitrary affine
expression (``i -> f - 2``), translating :class:`Guard` statements whose
guard variable is being substituted (their intervals shift by the offset).
``rename_bound`` alpha-renames inner loop indices away from a set of
reserved names before bodies from different loops are merged.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Mapping, Sequence

from ..lang import (
    Affine,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Expr,
    Guard,
    IndexVar,
    Interval,
    Loop,
    Param,
    ScalarRef,
    Stmt,
    TransformError,
    UnaryOp,
)


def subst_expr(expr: Expr, bindings: Mapping[str, Expr]) -> Expr:
    """Replace index variables by expressions throughout ``expr``."""
    if isinstance(expr, IndexVar):
        return bindings.get(expr.name, expr)
    if isinstance(expr, (Const, Param, ScalarRef)):
        return expr
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.array, tuple(subst_expr(e, bindings) for e in expr.indices))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, subst_expr(expr.left, bindings), subst_expr(expr.right, bindings))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, subst_expr(expr.operand, bindings))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(subst_expr(a, bindings) for a in expr.args))
    raise TransformError(f"cannot substitute in {expr!r}")


def _binding_var_offset(expr: Expr) -> tuple[str, Affine]:
    """Decompose a binding used for a guard variable into (var, offset).

    Substituting the variable a :class:`Guard` tests requires the
    replacement to be ``newvar + offset``; then ``old in [a, b]`` becomes
    ``new in [a - offset, b - offset]``.
    """
    form = expr.affine()
    vars_ = list(form.variables())
    if len(vars_) != 1 or form.coeff(vars_[0]) != 1:
        raise TransformError(
            f"guard variable substituted by non-translatable expression {expr}"
        )
    name = vars_[0]
    return name, form - Affine.var(name)


def subst_affine(form: Affine, bindings: Mapping[str, Expr]) -> Affine:
    """Substitute into an affine form (bindings must be affine exprs)."""
    return form.substitute({n: e.affine() for n, e in bindings.items() if n in form.variables()})


def subst_stmt(stmt: Stmt, bindings: Mapping[str, Expr]) -> Stmt:
    """Capture-avoiding substitution over a statement tree.

    Binders (loop indices) must not collide with binding names or their
    free variables — callers rename first via :func:`rename_bound`.
    """
    if not bindings:
        return stmt
    if isinstance(stmt, Assign):
        return Assign(subst_expr(stmt.target, bindings), subst_expr(stmt.expr, bindings))
    if isinstance(stmt, Loop):
        if stmt.index in bindings:
            raise TransformError(
                f"substitution target {stmt.index!r} is re-bound by an inner loop"
            )
        return replace(
            stmt,
            lower=subst_expr(stmt.lower, bindings),
            upper=subst_expr(stmt.upper, bindings),
            body=tuple(subst_stmt(s, bindings) for s in stmt.body),
        )
    if isinstance(stmt, Guard):
        body = tuple(subst_stmt(s, bindings) for s in stmt.body)
        else_body = tuple(subst_stmt(s, bindings) for s in stmt.else_body)
        if stmt.index in bindings:
            new_var, offset = _binding_var_offset(bindings[stmt.index])
            intervals = tuple(
                Interval(
                    subst_affine(iv.lower, bindings) - offset,
                    subst_affine(iv.upper, bindings) - offset,
                )
                for iv in stmt.intervals
            )
            return Guard(new_var, intervals, body, else_body)
        intervals = tuple(
            Interval(subst_affine(iv.lower, bindings), subst_affine(iv.upper, bindings))
            for iv in stmt.intervals
        )
        return Guard(stmt.index, intervals, body, else_body)
    if isinstance(stmt, CallStmt):
        return CallStmt(stmt.proc, tuple(subst_expr(a, bindings) for a in stmt.args))
    raise TransformError(f"cannot substitute in {type(stmt).__name__}")


def bound_names(stmts: Sequence[Stmt]) -> set[str]:
    """All loop indices bound anywhere inside ``stmts``."""
    out: set[str] = set()
    for s in stmts:
        for node in s.walk():
            if isinstance(node, Loop):
                out.add(node.index)
    return out


class FreshNames:
    """Generates index names avoiding a reserved set."""

    def __init__(self, reserved: Iterable[str] = ()) -> None:
        self.reserved = set(reserved)
        self.counter = 0

    def reserve(self, names: Iterable[str]) -> None:
        self.reserved.update(names)

    def fresh(self, base: str = "f") -> str:
        while True:
            self.counter += 1
            name = f"{base}{self.counter}"
            if name not in self.reserved:
                self.reserved.add(name)
                return name


def rename_bound(stmt: Stmt, avoid: set[str], fresh: FreshNames) -> Stmt:
    """Alpha-rename loop indices inside ``stmt`` that collide with ``avoid``."""
    if isinstance(stmt, Loop):
        body = tuple(rename_bound(s, avoid, fresh) for s in stmt.body)
        new = replace(stmt, body=body)
        if stmt.index in avoid:
            name = fresh.fresh(stmt.index)
            inner = tuple(subst_stmt(s, {stmt.index: IndexVar(name)}) for s in body)
            new = replace(stmt, index=name, body=inner)
        return new
    if isinstance(stmt, Guard):
        return Guard(
            stmt.index,
            stmt.intervals,
            tuple(rename_bound(s, avoid, fresh) for s in stmt.body),
            tuple(rename_bound(s, avoid, fresh) for s in stmt.else_body),
        )
    return stmt
