"""Expression simplification / constant folding (§4.1 constant propagation).

Any affine subexpression is rewritten to its canonical form (``(3 - 2)``
becomes ``1``, ``(i + 0)`` becomes ``i``, ``((j + -1) + 1)`` becomes
``j``), and non-affine operators fold constant operands.  Run after code
generation this de-noises fused output; run before analysis it is the
constant propagation the paper applies to loop statements.
"""

from __future__ import annotations

from dataclasses import replace

from ..lang import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Expr,
    Guard,
    Loop,
    NotAffineError,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
    affine_expr,
)


def simplify_expr(expr: Expr, params: frozenset[str]) -> Expr:
    """Canonicalize affine parts; fold constants elsewhere."""
    try:
        form = expr.affine()
    except NotAffineError:
        pass
    else:
        return affine_expr(form, params)
    if isinstance(expr, ArrayRef):
        return ArrayRef(
            expr.array, tuple(simplify_expr(e, params) for e in expr.indices)
        )
    if isinstance(expr, BinOp):
        left = simplify_expr(expr.left, params)
        right = simplify_expr(expr.right, params)
        if isinstance(left, Const) and isinstance(right, Const):
            return _fold(expr.op, left.value, right.value)
        # algebraic identities
        if expr.op in ("+", "-") and isinstance(right, Const) and right.value == 0:
            return left
        if expr.op == "+" and isinstance(left, Const) and left.value == 0:
            return right
        if expr.op == "*" and isinstance(right, Const) and right.value == 1:
            return left
        if expr.op == "*" and isinstance(left, Const) and left.value == 1:
            return right
        if expr.op == "/" and isinstance(right, Const) and right.value == 1:
            return left
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        inner = simplify_expr(expr.operand, params)
        if isinstance(inner, Const):
            return Const(-inner.value)
        return UnaryOp(expr.op, inner)
    if isinstance(expr, Call):
        return Call(expr.func, tuple(simplify_expr(a, params) for a in expr.args))
    return expr


def _fold(op: str, a, b) -> Const:
    if op == "+":
        return Const(a + b)
    if op == "-":
        return Const(a - b)
    if op == "*":
        return Const(a * b)
    if op == "/":
        return Const(a / b)
    raise NotAffineError(f"unknown operator {op!r}")  # pragma: no cover


def simplify_stmt(stmt: Stmt, params: frozenset[str]) -> Stmt:
    if isinstance(stmt, Assign):
        return Assign(
            simplify_expr(stmt.target, params), simplify_expr(stmt.expr, params)
        )
    if isinstance(stmt, Loop):
        return replace(
            stmt,
            lower=simplify_expr(stmt.lower, params),
            upper=simplify_expr(stmt.upper, params),
            body=tuple(simplify_stmt(s, params) for s in stmt.body),
        )
    if isinstance(stmt, Guard):
        return Guard(
            stmt.index,
            stmt.intervals,
            tuple(simplify_stmt(s, params) for s in stmt.body),
            tuple(simplify_stmt(s, params) for s in stmt.else_body),
        )
    if isinstance(stmt, CallStmt):
        return CallStmt(stmt.proc, tuple(simplify_expr(a, params) for a in stmt.args))
    return stmt


def simplify_program(program: Program) -> Program:
    """Simplify every expression in the program body."""
    params = frozenset(program.params)
    return program.with_body(
        tuple(simplify_stmt(s, params) for s in program.body)
    )


def propagate_scalar_constants(program: Program) -> Program:
    """Substitute scalars that are assigned exactly one constant, first.

    The paper's constant propagation; our kernels use few scalars, so the
    single-assignment case covers what occurs in practice.
    """
    from ..lang import assignments_in

    assigned: dict[str, list] = {}
    for a in assignments_in(program.body):
        if isinstance(a.target, ScalarRef):
            assigned.setdefault(a.target.name, []).append(a.expr)
    constants = {
        name: exprs[0]
        for name, exprs in assigned.items()
        if len(exprs) == 1 and isinstance(exprs[0], Const)
    }
    if not constants:
        return program

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, ScalarRef) and expr.name in constants:
            return constants[expr.name]
        if isinstance(expr, ArrayRef):
            return ArrayRef(expr.array, tuple(rewrite(e) for e in expr.indices))
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, Call):
            return Call(expr.func, tuple(rewrite(a) for a in expr.args))
        return expr

    def rewrite_stmt(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Assign):
            target = stmt.target
            if isinstance(target, ArrayRef):
                target = ArrayRef(
                    target.array, tuple(rewrite(e) for e in target.indices)
                )
            return Assign(target, rewrite(stmt.expr))
        if isinstance(stmt, Loop):
            return replace(
                stmt,
                lower=rewrite(stmt.lower),
                upper=rewrite(stmt.upper),
                body=tuple(rewrite_stmt(s) for s in stmt.body),
            )
        if isinstance(stmt, Guard):
            return Guard(
                stmt.index,
                stmt.intervals,
                tuple(rewrite_stmt(s) for s in stmt.body),
                tuple(rewrite_stmt(s) for s in stmt.else_body),
            )
        return stmt

    return program.with_body(tuple(rewrite_stmt(s) for s in program.body))
