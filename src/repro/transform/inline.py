"""Procedure inlining (paper §4.1, first preliminary transformation).

The paper brings all computation loops into one procedure before analysis
("inlining is done by hand; [it] can be automated") — here it *is*
automated: every :class:`CallStmt` is replaced by the callee's body with
formals substituted by the actual argument expressions.  Formals are
index-like (affine) values; recursive call chains are expanded up to a
depth limit so accidental recursion fails loudly.
"""

from __future__ import annotations

from ..lang import CallStmt, Guard, Loop, Program, Stmt, TransformError
from .subst import FreshNames, bound_names, rename_bound, subst_stmt

_MAX_DEPTH = 32


def _expand(
    stmt: Stmt, program: Program, fresh: FreshNames, depth: int
) -> list[Stmt]:
    if isinstance(stmt, CallStmt):
        if depth > _MAX_DEPTH:
            raise TransformError(
                f"procedure {stmt.proc!r}: inlining exceeded depth {_MAX_DEPTH}"
            )
        proc = program.procedure(stmt.proc)
        bindings = dict(zip(proc.formals, stmt.args))
        out: list[Stmt] = []
        for s in proc.body:
            renamed = rename_bound(s, set(bindings), fresh)
            substituted = subst_stmt(renamed, bindings)
            out.extend(_expand(substituted, program, fresh, depth + 1))
        return out
    if isinstance(stmt, Loop):
        body: list[Stmt] = []
        for s in stmt.body:
            body.extend(_expand(s, program, fresh, depth))
        return [stmt.with_body(body)]
    if isinstance(stmt, Guard):
        body = []
        for s in stmt.body:
            body.extend(_expand(s, program, fresh, depth))
        else_body: list[Stmt] = []
        for s in stmt.else_body:
            else_body.extend(_expand(s, program, fresh, depth))
        return [Guard(stmt.index, stmt.intervals, tuple(body), tuple(else_body))]
    return [stmt]


def inline_procedures(program: Program) -> Program:
    """Expand every procedure call; the result has no procedures left."""
    if not program.procedures:
        return program
    fresh = FreshNames(set(program.params))
    fresh.reserve(bound_names(program.body))
    for proc in program.procedures:
        fresh.reserve(bound_names(proc.body))
        fresh.reserve(proc.formals)
    body: list[Stmt] = []
    for stmt in program.body:
        body.extend(_expand(stmt, program, fresh, 0))
    from dataclasses import replace

    return replace(program, body=tuple(body), procedures=())
