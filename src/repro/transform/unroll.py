"""Loop unrolling of small constant-trip loops (§4.1).

Loops iterating a data dimension of small constant size (e.g. SP's
5-element component dimension) are fully unrolled so that array splitting
can eliminate that dimension.
"""

from __future__ import annotations

from ..lang import Guard, Loop, Program, Stmt, const
from .subst import subst_stmt


def _unroll_stmt(stmt: Stmt, max_trip: int) -> list[Stmt]:
    if isinstance(stmt, Loop):
        body: list[Stmt] = []
        for s in stmt.body:
            body.extend(_unroll_stmt(s, max_trip))
        lo_f, hi_f = stmt.lower.affine(), stmt.upper.affine()
        if lo_f.is_constant() and hi_f.is_constant():
            lo, hi = lo_f.int_value(), hi_f.int_value()
            trip = hi - lo + 1
            if 0 < trip <= max_trip:
                out: list[Stmt] = []
                for value in range(lo, hi + 1):
                    for s in body:
                        out.append(subst_stmt(s, {stmt.index: const(value)}))
                return out
        return [stmt.with_body(body)]
    if isinstance(stmt, Guard):
        body = []
        for s in stmt.body:
            body.extend(_unroll_stmt(s, max_trip))
        else_body: list[Stmt] = []
        for s in stmt.else_body:
            else_body.extend(_unroll_stmt(s, max_trip))
        return [Guard(stmt.index, stmt.intervals, tuple(body), tuple(else_body))]
    return [stmt]


def unroll_small_loops(program: Program, max_trip: int = 5) -> Program:
    """Fully unroll every loop whose constant trip count is <= max_trip."""
    body: list[Stmt] = []
    for stmt in program.body:
        body.extend(_unroll_stmt(stmt, max_trip))
    return program.with_body(tuple(body))
