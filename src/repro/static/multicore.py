"""Per-thread shared-cache prediction (the OpenMP reuse-distance model).

Given a single-thread symbolic reuse profile and a parallelism profile,
predict what a ``T``-thread execution does to every reuse distance —
following the scaling recipe of *Modeling Shared Cache Performance of
OpenMP Programs using Reuse Distance* (PAPERS.md): each top-level nest
whose outermost axis is parallel (DOALL or reduction) is block-partitioned
across threads, and every reuse component transforms by kind:

======================  ========================  ====================
component kind          private (per-thread L1)   shared (merged L2)
======================  ========================  ====================
intra/carried/sibling   ``d`` (within a chunk)    ``T * d`` (T streams
                                                  interleave between
                                                  the two touches)
cross_nest/cross_step   partition-aligned under   ``d`` (all threads
                        static scheduling:        together still
                        ``d / T`` (a thread       traverse the full
                        re-traverses only its     data between the two
                        own chunk); otherwise     touches)
                        the footprint horizon —
                        the producing touch ran
                        on another core, so the
                        reuse misses in any
                        realistic private cache
======================  ========================  ====================

Two nests are *partition-aligned* for a reuse pair when both are
parallel, their outer loops run over the same range, and the two
references' subscripts depend on their respective outermost variables
with the same coefficients — then the block partition hands the same
elements to the same thread and cross-nest reuse stays on-core.  A
column sweep following a row sweep (adi's signature pattern) fails the
test: the reused elements live on a different core, so the private
view pushes those reuses out to the footprint horizon.  Dynamic
scheduling destroys chunk affinity for *every* cross-nest/cross-step
reuse.

Axes classified serial run on one thread, so their distances are
unchanged in both views; access totals are conserved exactly in both.
The prediction is cross-validated against a real round-robin
interleaved simulation by ``repro.interp.interleave`` (tests pin totals
exact and mean log distance within the PR 5 tolerance bands).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional

import numpy as np

from ..lang import Affine, Program
from ..locality.histogram import ReuseHistogram
from ..obs import metrics, span
from .model import StaticRef
from .parallelism import ParallelismProfile, analyze_parallelism
from .profile import StaticProfile, _multiplier, analyze_program

SCHEDULES = ("static", "dynamic")

#: component kinds whose reuse stays inside one thread's chunk
_CHUNK_LOCAL = ("intra", "carried", "sibling")


@dataclass(frozen=True)
class MulticorePrediction:
    """Predicted multi-thread locality of one program at one size."""

    program_name: str
    params: tuple[tuple[str, int], ...]
    threads: int
    schedule: str
    parallel_nests: tuple[int, ...]
    serial_nests: tuple[int, ...]
    #: (count, distance) pairs for the per-thread private view
    private_pairs: tuple[tuple[float, float], ...]
    #: (count, distance) pairs for the interleaved shared view
    shared_pairs: tuple[tuple[float, float], ...]
    #: compulsory misses of the private view (first touches; a thread's
    #: genuinely-first touch of data another core produced shows up in
    #: a dynamic run as extra cold, which the model keeps as a
    #: footprint-horizon reuse instead — same miss, different label)
    private_cold: float
    #: compulsory misses of the shared view (true first touches)
    shared_cold: float

    @property
    def total(self) -> float:
        return self.shared_cold + sum(c for c, _ in self.shared_pairs)

    @staticmethod
    def _histogram(
        pairs: tuple[tuple[float, float], ...], cold: float
    ) -> ReuseHistogram:
        bins: dict[int, float] = {}
        for count, dist in pairs:
            d = int(round(dist))
            b = 0 if d <= 0 else int(math.floor(math.log2(d))) + 1
            bins[b] = bins.get(b, 0.0) + count
        n = max(bins) + 1 if bins else 1
        counts = np.zeros(n, dtype=np.int64)
        for b, c in bins.items():
            counts[b] = int(round(c))
        return ReuseHistogram(counts, int(round(cold)))

    def private_histogram(self) -> ReuseHistogram:
        """Predicted histogram of the union of per-thread private streams.

        Counts are program totals (every access lands in exactly one
        thread's private stream), so the histogram is directly
        comparable to the per-thread dynamic streams combined.
        """
        return self._histogram(self.private_pairs, self.private_cold)

    def shared_histogram(self) -> ReuseHistogram:
        """Predicted histogram of the round-robin interleaved stream."""
        return self._histogram(self.shared_pairs, self.shared_cold)

    def private_miss_count(self, capacity_elems: int) -> float:
        """Predicted total private-cache misses across all threads."""
        return self.private_cold + sum(
            c for c, d in self.private_pairs if d >= capacity_elems
        )

    def shared_miss_count(self, capacity_elems: int) -> float:
        """Predicted misses of the shared cache under the merged stream."""
        return self.shared_cold + sum(
            c for c, d in self.shared_pairs if d >= capacity_elems
        )

    def render(
        self, l1_elems: Optional[int] = None, l2_elems: Optional[int] = None
    ) -> str:
        size = ", ".join(f"{k}={v}" for k, v in self.params)
        lines = [
            f"multicore prediction: {self.program_name} at {size} — "
            f"{self.threads} threads, {self.schedule} schedule",
            f"  parallel nests: "
            f"{', '.join(map(str, self.parallel_nests)) or '(none)'}"
            f"; serial nests: "
            f"{', '.join(map(str, self.serial_nests)) or '(none)'}",
            f"  accesses: {self.total:.0f} "
            f"(cold: {self.shared_cold:.0f} shared, "
            f"{self.private_cold:.0f} private)",
        ]
        if l1_elems is not None:
            lines.append(
                f"  private L1 ({l1_elems} elems): "
                f"{self.private_miss_count(l1_elems):.0f} misses"
            )
        if l2_elems is not None:
            lines.append(
                f"  shared L2 ({l2_elems} elems): "
                f"{self.shared_miss_count(l2_elems):.0f} misses"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "program": self.program_name,
            "params": dict(self.params),
            "threads": self.threads,
            "schedule": self.schedule,
            "parallel_nests": list(self.parallel_nests),
            "serial_nests": list(self.serial_nests),
            "total": self.total,
            "private_cold": self.private_cold,
            "shared_cold": self.shared_cold,
            "private_mld": self.private_histogram().mean_log_distance(),
            "shared_mld": self.shared_histogram().mean_log_distance(),
        }


def _coeff(form: Affine, name: str) -> Fraction:
    for n, c in form.coeffs:
        if n == name:
            return Fraction(c)
    return Fraction(0)


#: chunk-boundary slack: outer ranges shifted by at most this many
#: iterations (boundary guards, peeled first/last rows) still hand
#: almost every element to the same thread
_BOUNDS_SLACK = 2


def _linear_outer_coeff(
    ref: StaticRef, strides: Mapping[str, tuple[int, ...]]
) -> Fraction:
    """Coefficient of the ref's outermost loop var in its linearized
    (column-major) element index — how fast the touched element moves
    per outer iteration."""
    outer = ref.scope[0].index
    total = Fraction(0)
    for k, sub in enumerate(ref.subs):
        total += _coeff(sub, outer) * strides[ref.array][k]
    return total


def _partition_aligned(
    src: StaticRef,
    dst: StaticRef,
    parallel: frozenset[int],
    env: Mapping[str, int],
    strides: Mapping[str, tuple[int, ...]],
) -> bool:
    """Does the block partition keep this reuse pair on one thread?

    True when the source's nest is also parallel, both outer loops run
    over (almost) the same concrete range, and the linearized element
    index depends on the two outermost variables with the same
    coefficient — then chunk ``t`` of the source touches essentially
    the elements chunk ``t`` of the destination re-touches.  A column
    sweep after a row sweep fails the coefficient test; ranges shifted
    by boundary guards (``1..N`` vs ``2..N-1``) pass the slack test.
    """
    if src.nest != dst.nest and src.nest not in parallel:
        return False
    if not src.scope or not dst.scope:
        return False
    so, do = src.scope[0], dst.scope[0]
    if (
        abs(so.lo.evaluate(env) - do.lo.evaluate(env)) > _BOUNDS_SLACK
        or abs(so.hi.evaluate(env) - do.hi.evaluate(env)) > _BOUNDS_SLACK
    ):
        return False
    return _linear_outer_coeff(src, strides) == _linear_outer_coeff(
        dst, strides
    )


def predict_multicore(
    profile: StaticProfile,
    parallelism: ParallelismProfile,
    params: Mapping[str, int],
    threads: int = 4,
    schedule: str = "static",
) -> MulticorePrediction:
    """Scale ``profile``'s reuse distances for a ``threads``-way run.

    Replays :meth:`StaticProfile.evaluate_class`'s count clamping, but
    keeps each component's *kind* so its distance can be transformed by
    the table in the module docstring.  Nests whose outermost axis is
    serial keep their single-thread distances.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if schedule not in SCHEDULES:
        raise ValueError(
            f"schedule must be one of {SCHEDULES}, got {schedule!r}"
        )
    env = dict(params)
    cap = float(profile.footprint.evaluate(env))
    refs = profile.model.refs
    strides: dict[str, tuple[int, ...]] = {}
    for name, decl in profile.model.arrays.items():
        acc, ss = 1, []
        for extent in decl.shape(env):  # column-major, first fastest
            ss.append(acc)
            acc *= extent
        strides[name] = tuple(ss)
    parallel = frozenset(parallelism.parallel_nests())
    serial = tuple(
        sorted(
            {v.nest for v in parallelism.verdicts if v.depth == 0}
            - parallel
        )
    )

    def clamp(value: float) -> float:
        if value < 0:
            return 0.0
        if cap > 0 and value > cap - 1:
            return cap - 1
        return value

    # one thread's share of a full pass over the data: serial nests are
    # traversed whole, parallel nests at 1/T — so any cross-nest gap
    # shrinks to this fraction of its single-thread volume
    total_accesses = float(profile.model.total_accesses().evaluate(env))
    par_accesses = sum(
        float(r.exec_count().evaluate(env))
        for r in refs
        if r.nest in parallel
    )
    p_frac = par_accesses / total_accesses if total_accesses > 0 else 0.0
    traversal = (1.0 - p_frac) + p_frac / threads

    private: list[tuple[float, float]] = []
    shared: list[tuple[float, float]] = []
    cold_shared = 0.0
    cold_private = 0.0
    for cp in profile.classes:
        total = float(cp.ref.exec_count().evaluate(env)) * profile.steps
        remaining = max(total, 0.0)
        has_wrap = any(c.kind == "cross_step" for c in cp.components)
        is_par = threads > 1 and cp.ref.nest in parallel
        for comp in cp.components:
            count = float(comp.count.evaluate(env)) * _multiplier(
                comp.kind, profile.steps
            )
            count = min(max(count, 0.0), remaining)
            if count <= 0:
                continue
            remaining -= count
            dist = clamp(float(comp.distance.evaluate(env)))
            if threads == 1:
                shared.append((count, dist))
                private.append((count, dist))
                continue
            if comp.kind in _CHUNK_LOCAL:
                if is_par:
                    shared.append((count, clamp(dist * threads)))
                else:
                    shared.append((count, dist))
                private.append((count, dist))
                continue
            # cross_nest / cross_step: globally the full data still
            # passes between the touches (shared distance unchanged);
            # privately the gap shrinks to one thread's traversal share
            shared.append((count, dist))
            src = refs[comp.source] if comp.source is not None else cp.ref
            if is_par and not (
                schedule == "static"
                and _partition_aligned(src, cp.ref, parallel, env, strides)
            ):
                # the producing touch ran on another core.  On the first
                # pass over the data the consumer thread has never seen
                # the element — a compulsory miss (1/steps of the
                # count); on later passes it reuses its own touch from
                # the previous cycle, a whole per-thread traversal ago —
                # the footprint horizon, missing in any realistic
                # private cache
                cold_private += count / profile.steps
                carried = count * (profile.steps - 1) / profile.steps
                if carried > 0:
                    private.append((carried, clamp(cap / threads)))
            else:
                private.append((count, dist * traversal))
        cold = remaining if has_wrap or profile.steps == 1 else min(
            remaining, float(cp.cold.evaluate(env)) * profile.steps
        )
        cold_shared += max(cold, 0.0)
        cold_private += max(cold, 0.0)
    return MulticorePrediction(
        program_name=profile.model.program.name,
        params=tuple(sorted(env.items())),
        threads=threads,
        schedule=schedule,
        parallel_nests=tuple(sorted(parallel)),
        serial_nests=serial,
        private_pairs=tuple(private),
        shared_pairs=tuple(shared),
        private_cold=cold_private,
        shared_cold=cold_shared,
    )


def predict_program_multicore(
    program: Program,
    params: Mapping[str, int],
    threads: int = 4,
    schedule: str = "static",
    steps: int = 1,
) -> MulticorePrediction:
    """One-call wrapper: analyze reuse + parallelism, then predict."""
    with span(
        "multicore-predict",
        program=program.name,
        threads=threads,
        schedule=schedule,
    ):
        profile = analyze_program(program, steps=steps)
        parallelism = analyze_parallelism(program, params)
        pred = predict_multicore(
            profile, parallelism, params, threads, schedule
        )
        metrics.inc("analysis.parallelism.multicore_predictions")
        return pred
