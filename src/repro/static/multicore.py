"""Per-thread shared-cache prediction (the OpenMP reuse-distance model).

Given a single-thread symbolic reuse profile and a parallelism profile,
predict what a ``T``-thread execution does to every reuse distance —
following the scaling recipe of *Modeling Shared Cache Performance of
OpenMP Programs using Reuse Distance* (PAPERS.md): each top-level nest
whose outermost axis is parallel (DOALL or reduction) is block-partitioned
across threads, and every reuse component transforms by kind:

======================  ========================  ====================
component kind          private (per-thread L1)   shared (merged L2)
======================  ========================  ====================
intra/carried/sibling   ``d`` (within a chunk)    ``T * d`` (T streams
                                                  interleave between
                                                  the two touches)
cross_nest/cross_step   partition-aligned under   ``d`` (all threads
                        static scheduling:        together still
                        ``d / T`` (a thread       traverse the full
                        re-traverses only its     data between the two
                        own chunk); otherwise     touches)
                        the footprint horizon —
                        the producing touch ran
                        on another core, so the
                        reuse misses in any
                        realistic private cache
======================  ========================  ====================

Two nests are *partition-aligned* for a reuse pair when both are
parallel, their outer loops run over the same range, and the two
references' subscripts depend on their respective outermost variables
with the same coefficients — then the block partition hands the same
elements to the same thread and cross-nest reuse stays on-core.  A
column sweep following a row sweep (adi's signature pattern) fails the
test: the reused elements live on a different core, so the private
view pushes those reuses out to the footprint horizon.  Dynamic
scheduling destroys chunk affinity for *every* cross-nest/cross-step
reuse.

Axes classified serial run on one thread, so their distances are
unchanged in both views; access totals are conserved exactly in both.
The prediction is cross-validated against a real round-robin
interleaved simulation by ``repro.interp.interleave`` (tests pin totals
exact and mean log distance within the PR 5 tolerance bands).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Mapping, Optional, Sequence

import numpy as np

from ..lang import Affine, Program
from ..locality.histogram import ReuseHistogram
from ..obs import metrics, span
from .model import StaticRef
from .parallelism import (
    ParallelismProfile,
    _Unsupported,
    _interval,
    analyze_parallelism,
)
from .profile import StaticProfile, _multiplier, analyze_program
from .schedule import (
    chunk_count,
    parse_schedule,
    preserves_affinity,
    schedule_chunks,
    thread_span,
)

#: kept for callers that enumerate the base schedule kinds; chunked
#: specs (``static,k``) are accepted everywhere via ``parse_schedule``
SCHEDULES = ("static", "dynamic", "guided")

#: component kinds whose reuse stays inside one thread's chunk
_CHUNK_LOCAL = ("intra", "carried", "sibling")


@dataclass(frozen=True)
class MulticorePrediction:
    """Predicted multi-thread locality of one program at one size."""

    program_name: str
    params: tuple[tuple[str, int], ...]
    threads: int
    schedule: str
    parallel_nests: tuple[int, ...]
    serial_nests: tuple[int, ...]
    #: (count, distance) pairs for the per-thread private view
    private_pairs: tuple[tuple[float, float], ...]
    #: (count, distance) pairs for the interleaved shared view
    shared_pairs: tuple[tuple[float, float], ...]
    #: compulsory misses of the private view (first touches; a thread's
    #: genuinely-first touch of data another core produced shows up in
    #: a dynamic run as extra cold, which the model keeps as a
    #: footprint-horizon reuse instead — same miss, different label)
    private_cold: float
    #: compulsory misses of the shared view (true first touches)
    shared_cold: float
    #: predicted per-thread coherence invalidation misses, folded in by
    #: :meth:`with_invalidations` (empty until a coherence profile is
    #: attached; see ``repro.static.coherence``)
    invalidations: tuple[float, ...] = ()

    @property
    def total(self) -> float:
        return self.shared_cold + sum(c for c, _ in self.shared_pairs)

    @property
    def total_invalidations(self) -> float:
        return float(sum(self.invalidations))

    def with_invalidations(
        self, per_thread: Sequence[float]
    ) -> "MulticorePrediction":
        """Fold per-thread coherence invalidation misses into the
        prediction (they add to private misses; reuse distances are a
        property of each thread's own stream and stay unchanged)."""
        if len(per_thread) != self.threads:
            raise ValueError(
                f"{len(per_thread)} invalidation counts for "
                f"{self.threads} threads"
            )
        return replace(
            self, invalidations=tuple(float(v) for v in per_thread)
        )

    @staticmethod
    def _histogram(
        pairs: tuple[tuple[float, float], ...], cold: float
    ) -> ReuseHistogram:
        bins: dict[int, float] = {}
        for count, dist in pairs:
            d = int(round(dist))
            b = 0 if d <= 0 else int(math.floor(math.log2(d))) + 1
            bins[b] = bins.get(b, 0.0) + count
        n = max(bins) + 1 if bins else 1
        counts = np.zeros(n, dtype=np.int64)
        for b, c in bins.items():
            counts[b] = int(round(c))
        return ReuseHistogram(counts, int(round(cold)))

    def private_histogram(self) -> ReuseHistogram:
        """Predicted histogram of the union of per-thread private streams.

        Counts are program totals (every access lands in exactly one
        thread's private stream), so the histogram is directly
        comparable to the per-thread dynamic streams combined.
        """
        return self._histogram(self.private_pairs, self.private_cold)

    def shared_histogram(self) -> ReuseHistogram:
        """Predicted histogram of the round-robin interleaved stream."""
        return self._histogram(self.shared_pairs, self.shared_cold)

    def private_miss_count(
        self, capacity_elems: int, include_invalidations: bool = True
    ) -> float:
        """Predicted total private-cache misses across all threads.

        Coherence invalidation misses (when folded in via
        :meth:`with_invalidations`) are reuses that would have hit on
        distance but lost their line to another thread's write — they
        add to the miss count on top of the capacity model.
        """
        base = self.private_cold + sum(
            c for c, d in self.private_pairs if d >= capacity_elems
        )
        if include_invalidations:
            base += self.total_invalidations
        return base

    def shared_miss_count(self, capacity_elems: int) -> float:
        """Predicted misses of the shared cache under the merged stream."""
        return self.shared_cold + sum(
            c for c, d in self.shared_pairs if d >= capacity_elems
        )

    def render(
        self, l1_elems: Optional[int] = None, l2_elems: Optional[int] = None
    ) -> str:
        size = ", ".join(f"{k}={v}" for k, v in self.params)
        lines = [
            f"multicore prediction: {self.program_name} at {size} — "
            f"{self.threads} threads, {self.schedule} schedule",
            f"  parallel nests: "
            f"{', '.join(map(str, self.parallel_nests)) or '(none)'}"
            f"; serial nests: "
            f"{', '.join(map(str, self.serial_nests)) or '(none)'}",
            f"  accesses: {self.total:.0f} "
            f"(cold: {self.shared_cold:.0f} shared, "
            f"{self.private_cold:.0f} private)",
        ]
        if self.invalidations:
            lines.append(
                f"  invalidation misses: {self.total_invalidations:.0f} "
                f"({', '.join(f'{v:.0f}' for v in self.invalidations)} "
                f"per thread)"
            )
        if l1_elems is not None:
            lines.append(
                f"  private L1 ({l1_elems} elems): "
                f"{self.private_miss_count(l1_elems):.0f} misses"
            )
        if l2_elems is not None:
            lines.append(
                f"  shared L2 ({l2_elems} elems): "
                f"{self.shared_miss_count(l2_elems):.0f} misses"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "program": self.program_name,
            "params": dict(self.params),
            "threads": self.threads,
            "schedule": self.schedule,
            "parallel_nests": list(self.parallel_nests),
            "serial_nests": list(self.serial_nests),
            "total": self.total,
            "private_cold": self.private_cold,
            "shared_cold": self.shared_cold,
            "private_mld": self.private_histogram().mean_log_distance(),
            "shared_mld": self.shared_histogram().mean_log_distance(),
            "invalidation_misses": self.total_invalidations,
        }


def _coeff(form: Affine, name: str) -> Fraction:
    for n, c in form.coeffs:
        if n == name:
            return Fraction(c)
    return Fraction(0)


#: chunk-boundary slack: outer ranges shifted by at most this many
#: iterations (boundary guards, peeled first/last rows) still hand
#: almost every element to the same thread
_BOUNDS_SLACK = 2


def _linear_outer_coeff(
    ref: StaticRef, strides: Mapping[str, tuple[int, ...]]
) -> Fraction:
    """Coefficient of the ref's outermost loop var in its linearized
    (column-major) element index — how fast the touched element moves
    per outer iteration."""
    outer = ref.scope[0].index
    total = Fraction(0)
    for k, sub in enumerate(ref.subs):
        total += _coeff(sub, outer) * strides[ref.array][k]
    return total


def _partition_aligned(
    src: StaticRef,
    dst: StaticRef,
    parallel: frozenset[int],
    env: Mapping[str, int],
    strides: Mapping[str, tuple[int, ...]],
) -> bool:
    """Does the block partition keep this reuse pair on one thread?

    True when the source's nest is also parallel, both outer loops run
    over (almost) the same concrete range, and the linearized element
    index depends on the two outermost variables with the same
    coefficient — then chunk ``t`` of the source touches essentially
    the elements chunk ``t`` of the destination re-touches.  A column
    sweep after a row sweep fails the coefficient test; ranges shifted
    by boundary guards (``1..N`` vs ``2..N-1``) pass the slack test.
    """
    if src.nest != dst.nest and src.nest not in parallel:
        return False
    if not src.scope or not dst.scope:
        return False
    so, do = src.scope[0], dst.scope[0]
    if (
        abs(so.lo.evaluate(env) - do.lo.evaluate(env)) > _BOUNDS_SLACK
        or abs(so.hi.evaluate(env) - do.hi.evaluate(env)) > _BOUNDS_SLACK
    ):
        return False
    return _linear_outer_coeff(src, strides) == _linear_outer_coeff(
        dst, strides
    )


def _scope_ranges(
    ref: StaticRef,
    env: Mapping[str, int],
    outer_span: Optional[tuple[int, int]] = None,
) -> dict[str, tuple[int, int]]:
    """Concrete [lo, hi] range per loop variable of the ref's scope,
    outermost first (inner bounds may reference outer variables), with
    the outermost range optionally replaced by a thread's span."""
    ranges: dict[str, tuple[int, int]] = {}
    for depth, ctx in enumerate(ref.scope):
        lo, _ = _interval(ctx.lo, env, ranges)
        _, hi = _interval(ctx.hi, env, ranges)
        if depth == 0 and outer_span is not None:
            lo, hi = outer_span
        ranges[ctx.index] = (lo, hi)
    return ranges


def _ref_box(
    ref: StaticRef,
    env: Mapping[str, int],
    outer_span: Optional[tuple[int, int]] = None,
) -> Optional[tuple[tuple[int, int], ...]]:
    """Per-dimension [lo, hi] interval of the elements the ref touches
    (the rectangular hull of its footprint), outer loop restricted to
    ``outer_span`` when given.  None when the subscripts fall outside
    the affine subset the interval engine supports."""
    try:
        ranges = _scope_ranges(ref, env, outer_span)
        return tuple(_interval(sub, env, ranges) for sub in ref.subs)
    except _Unsupported:
        return None


def _box_overlap_fraction(
    dst_box: tuple[tuple[int, int], ...],
    src_box: tuple[tuple[int, int], ...],
) -> float:
    """|dst ∩ src| / |dst| over rank-aligned rectangular boxes."""
    if len(dst_box) != len(src_box):
        return 0.0
    frac = 1.0
    for (dlo, dhi), (slo, shi) in zip(dst_box, src_box):
        width = dhi - dlo + 1
        if width <= 0:
            return 0.0
        inter = min(dhi, shi) - max(dlo, slo) + 1
        if inter <= 0:
            return 0.0
        frac *= min(inter, width) / width
    return frac


def _per_outer_accesses(
    ref: StaticRef, env: Mapping[str, int]
) -> Optional[float]:
    """How many accesses the ref performs per iteration of its outer
    loop — the distance floor below which a chunk-local reuse provably
    stays inside one outer iteration (so no chunk boundary can cut
    it).  None when the trip counts fall outside the interval subset."""
    if not ref.scope:
        return None
    try:
        ranges = _scope_ranges(ref, env)
    except _Unsupported:
        return None
    lo, hi = ranges[ref.scope[0].index]
    n = hi - lo + 1
    if n <= 0:
        return None
    total = float(ref.exec_count().evaluate(env))
    return total / n


def _boundary_fraction(
    ref: StaticRef,
    env: Mapping[str, int],
    threads: int,
    schedule: str,
) -> float:
    """Fraction of a chunk-local reuse pushed off-thread by the *extra*
    chunk boundaries of a chunked schedule.

    Plain static blocking cuts the outer range into at most ``T``
    pieces, whose T-1 internal boundaries the model already neglects;
    ``static,k`` and ``guided`` cut it into ``C >= T`` pieces, and a
    unit-distance carried reuse crossing one of the ``C - T`` extra
    boundaries is consumed by the round-robin *next* thread — off-core.
    The fraction of the ``n - 1`` iteration gaps that land on an extra
    boundary estimates the lost share.
    """
    kind, chunk = parse_schedule(schedule)
    if kind == "dynamic" or (kind == "static" and chunk == 0):
        return 0.0
    try:
        ranges = _scope_ranges(ref, env)
    except _Unsupported:
        return 0.0
    lo, hi = ranges[ref.scope[0].index]
    n = hi - lo + 1
    if n <= 1:
        return 0.0
    extra = max(0, chunk_count(lo, hi, threads, schedule) - threads)
    return min(1.0, extra / (n - 1))


def _thread_coverage(
    dst: StaticRef,
    kind: str,
    refs: Sequence[StaticRef],
    parallel: frozenset[int],
    env: Mapping[str, int],
    threads: int,
    schedule: str,
) -> float:
    """How much of a misaligned cross reuse actually stays on-thread.

    When the consuming nest is partitioned over a *different* axis than
    the producing nest (sp's signature pattern: component-axis sweeps
    after plane sweeps), the nearest toucher ran on another core — but
    each consumer thread usually re-touches a slice of data it already
    visited under the other partitioning.  That slice is a long-distance
    on-thread reuse, not a compulsory miss.  The fraction is estimated
    per thread as the best rectangular-hull overlap between the thread's
    chunk of the consuming reference and its chunk of any earlier
    reference of the same array (serial nests belong to thread 0), then
    averaged weighted by chunk size.  ``cross_step`` reuse may come from
    any nest of the previous step; ``cross_nest`` only from earlier
    nests of the same step.
    """
    if not dst.scope:
        return 0.0
    try:
        outer_ranges = _scope_ranges(dst, env)
    except _Unsupported:
        return 0.0
    dlo, dhi = outer_ranges[dst.scope[0].index]
    if dhi < dlo:
        return 0.0
    priors = [
        r
        for r in refs
        if r.array == dst.array
        and (kind == "cross_step" or r.nest < dst.nest)
        and r is not dst
    ]
    if not priors:
        return 0.0
    chunks = schedule_chunks(dlo, dhi, threads, schedule)
    weighted = 0.0
    total_w = 0.0
    for t in range(threads):
        if not chunks[t]:
            continue
        span_t = (chunks[t][0][0], chunks[t][-1][1])
        w = sum(b - a + 1 for a, b in chunks[t])
        dst_box = _ref_box(dst, env, span_t)
        if dst_box is None:
            continue
        best = 0.0
        for r in priors:
            if r.nest in parallel and r.scope:
                try:
                    r_ranges = _scope_ranges(r, env)
                except _Unsupported:
                    continue
                rlo, rhi = r_ranges[r.scope[0].index]
                if rhi < rlo:
                    continue
                r_span = thread_span(rlo, rhi, threads, t, schedule)
                if r_span[1] < r_span[0]:
                    continue
                src_box = _ref_box(r, env, r_span)
                # chunked schedules scatter a thread's chunks across a
                # wide bounding span; the thread only *owns* its chunk
                # iterations, so the hull overlap is diluted by the
                # ownership density inside the span
                r_chunks = schedule_chunks(
                    rlo, rhi, threads, schedule
                )[t]
                owned = sum(b - a + 1 for a, b in r_chunks)
                span_n = r_span[1] - r_span[0] + 1
                density = owned / span_n if span_n > 0 else 0.0
            elif t == 0:  # serial nests execute entirely on thread 0
                src_box = _ref_box(r, env)
                density = 1.0
            else:
                continue
            if src_box is None:
                continue
            best = max(
                best,
                _box_overlap_fraction(dst_box, src_box) * density,
            )
            if best >= 1.0:
                break
        weighted += w * best
        total_w += w
    return weighted / total_w if total_w > 0 else 0.0


def predict_multicore(
    profile: StaticProfile,
    parallelism: ParallelismProfile,
    params: Mapping[str, int],
    threads: int = 4,
    schedule: str = "static",
) -> MulticorePrediction:
    """Scale ``profile``'s reuse distances for a ``threads``-way run.

    Replays :meth:`StaticProfile.evaluate_class`'s count clamping, but
    keeps each component's *kind* so its distance can be transformed by
    the table in the module docstring.  Nests whose outermost axis is
    serial keep their single-thread distances.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    parse_schedule(schedule)  # reject unknown specs up front
    affinity = preserves_affinity(schedule)
    env = dict(params)
    cap = float(profile.footprint.evaluate(env))
    refs = profile.model.refs
    strides: dict[str, tuple[int, ...]] = {}
    for name, decl in profile.model.arrays.items():
        acc, ss = 1, []
        for extent in decl.shape(env):  # column-major, first fastest
            ss.append(acc)
            acc *= extent
        strides[name] = tuple(ss)
    parallel = frozenset(parallelism.parallel_nests())
    serial = tuple(
        sorted(
            {v.nest for v in parallelism.verdicts if v.depth == 0}
            - parallel
        )
    )

    def clamp(value: float) -> float:
        if value < 0:
            return 0.0
        if cap > 0 and value > cap - 1:
            return cap - 1
        return value

    # one thread's share of a full pass over the data: serial nests are
    # traversed whole, parallel nests at 1/T — so any cross-nest gap
    # shrinks to this fraction of its single-thread volume
    total_accesses = float(profile.model.total_accesses().evaluate(env))
    par_accesses = sum(
        float(r.exec_count().evaluate(env))
        for r in refs
        if r.nest in parallel
    )
    p_frac = par_accesses / total_accesses if total_accesses > 0 else 0.0
    traversal = (1.0 - p_frac) + p_frac / threads

    private: list[tuple[float, float]] = []
    shared: list[tuple[float, float]] = []
    cold_shared = 0.0
    cold_private = 0.0
    for cp in profile.classes:
        total = float(cp.ref.exec_count().evaluate(env)) * profile.steps
        remaining = max(total, 0.0)
        has_wrap = any(c.kind == "cross_step" for c in cp.components)
        is_par = threads > 1 and cp.ref.nest in parallel
        for comp in cp.components:
            count = float(comp.count.evaluate(env)) * _multiplier(
                comp.kind, profile.steps
            )
            count = min(max(count, 0.0), remaining)
            if count <= 0:
                continue
            remaining -= count
            dist = clamp(float(comp.distance.evaluate(env)))
            if threads == 1:
                shared.append((count, dist))
                private.append((count, dist))
                continue
            if comp.kind in _CHUNK_LOCAL:
                if is_par:
                    shared.append((count, clamp(dist * threads)))
                else:
                    shared.append((count, dist))
                # chunked schedules (static,k / guided) cut each
                # thread's range into more pieces than plain blocking;
                # a reuse carried across one of the extra chunk
                # boundaries lands on the next thread round-robin —
                # off-core, so it degrades to the footprint horizon.
                # Only reuse spanning at least one full outer iteration
                # can cross an outer-axis boundary: shorter-distance
                # reuse (innermost-carried, intra, sibling) lives
                # inside a single outer iteration and never sees the
                # boundary, whatever the chunking.
                boundary = 0.0
                if is_par and cp.ref.scope:
                    per_outer = _per_outer_accesses(cp.ref, env)
                    if per_outer is None or dist >= per_outer:
                        bf = _boundary_fraction(
                            cp.ref, env, threads, schedule
                        )
                        boundary = count * bf
                if boundary > 0:
                    # losing the source to another core never shortens
                    # the reuse: degrade to the horizon, floored at the
                    # original distance
                    private.append(
                        (boundary, clamp(max(dist, cap / threads)))
                    )
                if count - boundary > 0:
                    private.append((count - boundary, dist))
                continue
            # cross_nest / cross_step: globally the full data still
            # passes between the touches (shared distance unchanged);
            # privately the gap shrinks to one thread's traversal share
            shared.append((count, dist))
            src = refs[comp.source] if comp.source is not None else cp.ref
            if is_par and not (
                affinity
                and _partition_aligned(src, cp.ref, parallel, env, strides)
            ):
                # the nearest producing touch ran on another core.  The
                # slice of the chunk the consumer thread itself visited
                # earlier (under whatever axis the earlier nests were
                # partitioned on) is still an on-thread reuse — a whole
                # per-thread traversal back, the footprint horizon.
                # Only the remainder is a genuine first touch for this
                # thread: compulsory on the first pass over the data,
                # horizon-distance reuse of its own previous-step touch
                # on later passes.
                coverage = (
                    _thread_coverage(
                        cp.ref, comp.kind, refs, parallel, env,
                        threads, schedule,
                    )
                    if affinity
                    else 0.0
                )
                on_thread = count * coverage
                off_thread = count - on_thread
                cold_private += off_thread / profile.steps
                horizon = on_thread + off_thread * (
                    profile.steps - 1
                ) / profile.steps
                if horizon > 0:
                    private.append((horizon, clamp(cap / threads)))
            else:
                private.append((count, dist * traversal))
        cold = remaining if has_wrap or profile.steps == 1 else min(
            remaining, float(cp.cold.evaluate(env)) * profile.steps
        )
        cold_shared += max(cold, 0.0)
        cold_private += max(cold, 0.0)
    return MulticorePrediction(
        program_name=profile.model.program.name,
        params=tuple(sorted(env.items())),
        threads=threads,
        schedule=schedule,
        parallel_nests=tuple(sorted(parallel)),
        serial_nests=serial,
        private_pairs=tuple(private),
        shared_pairs=tuple(shared),
        private_cold=cold_private,
        shared_cold=cold_shared,
    )


def predict_program_multicore(
    program: Program,
    params: Mapping[str, int],
    threads: int = 4,
    schedule: str = "static",
    steps: int = 1,
) -> MulticorePrediction:
    """One-call wrapper: analyze reuse + parallelism, then predict."""
    with span(
        "multicore-predict",
        program=program.name,
        threads=threads,
        schedule=schedule,
    ):
        profile = analyze_program(program, steps=steps)
        parallelism = analyze_parallelism(program, params)
        pred = predict_multicore(
            profile, parallelism, params, threads, schedule
        )
        metrics.inc("analysis.parallelism.multicore_predictions")
        return pred
