"""The static reuse profile: a trace-free, size-parametric locality model.

:func:`analyze_program` runs the extractor and the attributor and wraps
the result in a :class:`StaticProfile` — a collection of per-reference
:class:`~repro.static.reuse.ClassProfile` objects whose counts and
distances are polynomials in the program parameters.  The profile then
*evaluates* at any concrete input size:

- :meth:`StaticProfile.histogram` produces a log₂-binned
  :class:`~repro.locality.histogram.ReuseHistogram` directly comparable
  to the dynamic engine's output (same binning, same cold convention);
- :meth:`StaticProfile.miss_count` predicts capacity misses for a cache
  of any size;
- :meth:`StaticProfile.class_stats` mirrors the dynamic
  :func:`~repro.locality.evadable.per_class_stats`, and
  :meth:`StaticProfile.evadable_classes` applies the *same decision
  rule* as the dynamic classifier to the predicted means — that shared
  rule is what makes exact static/dynamic agreement testable;
- :meth:`StaticProfile.symbolic_evadable` is the purely symbolic
  classification of paper §2.1: a class is evadable iff the distance of
  its dominant reuse component grows with the size parameters.

Everything here is derived without generating a trace; the only numeric
work is polynomial evaluation (``analysis.static.*`` metrics record the
analysis, never ``trace.*``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from ..lang import Assumptions, Program
from ..locality.evadable import ClassStats, classify_evadable_stats
from ..locality.histogram import ReuseHistogram
from ..obs import metrics, span
from .model import StaticModel, build_model
from .poly import Poly
from .regions import default_assumptions, footprint_by_array, measure_sum
from .reuse import ClassProfile, Component, attribute_model

#: dynamic-classifier constants mirrored for the shared decision rule
GROWTH_FACTOR = 1.5
NOISE_FLOOR = 64.0

Params = Mapping[str, int]


def _multiplier(kind: str, steps: int) -> int:
    """How many body repetitions a component's count replays across."""
    return steps - 1 if kind == "cross_step" else steps


@dataclass(frozen=True)
class EvaluatedClass:
    """One reuse class evaluated at a concrete input size."""

    ref_id: int
    array: str
    text: str
    reuses: float
    cold: float
    mean_distance: float  # 0.0 when the class has no reuses
    pairs: tuple[tuple[float, float], ...]  # (count, distance)


@dataclass(frozen=True)
class StaticProfile:
    """Symbolic reuse profile of one program."""

    model: StaticModel
    steps: int
    classes: tuple[ClassProfile, ...]
    assume: Assumptions
    footprint: Poly  # distinct elements touched by the whole body

    # -- evaluation -------------------------------------------------------

    def total_accesses(self) -> Poly:
        return self.model.total_accesses() * self.steps

    def _clamp_distance(self, value: float, cap: float) -> float:
        if value < 0:
            return 0.0
        if cap > 0 and value > cap - 1:
            return cap - 1
        return value

    def evaluate_class(
        self, profile: ClassProfile, params: Params
    ) -> EvaluatedClass:
        """Split one class's accesses into (count, distance) pairs."""
        env = dict(params)
        total = float(profile.ref.exec_count().evaluate(env)) * self.steps
        cap = float(self.footprint.evaluate(env))
        remaining = max(total, 0.0)
        pairs: list[tuple[float, float]] = []
        has_wrap = any(c.kind == "cross_step" for c in profile.components)
        for comp in profile.components:
            count = float(comp.count.evaluate(env)) * _multiplier(
                comp.kind, self.steps
            )
            count = min(max(count, 0.0), remaining)
            if count <= 0:
                continue
            dist = self._clamp_distance(
                float(comp.distance.evaluate(env)), cap
            )
            pairs.append((count, dist))
            remaining -= count
        cold = remaining if has_wrap or self.steps == 1 else min(
            remaining, float(profile.cold.evaluate(env)) * self.steps
        )
        cold = max(cold, 0.0)
        reuses = sum(c for c, _ in pairs)
        mean = (
            sum(c * d for c, d in pairs) / reuses if reuses > 0 else 0.0
        )
        return EvaluatedClass(
            ref_id=profile.ref.ref_id,
            array=profile.ref.array,
            text=profile.ref.text,
            reuses=reuses,
            cold=cold,
            mean_distance=mean,
            pairs=tuple(pairs),
        )

    def evaluate(self, params: Params) -> tuple[EvaluatedClass, ...]:
        return tuple(self.evaluate_class(p, params) for p in self.classes)

    # -- dynamic-engine-compatible views ----------------------------------

    def histogram(self, params: Params) -> ReuseHistogram:
        """Predicted reuse histogram, same binning as the dynamic one."""
        bins: dict[int, float] = {}
        cold = 0.0
        for ec in self.evaluate(params):
            cold += ec.cold
            for count, dist in ec.pairs:
                d = int(round(dist))
                b = 0 if d <= 0 else int(math.floor(math.log2(d))) + 1
                bins[b] = bins.get(b, 0.0) + count
        n = max(bins) + 1 if bins else 1
        counts = np.zeros(n, dtype=np.int64)
        for b, c in bins.items():
            counts[b] = int(round(c))
        return ReuseHistogram(counts, int(round(cold)))

    def class_stats(self, params: Params) -> dict[int, ClassStats]:
        """Predicted per-class stats, shaped like ``per_class_stats``."""
        out: dict[int, ClassStats] = {}
        for ec in self.evaluate(params):
            if ec.reuses > 0:
                out[ec.ref_id] = ClassStats(
                    ec.ref_id, int(round(ec.reuses)), ec.mean_distance
                )
        return out

    def miss_count(self, params: Params, capacity_elems: int) -> float:
        """Predicted misses for a fully-associative LRU cache."""
        misses = 0.0
        for ec in self.evaluate(params):
            misses += ec.cold
            for count, dist in ec.pairs:
                if dist >= capacity_elems:
                    misses += count
        return misses

    def predicted_bytes(self, params: Params, geometry) -> dict[str, float]:
        """Predicted data moved per level: misses × line size.

        ``geometry`` is a :class:`~repro.memsim.CacheGeometry` (or any
        object with ``l1_elems``/``l2_elems`` capacities and
        ``l1_line_bytes``/``l2_line_bytes``).  ``memory_bytes`` — L2
        misses times the L2 line — is the static counterpart of the
        simulator's ``data_transferred_bytes`` (minus writebacks, which
        a reuse profile cannot see); ``l1_fill_bytes`` is the L2→L1
        refill traffic.  This is what ``tune --objective bytes``
        minimizes.
        """
        l1_misses = self.miss_count(params, geometry.l1_elems)
        l2_misses = self.miss_count(params, geometry.l2_elems)
        return {
            "l1_misses": l1_misses,
            "l2_misses": l2_misses,
            "l1_fill_bytes": l1_misses * geometry.l1_line_bytes,
            "memory_bytes": l2_misses * geometry.l2_line_bytes,
        }

    def evadable_classes(
        self,
        small: Params,
        large: Params,
        growth_factor: float = GROWTH_FACTOR,
        noise_floor: float = NOISE_FLOOR,
    ) -> frozenset[int]:
        """Static classification under the dynamic classifier's rule.

        Evaluates the symbolic profile at two sizes and applies exactly
        the decision of :func:`~repro.locality.evadable.classify_evadable`
        to the *predicted* means — so static and dynamic results are
        directly comparable, class by class.
        """
        report = classify_evadable_stats(
            self.class_stats(small),
            self.class_stats(large),
            growth_factor=growth_factor,
            noise_floor=noise_floor,
        )
        return report.evadable_classes

    # -- symbolic queries -------------------------------------------------

    def dominant_component(
        self, profile: ClassProfile
    ) -> Optional[Component]:
        """The component carrying the most accesses at large sizes."""
        probe = {p: 10**4 for p in self.model.params}
        best: Optional[Component] = None
        best_count = 0.0
        for comp in profile.components:
            c = float(comp.count.evaluate(probe)) * _multiplier(
                comp.kind, self.steps
            )
            if c > best_count:
                best, best_count = comp, c
        return best

    def symbolic_evadable(self) -> frozenset[int]:
        """Classes whose dominant reuse distance grows with the size.

        The paper's definition (§2.1), answered without choosing sizes:
        evadable iff the symbolic distance estimate of the dominant
        component is unbounded in the program parameters.
        """
        out: set[int] = set()
        for profile in self.classes:
            comp = self.dominant_component(profile)
            if comp is not None and comp.distance.grows():
                out.add(profile.ref.ref_id)
        return frozenset(out)

    # -- presentation -----------------------------------------------------

    def render(self, params: Optional[Params] = None) -> str:
        lines = [
            f"static reuse profile: {self.model.program.name} "
            f"(steps={self.steps}, refs={len(self.classes)})",
            f"  total accesses: {self.total_accesses()}",
            f"  footprint:      {self.footprint} elements",
        ]
        evadable = self.symbolic_evadable()
        for profile in self.classes:
            ref = profile.ref
            tag = " [evadable]" if ref.ref_id in evadable else ""
            lines.append(
                f"  ref {ref.ref_id:>3} {ref.text:<24} "
                f"nest {ref.nest}{tag}"
            )
            for comp in profile.components:
                src = "" if comp.source is None else f" <- ref {comp.source}"
                approx = "=" if comp.exact else "~"
                lines.append(
                    f"      {comp.kind:<10} count {approx} {comp.count}; "
                    f"distance {approx} {comp.distance}{src}"
                )
            if not profile.cold.is_zero():
                lines.append(f"      cold       count = {profile.cold}")
        if params:
            hist = self.histogram(params)
            size = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            lines.append(hist.format_ascii(label=f"  predicted at {size}:"))
        return "\n".join(lines)

    def to_json(self, params: Optional[Params] = None) -> dict:
        out: dict = {
            "program": self.model.program.name,
            "steps": self.steps,
            "total_accesses": str(self.total_accesses()),
            "footprint": str(self.footprint),
            "classes": [
                {
                    "ref_id": p.ref.ref_id,
                    "ref": p.ref.text,
                    "nest": p.ref.nest,
                    "components": [
                        {
                            "kind": c.kind,
                            "source": c.source,
                            "count": str(c.count),
                            "distance": str(c.distance),
                            "bound": str(c.bound),
                            "exact": c.exact,
                        }
                        for c in p.components
                    ],
                    "cold": str(p.cold),
                }
                for p in self.classes
            ],
            "evadable_symbolic": sorted(self.symbolic_evadable()),
        }
        if params:
            hist = self.histogram(params)
            out["predicted"] = {
                "params": dict(params),
                "histogram": [int(c) for c in hist.counts],
                "cold": hist.cold,
            }
        return out


def analyze_program(
    program: Program,
    steps: int = 1,
    assume: Union[int, Assumptions, None] = None,
) -> StaticProfile:
    """Compute the symbolic reuse profile of ``program`` — no trace."""
    assumptions = default_assumptions(assume)
    with span(
        "static-reuse", program=program.name, steps=steps
    ) as sp:
        model = build_model(program)
        classes = attribute_model(model, steps, assumptions)
        footprint = measure_sum(footprint_by_array(model.refs, assumptions))
        metrics.inc("analysis.static.runs")
        metrics.inc("analysis.static.refs", len(model.refs))
        metrics.inc(
            "analysis.static.components",
            sum(len(c.components) for c in classes),
        )
        sp.attrs.update(refs=len(model.refs))
        return StaticProfile(
            model=model,
            steps=steps,
            classes=classes,
            assume=assumptions,
            footprint=footprint,
        )
