"""Predictive locality lints (the ``S3xx`` diagnostic family).

The static profile turns into actionable advice *before* any transform
runs:

``S301 evadable-reuse``
    a reuse class whose symbolic distance grows with the input size —
    the reuses the paper's whole program is about evading (§2.1);
``S302 fusion-would-contract-distance``
    a growing cross-nest reuse between two top-level nests whose
    outermost loops have provably equal bounds — exactly the shape
    reuse-based fusion (§2.3) collapses to a loop-carried distance;
``S303 regrouping-candidate``
    a nest streaming several arrays with long-distance reuse — the
    access pattern data regrouping (§3) interleaves.

All codes flow through the shared :class:`~repro.verify.diagnostics.
DiagnosticBag`, so they render, serialize, and baseline exactly like the
``V``/``L`` families.
"""

from __future__ import annotations

from typing import Union

from ..lang import Assumptions, Program
from ..verify.diagnostics import DiagnosticBag
from .profile import StaticProfile, analyze_program

#: per-code cap on individual diagnostics before summarizing
MAX_PER_CODE = 5


def lint_profile(profile: StaticProfile) -> DiagnosticBag:
    """Emit the S3xx family for an already-computed profile."""
    bag = DiagnosticBag()
    name = profile.model.program.name
    evadable = sorted(profile.symbolic_evadable())

    # S301: one warning per evadable class, capped, then a summary
    for rid in evadable[:MAX_PER_CODE]:
        cp = profile.classes[rid]
        comp = profile.dominant_component(cp)
        assert comp is not None
        bag.warning(
            "S301",
            f"evadable reuse: {cp.ref.text} re-touches data at a distance "
            f"that grows with the input size ({comp.distance})",
            where=f"{name}: nest {cp.ref.nest}",
            ref_id=rid,
            kind=comp.kind,
            distance=str(comp.distance),
        )
    if len(evadable) > MAX_PER_CODE:
        bag.info(
            "S301",
            f"{len(evadable) - MAX_PER_CODE} more evadable reuse classes "
            f"({len(evadable)} total of {len(profile.classes)})",
            where=name,
        )

    # S302: growing cross-nest reuse between fusable nests
    seen_pairs: set[tuple[int, int, str]] = set()
    for rid in evadable:
        cp = profile.classes[rid]
        for comp in cp.components:
            if comp.kind != "cross_nest" or not comp.distance.grows():
                continue
            if comp.source is None:
                continue
            src_nest = profile.model.refs[comp.source].nest
            key = (src_nest, cp.ref.nest, cp.ref.array)
            if key in seen_pairs:
                continue
            seen_pairs.add(key)
            if not _outer_bounds_equal(profile, src_nest, cp.ref.nest):
                continue
            bag.warning(
                "S302",
                f"fusing nests {src_nest} and {cp.ref.nest} would contract "
                f"the reuse of {cp.ref.array} from {comp.distance} to a "
                "loop-carried distance",
                where=f"{name}: nests {src_nest}->{cp.ref.nest}",
                array=cp.ref.array,
                src_nest=src_nest,
                dst_nest=cp.ref.nest,
            )

    # S303: nests streaming many arrays with growing-distance reuse
    for k, nest in enumerate(profile.model.nests):
        arrays = sorted({r.array for r in nest})
        if len(arrays) < 3:
            continue
        if not any(r.ref_id in evadable for r in nest):
            continue
        bag.info(
            "S303",
            f"nest {k} streams {len(arrays)} arrays "
            f"({', '.join(arrays[:6])}{'...' if len(arrays) > 6 else ''}); "
            "a regrouped layout would fetch them in one stream",
            where=f"{name}: nest {k}",
            nest=k,
            arrays=len(arrays),
        )
    return bag


def _outer_bounds_equal(profile: StaticProfile, a: int, b: int) -> bool:
    """Do two nests' outermost loops have provably equal bounds?"""
    ref_a = next(iter(profile.model.nests[a]), None)
    ref_b = next(iter(profile.model.nests[b]), None)
    if ref_a is None or ref_b is None:
        return False
    if not ref_a.scope or not ref_b.scope:
        return False
    ca, cb = ref_a.scope[0], ref_b.scope[0]
    return (
        ca.lo.compare(cb.lo, profile.assume) == 0
        and ca.hi.compare(cb.hi, profile.assume) == 0
    )


def lint_static(
    program: Program,
    steps: int = 1,
    assume: Union[int, Assumptions, None] = None,
) -> DiagnosticBag:
    """Analyze ``program`` statically and return its S3xx diagnostics."""
    return lint_profile(analyze_program(program, steps=steps, assume=assume))
