"""Static symbolic reuse analysis — the trace-free locality engine.

Computes per-reference reuse-distance polynomials, predicted histograms
and miss counts, evadable-reuse classification, and predictive locality
lints directly from the loop IR, with no interpretation and no trace
(Razzak et al., *Static Reuse Profile Estimation for Array
Applications*; Zhu et al., *Fully Symbolic Analysis of Loop Locality*;
paper §2.1).

Layering: depends on ``lang``, ``locality`` (result types only), ``obs``
and ``verify`` (diagnostics); nothing here imports the interpreter.
"""

from .lints import lint_profile, lint_static
from .model import LoopCtx, StaticModel, StaticRef, build_model
from .poly import Poly
from .profile import EvaluatedClass, StaticProfile, analyze_program
from .regions import Hull, footprint_by_array, ref_hull, union_hulls
from .reuse import ClassProfile, Component, attribute_model, solve_delta

__all__ = [
    "ClassProfile",
    "Component",
    "EvaluatedClass",
    "Hull",
    "LoopCtx",
    "Poly",
    "StaticModel",
    "StaticProfile",
    "StaticRef",
    "analyze_program",
    "attribute_model",
    "build_model",
    "footprint_by_array",
    "lint_profile",
    "lint_static",
    "ref_hull",
    "solve_delta",
    "union_hulls",
]
