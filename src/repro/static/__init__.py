"""Static symbolic reuse analysis — the trace-free locality engine.

Computes per-reference reuse-distance polynomials, predicted histograms
and miss counts, evadable-reuse classification, and predictive locality
lints directly from the loop IR, with no interpretation and no trace
(Razzak et al., *Static Reuse Profile Estimation for Array
Applications*; Zhu et al., *Fully Symbolic Analysis of Loop Locality*;
paper §2.1).

Layering: depends on ``lang``, ``locality`` (result types only), ``obs``
and ``verify`` (diagnostics); nothing here imports the interpreter.
"""

from .coherence import (
    ArraySharing,
    CoherenceProfile,
    SharingWitness,
    analyze_coherence,
)
from .dependence_test import attainable, lane_conflict, solve_sum
from .lints import lint_profile, lint_static
from .model import LoopCtx, StaticModel, StaticRef, build_model
from .multicore import (
    MulticorePrediction,
    predict_multicore,
    predict_program_multicore,
)
from .parallelism import (
    AxisVerdict,
    ParallelismProfile,
    RaceWitness,
    analyze_parallelism,
    bind_params,
)
from .poly import Poly
from .profile import EvaluatedClass, StaticProfile, analyze_program
from .regions import Hull, footprint_by_array, ref_hull, union_hulls
from .reuse import ClassProfile, Component, attribute_model, solve_delta
from .schedule import (
    parse_schedule,
    preserves_affinity,
    round_robin_order,
    schedule_assignments,
    schedule_chunks,
    thread_span,
)

__all__ = [
    "ArraySharing",
    "AxisVerdict",
    "CoherenceProfile",
    "SharingWitness",
    "ClassProfile",
    "Component",
    "EvaluatedClass",
    "Hull",
    "LoopCtx",
    "MulticorePrediction",
    "ParallelismProfile",
    "Poly",
    "RaceWitness",
    "StaticModel",
    "StaticProfile",
    "StaticRef",
    "analyze_coherence",
    "analyze_parallelism",
    "analyze_program",
    "attainable",
    "attribute_model",
    "bind_params",
    "build_model",
    "footprint_by_array",
    "lane_conflict",
    "lint_profile",
    "lint_static",
    "parse_schedule",
    "predict_multicore",
    "predict_program_multicore",
    "preserves_affinity",
    "ref_hull",
    "round_robin_order",
    "schedule_assignments",
    "schedule_chunks",
    "solve_delta",
    "thread_span",
    "union_hulls",
]
