"""Symbolic reuse attribution: the static counterpart of the LRU stack.

For every reference (a *reuse class*, keyed by the same ``ref_id`` the
dynamic trace uses) the attributor walks a ladder of source candidates,
from temporally closest to farthest, and splits the reference's symbolic
access count across *components*:

``intra``
    the source executes earlier in the same loop iteration; distance is
    an exact distinct-element count over the statements in between;
``carried``
    the source executes ``delta`` iterations earlier in the same nest.
    Small innermost-carried distances are enumerated exactly; otherwise
    the distance is the measure of the data touched by a ``delta``-wide
    iteration window of the carried loop (a union of region hulls);
``sibling``
    same nest, structurally different scope (imperfect nests); hull
    windows over the shared loop prefix;
``cross_nest``
    the source is a previous top-level nest; distance is the footprint
    of everything executed between the two nests;
``cross_step``
    the source is the previous repetition of the whole body (time-step
    loops); distance is the wrap-around footprint;
``cold``
    whatever remains was never accessed before.

Every component carries an *estimate* and a conservative upper *bound*
(the property suite checks bound >= measured distance); both are
:class:`~repro.static.poly.Poly` over the program parameters, so the
whole profile evaluates at any input size without a trace.

The delta-solver handles exactly the affine subscripts the ``lang`` IR
guarantees: equal-coefficient references with constant offsets yield a
linear system over the iteration shift, solved dimension by dimension
with a fixpoint over forced indices (group reuse in the sense of
Razzak et al.'s static reuse profiles).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Optional, Sequence

from ..lang import Affine, Assumptions
from .model import LoopCtx, StaticModel, StaticRef
from .poly import ONE, Poly
from .regions import (
    Hull,
    affine_max,
    affine_min,
    eliminate,
    finalize,
    footprint_by_array,
    hull_contains,
    hulls_overlap,
    index_probe,
    intersect_measure,
    measure_sum,
    ref_hull,
    union_disjoint,
    union_hulls,
)

#: innermost-carried distances up to this many iterations are enumerated
#: exactly instead of hull-estimated
_ENUM_MAX = 6

#: cap on (refs x shift) pairs for the exact enumeration
_ENUM_PAIRS = 512

#: cap on partial-coverage cross-nest slices per reuse class
_CROSS_SLICES = 4

#: cap on sibling coverage slices per reuse class
_SIBLING_SLICES = 6

#: cap on secondary constant-shift slices per reuse class (the
#: boundary rows the nearest shift leaves unserved)
_SECONDARY_SHIFTS = 2


@dataclass(frozen=True)
class Component:
    """One attributed slice of a reuse class's accesses."""

    kind: str  # intra | carried | sibling | cross_nest | cross_step
    source: Optional[int]  # ref_id of the reusing source, if known
    count: Poly  # accesses per body repetition
    distance: Poly  # estimated reuse distance (elements)
    bound: Poly  # conservative upper bound on the distance
    exact: bool


@dataclass(frozen=True)
class ClassProfile:
    """All components of one reuse class plus its cold remainder."""

    ref: StaticRef
    components: tuple[Component, ...]
    cold: Poly  # per-body-repetition cold accesses


def _const_offset(form: Affine) -> Optional[Fraction]:
    """The value of ``form`` if it is a pure constant, else None."""
    if form.coeffs:
        return None
    return form.const


def shared_depth(src: StaticRef, sink: StaticRef) -> int:
    """Length of the common loop-*identity* prefix of two references.

    After fusion several sibling loops reuse an index name, so name
    equality is not shared ancestry: iterating ``j`` in the second of two
    fused ``j`` loops does not revisit the first loop's iteration space.
    Everything temporal (shift validity, window footprints, sibling
    coverage) must reason at this identity depth.
    """
    depth = 0
    for a, b in zip(src.scope, sink.scope):
        if a.loop_id != b.loop_id or a.loop_id < 0:
            break
        depth += 1
    return depth


def solve_delta(src: StaticRef, sink: StaticRef) -> Optional[tuple[int, ...]]:
    """Iteration shift ``delta`` with ``src(i - delta) == sink(i)``.

    Requires identical scope index tuples and per-dimension equal
    coefficients (on indices *and* parameters) — the constant-offset
    group-reuse case.  Returns the outer-first shift vector, or None
    when no constant shift reproduces the sink's element.

    A shift is only returned if it is temporally valid.  Validity is
    judged on the *shared-ancestry* prefix (see :func:`shared_depth`):
    the shared entries must be lexicographically positive, or all zero
    with the source textually earlier.  Entries beyond the shared depth
    belong to divergent sibling loops — they select *which* source
    instance matches the element and carry no temporal constraint (the
    whole divergent subtree executes before or after the sink's,
    decided by position alone).
    """
    indices = sink.scope_indices()
    if src.scope_indices() != indices or src.array != sink.array:
        return None
    if len(src.subs) != len(sink.subs):
        return None
    # per-dim: sum_l c[d][l] * delta[l] == -k[d]
    rows: list[tuple[tuple[Fraction, ...], Fraction]] = []
    for s_sub, k_sub in zip(src.subs, sink.subs):
        k = _const_offset(k_sub - s_sub)
        if k is None:
            return None
        rows.append((tuple(s_sub.coeff(ix) for ix in indices), k))
    delta: list[Optional[Fraction]] = [None] * len(indices)
    changed = True
    while changed:
        changed = False
        for coeffs, k in rows:
            unknown = [
                l for l, c in enumerate(coeffs) if c != 0 and delta[l] is None
            ]
            if len(unknown) == 1:
                l = unknown[0]
                acc = sum(
                    (c * delta[j] for j, c in enumerate(coeffs)
                     if c != 0 and j != l),
                    Fraction(0),
                )
                delta[l] = (-k - acc) / coeffs[l]
                changed = True
    # unforced deltas (multi-index dims, unconstrained indices) default
    # to zero — the closest candidate shift — then every row is checked
    out = [Fraction(0) if d is None else d for d in delta]
    for coeffs, k in rows:
        acc = sum(
            (c * out[l] for l, c in enumerate(coeffs) if c != 0),
            Fraction(0),
        )
        if acc != -k:
            return None
    if any(d.denominator != 1 for d in out):
        return None
    shift = [int(d) for d in out]
    depth = shared_depth(src, sink)
    if all(s == 0 for s in shift[:depth]) and src.pos >= sink.pos:
        # self/later source in the same shared iteration: the closest
        # valid occurrence is one iteration of the innermost *shared*
        # free loop back (bumping a divergent level would not move the
        # source earlier in time)
        free = [
            l for l in range(depth)
            if all(sub.coeff(indices[l]) == 0 for sub in src.subs)
        ]
        if not free:
            return None
        shift[max(free)] = 1
    for s in shift[:depth]:
        if s > 0:
            break
        if s < 0:
            return None
    else:
        if src.pos >= sink.pos:
            return None
    return tuple(shift)


def comparable(src: StaticRef, sink: StaticRef) -> bool:
    """Is the src/sink relationship fully decided by :func:`solve_delta`?

    True when both references share scope indices and differ by constant
    subscript offsets — then either the solver found a valid shift, or
    there provably is no earlier same-nest access (e.g. a write that a
    later-element read follows, never precedes).  Such pairs must not be
    resurrected by the coarser hull-overlap rungs.
    """
    if src.scope_indices() != sink.scope_indices():
        return False
    if len(src.subs) != len(sink.subs):
        return False
    return all(
        _const_offset(k - s) is not None
        for s, k in zip(src.subs, sink.subs)
    )


class _Attributor:
    def __init__(
        self, model: StaticModel, steps: int, assume: Assumptions
    ) -> None:
        self.model = model
        self.steps = steps
        self.assume = assume
        #: finalized per-array union hull of each top-level nest
        self.nest_hulls: list[dict[str, Hull]] = [
            footprint_by_array(nest, assume) for nest in model.nests
        ]
        #: (nest, depth, loop_id) -> per-prefix subtree footprint; the
        #: measure only references shared anchor indices, so every sink
        #: of the nest sees the same value (diagonal sources reuse it)
        self._subtree_measures: dict[tuple[int, int, int], Poly] = {}

    # -- span footprints --------------------------------------------------

    def span_measure(self, nests: Sequence[int]) -> Poly:
        """Footprint of every reference in the given top-level nests."""
        grouped: dict[str, list[Hull]] = {}
        for k in nests:
            for name, hull in self.nest_hulls[k].items():
                grouped.setdefault(name, []).append(hull)
        merged = {
            name: union_hulls(hs, self.assume)
            for name, hs in grouped.items()
        }
        return measure_sum(merged)

    # -- rung 1: same-scope constant-shift reuse --------------------------

    def shift_candidates(
        self, sink: StaticRef
    ) -> list[tuple[tuple[int, ...], StaticRef, Poly, tuple]]:
        """All same-nest constant-shift sources, nearest-first.

        Each entry is ``(shift, src, count, validity)`` where ``validity``
        holds the per-level affine interval of sink iterations whose
        shifted source iteration exists (``[src.lo + s, src.hi + s] ∩
        [sink.lo, sink.hi]``, possibly guard-narrowed after fusion
        peeling) and ``count`` is its measure.  Candidates whose validity
        is provably empty at some level never supply a reuse and are
        dropped.

        Ordering: temporal closeness is decided by the shared-ancestry
        shift; divergent-level entries only pick the matching instance.
        Crossing into a sibling subtree at the divergence level is
        farther than any same-subtree shift of that level (the sibling
        ran before the sink's whole subtree started), so the sentinel is
        infinity: (0, k) < (0, inf) < (1, ...) — a same-loop source k
        iterations back still beats one in an earlier fused sibling
        loop, which beats going back a full iteration of the shared
        prefix.
        """
        cands: list[tuple[tuple, tuple[int, ...], StaticRef, Poly, tuple]] = []
        for src in self.model.nests[sink.nest]:
            shift = solve_delta(src, sink)
            if shift is None:
                continue
            validity = self._shift_validity(src, sink, shift)
            if validity is None:
                continue  # provably disjoint iteration ranges
            count = ONE
            for lo, hi in validity:
                count = count * Poly.from_affine(hi - lo + 1)
            depth = shared_depth(src, sink)
            tshift: tuple[float, ...] = tuple(shift[:depth])
            if depth < len(sink.scope):
                tshift = tshift + (float("inf"),)
            key = (tshift, src.pos >= sink.pos, -src.pos)
            cands.append((key, shift, src, count, validity))
        cands.sort(key=lambda t: t[0])
        return [(s, r, c, v) for _, s, r, c, v in cands]

    def _shift_validity(
        self, src: StaticRef, sink: StaticRef, shift: tuple[int, ...]
    ) -> Optional[tuple]:
        """Per-level interval of sink iterations the shift can serve."""
        ivs: list[tuple[Affine, Affine]] = []
        for sctx, kctx, s in zip(src.scope, sink.scope, shift):
            lo, _ = affine_max(sctx.lo + s, kctx.lo, self.assume)
            hi, _ = affine_min(sctx.hi + s, kctx.hi, self.assume)
            sign = (hi - lo + 1).sign(self.assume)
            if sign is not None and sign <= 0:
                return None
            ivs.append((lo, hi))
        return tuple(ivs)

    def _box_overlap_count(self, a: tuple, b: tuple) -> Poly:
        """Measure of the intersection of two validity boxes (0 if empty)."""
        out = ONE
        for (alo, ahi), (blo, bhi) in zip(a, b):
            lo, _ = affine_max(alo, blo, self.assume)
            hi, _ = affine_min(ahi, bhi, self.assume)
            width = hi - lo + 1
            sign = width.sign(self.assume)
            if sign is not None and sign <= 0:
                return Poly()
            if sign is None:
                env = {v: 10**4 for v in width.variables()}
                if width.evaluate(env) <= 0:
                    return Poly()
            out = out * Poly.from_affine(width)
        return out

    def intra_distance(
        self, sink: StaticRef, src: StaticRef
    ) -> Optional[tuple[Poly, Poly, bool]]:
        """Distinct elements between two positions of the same iteration."""
        nest = self.model.nests[sink.nest]
        between = [r for r in nest if src.pos < r.pos < sink.pos]
        if any(r.scope_indices() != sink.scope_indices() for r in between):
            return None  # imperfect nest: fall back to hulls
        elements: set[tuple[str, tuple[Affine, ...]]] = set()
        reused = (sink.array, sink.subs)
        for r in between:
            key = (r.array, r.subs)
            if key != reused:
                elements.add(key)
        d = Poly.constant(len(elements))
        return d, d, True

    def enum_distance(
        self, sink: StaticRef, src: StaticRef, shift: tuple[int, ...]
    ) -> Optional[tuple[Poly, Poly, bool]]:
        """Exact interior enumeration for small innermost-carried shifts.

        Walks every (reference, iteration-shift) access strictly between
        the source and the sink and counts distinct elements as symbolic
        subscript forms.  Exact for 1-D streaming kernels (the property
        suite pins ``A[i] = A[i-1] + B[i]`` at distance 0).
        """
        if not sink.scope or any(s for s in shift[:-1]):
            return None
        d = shift[-1]
        if d == 0 or d > _ENUM_MAX:
            return None
        nest = self.model.nests[sink.nest]
        if any(r.scope_indices() != sink.scope_indices() for r in nest):
            return None
        if len(nest) * (d + 1) > _ENUM_PAIRS:
            return None
        iname = sink.scope[-1].index
        ivar = Affine.var(iname)
        reused = (sink.array, sink.subs)
        elements: set[tuple[str, tuple[Affine, ...]]] = set()
        for t in range(d + 1):
            for r in nest:
                if t == d and r.pos <= src.pos:
                    continue
                if t == 0 and r.pos >= sink.pos:
                    continue
                subs = tuple(
                    s.substitute({iname: ivar - t}) if s.coeff(iname) else s
                    for s in r.subs
                )
                key = (r.array, subs)
                if key != reused:
                    elements.add(key)
        n = Poly.constant(len(elements))
        return n, n, True

    def window_distance(
        self, sink: StaticRef, level: int, width: int
    ) -> tuple[Poly, bool]:
        """Measure of the data a ``width``-iteration window of loop
        ``level`` touches, minus the reused element itself.

        Only references that *actually share* the carrying loop (same
        loop identity chain through ``level``) execute inside the window;
        same-named sibling loops of a fused nest do not.
        """
        anchor = sink.scope[: level + 1]
        probe = index_probe(sink.scope, self.model.params)
        grouped: dict[str, list[Hull]] = {}
        exact = True
        for r in self.model.nests[sink.nest]:
            if len(r.scope) <= level or any(
                a.loop_id != b.loop_id for a, b in zip(r.scope, anchor)
            ):
                continue
            h = ref_hull(r, start=level, window=(level, width))
            grouped.setdefault(r.array, []).append(h)
        out = Poly()
        for name, hs in sorted(grouped.items()):
            for g in union_disjoint(hs, self.assume, probe):
                u = finalize(g, sink.scope, self.assume)
                exact = exact and u.exact
                out = out + u.measure()
        return out - 1, exact

    # -- rung 2: sibling references in an imperfect nest ------------------

    def between_distance(
        self,
        sink: StaticRef,
        src_pos: int,
        depth: int,
        window_loop: Optional[int] = None,
    ) -> tuple[Poly, bool]:
        """Footprint of the references executed between two positions of
        the same iteration of the shared loop prefix (length ``depth``).

        Each in-between reference contributes the region it covers per
        shared iteration: its own divergent loop levels are eliminated,
        the shared anchors stay symbolic and cancel in the widths.
        ``window_loop`` (see :meth:`_end_meet_loop`) restricts references
        inside that loop to a single iteration — the source access
        happens on the loop's last pass, so only one iteration of it
        separates source from sink.
        """
        anchor = sink.scope[:depth]
        probe = index_probe(sink.scope, self.model.params)
        grouped: dict[str, list[Hull]] = {}
        pins: dict[str, Poly] = {}
        exact = True
        for r in self.model.nests[sink.nest]:
            if not (src_pos <= r.pos <= sink.pos):
                continue
            rd = 0
            for a, b in zip(r.scope, anchor):
                if a.loop_id != b.loop_id:
                    break
                rd += 1
            window = None
            if (
                window_loop is not None
                and len(r.scope) > depth
                and r.scope[depth].loop_id == window_loop
            ):
                window = (depth, 1)
                # the meet happens on the loop's final pass, so the
                # surviving window anchor — r's own index, absent from
                # the sink's scope — is pinned to the loop's upper bound
                ctx = r.scope[depth]
                pins[ctx.index] = Poly.from_affine(ctx.hi)
                for inner in r.scope:
                    if inner.index not in probe:
                        probe[inner.index] = int(inner.hi.evaluate(probe))
            grouped.setdefault(r.array, []).append(
                ref_hull(r, start=rd, window=window)
            )
        out = Poly()
        for name, hs in sorted(grouped.items()):
            for g in union_disjoint(hs, self.assume, probe):
                u = finalize(g, sink.scope, self.assume)
                exact = exact and u.exact
                out = out + u.measure()
        if pins:
            out = out.substitute(pins)
        return out - 1, exact

    def diagonal_between_distance(
        self, sink: StaticRef, src: StaticRef, depth: int
    ) -> tuple[Poly, Poly]:
        """Expected footprint between diagonal accesses of sibling loops.

        When a zero-shift source lives in a *different* loop of the same
        shared prefix iteration (fused siblings), the reuse runs
        iteration ``i`` of the source loop to iteration ``i`` of the
        sink loop: the source's subtree still executes its remaining
        ``hi - i`` iterations and the sink's subtree has already
        executed its first ``i - lo`` before the reuse completes — on
        average half of each subtree's per-prefix footprint, plus every
        subtree strictly between the two.  Returns ``(mean, bound)``
        where the bound charges both subtrees in full.
        """
        anchor = sink.scope[:depth]
        probe = index_probe(sink.scope, self.model.params)
        src_top = src.scope[depth].loop_id if len(src.scope) > depth else -1
        sink_top = (
            sink.scope[depth].loop_id if len(sink.scope) > depth else -1
        )
        # the two subtrees' windows are disjoint slices of the iteration
        # range (the source's tail vs. the sink's head), so arrays they
        # share must be charged per subtree, not unioned across them
        between: dict[str, list[Hull]] = {}
        for r in self.model.nests[sink.nest]:
            rd = 0
            for a, b in zip(r.scope, anchor):
                if a.loop_id != b.loop_id:
                    break
                rd += 1
            if rd < depth:
                continue  # does not run under the shared prefix
            top = r.scope[depth].loop_id if len(r.scope) > depth else -2
            if top in (src_top, sink_top):
                continue  # charged via the memoized subtree footprints
            if src.pos <= r.pos <= sink.pos:
                between.setdefault(r.array, []).append(
                    ref_hull(r, start=rd)
                )
        mean = Poly()
        bound = Poly()
        for top in (src_top, sink_top):
            sub = self._subtree_footprint(sink, depth, top)
            mean = mean + sub * Fraction(1, 2)
            bound = bound + sub
        for name, hs in sorted(between.items()):
            for g in union_disjoint(hs, self.assume, probe):
                u = finalize(g, sink.scope, self.assume)
                mean = mean + u.measure()
                bound = bound + u.measure()
        return mean - 1, bound - 1

    def _subtree_footprint(
        self, sink: StaticRef, depth: int, top: int
    ) -> Poly:
        """Per-prefix-iteration footprint of one divergent subtree."""
        key = (sink.nest, depth, top)
        cached = self._subtree_measures.get(key)
        if cached is not None:
            return cached
        anchor = sink.scope[:depth]
        probe = index_probe(sink.scope, self.model.params)
        grouped: dict[str, list[Hull]] = {}
        for r in self.model.nests[sink.nest]:
            rd = 0
            for a, b in zip(r.scope, anchor):
                if a.loop_id != b.loop_id:
                    break
                rd += 1
            if rd < depth:
                continue
            r_top = r.scope[depth].loop_id if len(r.scope) > depth else -2
            if r_top != top:
                continue
            grouped.setdefault(r.array, []).append(ref_hull(r, start=rd))
        out = Poly()
        for name, hs in sorted(grouped.items()):
            for g in union_disjoint(hs, self.assume, probe):
                out = out + finalize(g, sink.scope, self.assume).measure()
        self._subtree_measures[key] = out
        return out

    def _end_meet_loop(
        self,
        src: StaticRef,
        sink_dims: Sequence[tuple[Affine, Affine]],
        depth: int,
    ) -> Optional[int]:
        """loop_id of src's divergent loop when the meet is at its end.

        A same-iteration sibling source like ``X[j, i-1]`` (j over
        ``4..N-1``) meets a boundary sink ``X[N-1, i-1]`` only at its
        *last* j iteration — so the data between the two accesses is
        whatever runs after the j loop finishes, not the loop's whole
        footprint.  Detected when src has exactly one divergent level and
        every subscript depending on its index pins the sink to the value
        the loop reaches last; callers then count that loop's in-between
        references for a single iteration.
        """
        if len(src.scope) != depth + 1:
            return None
        ctx = src.scope[depth]
        hit = False
        for d, sub in enumerate(src.subs):
            c = sub.coeff(ctx.index)
            if c == 0:
                continue
            last = sub.substitute({ctx.index: ctx.hi if c > 0 else ctx.lo})
            slo, shi = sink_dims[d]
            if slo.compare(last, self.assume) != 0:
                return None
            if shi.compare(last, self.assume) != 0:
                return None
            hit = True
        return ctx.loop_id if hit else None

    def _dims_meet(
        self,
        a: Sequence[tuple[Affine, Affine]],
        b: Sequence[tuple[Affine, Affine]],
        scope: Sequence[LoopCtx],
    ) -> Optional[tuple[Poly, bool]]:
        """Box-intersection measure of two raw dim lists, or None when
        provably (or at the probe size) empty.

        The dims may mention the shared anchor indices symbolically —
        that is the point: ``[i-1, i-1]`` meets ``[i, i]`` nowhere, which
        the finalized hulls of the old overlap test could not see.
        """
        index_names = {c.index for c in scope}
        out = ONE
        exact = True
        for (alo, ahi), (blo, bhi) in zip(a, b):
            lo, e1 = affine_max(alo, blo, self.assume)
            hi, e2 = affine_min(ahi, bhi, self.assume)
            width = hi - lo + 1
            sign = width.sign(self.assume)
            if sign is not None and sign <= 0:
                return None
            if sign is None:
                env = {v: 10**4 for v in width.variables()}
                if width.evaluate(env) <= 0:
                    return None
                exact = False
            if width.depends_on(index_names):
                # a triangular overlap: take the widest shared iteration
                _, width = eliminate(width, scope, 0)
                exact = False
            exact = exact and e1 and e2
            out = out * Poly.from_affine(width)
        return out, exact

    def sibling(
        self, sink: StaticRef, remainder: Poly
    ) -> list[tuple[StaticRef, Poly, Poly, Poly, bool]]:
        """Coverage slices ``(src, count, dist, bound, exact)`` from
        structurally different references of the same nest.

        For each candidate source the test is anchored at the deepest
        shared loop: does the source's per-shared-iteration region (for a
        textually earlier source) or its previous-iteration region (for
        any source) provably meet the sink's per-iteration element set?
        Each meet claims ``trips(shared) * |intersection|`` accesses —
        the evaluator clamps the running total against the class size.
        """
        probe = {p: 10**4 for p in self.model.params}
        rem = float(remainder.evaluate(probe))
        if rem <= 0.5:
            return []
        out: list[tuple[StaticRef, Poly, Poly, Poly, bool]] = []
        candidates = sorted(
            (
                r
                for r in self.model.nests[sink.nest]
                if r.array == sink.array
                and r.ref_id != sink.ref_id
                and not comparable(r, sink)
            ),
            key=lambda r: (r.pos >= sink.pos, abs(r.pos - sink.pos)),
        )
        for src in candidates:
            depth = shared_depth(src, sink)
            if depth == 0:
                continue
            shared = sink.scope[:depth]
            trips = ONE
            for ctx in shared:
                trips = trips * ctx.trip
            sink_dims = tuple(
                eliminate(s, sink.scope, start=depth) for s in sink.subs
            )
            src_dims = tuple(
                eliminate(s, src.scope, start=depth) for s in src.subs
            )
            slices: list[tuple[Poly, Poly, Poly, bool]] = []
            if src.pos < sink.pos:
                # same shared iteration, textually earlier
                met = self._dims_meet(src_dims, sink_dims, shared)
                if met is not None:
                    measure, mexact = met
                    window_loop = self._end_meet_loop(
                        src, sink_dims, depth
                    )
                    dist, dexact = self.between_distance(
                        sink, src.pos, depth, window_loop=window_loop
                    )
                    slices.append(
                        (trips * measure, dist, dist, mexact and dexact
                         and window_loop is None)
                    )
            # previous iteration of the innermost shared loop (any
            # textual position: the whole subtree ran last iteration)
            anchor = shared[-1].index
            back = {anchor: Affine.var(anchor) - 1}
            prev_dims = tuple(
                (lo.substitute(back), hi.substitute(back))
                for lo, hi in src_dims
            )
            met = self._dims_meet(prev_dims, sink_dims, shared)
            if met is not None:
                measure, _ = met
                dist, _ = self.window_distance(sink, depth - 1, 1)
                bound, _ = self.window_distance(sink, depth - 1, 2)
                slices.append((trips * measure, dist, bound, False))
            for count, dist, bound, exact in slices:
                got = float(count.evaluate(probe))
                if got <= 0:
                    continue
                out.append((src, count, dist, bound, exact))
                rem -= got
                if rem <= 0.5 or len(out) >= _SIBLING_SLICES:
                    return out
        return out

    # -- rungs 3-4: cross-nest and cross-step -----------------------------

    def _nonempty(self, width: Affine) -> bool:
        sign = width.sign(self.assume)
        if sign is not None:
            return sign > 0
        env = {v: 10**4 for v in width.variables()}
        return width.evaluate(env) > 0

    def _narrow_sink(self, sink: StaticRef, box: tuple) -> StaticRef:
        """A copy of ``sink`` whose scope is restricted to ``box``."""
        scope = tuple(
            LoopCtx(
                c.index, lo, hi, Poly.from_affine(hi - lo + 1),
                exact=c.exact, loop_id=c.loop_id,
            )
            for c, (lo, hi) in zip(sink.scope, box)
        )
        return replace(sink, scope=scope)

    def _uncovered_boxes(
        self, sink: StaticRef, covered: Optional[tuple]
    ) -> list[tuple]:
        """Iteration boxes of ``sink`` the shift rung did not serve.

        Standard box-difference decomposition: one slab per level and
        side, levels before it restricted to the covered interval,
        levels after it at full range.  Empty slabs (provably, or at the
        probe size) are dropped.
        """
        full = tuple((c.lo, c.hi) for c in sink.scope)
        if covered is None:
            return [full]
        boxes: list[tuple] = []
        for level, (flo, fhi) in enumerate(full):
            clo, chi = covered[level]
            prefix = covered[:level]
            suffix = full[level + 1:]
            for lo, hi in ((flo, clo - 1), (chi + 1, fhi)):
                if self._nonempty(hi - lo + 1):
                    boxes.append(prefix + ((lo, hi),) + suffix)
        return boxes

    def cross_nest(
        self, sink: StaticRef, boxes: Sequence[tuple]
    ) -> list[tuple[int, Poly, Poly, bool]]:
        """Coverage slices ``(nest, count, distance, covered)``.

        ``boxes`` are the iteration slabs still unserved after the shift
        rung — intersecting earlier nests with the *unserved* element
        region (not the sink's full region) is what keeps a genuinely
        cold boundary slice cold: for ``LHS[2, i-1, j, k]`` only the
        ``i = 2`` slab (element row 1) is left, and no earlier nest
        touches row 1 even though every one overlaps rows 2..N-1.

        Per slab, scans earlier nests nearest-first.  A nest whose
        footprint provably contains the slab's region covers the whole
        slab and ends that slab's scan; a partially overlapping nest
        covers only its box intersection, and the scan continues.
        """
        slices: list[tuple[int, Poly, Poly, bool]] = []
        for box in boxes:
            scope = tuple(
                LoopCtx(
                    c.index, lo, hi, Poly.from_affine(hi - lo + 1),
                    exact=c.exact, loop_id=c.loop_id,
                )
                for c, (lo, hi) in zip(sink.scope, box)
            )
            dims = tuple(eliminate(s, scope, 0) for s in sink.subs)
            hull = finalize(
                Hull(sink.array, dims, all(c.exact for c in scope)),
                scope, self.assume,
            )
            piece_count = ONE
            for lo, hi in box:
                piece_count = piece_count * Poly.from_affine(hi - lo + 1)
            for k in range(sink.nest - 1, -1, -1):
                src_hull = self.nest_hulls[k].get(sink.array)
                if src_hull is None:
                    continue
                if hulls_overlap(src_hull, hull, self.assume) is False:
                    continue
                dist = self.span_measure(range(k, sink.nest + 1)) - 1
                if hull_contains(src_hull, hull, self.assume):
                    slices.append((k, piece_count, dist, True))
                    break
                count = intersect_measure(src_hull, hull, self.assume)
                slices.append((k, count, dist, False))
                if len(slices) >= _CROSS_SLICES:
                    return slices
        return slices

    def cross_step(self, sink: StaticRef) -> Poly:
        last = len(self.model.nests) - 1
        for k in range(last, sink.nest - 1, -1):
            src_hull = self.nest_hulls[k].get(sink.array)
            if src_hull is None:
                continue
            sink_hull = finalize(ref_hull(sink, 0), sink.scope, self.assume)
            if hulls_overlap(src_hull, sink_hull, self.assume) is False:
                continue
            span = list(range(k, last + 1)) + list(range(0, sink.nest + 1))
            return self.span_measure(span) - 1
        # the sink's own nest always overlaps itself
        span = list(range(sink.nest, last + 1)) + list(
            range(0, sink.nest + 1)
        )
        return self.span_measure(span) - 1

    # -- the ladder -------------------------------------------------------

    def _shift_component(
        self,
        sink: StaticRef,
        src: StaticRef,
        shift: tuple[int, ...],
        count: Poly,
        count_exact: bool = True,
    ) -> Component:
        depth = shared_depth(src, sink)
        result = None
        if not any(shift[:depth]):
            # same shared iteration: reuse within one traversal of the
            # (possibly divergent) subtrees between src and sink
            kind = "intra"
            if not any(shift) and depth == len(sink.scope):
                result = self.intra_distance(sink, src)
            if result is None and depth < len(sink.scope):
                # fused-sibling diagonal: src's loop finishes and sink's
                # warms up between the paired accesses
                dist, bnd = self.diagonal_between_distance(sink, src, depth)
                result = (dist, bnd, False)
            if result is None:
                dist, dexact = self.between_distance(sink, src.pos, depth)
                result = (dist, dist, dexact)
        else:
            kind = "carried"
            if depth == len(sink.scope) == len(src.scope):
                result = self.enum_distance(sink, src, shift)
            if result is None:
                level = next(l for l, s in enumerate(shift[:depth]) if s)
                w = abs(shift[level])
                dist, dexact = self.window_distance(sink, level, max(w, 1))
                bound, bexact = self.window_distance(sink, level, w + 1)
                result = (dist, bound, dexact and bexact and w <= 1)
        dist, bound, exact = result
        return Component(
            kind, src.ref_id, count, dist, bound, exact and count_exact
        )

    def attribute(self, sink: StaticRef) -> ClassProfile:
        components: list[Component] = []
        exec_count = sink.exec_count()
        remainder = exec_count
        probe = {p: 10**4 for p in self.model.params}

        def live(poly: Poly) -> bool:
            return not poly.is_zero() and float(poly.evaluate(probe)) > 0.5

        cands = self.shift_candidates(sink)
        covered: Optional[tuple] = None
        if cands:
            shift, src, count, covered = cands[0]
            components.append(
                self._shift_component(sink, src, shift, count)
            )
            remainder = remainder - count
        # secondary shifts: a stencil's nearest source rarely serves every
        # iteration (P[j+1,i] leaves the j=1 row of P[j,i] unserved); the
        # next-nearest shift (P[j,i+1], one outer iteration back) usually
        # does, at one-sweep distance instead of a whole-body footprint.
        # Each secondary claims only its validity outside the primary box.
        taken = 0
        for shift, src, count, validity in cands[1:]:
            if taken >= _SECONDARY_SHIFTS or not live(remainder):
                break
            overlap = (
                self._box_overlap_count(validity, covered)
                if covered is not None
                else Poly()
            )
            fresh = count - overlap
            if float(fresh.evaluate(probe)) <= 0.5:
                continue
            components.append(
                self._shift_component(
                    sink, src, shift, fresh, count_exact=False
                )
            )
            remainder = remainder - fresh
            taken += 1

        # rungs below the shift ladder reason about the *unserved* slabs
        # of the iteration space, not the sink's full region: a served
        # row must not make a cold boundary row look warm (and vice
        # versa a sibling must meet the leftover rows, not just any row)
        boxes = self._uncovered_boxes(sink, covered)

        for box in boxes:
            if not live(remainder):
                break
            vsink = self._narrow_sink(sink, box)
            for src, count, dist, bound, exact in self.sibling(
                vsink, remainder
            ):
                components.append(
                    Component(
                        "sibling", src.ref_id, count, dist, bound, exact
                    )
                )
                remainder = remainder - count

        if live(remainder):
            for k, count, dist, contained in self.cross_nest(sink, boxes):
                components.append(
                    Component(
                        "cross_nest", self.model.nests[k][-1].ref_id,
                        count, dist, dist, contained,
                    )
                )
                remainder = remainder - count

        if live(remainder) and self.steps > 1:
            dist = self.cross_step(sink)
            components.append(
                Component("cross_step", None, remainder, dist, dist, False)
            )
            # the cross-step component replays the remainder on steps 2..S;
            # the remainder itself stays cold on step 1 (see profile
            # multipliers), so it is NOT zeroed here.

        return ClassProfile(sink, tuple(components), remainder)


def attribute_model(
    model: StaticModel, steps: int, assume: Assumptions
) -> tuple[ClassProfile, ...]:
    """Attribute every reuse class of ``model``."""
    attributor = _Attributor(model, steps, assume)
    return tuple(attributor.attribute(ref) for ref in model.refs)
