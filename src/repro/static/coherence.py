"""Static coherence and false-sharing analysis (line-granularity model).

The multicore reuse model (:mod:`repro.static.multicore`) predicts
capacity behaviour; this module predicts the *coherence* component a
multi-thread run adds on top: invalidation misses, classified as

* **true sharing** — two threads touch the same element, at least one
  writing it (the value actually flows between cores); a DOALL axis
  cannot true-share within one nest (that is what the race analyzer
  proves), so true sharing is a *cross-nest* phenomenon: the producing
  nest was partitioned over a different axis than the consumer;
* **false sharing** — two threads touch *distinct* elements that live
  on the same cache line; the line ping-pongs even though no value
  flows.  The canonical cure is padding the leading dimension to a
  whole number of lines, which the R520 lint suggests.

The analysis is fully static — no interpreter run.  It enumerates each
reference's accesses from the affine loop model (the same tier the
parallelism analyzer's exhaustive checker uses), partitions every
parallel nest across threads with the shared schedule machinery
(:mod:`repro.static.schedule`), orders the per-thread streams with the
same round-robin drain contract the dynamic replay uses, and replays
the merged stream through the owner-tracking MSI automaton — the exact
contract of the :mod:`repro.memsim.coherence` oracle, which is why
invalidation totals cross-validate exactly whenever the enumeration
matches the tracer (DESIGN §10).

Two screens keep the line-level work focused, both built on the
existing machinery:

* a **hull screen**: per-thread linearized footprint intervals (the
  rectangular hull of each reference restricted to a thread's chunk,
  widened by a line) prove most arrays are never line-shared across
  threads at all — they are skipped by the sharing classifier;
* a **dependence screen**: :func:`repro.static.dependence_test.attainable`
  over cross-thread reference pairs proves when no element can be
  touched by two different threads — every line overlap of such an
  array is false sharing by construction.

Witnesses are concrete: thread pair, the two global element keys and
their offsets within the shared line, and the loop-variable bindings of
the two colliding iterations (recovered by a bounded re-walk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Optional, Sequence

import numpy as np

from ..lang import Program
from ..lang.errors import AnalysisError
from ..lang.expr import ArrayRef, array_reads
from ..lang.stmt import Assign, CallStmt, Guard, Loop, Stmt
from ..obs import metrics, span
from .model import StaticRef, build_model
from .multicore import _ref_box, _scope_ranges
from .parallelism import (
    ParallelismProfile,
    _Unsupported,
    analyze_parallelism,
    bind_params,
)
from .schedule import (
    parse_schedule,
    round_robin_order,
    schedule_chunks,
)

#: enumeration ceiling: programs whose modeled access count exceeds this
#: raise (callers degrade gracefully — the tuner falls back to the
#: capacity-only objective)
DEFAULT_MAX_ACCESSES = 8_000_000

#: how many sharing witnesses the profile keeps
MAX_WITNESSES = 8

#: iteration budget for recovering a witness's loop-variable bindings
_WITNESS_WALK_CAP = 250_000


# -- result types -------------------------------------------------------------


@dataclass(frozen=True)
class SharingWitness:
    """One concrete cross-thread sharing event on one cache line."""

    array: str
    line: int  # global line id (global key // line_elems)
    kind: str  # "true" | "false"
    thread_a: int  # the thread that held the line first
    thread_b: int  # the thread whose access invalidated / missed
    elem_a: int  # global element key thread_a touched
    elem_b: int  # global element key thread_b touched
    offset_a: int  # element offset of elem_a within the line
    offset_b: int
    #: loop-variable bindings of the two iterations (empty when the
    #: bounded recovery walk did not reach the access)
    iter_a: tuple[tuple[str, int], ...] = ()
    iter_b: tuple[tuple[str, int], ...] = ()

    def render(self) -> str:
        def env(bindings: tuple[tuple[str, int], ...]) -> str:
            if not bindings:
                return "(?)"
            return "(" + ", ".join(f"{k}={v}" for k, v in bindings) + ")"

        what = (
            "same element"
            if self.kind == "true"
            else f"distinct elements +{self.offset_a}/+{self.offset_b}"
        )
        return (
            f"{self.kind} sharing on {self.array} line {self.line}: "
            f"t{self.thread_a} @{env(self.iter_a)} vs "
            f"t{self.thread_b} @{env(self.iter_b)} — {what}"
        )


@dataclass(frozen=True)
class ArraySharing:
    """Per-array sharing summary at line granularity."""

    array: str
    shared_lines: int  # lines touched by >= 2 threads
    true_lines: int  # shared lines with a cross-thread element write
    false_lines: int  # shared+written lines with disjoint elements
    invalidations: int
    true_invalidations: int
    false_invalidations: int


@dataclass(frozen=True)
class CoherenceProfile:
    """Predicted coherence behaviour of one multi-thread execution."""

    program_name: str
    params: tuple[tuple[str, int], ...]
    threads: int
    schedule: str
    steps: int
    line_elems: int
    line_bytes: int
    parallel_nests: tuple[int, ...]
    accesses: int
    #: per-thread compulsory line misses (first touches)
    cold: tuple[int, ...]
    #: per-thread invalidation misses
    invalidations: tuple[int, ...]
    #: writes that invalidated at least one other thread's copy
    upgrades: int
    arrays: tuple[ArraySharing, ...]
    witnesses: tuple[SharingWitness, ...]
    #: arrays the hull screen proved line-private (never shared)
    screened_out: tuple[str, ...]
    #: arrays the dependence screen proved element-private (any line
    #: overlap is false sharing by construction)
    false_only: tuple[str, ...] = ()

    @property
    def total_cold(self) -> int:
        return int(sum(self.cold))

    @property
    def total_invalidations(self) -> int:
        return int(sum(self.invalidations))

    @property
    def true_invalidations(self) -> int:
        return sum(a.true_invalidations for a in self.arrays)

    @property
    def false_invalidations(self) -> int:
        return sum(a.false_invalidations for a in self.arrays)

    def sharing_arrays(self) -> tuple[ArraySharing, ...]:
        return tuple(a for a in self.arrays if a.shared_lines)

    def render(self) -> str:
        size = ", ".join(f"{k}={v}" for k, v in self.params)
        lines = [
            f"coherence prediction: {self.program_name} at {size} — "
            f"{self.threads} threads, {self.schedule} schedule, "
            f"{self.line_bytes}B lines",
            f"  accesses: {self.accesses} "
            f"(cold lines: {self.total_cold}, "
            f"invalidation misses: {self.total_invalidations}, "
            f"upgrades: {self.upgrades})",
            f"  invalidations per thread: "
            f"{', '.join(str(v) for v in self.invalidations)}",
        ]
        shared = self.sharing_arrays()
        if shared:
            lines.append("  shared arrays:")
            for a in sorted(
                shared, key=lambda s: -s.invalidations
            ):
                lines.append(
                    f"    {a.array}: {a.shared_lines} shared lines "
                    f"({a.true_lines} true, {a.false_lines} false), "
                    f"{a.invalidations} invalidations "
                    f"({a.true_invalidations} true, "
                    f"{a.false_invalidations} false)"
                )
        else:
            lines.append("  no cross-thread line sharing")
        if self.screened_out:
            lines.append(
                f"  hull screen proved private: "
                f"{', '.join(self.screened_out)}"
            )
        for w in self.witnesses:
            lines.append(f"  witness: {w.render()}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "program": self.program_name,
            "params": dict(self.params),
            "threads": self.threads,
            "schedule": self.schedule,
            "steps": self.steps,
            "line_bytes": self.line_bytes,
            "accesses": self.accesses,
            "cold": list(self.cold),
            "invalidations": list(self.invalidations),
            "total_invalidations": self.total_invalidations,
            "true_invalidations": self.true_invalidations,
            "false_invalidations": self.false_invalidations,
            "upgrades": self.upgrades,
            "arrays": [
                {
                    "array": a.array,
                    "shared_lines": a.shared_lines,
                    "true_lines": a.true_lines,
                    "false_lines": a.false_lines,
                    "invalidations": a.invalidations,
                    "true_invalidations": a.true_invalidations,
                    "false_invalidations": a.false_invalidations,
                }
                for a in self.arrays
            ],
            "witnesses": [w.render() for w in self.witnesses],
            "screened_out": list(self.screened_out),
        }


# -- the static access enumerator ---------------------------------------------


class _NonFlat(Exception):
    """Internal: a loop body resists vectorization; take the slow path."""


class _Walker:
    """Enumerates (global key, is_write) columns from the affine model.

    Mirrors the tracer's conventions exactly: arrays laid back-to-back
    in declaration order, elements column-major (first subscript
    fastest, 1-based), reads in expression order then the write, body
    statements in order, iterations ascending.  Innermost loops whose
    bodies are guard/assign-only vectorize over numpy; everything else
    walks in Python.
    """

    def __init__(self, program: Program, env: Mapping[str, int]) -> None:
        self.program = program
        self.env = dict(env)
        self.strides: dict[str, tuple[int, ...]] = {}
        self.bases: dict[str, int] = {}
        acc = 0
        for decl in program.arrays:
            shape = decl.shape(self.env)
            strides = []
            size = 1
            for extent in shape:  # column-major: first subscript fastest
                strides.append(size)
                size *= extent
            self.strides[decl.name] = tuple(strides)
            self.bases[decl.name] = acc
            acc += size
        self._forms: dict[int, tuple] = {}

    # the linearized global-key affine of one AST reference
    def _linform(self, ref: ArrayRef):
        cached = self._forms.get(id(ref))
        if cached is not None:
            return cached
        strides = self.strides[ref.array]
        const = Fraction(self.bases[ref.array])
        terms: dict[str, Fraction] = {}
        for k, sub in enumerate(ref.indices):
            a = sub.affine()
            s = strides[k]
            const += a.const * s - s  # subscripts are 1-based
            for n, c in a.coeffs:
                terms[n] = terms.get(n, Fraction(0)) + c * s
        form = (const, tuple(terms.items()))
        self._forms[id(ref)] = form
        return form

    def _eval(self, form, env: Mapping[str, int]) -> int:
        const, terms = form
        total = const
        for n, c in terms:
            total += c * env[n]
        return int(total)  # truncate, like the interpreter

    def _assign_refs(self, stmt: Assign) -> list[tuple[object, bool]]:
        cached = self._forms.get(-id(stmt))
        if cached is None:
            refs: list[tuple[object, bool]] = [
                (self._linform(r), False) for r in array_reads(stmt.expr)
            ]
            if isinstance(stmt.target, ArrayRef):
                refs.append((self._linform(stmt.target), True))
            cached = tuple(refs)
            self._forms[-id(stmt)] = cached
        return list(cached)

    # -- public entry ---------------------------------------------------

    def nest(
        self,
        stmt: Stmt,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The (keys, writes) columns of one top-level statement, with
        the outermost loop optionally restricted to [lo, hi]."""
        keys: list[np.ndarray] = []
        writes: list[np.ndarray] = []
        pend_k: list[int] = []
        pend_w: list[bool] = []

        def flush() -> None:
            if pend_k:
                keys.append(np.asarray(pend_k, dtype=np.int64))
                writes.append(np.asarray(pend_w, dtype=bool))
                pend_k.clear()
                pend_w.clear()

        self._emit(
            stmt, dict(self.env), keys, writes, pend_k, pend_w, flush,
            bounds=(lo, hi) if lo is not None else None,
        )
        flush()
        if not keys:
            return np.empty(0, np.int64), np.empty(0, bool)
        return np.concatenate(keys), np.concatenate(writes)

    # -- walk -----------------------------------------------------------

    def _emit(
        self, stmt, env, keys, writes, pend_k, pend_w, flush, bounds=None
    ) -> None:
        if isinstance(stmt, Assign):
            for form, wr in self._assign_refs(stmt):
                pend_k.append(self._eval(form, env))
                pend_w.append(wr)
            return
        if isinstance(stmt, Guard):
            body = (
                stmt.body if self._member(stmt, env) else stmt.else_body
            )
            for s in body:
                self._emit(s, env, keys, writes, pend_k, pend_w, flush)
            return
        if isinstance(stmt, Loop):
            if bounds is not None:
                lo, hi = bounds
            else:
                lo = int(stmt.lower.affine().evaluate(env))
                hi = int(stmt.upper.affine().evaluate(env))
            if hi < lo:
                return
            try:
                cols = self._flat_columns(stmt, lo, hi, env)
            except _NonFlat:
                cols = None
            if cols is not None:
                flush()
                k, w = cols
                if len(k):
                    keys.append(k)
                    writes.append(w)
                return
            for v in range(lo, hi + 1):
                env[stmt.index] = v
                for s in stmt.body:
                    self._emit(
                        s, env, keys, writes, pend_k, pend_w, flush
                    )
            env.pop(stmt.index, None)
            return
        if isinstance(stmt, CallStmt):
            raise AnalysisError(
                "coherence analysis requires inlined programs; "
                f"found call to {stmt.proc!r}"
            )
        raise AnalysisError(
            f"cannot enumerate statement {type(stmt).__name__}"
        )

    def _member(self, guard: Guard, env: Mapping[str, int]) -> bool:
        v = env[guard.index]
        for iv in guard.intervals:
            lo = iv.lower.evaluate(env)
            hi = iv.upper.evaluate(env)
            if lo <= v <= hi:
                return True
        return False

    def _flat_columns(self, loop: Loop, lo: int, hi: int, env):
        """Vectorized emission of a loop with no nested loops.

        Builds one (iterations × refs) key matrix plus an active mask
        from guard membership, flattened iteration-major — exactly the
        per-iteration statement order of the Python walk.
        """
        ivec = np.arange(lo, hi + 1, dtype=np.int64)
        cols: list[tuple[np.ndarray, bool, Optional[np.ndarray]]] = []
        self._flat_collect(loop.body, loop.index, ivec, env, None, cols)
        if not cols:
            return np.empty(0, np.int64), np.empty(0, bool)
        n = len(ivec)
        r = len(cols)
        mat = np.empty((n, r), dtype=np.int64)
        wr = np.empty(r, dtype=bool)
        mask = np.ones((n, r), dtype=bool)
        for j, (col, is_w, cond) in enumerate(cols):
            mat[:, j] = col
            wr[j] = is_w
            if cond is not None:
                mask[:, j] = cond
        flat_mask = mask.reshape(-1)
        flat_keys = mat.reshape(-1)
        flat_writes = np.tile(wr, n)
        if flat_mask.all():
            return flat_keys, flat_writes
        return flat_keys[flat_mask], flat_writes[flat_mask]

    def _flat_collect(self, body, var, ivec, env, cond, cols) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                for form, is_w in self._assign_refs(stmt):
                    cols.append(
                        (self._flat_eval(form, var, ivec, env), is_w, cond)
                    )
            elif isinstance(stmt, Guard):
                member = self._flat_member(stmt, var, ivec, env)
                take = member if cond is None else (cond & member)
                self._flat_collect(
                    stmt.body, var, ivec, env, take, cols
                )
                if stmt.else_body:
                    skip = (
                        ~member if cond is None else (cond & ~member)
                    )
                    self._flat_collect(
                        stmt.else_body, var, ivec, env, skip, cols
                    )
            elif isinstance(stmt, Loop):
                raise _NonFlat()
            else:
                raise _NonFlat()

    def _flat_eval(self, form, var, ivec, env) -> np.ndarray:
        const, terms = form
        base = const
        coeff = Fraction(0)
        for n, c in terms:
            if n == var:
                coeff = c
            else:
                base += c * env[n]
        if base.denominator != 1 or coeff.denominator != 1:
            raise _NonFlat()  # fractional: fall back to exact Fractions
        return int(base) + int(coeff) * ivec

    def _flat_member(self, guard: Guard, var, ivec, env) -> np.ndarray:
        if guard.index != var:
            scalar = self._member(guard, env)
            return np.full(len(ivec), scalar, dtype=bool)
        member = np.zeros(len(ivec), dtype=bool)
        for iv in guard.intervals:
            lo_a, hi_a = iv.lower, iv.upper
            if any(n == var for n, _ in lo_a.coeffs) or any(
                n == var for n, _ in hi_a.coeffs
            ):
                raise _NonFlat()
            lo = lo_a.evaluate(env)
            hi = hi_a.evaluate(env)
            member |= (ivec >= lo) & (ivec <= hi)
        return member


# -- stream assembly ----------------------------------------------------------


def _program_columns(
    program: Program,
    env: Mapping[str, int],
    threads: int,
    schedule: str,
    steps: int,
    parallel: frozenset[int],
    max_accesses: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The merged (keys, writes, thread_ids) columns of the modeled
    multi-thread execution — same partitioning, same drain order as
    the dynamic replay."""
    walker = _Walker(program, env)
    out_k: list[np.ndarray] = []
    out_w: list[np.ndarray] = []
    out_t: list[np.ndarray] = []
    total = 0
    invocation = 0
    for _ in range(steps):
        for idx, stmt in enumerate(program.body):
            if (
                threads > 1
                and idx in parallel
                and isinstance(stmt, Loop)
            ):
                lo = int(stmt.lower.affine().evaluate(env))
                hi = int(stmt.upper.affine().evaluate(env))
                per_thread = schedule_chunks(
                    lo, hi, threads, schedule, invocation
                )
                invocation += 1
                cols = []
                for chunks in per_thread:
                    parts = [
                        walker.nest(stmt, a, b) for a, b in chunks
                    ]
                    if parts:
                        cols.append(
                            (
                                np.concatenate([p[0] for p in parts]),
                                np.concatenate([p[1] for p in parts]),
                            )
                        )
                    else:
                        cols.append(
                            (np.empty(0, np.int64), np.empty(0, bool))
                        )
                live = [
                    (t, c) for t, c in enumerate(cols) if len(c[0])
                ]
                nk = sum(len(c[0]) for _, c in live)
                mk = np.empty(nk, dtype=np.int64)
                mw = np.empty(nk, dtype=bool)
                mt = np.empty(nk, dtype=np.int32)
                filled = 0
                for i, p, q in round_robin_order(
                    [len(c[0]) for _, c in live]
                ):
                    t, (ck, cw) = live[i]
                    mk[filled : filled + (q - p)] = ck[p:q]
                    mw[filled : filled + (q - p)] = cw[p:q]
                    mt[filled : filled + (q - p)] = t
                    filled += q - p
                out_k.append(mk)
                out_w.append(mw)
                out_t.append(mt)
                total += nk
            else:
                k, w = walker.nest(stmt)
                if len(k):
                    out_k.append(k)
                    out_w.append(w)
                    out_t.append(np.zeros(len(k), dtype=np.int32))
                    total += len(k)
            if total > max_accesses:
                raise AnalysisError(
                    f"coherence enumeration exceeds {max_accesses} "
                    f"accesses at this size; raise max_accesses or "
                    f"analyze a smaller instance"
                )
    if not out_k:
        empty = np.empty(0, np.int64)
        return empty, np.empty(0, bool), np.empty(0, np.int32)
    return (
        np.concatenate(out_k),
        np.concatenate(out_w),
        np.concatenate(out_t),
    )


# -- screens ------------------------------------------------------------------


def _ref_key_range(
    ref: StaticRef,
    env: Mapping[str, int],
    strides: Mapping[str, tuple[int, ...]],
    bases: Mapping[str, int],
    outer_span: Optional[tuple[int, int]],
) -> Optional[tuple[int, int]]:
    """Concrete [lo, hi] interval of the ref's global keys with the
    outer loop restricted to ``outer_span`` (the linearized hull)."""
    box = _ref_box(ref, env, outer_span)
    if box is None:
        return None
    ss = strides[ref.array]
    if len(box) != len(ss):
        return None
    lo = hi = bases[ref.array]
    for (blo, bhi), s in zip(box, ss):
        lo += (blo - 1) * s if s >= 0 else (bhi - 1) * s
        hi += (bhi - 1) * s if s >= 0 else (blo - 1) * s
    return int(lo), int(hi)


def _thread_ranges(
    refs: Sequence[StaticRef],
    parallel: frozenset[int],
    env: Mapping[str, int],
    threads: int,
    schedule: str,
    strides: Mapping[str, tuple[int, ...]],
    bases: Mapping[str, int],
) -> Optional[list[tuple[int, tuple[int, int], bool]]]:
    """(thread, key range, is_write) spans of every ref of one array;
    None when any ref falls outside the interval engine's subset."""
    out: list[tuple[int, tuple[int, int], bool]] = []
    for ref in refs:
        if ref.nest in parallel and ref.scope:
            try:
                ranges = _scope_ranges(ref, env)
            except _Unsupported:
                return None
            lo, hi = ranges[ref.scope[0].index]
            if hi < lo:
                continue
            chunks = schedule_chunks(lo, hi, threads, schedule)
            for t in range(threads):
                if not chunks[t]:
                    continue
                span_t = (chunks[t][0][0], chunks[t][-1][1])
                rng = _ref_key_range(ref, env, strides, bases, span_t)
                if rng is None:
                    return None
                out.append((t, rng, ref.is_write))
        else:
            rng = _ref_key_range(ref, env, strides, bases, None)
            if rng is None:
                return None
            out.append((0, rng, ref.is_write))
    return out


def _screen_arrays(
    model,
    parallel: frozenset[int],
    env: Mapping[str, int],
    threads: int,
    schedule: str,
    line_elems: int,
    strides: Mapping[str, tuple[int, ...]],
    bases: Mapping[str, int],
) -> tuple[set[str], set[str]]:
    """(provably line-private arrays, provably element-private arrays).

    Line-private: no two different threads' footprint hulls overlap
    even after widening by a line — the array can produce no sharing at
    all.  Element-private: the unwidened hulls never overlap across
    threads, so any line sharing is false sharing by construction (the
    dependence screen refines this with an exact equality test).
    """
    by_array: dict[str, list[StaticRef]] = {}
    for ref in model.refs:
        by_array.setdefault(ref.array, []).append(ref)
    line_private: set[str] = set()
    elem_private: set[str] = set()
    for array, refs in by_array.items():
        spans = _thread_ranges(
            refs, parallel, env, threads, schedule, strides, bases
        )
        if spans is None:
            continue  # not provable: keep the array in the classifier
        line_shared = False
        for i, (t1, (a1, b1), _w1) in enumerate(spans):
            for t2, (a2, b2), _w2 in spans[i + 1 :]:
                if t1 == t2:
                    continue
                # two hulls share a line iff their line-id ranges meet
                if max(a1, a2) // line_elems <= min(b1, b2) // line_elems:
                    line_shared = True
                    break
            if line_shared:
                break
        if not line_shared:
            line_private.add(array)
        elif not _may_share_element(
            refs, parallel, env, threads, schedule
        ):
            elem_private.add(array)
    return line_private, elem_private


def _may_share_element(
    refs: Sequence[StaticRef],
    parallel: frozenset[int],
    env: Mapping[str, int],
    threads: int,
    schedule: str,
) -> bool:
    """May two *different* threads reach the same element of the array,
    at least one writing it?  Cross-thread equality feasibility per
    subscript dimension via the dependence tester's interval+gcd check
    (:func:`repro.static.dependence_test.attainable`), with each ref's
    outer loop restricted to its thread's iteration span.  ``True``
    means "maybe" — ``False`` is a proof, which makes every line
    overlap of the array false sharing by construction."""
    from .dependence_test import attainable
    from .schedule import thread_span

    def spans_of(ref: StaticRef) -> Optional[list[tuple[int, tuple[int, int]]]]:
        """(thread, outer-var span) placements of one ref."""
        if ref.nest in parallel and ref.scope:
            try:
                ranges = _scope_ranges(ref, env)
            except _Unsupported:
                return None
            lo, hi = ranges[ref.scope[0].index]
            out = []
            for t in range(threads):
                a, b = thread_span(lo, hi, threads, t, schedule)
                if a <= b:
                    out.append((t, (a, b)))
            return out
        return [(0, (0, -1))]  # serial: thread 0, no outer restriction

    def dim_terms(ref, rng, sign):
        terms = []
        for sub in ref.subs:
            row = []
            for n, coeff in sub.coeffs:
                if coeff.denominator != 1:
                    raise _Unsupported(str(coeff))
                lo, hi = rng.get(n, (env.get(n, 0), env.get(n, 0)))
                row.append((sign * int(coeff), lo, hi))
            terms.append((sign * sub.const, row))
        return terms

    for i, r1 in enumerate(refs):
        for r2 in refs[i:]:
            if not (r1.is_write or r2.is_write):
                continue
            p1 = spans_of(r1)
            p2 = spans_of(r2)
            if p1 is None or p2 is None:
                return True  # cannot prove: assume sharing possible
            if len(r1.subs) != len(r2.subs):
                return True
            for t1, s1 in p1:
                for t2, s2 in p2:
                    if t1 == t2:
                        continue
                    try:
                        rng1 = _scope_ranges(
                            r1, env, s1 if s1[0] <= s1[1] else None
                        )
                        rng2 = _scope_ranges(
                            r2, env, s2 if s2[0] <= s2[1] else None
                        )
                        terms1 = dim_terms(r1, rng1, 1)
                        terms2 = dim_terms(r2, rng2, -1)
                    except _Unsupported:
                        return True
                    feasible = True
                    for (c1, row1), (c2, row2) in zip(terms1, terms2):
                        c = c1 + c2
                        if c.denominator != 1:
                            feasible = False
                            break
                        if not attainable(0, int(c), row1 + row2):
                            feasible = False
                            break
                    if feasible:
                        return True
    return False


# -- the line-level replay ----------------------------------------------------


def _replay(
    keys: np.ndarray,
    writes: np.ndarray,
    tids: np.ndarray,
    threads: int,
    line_elems: int,
    classify: np.ndarray,
) -> tuple:
    """The MSI owner-tracking automaton plus sharing classification.

    Same transition rules as :func:`repro.memsim.coherence.simulate_msi`
    (valid set / ever set per line); additionally, accesses with
    ``classify`` set participate in true/false sharing attribution:
    an invalidation is *true* when another thread wrote the very
    element before, *false* when only other elements of the line were
    written.
    """
    n = len(keys)
    cold = [0] * threads
    inval = [0] * threads
    upgrades = 0
    line_valid: dict[int, int] = {}
    line_ever: dict[int, int] = {}
    elem_writers: dict[int, int] = {}
    line_threads: dict[int, int] = {}
    line_writes: dict[int, bool] = {}
    elem_threads: dict[int, int] = {}
    line_last: dict[int, dict[int, int]] = {}
    line_stats: dict[int, list[int]] = {}  # line -> [inv, true, false]
    raw_witnesses: list[tuple] = []
    lines_arr = keys // line_elems
    keys_l = keys.tolist()
    lines_l = lines_arr.tolist()
    writes_l = writes.tolist()
    tids_l = tids.tolist()
    cls_l = classify.tolist()
    for i in range(n):
        line = lines_l[i]
        elem = keys_l[i]
        t = tids_l[i]
        bit = 1 << t
        v = line_valid.get(line, 0)
        is_inval = False
        if not v & bit:
            if line_ever.get(line, 0) & bit:
                inval[t] += 1
                is_inval = True
            else:
                cold[t] += 1
        if writes_l[i]:
            if v & ~bit:
                upgrades += 1
            line_valid[line] = bit
        else:
            line_valid[line] = v | bit
        line_ever[line] = line_ever.get(line, 0) | bit
        if not cls_l[i]:
            continue
        # sharing bookkeeping (classified arrays only)
        line_threads[line] = line_threads.get(line, 0) | bit
        et = elem_threads.get(elem, 0) | bit
        elem_threads[elem] = et
        if writes_l[i]:
            line_writes[line] = True
            elem_writers[elem] = elem_writers.get(elem, 0) | bit
        if is_inval:
            stats = line_stats.setdefault(line, [0, 0, 0])
            stats[0] += 1
            if elem_writers.get(elem, 0) & ~bit:
                stats[1] += 1
                kind = "true"
                other_bits = elem_writers[elem] & ~bit
                other = (other_bits & -other_bits).bit_length() - 1
                other_elem = elem
            else:
                stats[2] += 1
                kind = "false"
                last = line_last.get(line, {})
                other = next(
                    (u for u in last if u != t), None
                )
                other_elem = last.get(other) if other is not None else None
            if (
                len(raw_witnesses) < MAX_WITNESSES
                and other is not None
                and other_elem is not None
                and not any(w[0] == line for w in raw_witnesses)
            ):
                raw_witnesses.append(
                    (line, kind, other, t, other_elem, elem)
                )
        line_last.setdefault(line, {})[t] = elem
    return (
        cold,
        inval,
        upgrades,
        line_threads,
        line_writes,
        elem_threads,
        elem_writers,
        line_stats,
        raw_witnesses,
    )


# -- witness recovery ---------------------------------------------------------


def _find_iteration(
    walker: _Walker,
    program: Program,
    parallel: frozenset[int],
    env: Mapping[str, int],
    threads: int,
    schedule: str,
    thread: int,
    target_key: int,
) -> tuple[tuple[str, int], ...]:
    """Loop-variable bindings of the first access of ``thread`` that
    touches ``target_key``, by a bounded Python re-walk."""
    budget = [_WITNESS_WALK_CAP]
    found: list[tuple[tuple[str, int], ...]] = []

    def walk(stmt, e) -> bool:
        if budget[0] <= 0:
            return False
        if isinstance(stmt, Assign):
            budget[0] -= 1
            for form, _ in walker._assign_refs(stmt):
                if walker._eval(form, e) == target_key:
                    loops = [
                        (k, v)
                        for k, v in e.items()
                        if k not in walker.env
                    ]
                    found.append(tuple(loops))
                    return True
            return False
        if isinstance(stmt, Guard):
            body = (
                stmt.body if walker._member(stmt, e) else stmt.else_body
            )
            return any(walk(s, e) for s in body)
        if isinstance(stmt, Loop):
            lo = int(stmt.lower.affine().evaluate(e))
            hi = int(stmt.upper.affine().evaluate(e))
            for v in range(lo, hi + 1):
                e[stmt.index] = v
                if any(walk(s, e) for s in stmt.body):
                    return True
                if budget[0] <= 0:
                    break
            e.pop(stmt.index, None)
            return False
        return False

    for idx, stmt in enumerate(program.body):
        if (
            threads > 1
            and idx in parallel
            and isinstance(stmt, Loop)
        ):
            e = dict(env)
            lo = int(stmt.lower.affine().evaluate(e))
            hi = int(stmt.upper.affine().evaluate(e))
            for a, b in schedule_chunks(lo, hi, threads, schedule)[thread]:
                for v in range(a, b + 1):
                    e[stmt.index] = v
                    if any(walk(s, e) for s in stmt.body):
                        return found[0]
        elif thread == 0:
            if walk(stmt, dict(env)):
                return found[0]
    return ()


# -- entry point --------------------------------------------------------------


def analyze_coherence(
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    threads: int = 4,
    schedule: str = "static",
    steps: int = 1,
    line_bytes: Optional[int] = None,
    parallelism: Optional[ParallelismProfile] = None,
    max_accesses: int = DEFAULT_MAX_ACCESSES,
    witnesses: bool = True,
) -> CoherenceProfile:
    """Predict the coherence behaviour of a ``threads``-way execution.

    Purely static: accesses are enumerated from the affine model,
    partitioned by the shared schedule machinery, ordered by the
    round-robin drain contract, and replayed through the MSI
    owner-tracking automaton at ``line_bytes`` granularity.
    """
    from ..memsim.geometry import ELEM_BYTES, L1_LINE_BYTES

    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    parse_schedule(schedule)
    lb = line_bytes if line_bytes is not None else L1_LINE_BYTES
    line_elems = max(1, lb // ELEM_BYTES)
    env = bind_params(program, params)
    with span(
        "coherence-analyze",
        program=program.name,
        threads=threads,
        schedule=schedule,
    ):
        if parallelism is None:
            parallelism = analyze_parallelism(program, params)
        parallel = frozenset(parallelism.parallel_nests())
        model = build_model(program)
        walker = _Walker(program, env)
        line_private, elem_private = _screen_arrays(
            model, parallel, env, threads, schedule,
            line_elems, walker.strides, walker.bases,
        )
        keys, writes_col, tids = _program_columns(
            program, env, threads, schedule, steps, parallel,
            max_accesses,
        )
        # classification is skipped for arrays the hull screen proved
        # line-private — they cannot contribute sharing
        classify = np.ones(len(keys), dtype=bool)
        if line_private:
            # global keys of a private array form one contiguous range
            for name in line_private:
                base = walker.bases[name]
                decl_size = 1
                for extent in _array_shape(program, name, env):
                    decl_size *= extent
                in_range = (keys >= base) & (keys < base + decl_size)
                classify &= ~in_range
        (
            cold,
            inval,
            upgrades,
            line_threads,
            line_writes,
            elem_threads,
            elem_writers,
            line_stats,
            raw_witnesses,
        ) = _replay(keys, writes_col, tids, threads, line_elems, classify)

        arrays = _array_summaries(
            program, env, walker, line_elems,
            line_threads, line_writes, elem_threads, elem_writers,
            line_stats,
        )
        witness_objs: list[SharingWitness] = []
        if witnesses:
            for line, kind, ta, tb, ea, eb in raw_witnesses:
                array = _array_of_key(walker, program, env, ea)
                iter_a = _find_iteration(
                    walker, program, parallel, env, threads, schedule,
                    ta, ea,
                )
                iter_b = _find_iteration(
                    walker, program, parallel, env, threads, schedule,
                    tb, eb,
                )
                witness_objs.append(
                    SharingWitness(
                        array=array,
                        line=int(line),
                        kind=kind,
                        thread_a=int(ta),
                        thread_b=int(tb),
                        elem_a=int(ea),
                        elem_b=int(eb),
                        offset_a=int(ea % line_elems),
                        offset_b=int(eb % line_elems),
                        iter_a=iter_a,
                        iter_b=iter_b,
                    )
                )
        metrics.inc("analysis.coherence.profiles")
        return CoherenceProfile(
            program_name=program.name,
            params=tuple(sorted(env.items())),
            threads=threads,
            schedule=schedule,
            steps=steps,
            line_elems=line_elems,
            line_bytes=lb,
            parallel_nests=tuple(sorted(parallel)),
            accesses=len(keys),
            cold=tuple(int(c) for c in cold),
            invalidations=tuple(int(v) for v in inval),
            upgrades=int(upgrades),
            arrays=arrays,
            witnesses=tuple(witness_objs),
            screened_out=tuple(sorted(line_private)),
            false_only=tuple(sorted(elem_private)),
        )


def _array_shape(
    program: Program, name: str, env: Mapping[str, int]
) -> tuple[int, ...]:
    for decl in program.arrays:
        if decl.name == name:
            return tuple(decl.shape(env))
    return ()


def _array_of_key(
    walker: _Walker, program: Program, env: Mapping[str, int], key: int
) -> str:
    best = ""
    for decl in program.arrays:
        base = walker.bases[decl.name]
        if base <= key:
            size = 1
            for extent in decl.shape(env):
                size *= extent
            if key < base + size:
                return decl.name
            best = decl.name
    return best


def _array_summaries(
    program: Program,
    env: Mapping[str, int],
    walker: _Walker,
    line_elems: int,
    line_threads: dict,
    line_writes: dict,
    elem_threads: dict,
    elem_writers: dict,
    line_stats: dict,
) -> tuple[ArraySharing, ...]:
    # bucket lines / elements back onto arrays via the base table
    bounds = []
    for decl in program.arrays:
        base = walker.bases[decl.name]
        size = 1
        for extent in decl.shape(env):
            size *= extent
        bounds.append((decl.name, base, base + size))

    def array_of(key: int) -> str:
        for name, lo, hi in bounds:
            if lo <= key < hi:
                return name
        return bounds[-1][0] if bounds else ""

    # which lines have a cross-thread element write (true sharing)
    true_lines: set[int] = set()
    for elem, writers in elem_writers.items():
        others = elem_threads.get(elem, 0) & ~writers
        multi_writer = writers & (writers - 1)
        if multi_writer or (writers and others):
            true_lines.add(elem // line_elems)
    per_array: dict[str, list[int]] = {}
    for line, tmask in line_threads.items():
        if tmask & (tmask - 1) == 0:
            continue  # single thread: not shared
        name = array_of(line * line_elems)
        stats = line_stats.get(line, [0, 0, 0])
        row = per_array.setdefault(name, [0, 0, 0, 0, 0, 0])
        row[0] += 1
        if line in true_lines:
            row[1] += 1
        elif line_writes.get(line):
            row[2] += 1
        row[3] += stats[0]
        row[4] += stats[1]
        row[5] += stats[2]
    return tuple(
        ArraySharing(
            array=name,
            shared_lines=row[0],
            true_lines=row[1],
            false_lines=row[2],
            invalidations=row[3],
            true_invalidations=row[4],
            false_invalidations=row[5],
        )
        for name, row in sorted(per_array.items())
    )
