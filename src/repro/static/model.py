"""Static reference model: the IR flattened to symbolic references.

The model mirrors :class:`repro.interp.tracegen._Compiler` exactly —
same pre-order walk, same read-then-write ordering per assignment, same
guard body/else ordering — so the static reference ids coincide with the
``ref_ids`` of a dynamically generated :class:`~repro.interp.trace.
AccessTrace` for the same program.  That correspondence is what lets the
cross-validation suite compare static and dynamic reuse classes
reference by reference.

Unlike the trace generator, nothing here is evaluated: loop bounds stay
affine, subscripts stay affine, guard intervals either *narrow* the
enclosing index range (single interval — the common fusion-boundary
shape) or fall back to a conservative hull over the interval union, the
same convention as :mod:`repro.analysis.access` and the IR linter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..lang import (
    Affine,
    AnalysisError,
    ArrayDecl,
    ArrayRef,
    Assign,
    CallStmt,
    Guard,
    Loop,
    Program,
    Stmt,
    array_reads,
)
from .poly import ONE, Poly


@dataclass(frozen=True)
class LoopCtx:
    """One enclosing loop level as seen by a reference.

    ``lo``/``hi`` are the (possibly guard-narrowed) inclusive bounds;
    ``trip`` is the exact iteration count as a polynomial (for a
    multi-interval guard the hull ``[lo, hi]`` is wider than the true
    iteration set, but ``trip`` still sums the interval widths exactly);
    ``exact`` is False when the narrowing lost information.

    ``loop_id`` identifies the originating :class:`~repro.lang.Loop`
    statement: two references share an iteration space at some level only
    if their contexts carry the same id there.  After fusion several
    sibling loops reuse the same *index name*, so name equality must not
    be mistaken for shared ancestry — the attributor's shared-prefix
    computations all compare ids, never names.
    """

    index: str
    lo: Affine
    hi: Affine
    trip: Poly
    exact: bool = True
    loop_id: int = -1


@dataclass(frozen=True)
class StaticRef:
    """One static array reference with its full symbolic context."""

    ref_id: int
    nest: int  # position of the enclosing top-level statement
    pos: int  # pre-order reference ordinal within the nest
    stmt_id: int
    array: str
    is_write: bool
    subs: tuple[Affine, ...]
    scope: tuple[LoopCtx, ...]
    text: str

    def exec_count(self) -> Poly:
        """Accesses this reference performs per body repetition."""
        count = ONE
        for ctx in self.scope:
            count = count * ctx.trip
        return count

    def scope_indices(self) -> tuple[str, ...]:
        return tuple(c.index for c in self.scope)


@dataclass(frozen=True)
class StaticModel:
    """Every reference of a program, grouped by top-level nest."""

    program: Program
    params: tuple[str, ...]
    arrays: dict[str, ArrayDecl]
    refs: tuple[StaticRef, ...]
    nests: tuple[tuple[StaticRef, ...], ...]

    def total_accesses(self) -> Poly:
        """Accesses per body repetition (multiply by steps for a run)."""
        total = Poly()
        for ref in self.refs:
            total = total + ref.exec_count()
        return total


class _Extractor:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.refs: list[StaticRef] = []
        self.stmt_count = 0
        self.loop_count = 0
        self.nest = 0
        self.pos = 0
        self.scope: list[LoopCtx] = []

    def run(self) -> StaticModel:
        per_nest: list[list[StaticRef]] = []
        for k, stmt in enumerate(self.program.body):
            self.nest = k
            self.pos = 0
            start = len(self.refs)
            self.visit(stmt)
            per_nest.append(self.refs[start:])
        return StaticModel(
            program=self.program,
            params=tuple(self.program.params),
            arrays={a.name: a for a in self.program.arrays},
            refs=tuple(self.refs),
            nests=tuple(tuple(ns) for ns in per_nest),
        )

    def add_ref(self, ref: ArrayRef, stmt_id: int, is_write: bool) -> None:
        self.refs.append(
            StaticRef(
                ref_id=len(self.refs),
                nest=self.nest,
                pos=self.pos,
                stmt_id=stmt_id,
                array=ref.array,
                is_write=is_write,
                subs=ref.index_affines(),
                scope=tuple(self.scope),
                text=str(ref),
            )
        )
        self.pos += 1

    def visit(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            stmt_id = self.stmt_count
            self.stmt_count += 1
            for r in array_reads(stmt.expr):
                self.add_ref(r, stmt_id, False)
            if isinstance(stmt.target, ArrayRef):
                self.add_ref(stmt.target, stmt_id, True)
        elif isinstance(stmt, Guard):
            self.visit_guard(stmt)
        elif isinstance(stmt, Loop):
            lo, hi = stmt.bounds_affine()
            trip = Poly.from_affine(hi - lo + 1)
            self.scope.append(
                LoopCtx(stmt.index, lo, hi, trip, loop_id=self.loop_count)
            )
            self.loop_count += 1
            for s in stmt.body:
                self.visit(s)
            self.scope.pop()
        elif isinstance(stmt, CallStmt):
            raise AnalysisError(
                "static reuse analysis requires inlined programs; "
                f"found call to {stmt.proc!r}"
            )
        else:
            raise AnalysisError(f"cannot analyze statement {type(stmt).__name__}")

    def visit_guard(self, guard: Guard) -> None:
        level = next(
            (k for k, c in enumerate(self.scope) if c.index == guard.index), None
        )
        outer = self.scope[level] if level is not None else None
        # body: narrow the guarded index to the interval union
        narrowed = _narrow(outer, guard, else_branch=False)
        self._with_ctx(level, narrowed, guard.body)
        # else: hull stays the full range, trip is the complement
        if guard.else_body:
            widened = _narrow(outer, guard, else_branch=True)
            self._with_ctx(level, widened, guard.else_body)

    def _with_ctx(
        self,
        level: Optional[int],
        ctx: Optional[LoopCtx],
        body: Sequence[Stmt],
    ) -> None:
        if level is None or ctx is None:
            for s in body:
                self.visit(s)
            return
        saved = self.scope[level]
        self.scope[level] = ctx
        for s in body:
            self.visit(s)
        self.scope[level] = saved


def _narrow(
    outer: Optional[LoopCtx], guard: Guard, else_branch: bool
) -> Optional[LoopCtx]:
    """The guarded index's range inside the guard body (or else body)."""
    if outer is None:
        return None
    member_trip = Poly()
    lo: Optional[Affine] = None
    hi: Optional[Affine] = None
    for iv in guard.intervals:
        member_trip = member_trip + Poly.from_affine(iv.upper - iv.lower + 1)
        lo = iv.lower if lo is None else _pick(lo, iv.lower, smaller=True)
        hi = iv.upper if hi is None else _pick(hi, iv.upper, smaller=False)
    if else_branch:
        trip = outer.trip - member_trip
        return LoopCtx(
            outer.index, outer.lo, outer.hi, trip,
            exact=False, loop_id=outer.loop_id,
        )
    exact = len(guard.intervals) == 1 and outer.exact
    assert lo is not None and hi is not None
    return LoopCtx(
        outer.index, lo, hi, member_trip, exact=exact, loop_id=outer.loop_id
    )


def _pick(a: Affine, b: Affine, smaller: bool) -> Affine:
    """min/max of two affine forms; indeterminate keeps the first."""
    cmp = a.compare(b)
    if cmp is None:
        return a
    if smaller:
        return a if cmp <= 0 else b
    return a if cmp >= 0 else b


def build_model(program: Program) -> StaticModel:
    """Extract the static reference model of ``program``.

    Reference ids match :func:`repro.interp.tracegen.trace_program`'s
    ``ref_ids`` for the same program, position by position.
    """
    return _Extractor(program).run()
