"""The interval + gcd lane-distance dependence test (shared core).

One question underlies both the codegen executor's vectorization
legality and the static parallelism analyzer: *can two references touch
the same array element from different iterations of a chosen loop
axis?*  Folding concrete parameters into the affine subscripts reduces
it to integer feasibility of

    base + sum(c_k * t_k) = target,    t_k in [lo_k, hi_k]

where the ``t_k`` range over the surrounding loop variables (outer
variables contribute one shared term, inner variables two independent
copies) and ``target`` encodes the lane distance along the axis.

Two precision tiers live here:

:func:`attainable`
    the *necessary* interval + gcd screen — cheap, conservative
    (``True`` means "maybe"), and exactly the test the codegen executor
    has always vectorized against;
:func:`solve_sum`
    an *exact* bounded-backtracking solver over the same equations.  It
    walks candidate values for one term at a time, stepping only through
    the arithmetic progression a linear-congruence solve admits, and
    prunes with the suffix interval + gcd screen.  It either returns a
    concrete solution (the raw material of a race *witness*), proves
    infeasibility, or runs out of budget — the three-way answer the
    parallelism analyzer needs to keep its verdicts honest.

:func:`lane_conflict` packages the executor's historical decision
procedure over these primitives; ``codegen.executor`` calls it verbatim
(the 42-variant vectorization decisions are pinned bit-identical by
``tests/codegen/test_exec_plan_golden.py``).

This module is deliberately pure (stdlib only) so both ``repro.static``
and ``repro.codegen`` can import it without layering cycles.
"""

from __future__ import annotations

from math import gcd
from typing import Mapping, Optional, Sequence

#: cap on lane-distance enumeration in the conservative test; beyond
#: this the test reports a conflict (moved verbatim from the executor)
MAX_DISTANCE_ENUM = 8192

#: default node budget for the exact solver's backtracking search
MAX_SOLVE_NODES = 4096

#: one linear term: (coefficient, inclusive lower bound, inclusive upper)
Term = tuple[int, int, int]


def attainable(target: int, base: int, terms: Sequence[Term]) -> bool:
    """May ``base + sum(c_k * t_k)`` equal ``target``? (necessary tests)

    Interval screen plus gcd divisibility — conservative: ``True`` means
    "maybe", ``False`` is a proof of infeasibility.
    """
    lo = hi = base
    g = 0
    for coeff, vlo, vhi in terms:
        lo += min(coeff * vlo, coeff * vhi)
        hi += max(coeff * vlo, coeff * vhi)
        g = gcd(g, abs(coeff))
    if not lo <= target <= hi:
        return False
    if g == 0:
        return target == base
    return (target - base) % g == 0


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def solve_sum(
    target: int,
    base: int,
    terms: Sequence[Term],
    budget: int = MAX_SOLVE_NODES,
) -> tuple[Optional[tuple[int, ...]], bool]:
    """Exactly solve ``base + sum(c_k * t_k) == target`` over the boxes.

    Returns ``(values, proved)``: ``values`` is one solution (aligned
    with ``terms``) or ``None``; ``proved`` is ``True`` when a ``None``
    is a proof of infeasibility rather than an exhausted search budget.

    The search fixes terms left to right.  For each term it intersects
    the box with the interval the remaining terms can still absorb, then
    steps only through the residues a linear congruence against the
    suffix gcd allows — so a feasible system is typically solved with no
    backtracking at all, and the budget only matters on adversarial
    gcd interactions.
    """
    n = len(terms)
    suf_lo = [0] * (n + 1)
    suf_hi = [0] * (n + 1)
    suf_g = [0] * (n + 1)
    for k in range(n - 1, -1, -1):
        c, lo, hi = terms[k]
        a, b = c * lo, c * hi
        suf_lo[k] = suf_lo[k + 1] + min(a, b)
        suf_hi[k] = suf_hi[k + 1] + max(a, b)
        suf_g[k] = gcd(suf_g[k + 1], abs(c))
    for _, lo, hi in terms:
        if lo > hi:
            return None, True  # an empty box: nothing to solve over
    values = [0] * n
    state = {"nodes": 0, "proved": True}

    def rec(k: int, rem: int) -> bool:
        state["nodes"] += 1
        if state["nodes"] > budget:
            state["proved"] = False
            return False
        if not suf_lo[k] <= rem <= suf_hi[k]:
            return False
        g_all = suf_g[k]
        if g_all == 0:
            # every remaining coefficient is zero (or k == n)
            if rem != 0:
                return False
            for j in range(k, n):
                values[j] = terms[j][1]
            return True
        if rem % g_all:
            return False
        c, lo, hi = terms[k]
        if c == 0:
            values[k] = lo
            return rec(k + 1, rem)
        g2 = suf_g[k + 1]
        lo_res = rem - suf_hi[k + 1]  # c*t must land in [lo_res, hi_res]
        hi_res = rem - suf_lo[k + 1]
        if c > 0:
            t_min = max(lo, _ceil_div(lo_res, c))
            t_max = min(hi, hi_res // c)
        else:
            t_min = max(lo, _ceil_div(hi_res, c))
            t_max = min(hi, lo_res // c)
        if t_min > t_max:
            return False
        if g2 == 0:
            # the suffix contributes exactly 0: c*t must equal rem
            if rem % c:
                return False
            t = rem // c
            if not t_min <= t <= t_max:
                return False
            candidates: Sequence[int] = (t,)
        else:
            d = gcd(abs(c), g2)
            if rem % d:
                return False
            m = g2 // d
            if m <= 1:
                candidates = range(t_min, t_max + 1)
            else:
                cm = (c // d) % m
                t0 = (pow(cm, -1, m) * ((rem // d) % m)) % m
                start = t_min + (t0 - t_min) % m
                candidates = range(start, t_max + 1, m)
        for t in candidates:
            state["nodes"] += 1
            if state["nodes"] > budget:
                state["proved"] = False
                return False
            values[k] = t
            if rec(k + 1, rem - c * t):
                return True
        return False

    if rec(0, target - base):
        return tuple(values), True
    return None, state["proved"]


def lane_conflict(
    kf: int,
    tf: Mapping[str, int],
    kg: int,
    tg: Mapping[str, int],
    axis: str,
    span: int,
    axis_lo: int,
    outer: Mapping[str, tuple[int, int]],
    inner: Mapping[str, tuple[int, int]],
    max_enum: int = MAX_DISTANCE_ENUM,
) -> bool:
    """Can instances on *different* lanes of ``axis`` touch one element?

    ``(kf, tf)`` and ``(kg, tg)`` are the two references' folded
    integer-affine element indices (constant, variable -> coefficient);
    ``inner`` variables iterate independently per lane (two separate
    copies), ``outer`` variables are shared (one difference term), and
    anything unbound is assumed conflicting.  Conservative: ``True``
    means "maybe" (fall back), ``False`` is a proof.

    This is, bit for bit, the decision procedure the codegen executor
    vectorizes against.
    """
    c_f = tf.get(axis, 0)
    c_g = tg.get(axis, 0)
    base = kf - kg
    terms: list[Term] = []

    def add(coeff: int, name: str, is_inner: bool) -> bool:
        rng = inner.get(name) if is_inner else outer.get(name)
        if rng is None:
            return False
        if coeff:
            terms.append((coeff, rng[0], rng[1]))
        return True

    for name in set(tf) | set(tg):
        if name == axis:
            continue
        cf, cg = tf.get(name, 0), tg.get(name, 0)
        if name in inner:
            # independent instances: two separate copies
            if not (add(cf, name, True) and add(-cg, name, True)):
                return True
        elif name in outer:
            if not add(cf - cg, name, False):
                return True
        else:
            return True  # unknown variable: assume conflict

    if c_f != c_g:
        # different axis coefficients: treat both lane values as free
        terms.append((c_f, 0, span))
        terms.append((-c_g, 0, span))
        base += (c_f - c_g) * axis_lo
        return attainable(0, base, terms)

    if c_f == 0:
        return attainable(0, base, terms)
    if span > max_enum:
        return True
    for d in range(-span, span + 1):
        if d and attainable(-c_f * d, base, terms):
            return True
    return False
