"""OpenMP loop-schedule partitioning, shared by prediction and replay.

One implementation of "which thread runs which iterations" serves both
sides of the multicore cross-validation: the static predictor
(``repro.static.multicore``, ``repro.static.coherence``) and the
dynamic interleaved replay (``repro.interp.interleave``).  The static
package never imports the interpreter, so the helper lives here and the
interpreter imports it — the acyclic direction.

Supported schedule specs (OpenMP ``schedule`` clause syntax):

``static``
    one contiguous ceil-sized block per thread — the OpenMP default.
``static,k``
    size-``k`` chunks dealt round-robin: chunk ``c`` runs on thread
    ``c % T``, on every invocation (affinity preserved).
``guided``
    decreasing chunks of ``ceil(remaining / T)`` iterations, dealt
    round-robin.  A real guided runtime assigns chunks first-come; this
    deterministic stand-in keeps the chunk *sizes* and gives chunk
    ``c`` to thread ``c % T``, so repeated invocations preserve
    affinity and the replay is reproducible.
``dynamic``
    the block partition of ``static`` with the thread assignment
    rotated by one per invocation — a deterministic stand-in for a
    work-stealing runtime that destroys chunk affinity without
    destroying the partition.
"""

from __future__ import annotations

from typing import Sequence

#: schedule kinds accepted by :func:`parse_schedule` (``static`` also
#: accepts a ``,k`` chunk-size suffix)
SCHEDULE_KINDS = ("static", "dynamic", "guided")


def parse_schedule(spec: str) -> tuple[str, int]:
    """Parse an OpenMP-style schedule spec into ``(kind, chunk)``.

    ``chunk`` is 0 when the schedule uses its default blocking
    (``static`` = one block per thread, ``guided`` = decreasing
    blocks).  Only ``static`` takes an explicit chunk size.
    """
    s = str(spec).strip().lower()
    kind, sep, rest = s.partition(",")
    kind = kind.strip()
    if kind not in SCHEDULE_KINDS:
        raise ValueError(
            f"unknown schedule {spec!r}; expected one of "
            f"{SCHEDULE_KINDS} (static also takes 'static,k')"
        )
    if not sep:
        return kind, 0
    if kind != "static":
        raise ValueError(
            f"schedule {spec!r}: only 'static' takes a chunk size"
        )
    try:
        chunk = int(rest.strip())
    except ValueError:
        raise ValueError(
            f"schedule {spec!r}: chunk size must be an integer"
        ) from None
    if chunk < 1:
        raise ValueError(f"schedule {spec!r}: chunk size must be >= 1")
    return kind, chunk


def preserves_affinity(spec: str) -> bool:
    """Does the schedule hand the same iterations to the same thread on
    every invocation?  True for ``static`` (any chunk size) and the
    deterministic ``guided`` model; false for ``dynamic``."""
    kind, _ = parse_schedule(spec)
    return kind != "dynamic"


def schedule_assignments(
    lo: int,
    hi: int,
    threads: int,
    schedule: str = "static",
    invocation: int = 0,
) -> list[tuple[int, int, int]]:
    """The chunk list of one parallel loop: ``(first, last, thread)``
    triples in chunk order, covering the inclusive range [lo, hi].

    ``invocation`` only matters for ``dynamic``, whose assignment
    rotates by one per parallel-nest invocation.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    kind, chunk = parse_schedule(schedule)
    n = hi - lo + 1
    if n <= 0:
        return []
    out: list[tuple[int, int, int]] = []
    if kind in ("static", "dynamic") and chunk == 0:
        size = -(-n // threads)  # ceil: the OpenMP default block
        for t in range(threads):
            a = lo + t * size
            b = min(hi, a + size - 1)
            if a <= b:
                tt = (t + invocation) % threads if kind == "dynamic" else t
                out.append((a, b, tt))
        return out
    if kind == "static":  # static,k: fixed chunks dealt round-robin
        c, a = 0, lo
        while a <= hi:
            b = min(hi, a + chunk - 1)
            out.append((a, b, c % threads))
            a = b + 1
            c += 1
        return out
    # guided: ceil(remaining / T), never below 1, dealt round-robin
    c, a = 0, lo
    while a <= hi:
        size = max(1, -(-(hi - a + 1) // threads))
        b = min(hi, a + size - 1)
        out.append((a, b, c % threads))
        a = b + 1
        c += 1
    return out


def schedule_chunks(
    lo: int,
    hi: int,
    threads: int,
    schedule: str = "static",
    invocation: int = 0,
) -> list[list[tuple[int, int]]]:
    """Per-thread chunk lists: entry ``t`` holds thread ``t``'s
    inclusive ``(first, last)`` chunks in execution order."""
    out: list[list[tuple[int, int]]] = [[] for _ in range(threads)]
    for a, b, t in schedule_assignments(lo, hi, threads, schedule, invocation):
        out[t].append((a, b))
    return out


def thread_span(
    lo: int,
    hi: int,
    threads: int,
    thread: int,
    schedule: str = "static",
) -> tuple[int, int]:
    """The bounding ``[first, last]`` iteration span thread ``thread``
    executes (empty span reported as ``(lo, lo - 1)``).  For chunked
    schedules the span is not contiguous; callers using it as a hull
    over-approximate, which is the right direction for prescreens."""
    chunks = schedule_chunks(lo, hi, threads, schedule)[thread]
    if not chunks:
        return lo, lo - 1
    return chunks[0][0], chunks[-1][1]


def chunk_count(lo: int, hi: int, threads: int, schedule: str) -> int:
    """How many chunks the schedule splits [lo, hi] into."""
    return len(schedule_assignments(lo, hi, threads, schedule))


def round_robin_order(
    lengths: Sequence[int], block: int = 1
) -> list[tuple[int, int, int]]:
    """The drain order of a round-robin merge over per-thread streams
    of the given lengths: ``(stream_index, start, stop)`` runs of up to
    ``block`` accesses.  Streams drop out as they drain (threads with
    smaller chunks finish early and wait at the barrier).

    This is the exact interleaving contract shared by the dynamic
    replay (``repro.interp.interleave``) and the static coherence
    analyzer (``repro.static.coherence``) — both order a parallel
    nest's accesses with this function, which is what lets predicted
    invalidation-miss totals match the MSI oracle exactly when the
    enumerated streams match.
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    runs: list[tuple[int, int, int]] = []
    pos = [0] * len(lengths)
    total = sum(lengths)
    filled = 0
    while filled < total:
        for k, n in enumerate(lengths):
            p = pos[k]
            if p >= n:
                continue
            q = min(p + block, n)
            runs.append((k, p, q))
            filled += q - p
            pos[k] = q
    return runs
