"""Polynomials over symbolic program parameters.

Reuse distances and access counts of affine loop nests are polynomials in
the loop bounds: a trip count ``(N - 1) - 2 + 1`` is affine, the product
of two trip counts is quadratic, and the footprint of a 2-D sweep is a
product of per-dimension widths.  :class:`Poly` is the closure of
:class:`~repro.lang.Affine` under multiplication — exact rational
coefficients over multi-variable monomials — plus the two queries the
static reuse analyzer needs: evaluation at a concrete input size and the
symbolic *growth* test that defines evadable reuse (paper §2.1: a reuse
is evadable iff its distance grows with the input size).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

from ..lang import Affine, NotAffineError

Number = Union[int, float, Fraction]

#: a monomial: sorted ``((name, power), ...)``; the empty tuple is 1
Monomial = tuple[tuple[str, int], ...]

#: probe points for the numeric growth test (exact integer arithmetic)
_GROW_LO = 10**3
_GROW_HI = 10**6


def _frac(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if not value.is_integer():
            raise NotAffineError(f"non-integral polynomial coefficient {value}")
        return Fraction(int(value))
    raise NotAffineError(f"cannot coerce {value!r} into a coefficient")


@dataclass(frozen=True)
class Poly:
    """A polynomial ``sum(coeff * monomial)`` with exact coefficients.

    Instances are immutable and hashable; zero terms are never stored and
    monomials are kept sorted, so structurally equal polynomials compare
    equal.
    """

    terms: tuple[tuple[Monomial, Fraction], ...] = ()

    # -- construction -----------------------------------------------------

    @staticmethod
    def constant(value: Number) -> "Poly":
        c = _frac(value)
        if c == 0:
            return Poly()
        return Poly((((), c),))

    @staticmethod
    def var(name: str, power: int = 1) -> "Poly":
        return Poly(((((name, power),), Fraction(1)),))

    @staticmethod
    def from_terms(terms: Mapping[Monomial, Fraction]) -> "Poly":
        clean = tuple(
            sorted((m, c) for m, c in terms.items() if c != 0)
        )
        return Poly(clean)

    @staticmethod
    def from_affine(form: Affine) -> "Poly":
        terms: dict[Monomial, Fraction] = {}
        if form.const != 0:
            terms[()] = form.const
        for name, coeff in form.coeffs:
            terms[((name, 1),)] = terms.get(((name, 1),), Fraction(0)) + coeff
        return Poly.from_terms(terms)

    # -- inspection -------------------------------------------------------

    def is_zero(self) -> bool:
        return not self.terms

    def is_constant(self) -> bool:
        return all(m == () for m, _ in self.terms)

    def constant_value(self) -> Fraction:
        if not self.is_constant():
            raise NotAffineError(f"{self} is not a constant")
        return self.terms[0][1] if self.terms else Fraction(0)

    def degree(self) -> int:
        """Total degree (0 for constants, -1 conventionally for zero)."""
        if not self.terms:
            return -1
        return max(sum(p for _, p in m) for m, _ in self.terms)

    def variables(self) -> frozenset[str]:
        return frozenset(n for m, _ in self.terms for n, _ in m)

    def coefficient(self, monomial: Monomial) -> Fraction:
        for m, c in self.terms:
            if m == monomial:
                return c
        return Fraction(0)

    # -- arithmetic -------------------------------------------------------

    @staticmethod
    def _coerce(value: Union["Poly", Affine, Number]) -> "Poly":
        if isinstance(value, Poly):
            return value
        if isinstance(value, Affine):
            return Poly.from_affine(value)
        return Poly.constant(value)

    def __add__(self, other: Union["Poly", Affine, Number]) -> "Poly":
        other = Poly._coerce(other)
        terms = dict(self.terms)
        for m, c in other.terms:
            terms[m] = terms.get(m, Fraction(0)) + c
        return Poly.from_terms(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly(tuple((m, -c) for m, c in self.terms))

    def __sub__(self, other: Union["Poly", Affine, Number]) -> "Poly":
        return self + (-Poly._coerce(other))

    def __rsub__(self, other: Union[Affine, Number]) -> "Poly":
        return Poly._coerce(other) - self

    def __mul__(self, other: Union["Poly", Affine, Number]) -> "Poly":
        other = Poly._coerce(other)
        terms: dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                powers: dict[str, int] = {}
                for n, p in m1 + m2:
                    powers[n] = powers.get(n, 0) + p
                mono: Monomial = tuple(sorted(powers.items()))
                terms[mono] = terms.get(mono, Fraction(0)) + c1 * c2
        return Poly.from_terms(terms)

    __rmul__ = __mul__

    # -- evaluation -------------------------------------------------------

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """Fully evaluate; every variable must be bound in ``env``."""
        total = Fraction(0)
        for mono, coeff in self.terms:
            value = coeff
            for name, power in mono:
                if name not in env:
                    raise NotAffineError(f"unbound variable {name!r} in {self}")
                value *= _frac(env[name]) ** power
            total += value
        return total

    def substitute(self, bindings: Mapping[str, Union["Poly", Affine, Number]]) -> "Poly":
        out = Poly()
        for mono, coeff in self.terms:
            term = Poly.constant(coeff)
            for name, power in mono:
                base = (
                    Poly._coerce(bindings[name])
                    if name in bindings
                    else Poly.var(name)
                )
                for _ in range(power):
                    term = term * base
            out = out + term
        return out

    # -- the evadability query --------------------------------------------

    def grows(self) -> bool:
        """Does this polynomial grow without bound as its variables grow?

        The defining question of evadable reuse (paper §2.1).  Decided by
        probing all variables at two large integer points with exact
        arithmetic: dominant positive-coefficient terms force growth,
        constants and bounded forms do not.
        """
        if self.degree() <= 0:
            return False
        lo = self.evaluate({n: _GROW_LO for n in self.variables()})
        hi = self.evaluate({n: _GROW_HI for n in self.variables()})
        return hi >= 2 * max(lo, Fraction(1))

    # -- display ----------------------------------------------------------

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        ordered = sorted(
            self.terms,
            key=lambda t: (-sum(p for _, p in t[0]), t[0]),
        )
        parts: list[str] = []
        for mono, coeff in ordered:
            body = "*".join(
                n if p == 1 else f"{n}^{p}" for n, p in mono
            )
            if not body:
                text = _fmt(coeff)
            elif coeff == 1:
                text = body
            elif coeff == -1:
                text = f"-{body}"
            else:
                text = f"{_fmt(coeff)}*{body}"
            parts.append(text)
        out = parts[0]
        for p in parts[1:]:
            out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
        return out

    __repr__ = __str__


def _fmt(c: Fraction) -> str:
    return str(int(c)) if c.denominator == 1 else str(c)


#: shared singletons
ZERO = Poly()
ONE = Poly.constant(1)
