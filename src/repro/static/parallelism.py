"""Static parallelism analysis: DOALL / reduction / serial per loop axis.

For every loop axis in a program this module decides whether the axis's
iterations ("lanes") can run concurrently, by solving the loop-carried
dependence equations over the same folded integer-affine access model
the codegen executor vectorizes against (paper §3; Ding & Kennedy's
fusion legality is the *transform* side of the same dependence
information).  Verdicts:

``doall``
    no two distinct lanes can touch the same array element with at
    least one write — the axis is parallel as-is;
``reduction``
    the only cross-lane conflicts come from accumulation statements
    (``A[s] = A[s] op e`` / ``s = s op e`` with ``op`` associative), so
    the axis parallelizes with a privatized accumulator;
``serial``
    a genuine race exists, and the verdict carries a concrete
    :class:`RaceWitness` — two iteration vectors and the pair of
    references that collide on one element;
``unknown``
    the nest is outside the affine subset and too large to check
    concretely (never the case for the study programs).

Two precision tiers cooperate.  Small iteration spaces (bounded by
``concrete_cap`` accesses) are decided by *exhaustive enumeration* that
evaluates real bounds and guards — exact even for triangular nests, and
the tier the property-based oracle exercises.  Larger spaces use the
shared :mod:`.dependence_test`: the executor's interval+gcd screen
(:func:`~.dependence_test.lane_conflict`) filters pairs, then the exact
:func:`~.dependence_test.solve_sum` backtracker either produces a
witness, *overturns* the conservative screen with an infeasibility
proof, or runs out of budget (witness ``None``, marked inexact).

Layering: depends on ``lang`` and ``obs`` only — element numbering
reproduces the tracer's column-major linearization locally so nothing
here imports the interpreter or the codegen backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from ..lang import (
    Affine,
    AnalysisError,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Expr,
    Guard,
    Loop,
    NotAffineError,
    Program,
    ScalarRef,
    Stmt,
    UnaryOp,
)
from ..obs import metrics, span
from .dependence_test import lane_conflict, solve_sum

#: iteration spaces up to this many accesses are classified exhaustively
CONCRETE_CAP = 200_000

#: cap on lane-distance values tried by the symbolic witness search
MAX_WITNESS_DELTAS = 4096

#: params left unbound by the caller are pinned to this (small but
#: non-degenerate) extent, mirroring the golden-test sizes
DEFAULT_PARAM = 16

#: scalars are modeled as one-element pseudo-arrays under this prefix
SCALAR_PREFIX = "$"

VERDICTS = ("doall", "reduction", "serial", "unknown")


class _Unsupported(Exception):
    """A nest outside the integer-affine subset (reason attached)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# -- result types ------------------------------------------------------------


@dataclass(frozen=True)
class RaceWitness:
    """A concrete pair of conflicting iterations of one loop axis.

    ``env_a`` / ``env_b`` bind *every* loop variable in scope for the
    two colliding accesses (they agree on loops enclosing the axis,
    differ on the axis itself, and are independent on inner loops);
    ``element`` is the linearized column-major element index the two
    references both touch.  ``exact`` is ``True`` when the pair was
    validated against the real (possibly triangular, guarded) bounds;
    a ``False`` witness lives in the rectangular hull approximation.
    """

    axis: str
    iter_a: int
    iter_b: int
    array: str
    element: int
    ref_a: str
    ref_b: str
    write_a: bool
    write_b: bool
    env_a: tuple[tuple[str, int], ...]
    env_b: tuple[tuple[str, int], ...]
    exact: bool = True

    def describe(self) -> str:
        ea = ", ".join(f"{n}={v}" for n, v in self.env_a)
        eb = ", ".join(f"{n}={v}" for n, v in self.env_b)
        kind = (
            "write/write" if self.write_a and self.write_b
            else "read/write" if self.write_b else "write/read"
        )
        where = (
            f"scalar {self.array[len(SCALAR_PREFIX):]!r}"
            if self.array.startswith(SCALAR_PREFIX)
            else f"{self.array}[elem {self.element}]"
        )
        mark = "" if self.exact else " (hull approximation)"
        return (
            f"{self.axis}={self.iter_a} vs {self.axis}={self.iter_b}: "
            f"{kind} on {where} — {self.ref_a} @({ea}) / "
            f"{self.ref_b} @({eb}){mark}"
        )


@dataclass(frozen=True)
class AxisVerdict:
    """The parallelism classification of one loop axis occurrence."""

    nest: int  # position of the enclosing top-level statement
    path: tuple[str, ...]  # enclosing loop indices, outermost first (incl. self)
    index: str
    depth: int
    verdict: str  # one of VERDICTS
    reason: str
    witness: Optional[RaceWitness] = None
    reduction_targets: tuple[str, ...] = ()
    exact: bool = True

    @property
    def parallel(self) -> bool:
        return self.verdict in ("doall", "reduction")

    def describe(self) -> str:
        where = ".".join(self.path)
        out = f"nest {self.nest} loop {where}: {self.verdict} ({self.reason})"
        if self.witness is not None:
            out += f"\n    witness: {self.witness.describe()}"
        return out


@dataclass(frozen=True)
class ParallelismProfile:
    """Every axis verdict of a program at concrete parameter values."""

    program_name: str
    params: tuple[tuple[str, int], ...]
    verdicts: tuple[AxisVerdict, ...]

    def by_verdict(self, verdict: str) -> tuple[AxisVerdict, ...]:
        return tuple(v for v in self.verdicts if v.verdict == verdict)

    @property
    def races(self) -> tuple[AxisVerdict, ...]:
        return self.by_verdict("serial")

    def outermost(self, nest: int) -> Optional[AxisVerdict]:
        """The depth-0 axis verdict of top-level statement ``nest``."""
        for v in self.verdicts:
            if v.nest == nest and v.depth == 0:
                return v
        return None

    def parallel_nests(self) -> tuple[int, ...]:
        """Top-level nests whose outermost axis is DOALL or reduction."""
        out = []
        for v in self.verdicts:
            if v.depth == 0 and v.parallel:
                out.append(v.nest)
        return tuple(out)

    def counts(self) -> dict[str, int]:
        out = {k: 0 for k in VERDICTS}
        for v in self.verdicts:
            out[v.verdict] += 1
        return out

    def as_dict(self) -> dict:
        return {
            "program": self.program_name,
            "params": dict(self.params),
            "counts": self.counts(),
            "axes": [
                {
                    "nest": v.nest,
                    "path": list(v.path),
                    "index": v.index,
                    "depth": v.depth,
                    "verdict": v.verdict,
                    "reason": v.reason,
                    "exact": v.exact,
                    "reduction_targets": list(v.reduction_targets),
                    "witness": None if v.witness is None else {
                        "axis": v.witness.axis,
                        "iter_a": v.witness.iter_a,
                        "iter_b": v.witness.iter_b,
                        "array": v.witness.array,
                        "element": v.witness.element,
                        "ref_a": v.witness.ref_a,
                        "ref_b": v.witness.ref_b,
                        "write_a": v.witness.write_a,
                        "write_b": v.witness.write_b,
                        "env_a": dict(v.witness.env_a),
                        "env_b": dict(v.witness.env_b),
                        "exact": v.witness.exact,
                    },
                }
                for v in self.verdicts
            ],
        }


# -- affine folding (local: no interp/codegen import) ------------------------


def _fold(form: Affine, params: Mapping[str, int]) -> tuple[int, dict[str, int]]:
    """Fold parameters out of an affine form; require integer coeffs."""
    const = form.const
    terms: dict[str, int] = {}
    for name, coeff in form.coeffs:
        if name in params:
            const += coeff * params[name]
            continue
        if coeff.denominator != 1:
            raise _Unsupported(f"fractional coefficient {coeff} on {name!r}")
        terms[name] = terms.get(name, 0) + int(coeff)
    if const.denominator != 1:
        raise _Unsupported(f"fractional constant {const}")
    return int(const), {n: c for n, c in terms.items() if c}


def _interval(
    form: Affine,
    params: Mapping[str, int],
    ranges: Mapping[str, tuple[int, int]],
) -> tuple[int, int]:
    """Concrete [min, max] of a bound form over widened variable ranges."""
    const, terms = _fold(form, params)
    lo = hi = const
    for name, coeff in terms.items():
        rng = ranges.get(name)
        if rng is None:
            raise _Unsupported(f"unbound loop variable {name!r}")
        lo += min(coeff * rng[0], coeff * rng[1])
        hi += max(coeff * rng[0], coeff * rng[1])
    return lo, hi


def _strides(program: Program, params: Mapping[str, int]) -> dict[str, tuple[int, ...]]:
    """Column-major strides per array — the tracer's element numbering."""
    out: dict[str, tuple[int, ...]] = {}
    for decl in program.arrays:
        shape = decl.shape(params)
        strides = []
        acc = 1
        for extent in shape:  # first subscript fastest
            strides.append(acc)
            acc *= extent
        out[decl.name] = tuple(strides)
    return out


# -- reference collection -----------------------------------------------------


@dataclass
class _Ref:
    """One (pseudo-)array reference folded to a linear element form."""

    array: str
    const: int
    terms: dict[str, int]
    is_write: bool
    text: str
    stmt_id: int
    accum: Optional[int]  # stmt id when part of an accumulation pattern
    subs: tuple[Affine, ...] = ()


def _walk_expr(expr: Expr) -> Iterator[Expr]:
    """Pre-order leaves that read memory (ArrayRef / ScalarRef)."""
    if isinstance(expr, (ArrayRef, ScalarRef)):
        yield expr
    elif isinstance(expr, BinOp):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from _walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from _walk_expr(a)


def _accum_spine(stmt: Assign) -> Optional[Expr]:
    """The self-read of an accumulation ``T = T op e`` (else ``None``).

    ``op`` must be an associative spine (``+``/``-`` with the self-read
    appearing with positive sign, or a pure ``*`` chain), and the target
    must appear in the spine exactly once.
    """
    target = stmt.target

    def is_self(leaf: Expr) -> bool:
        if isinstance(target, ScalarRef):
            return isinstance(leaf, ScalarRef) and leaf.name == target.name
        return (
            isinstance(leaf, ArrayRef)
            and leaf.array == target.array
            and leaf.indices == target.indices
        )

    def additive(expr: Expr, sign: int) -> Optional[list[tuple[Expr, int]]]:
        if isinstance(expr, BinOp) and expr.op in ("+", "-"):
            left = additive(expr.left, sign)
            rsign = sign if expr.op == "+" else -sign
            right = additive(expr.right, rsign)
            if left is None or right is None:
                return None
            return left + right
        if isinstance(expr, UnaryOp) and expr.op == "-":
            return additive(expr.operand, -sign)
        return [(expr, sign)]

    def multiplicative(expr: Expr) -> list[Expr]:
        if isinstance(expr, BinOp) and expr.op == "*":
            return multiplicative(expr.left) + multiplicative(expr.right)
        return [expr]

    leaves = additive(stmt.expr, 1)
    if leaves is not None:
        selves = [(leaf, s) for leaf, s in leaves if is_self(leaf)]
        if len(selves) == 1 and selves[0][1] == 1:
            return selves[0][0]
    factors = multiplicative(stmt.expr)
    if len(factors) > 1:
        selves2 = [f for f in factors if is_self(f)]
        if len(selves2) == 1:
            return selves2[0]
    return None


class _Collector:
    """Flatten an axis's subtree into folded references + inner ranges."""

    def __init__(
        self,
        params: Mapping[str, int],
        strides: Mapping[str, tuple[int, ...]],
    ) -> None:
        self.params = params
        self.strides = strides
        self.refs: list[_Ref] = []
        self.inner: dict[str, tuple[int, int]] = {}
        self.stmt_count = 0
        self.exact = True  # False once a guard or context-widened bound appears
        self.per_lane = 0  # upper bound on accesses per axis iteration

    def linearize(self, ref: ArrayRef) -> tuple[int, dict[str, int]]:
        strides = self.strides.get(ref.array)
        if strides is None:
            raise _Unsupported(f"undeclared array {ref.array!r}")
        if len(ref.indices) != len(strides):
            raise _Unsupported(f"rank mismatch on {ref.array!r}")
        const = 0
        terms: dict[str, int] = {}
        for k, sub in enumerate(ref.indices):
            try:
                a = sub.affine()
            except NotAffineError as exc:
                raise _Unsupported(str(exc)) from exc
            c, t = _fold(a, self.params)
            s = strides[k]
            const += (c - 1) * s  # subscripts are 1-based
            for n, coeff in t.items():
                terms[n] = terms.get(n, 0) + coeff * s
        return const, {n: c for n, c in terms.items() if c}

    def add(
        self,
        ref: Expr,
        is_write: bool,
        stmt_id: int,
        accum: Optional[int],
    ) -> None:
        if isinstance(ref, ScalarRef):
            self.refs.append(_Ref(
                SCALAR_PREFIX + ref.name, 0, {}, is_write,
                ref.name, stmt_id, accum,
            ))
            return
        assert isinstance(ref, ArrayRef)
        const, terms = self.linearize(ref)
        self.refs.append(_Ref(
            ref.array, const, terms, is_write, str(ref), stmt_id, accum,
            subs=ref.index_affines(),
        ))

    def collect(
        self,
        body: Sequence[Stmt],
        known: dict[str, tuple[int, int]],
        mult: int = 1,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, Assign):
                stmt_id = self.stmt_count
                self.stmt_count += 1
                spine_self = _accum_spine(stmt)
                accum_key = stmt_id if spine_self is not None else None
                claimed = False
                for leaf in _walk_expr(stmt.expr):
                    mark = None
                    if not claimed and leaf is spine_self:
                        mark = accum_key
                        claimed = True
                    self.add(leaf, False, stmt_id, mark)
                    self.per_lane += mult
                self.add(stmt.target, True, stmt_id, accum_key)
                self.per_lane += mult
            elif isinstance(stmt, Loop):
                try:
                    lo_a, hi_a = stmt.bounds_affine()
                except (AnalysisError, NotAffineError) as exc:
                    raise _Unsupported(str(exc)) from exc
                lo_r = _interval(lo_a, self.params, known)
                hi_r = _interval(hi_a, self.params, known)
                if lo_r[0] != lo_r[1] or hi_r[0] != hi_r[1]:
                    self.exact = False  # context-dependent (e.g. triangular)
                rng = (lo_r[0], hi_r[1])
                self.inner[stmt.index] = rng
                sub = dict(known)
                sub[stmt.index] = rng
                self.collect(stmt.body, sub, mult * max(0, rng[1] - rng[0] + 1))
            elif isinstance(stmt, Guard):
                self.exact = False  # both branches folded in (hull)
                self.collect(stmt.body, known, mult)
                self.collect(stmt.else_body, known, mult)
            else:
                raise _Unsupported(f"cannot analyze {type(stmt).__name__}")


# -- symbolic witness search --------------------------------------------------


def _deltas(span: int, cap: int = MAX_WITNESS_DELTAS) -> Iterator[int]:
    """Candidate lane distances, smallest magnitude first: 1,-1,2,-2,..."""
    for k in range(1, span + 1):
        yield k
        yield -k
        if 2 * k >= cap:
            return


@dataclass
class _PairResult:
    conflict: bool
    proved: bool  # the answer is a proof, not a budget/cap artifact
    witness: Optional[RaceWitness] = None


def _solve_pair(
    f: _Ref,
    g: _Ref,
    axis: str,
    axis_rng: tuple[int, int],
    outer: Mapping[str, tuple[int, int]],
    inner: Mapping[str, tuple[int, int]],
    exact_space: bool,
) -> _PairResult:
    """Exact cross-lane feasibility of one reference pair (+ witness)."""
    lo, hi = axis_rng
    span = hi - lo
    c_f = f.terms.get(axis, 0)
    c_g = g.terms.get(axis, 0)
    base = f.const - g.const
    shared: list[tuple[int, int, int]] = []
    labels: list[tuple[str, str]] = []  # (side, var) aligned with terms

    for name in sorted(set(f.terms) | set(g.terms)):
        if name == axis:
            continue
        cf, cg = f.terms.get(name, 0), g.terms.get(name, 0)
        if name in inner:
            rng = inner[name]
            if cf:
                shared.append((cf, rng[0], rng[1]))
                labels.append(("a", name))
            if cg:
                shared.append((-cg, rng[0], rng[1]))
                labels.append(("b", name))
        elif name in outer:
            rng = outer[name]
            if cf - cg:
                shared.append((cf - cg, rng[0], rng[1]))
                labels.append(("shared", name))
        else:
            # out-of-scope variable: conservatively conflicting
            return _PairResult(conflict=True, proved=False)

    def build(values: Sequence[int], ia: int, ib: int) -> RaceWitness:
        env_a = {axis: ia}
        env_b = {axis: ib}
        for (side, name), v in zip(labels, values):
            if side in ("a", "shared"):
                env_a[name] = v
            if side in ("b", "shared"):
                env_b[name] = v
        for name, rng in list(outer.items()) + list(inner.items()):
            env_a.setdefault(name, rng[0])
            env_b.setdefault(name, rng[0])
        elem = f.const + sum(
            c * env_a[n] for n, c in f.terms.items() if n in env_a
        )
        return RaceWitness(
            axis=axis, iter_a=ia, iter_b=ib,
            array=f.array, element=elem,
            ref_a=f.text, ref_b=g.text,
            write_a=f.is_write, write_b=g.is_write,
            env_a=tuple(sorted(env_a.items())),
            env_b=tuple(sorted(env_b.items())),
            exact=exact_space,
        )

    if c_f == 0 and c_g == 0:
        sol, proved = solve_sum(0, base, shared)
        if sol is not None:
            return _PairResult(True, True, build(sol, lo, lo + 1))
        return _PairResult(False, proved)

    # relaxed solve first: both lane values free, distinctness dropped.
    # Infeasible => proof of independence (the relaxation only adds
    # solutions); a solution with distinct lanes is already a witness.
    relaxed: list[tuple[int, int, int]] = []
    if c_f:
        relaxed.append((c_f, lo, hi))
    if c_g:
        relaxed.append((-c_g, lo, hi))
    sol, proved = solve_sum(0, base, relaxed + shared)
    if sol is None:
        return _PairResult(False, proved)
    head = sol[: len(relaxed)]
    values = sol[len(relaxed):]
    if c_f and c_g:
        ia, ib = head
    elif c_f:
        # g's element is lane-invariant: any other lane for ib works
        ia = head[0]
        ib = lo if ia != lo else lo + 1
    else:
        ib = head[0]
        ia = lo if ib != lo else lo + 1
    if ia != ib:
        return _PairResult(True, True, build(values, ia, ib))

    # every relaxed solve may keep landing on ia == ib; substitute
    # ib = ia - delta and walk lane distances, smallest first.  A few
    # budget-exhausted solves in a row abort the refinement (inexact).
    strikes = 0
    proved_all = True
    enumerated_all = span == 0
    for delta in _deltas(span):
        ia_lo = lo + max(0, delta)
        ia_hi = hi + min(0, delta)
        if ia_lo > ia_hi:
            continue
        terms = list(shared)
        if c_f != c_g:
            terms.insert(0, (c_f - c_g, ia_lo, ia_hi))
        sol, proved = solve_sum(0, base + c_g * delta, terms, budget=512)
        if sol is not None:
            if c_f != c_g:
                ia = sol[0]
                values = sol[1:]
            else:
                ia = ia_lo
                values = sol
            return _PairResult(True, True, build(values, ia, ia - delta))
        if not proved:
            proved_all = False
            strikes += 1
            if strikes >= 8:
                return _PairResult(False, False)
        if abs(delta) == span:
            enumerated_all = True
    return _PairResult(False, proved_all and enumerated_all)


# -- concrete (exhaustive) tier ----------------------------------------------


class _BudgetExceeded(Exception):
    pass


class _ConcreteChecker:
    """Exhaustively execute the index space around one axis occurrence.

    Walks the chain of statements enclosing the axis loop with real
    bound and guard evaluation, then for each assignment of the outer
    variables replays every lane of the axis and records which element
    each reference touches.  Conflict detection keys on
    ``(array, element)`` per outer assignment, keeping per conflict
    class (``is_write``, accumulation statement) one access plus one
    on a different lane — sufficient statistics for an exact verdict.
    """

    def __init__(
        self,
        chain: Sequence[Stmt],
        axis_loop: Loop,
        params: Mapping[str, int],
        strides: Mapping[str, tuple[int, ...]],
        cap: int = CONCRETE_CAP,
    ) -> None:
        self.chain = list(chain)
        self.axis_loop = axis_loop
        self.params = params
        self.strides = strides
        self.cap = cap
        self.accesses = 0
        self.env: dict[str, int] = {}
        self.lane = 0
        # (array, elem) -> {(write, accum): [(lane, text, env), ...]}
        self.table: dict[tuple[str, int], dict] = {}
        self.witness: Optional[RaceWitness] = None
        self.has_exempt = False
        # id(expr-or-affine) -> folded (const, ((var, coeff), ...), frac?)
        self._forms: dict[int, tuple] = {}

    def _eval(self, node) -> int:
        """Evaluate an index expression / affine form in the current env.

        Forms are folded once per AST node (params inlined, integer fast
        path when exact) — this walk visits every access of the space,
        so per-access Fraction churn dominates without the cache.
        """
        form = self._forms.get(id(node))
        if form is None:
            a = node if isinstance(node, Affine) else node.affine()
            const = a.const
            items = []
            for n, c in a.coeffs:
                if n in self.params:
                    const += c * self.params[n]
                else:
                    items.append((n, c))
            if const.denominator == 1 and all(
                c.denominator == 1 for _, c in items
            ):
                form = (int(const), tuple((n, int(c)) for n, c in items), False)
            else:
                form = (const, tuple(items), True)
            self._forms[id(node)] = form
        const, items, fractional = form
        v = const
        try:
            for n, c in items:
                v += c * self.env[n]
        except KeyError as exc:
            raise _Unsupported(f"unbound loop variable {exc.args[0]!r}") from exc
        if not fractional:
            return v
        if v.denominator != 1:
            raise _Unsupported(f"non-integer index value {v}")
        return int(v)

    def run(self) -> tuple[str, Optional[RaceWitness]]:
        """Returns (verdict, witness) — exact for this parameter binding."""
        self._walk_chain(0)
        if self.witness is not None:
            return "serial", self.witness
        if self.has_exempt:
            return "reduction", None
        return "doall", None

    def _walk_chain(self, k: int) -> None:
        node = self.chain[k]
        if node is self.axis_loop:
            self._run_axis(node)
            return
        nxt = self.chain[k + 1]
        if isinstance(node, Loop):
            lo = self._eval(node.lower)
            hi = self._eval(node.upper)
            for v in range(lo, hi + 1):
                self.env[node.index] = v
                self._walk_chain(k + 1)
                if self.witness is not None:
                    break  # serial regardless of anything else: done
            self.env.pop(node.index, None)
        elif isinstance(node, Guard):
            want_body = any(s is nxt for s in node.body)
            if self._guard_member(node) == want_body:
                self._walk_chain(k + 1)
        else:  # pragma: no cover - chains only contain loops and guards
            raise _Unsupported(f"unexpected {type(node).__name__} on path")

    def _guard_member(self, guard: Guard) -> bool:
        v = self.env.get(guard.index)
        if v is None:
            raise _Unsupported(f"guard on unbound index {guard.index!r}")
        return any(
            self._eval(iv.lower) <= v <= self._eval(iv.upper)
            for iv in guard.intervals
        )

    def _run_axis(self, loop: Loop) -> None:
        lo = self._eval(loop.lower)
        hi = self._eval(loop.upper)
        self.table = {}
        for lane in range(lo, hi + 1):
            self.lane = lane
            self.env[loop.index] = lane
            self._walk_body(loop.body)
            if self.witness is not None:
                break
        self.env.pop(loop.index, None)
        self.table = {}

    def _walk_body(self, body: Sequence[Stmt]) -> None:
        for stmt in body:
            if self.witness is not None:
                return
            if isinstance(stmt, Assign):
                spine_self = _accum_spine(stmt)
                # key on the *static* statement so accumulation accesses
                # from different lanes recognize each other as exempt
                accum_key = id(stmt) if spine_self is not None else None
                claimed = False
                for leaf in _walk_expr(stmt.expr):
                    mark = None
                    if not claimed and leaf is spine_self:
                        mark = accum_key
                        claimed = True
                    self._record(leaf, False, mark)
                self._record(stmt.target, True, accum_key)
            elif isinstance(stmt, Loop):
                lo = self._eval(stmt.lower)
                hi = self._eval(stmt.upper)
                for v in range(lo, hi + 1):
                    self.env[stmt.index] = v
                    self._walk_body(stmt.body)
                self.env.pop(stmt.index, None)
            elif isinstance(stmt, Guard):
                if self._guard_member(stmt):
                    self._walk_body(stmt.body)
                else:
                    self._walk_body(stmt.else_body)
            else:
                raise _Unsupported(f"cannot analyze {type(stmt).__name__}")

    def _record(self, ref: Expr, is_write: bool, accum: Optional[int]) -> None:
        self.accesses += 1
        if self.accesses > self.cap:
            raise _BudgetExceeded
        if isinstance(ref, ScalarRef):
            key = (SCALAR_PREFIX + ref.name, 0)
            text = ref.name
        else:
            assert isinstance(ref, ArrayRef)
            strides = self.strides.get(ref.array)
            if strides is None or len(ref.indices) != len(strides):
                raise _Unsupported(f"undeclared array {ref.array!r}")
            elem = 0
            for k, sub in enumerate(ref.indices):
                elem += (self._eval(sub) - 1) * strides[k]
            key = (ref.array, elem)
            text = str(ref)
        classes = self.table.setdefault(key, {})
        cls = (is_write, accum)
        mine = classes.get(cls)
        if mine is None:
            classes[cls] = [(self.lane, text, dict(self.env))]
        elif len(mine) == 1 and mine[0][0] != self.lane:
            mine.append((self.lane, text, dict(self.env)))
        # check this access against every stored class
        for (o_write, o_accum), entries in classes.items():
            if not (is_write or o_write):
                continue
            other = next(
                (e for e in entries if e[0] != self.lane), None
            )
            if other is None:
                continue
            if accum is not None and accum == o_accum:
                self.has_exempt = True
                continue
            if self.witness is None:
                o_lane, o_text, o_env = other
                self.witness = RaceWitness(
                    axis=self.axis_loop.index,
                    iter_a=o_lane,
                    iter_b=self.lane,
                    array=key[0],
                    element=key[1],
                    ref_a=o_text,
                    ref_b=text,
                    write_a=o_write,
                    write_b=is_write,
                    env_a=tuple(sorted(o_env.items())),
                    env_b=tuple(sorted(self.env.items())),
                    exact=True,
                )


# -- the analyzer -------------------------------------------------------------


class _Analyzer:
    def __init__(
        self, program: Program, params: Mapping[str, int], concrete_cap: int
    ) -> None:
        self.program = program
        self.params = params
        self.concrete_cap = concrete_cap
        self.strides = _strides(program, params)
        self.verdicts: list[AxisVerdict] = []

    def run(self) -> tuple[AxisVerdict, ...]:
        for nest, stmt in enumerate(self.program.body):
            self._visit(stmt, nest, (), [stmt], {})
        return tuple(self.verdicts)

    def _visit(
        self,
        stmt: Stmt,
        nest: int,
        path: tuple[str, ...],
        chain: list[Stmt],
        ranges: dict[str, tuple[int, int]],
    ) -> None:
        if isinstance(stmt, Guard):
            for s in stmt.body + stmt.else_body:
                self._visit(s, nest, path, chain + [s], ranges)
            return
        if not isinstance(stmt, Loop):
            return
        verdict = self._classify(stmt, nest, path + (stmt.index,), chain, ranges)
        self.verdicts.append(verdict)
        try:
            lo_r = _interval(stmt.lower.affine(), self.params, ranges)
            hi_r = _interval(stmt.upper.affine(), self.params, ranges)
            rng = (lo_r[0], hi_r[1])
        except (_Unsupported, AnalysisError, NotAffineError):
            rng = None
        inner = dict(ranges)
        if rng is not None:
            inner[stmt.index] = rng
        for s in stmt.body:
            self._visit(s, nest, path + (stmt.index,), chain + [s], inner)

    def _classify(
        self,
        loop: Loop,
        nest: int,
        path: tuple[str, ...],
        chain: list[Stmt],
        outer: dict[str, tuple[int, int]],
    ) -> AxisVerdict:
        depth = len(path) - 1

        def verdict(kind, reason, witness=None, reductions=(), exact=True):
            return AxisVerdict(
                nest=nest, path=path, index=loop.index, depth=depth,
                verdict=kind, reason=reason, witness=witness,
                reduction_targets=tuple(sorted(set(reductions))), exact=exact,
            )

        try:
            lo_r = _interval(loop.lower.affine(), self.params, outer)
            hi_r = _interval(loop.upper.affine(), self.params, outer)
        except (_Unsupported, AnalysisError, NotAffineError) as exc:
            return verdict("unknown", f"bounds not analyzable: {exc}", exact=False)
        rng = (lo_r[0], hi_r[1])
        span = rng[1] - rng[0]
        if span <= 0:
            return verdict("doall", "at most one iteration")
        # an axis whose own bounds vary with an enclosing variable
        # (triangular nest) is analyzed over its rectangular hull; any
        # witness found there may name phantom iterations, so the
        # symbolic tier's answer cannot count as exact
        rng_exact = lo_r[0] == lo_r[1] and hi_r[0] == hi_r[1]

        # symbolic tier first: for rectangular spaces its answers are
        # already exact proofs/witnesses and cost no enumeration
        symbolic = self._classify_symbolic(loop, outer, rng, verdict, rng_exact)
        if symbolic.exact:
            return symbolic

        # inexact (triangular bounds, guards, solver budget): decide by
        # exhaustive enumeration when the space is small enough
        space = self._space_estimate(chain, loop, outer, rng)
        if space is not None and space <= self.concrete_cap:
            try:
                checker = _ConcreteChecker(
                    chain, loop, self.params, self.strides, self.concrete_cap
                )
                kind, witness = checker.run()
                if kind == "serial":
                    return verdict(
                        "serial",
                        "cross-lane dependence (exhaustive check)",
                        witness=witness,
                    )
                if kind == "reduction":
                    reductions = self._reduction_targets(loop, outer, rng)
                    return verdict(
                        "reduction",
                        "accumulation-only conflicts (exhaustive check)",
                        reductions=reductions,
                    )
                return verdict("doall", "no cross-lane conflicts (exhaustive check)")
            except (_BudgetExceeded, _Unsupported):
                pass  # keep the conservative symbolic answer

        return symbolic

    def _space_estimate(
        self,
        chain: Sequence[Stmt],
        loop: Loop,
        outer: Mapping[str, tuple[int, int]],
        rng: tuple[int, int],
    ) -> Optional[int]:
        """Upper bound on accesses the concrete checker would record.

        ``None`` means "unbounded as far as we can tell" (an enclosing
        loop without an analyzable range) — the concrete tier is skipped
        rather than burning its budget on a hopeless walk.
        """
        lanes = rng[1] - rng[0] + 1
        total = lanes
        for node in chain:
            if isinstance(node, Loop) and node is not loop:
                r = outer.get(node.index)
                if r is None:
                    return None
                total *= max(1, r[1] - r[0] + 1)
        try:
            collector = _Collector(self.params, self.strides)
            known = dict(outer)
            known[loop.index] = rng
            collector.collect(loop.body, known)
        except _Unsupported:
            # outside the symbolic subset: the concrete walk may still
            # succeed, so allow it whenever the enclosing space alone is
            # small (its own budget guard bounds the rest)
            return total if total <= self.concrete_cap else None
        return total * max(1, collector.per_lane)

    def _collect_axis(
        self,
        loop: Loop,
        outer: Mapping[str, tuple[int, int]],
        rng: tuple[int, int],
    ) -> _Collector:
        collector = _Collector(self.params, self.strides)
        known = dict(outer)
        known[loop.index] = rng
        collector.collect(loop.body, known)
        return collector

    def _reduction_targets(
        self,
        loop: Loop,
        outer: Mapping[str, tuple[int, int]],
        rng: tuple[int, int],
    ) -> tuple[str, ...]:
        try:
            collector = self._collect_axis(loop, outer, rng)
        except _Unsupported:
            return ()
        return tuple(
            r.text for r in collector.refs
            if r.accum is not None and r.is_write
        )

    def _classify_symbolic(
        self, loop, outer, rng, verdict, rng_exact: bool = True
    ) -> AxisVerdict:
        axis = loop.index
        span = rng[1] - rng[0]
        try:
            collector = self._collect_axis(loop, outer, rng)
        except _Unsupported as exc:
            return verdict("unknown", f"outside affine subset: {exc.reason}",
                           exact=False)
        by_array: dict[str, list[_Ref]] = {}
        for r in collector.refs:
            by_array.setdefault(r.array, []).append(r)
        exact_space = collector.exact and rng_exact
        has_exempt = False
        best_inexact: Optional[tuple[str, str]] = None
        for refs in by_array.values():
            for i, f in enumerate(refs):
                for g in refs[i:]:
                    if not (f.is_write or g.is_write):
                        continue
                    # the executor's conservative screen first: a False
                    # is already a proof of independence
                    if not lane_conflict(
                        f.const, f.terms, g.const, g.terms,
                        axis, span, rng[0], outer, collector.inner,
                    ):
                        continue
                    exempt = f.accum is not None and f.accum == g.accum
                    result = _solve_pair(
                        f, g, axis, rng, outer, collector.inner, exact_space
                    )
                    if not result.conflict:
                        if result.proved:
                            continue  # screen overturned exactly
                        if not exempt:
                            best_inexact = best_inexact or (f.text, g.text)
                        continue
                    if exempt:
                        has_exempt = True
                        continue
                    if result.witness is None:
                        best_inexact = best_inexact or (f.text, g.text)
                        continue
                    return verdict(
                        "serial",
                        f"cross-lane dependence between {f.text} and {g.text}",
                        witness=result.witness,
                        exact=exact_space and result.witness.exact,
                    )
        if best_inexact is not None:
            return verdict(
                "serial",
                "possible cross-lane dependence between "
                f"{best_inexact[0]} and {best_inexact[1]} (witness search "
                "inconclusive)",
                exact=False,
            )
        if has_exempt:
            reductions = [
                r.text for r in collector.refs
                if r.accum is not None and r.is_write
            ]
            return verdict(
                "reduction", "accumulation-only conflicts",
                reductions=reductions, exact=exact_space,
            )
        return verdict(
            "doall", "no cross-lane conflicts", exact=exact_space
        )


def bind_params(
    program: Program, params: Optional[Mapping[str, int]] = None
) -> dict[str, int]:
    """Complete a parameter binding, pinning unbound params to 16."""
    bound = dict(params or {})
    for name in program.params:
        bound.setdefault(name, DEFAULT_PARAM)
    return bound


def analyze_parallelism(
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    concrete_cap: int = CONCRETE_CAP,
) -> ParallelismProfile:
    """Classify every loop axis of ``program`` at concrete sizes."""
    bound = bind_params(program, params)
    with span("parallelism", program=program.name) as sp:
        verdicts = _Analyzer(program, bound, concrete_cap).run()
        counts = {k: 0 for k in VERDICTS}
        for v in verdicts:
            counts[v.verdict] += 1
        metrics.inc("analysis.parallelism.runs")
        metrics.inc("analysis.parallelism.axes", len(verdicts))
        metrics.inc("analysis.parallelism.doall", counts["doall"])
        metrics.inc("analysis.parallelism.reduction", counts["reduction"])
        metrics.inc("analysis.parallelism.serial", counts["serial"])
        metrics.inc(
            "analysis.parallelism.races",
            sum(1 for v in verdicts if v.witness is not None),
        )
        sp.attrs.update(axes=len(verdicts), serial=counts["serial"])
        return ParallelismProfile(
            program_name=program.name,
            params=tuple(sorted(bound.items())),
            verdicts=verdicts,
        )
