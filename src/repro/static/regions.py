"""Symbolic array-region hulls and their measures.

The reuse-distance of a long-range reuse is the volume of data touched
between the two accesses.  For affine loop nests that volume is a union
of per-array rectangular *hulls*: per dimension an affine ``[lo, hi]``
obtained by interval arithmetic over the enclosing loop bounds — the
same elimination the IR linter's :func:`~repro.verify.ir_verifier.
affine_range` performs, generalized with an *iteration window* so "the
data touched by ``w`` consecutive iterations of loop level ``l``" is
expressible.  Hulls over-approximate (a triangular footprint gets its
bounding box), which keeps every derived distance a conservative upper
estimate — the direction the property suite certifies.

Guarded and triangular loops resolve through the same conservative
interval machinery as :mod:`repro.analysis.constraint`'s alignment math:
indeterminate symbolic comparisons fall back to a large-parameter probe
and mark the hull inexact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..lang import Affine, Assumptions, DEFAULT_PARAM_MIN
from .model import LoopCtx, StaticRef
from .poly import ONE, Poly

#: probe point for indeterminate comparisons: large enough that the
#: dominant parameter term decides
_PROBE = 10**4


def _probe_env(forms: Iterable[Affine]) -> dict[str, int]:
    names: set[str] = set()
    for f in forms:
        names.update(f.variables())
    return {n: _PROBE for n in names}


def affine_min(a: Affine, b: Affine, assume: Assumptions) -> tuple[Affine, bool]:
    """Symbolic min; falls back to a numeric probe (then inexact)."""
    cmp = a.compare(b, assume)
    if cmp is not None:
        return (a if cmp <= 0 else b), True
    env = _probe_env((a, b))
    return (a if a.evaluate(env) <= b.evaluate(env) else b), False


def affine_max(a: Affine, b: Affine, assume: Assumptions) -> tuple[Affine, bool]:
    """Symbolic max; falls back to a numeric probe (then inexact)."""
    cmp = a.compare(b, assume)
    if cmp is not None:
        return (a if cmp >= 0 else b), True
    env = _probe_env((a, b))
    return (a if a.evaluate(env) >= b.evaluate(env) else b), False


@dataclass(frozen=True)
class Hull:
    """A rectangular symbolic region of one array.

    ``dims`` holds inclusive affine ``[lo, hi]`` per dimension; the forms
    mention program parameters only (callers eliminate loop indices via
    :func:`ref_hull` before unioning across references).
    """

    array: str
    dims: tuple[tuple[Affine, Affine], ...]
    exact: bool = True

    def measure(self) -> Poly:
        """Element count ``prod(hi - lo + 1)`` as a polynomial."""
        out = ONE
        for lo, hi in self.dims:
            out = out * Poly.from_affine(hi - lo + 1)
        return out

    def measure_at(self, env: Mapping[str, int]) -> float:
        """Element count at a concrete size, clamping empty dims to 0."""
        out = 1.0
        for lo, hi in self.dims:
            width = float((hi - lo).evaluate(env)) + 1.0
            if width <= 0:
                return 0.0
            out *= width
        return out


def eliminate(
    form: Affine,
    scope: Sequence[LoopCtx],
    start: int = 0,
    window: Optional[tuple[int, int]] = None,
) -> tuple[Affine, Affine]:
    """Symbolic [min, max] of ``form`` eliminating scope levels >= start.

    ``window=(level, w)`` treats that level's index ``i`` as ranging over
    the ``w``-iteration window ``[i, i + w - 1]`` instead of its full
    range — the index symbol itself survives as the window anchor (it
    cancels in widths and aligns positions across references).  Inner
    levels substitute innermost-first so triangular bounds resolve, as
    in the linter's ``affine_range``.
    """
    lo, hi = form, form
    for level in range(len(scope) - 1, start - 1, -1):
        ctx = scope[level]
        if window is not None and level == window[0]:
            b_lo: Union[Affine, int] = Affine.var(ctx.index)
            b_hi: Union[Affine, int] = Affine.var(ctx.index) + (window[1] - 1)
        else:
            b_lo, b_hi = ctx.lo, ctx.hi
        c = lo.coeff(ctx.index)
        if c != 0:
            lo = lo.substitute({ctx.index: b_lo if c > 0 else b_hi})
        c = hi.coeff(ctx.index)
        if c != 0:
            hi = hi.substitute({ctx.index: b_hi if c > 0 else b_lo})
    return lo, hi


def ref_hull(
    ref: StaticRef,
    start: int = 0,
    window: Optional[tuple[int, int]] = None,
) -> Hull:
    """The hull of ``ref``'s accesses over scope levels >= ``start``.

    Levels outside ``start`` (and the window anchor) survive as symbols;
    use :func:`finalize` to reduce the hull to parameter-only widths.
    """
    dims = tuple(eliminate(s, ref.scope, start, window) for s in ref.subs)
    exact = all(c.exact for c in ref.scope[start:])
    return Hull(ref.array, dims, exact)


def finalize(hull: Hull, scope: Sequence[LoopCtx], assume: Assumptions) -> Hull:
    """Eliminate leftover index symbols, maximizing each dim's width.

    After a windowed elimination the bounds may still mention outer loop
    indices (and the window anchor).  For measures only widths matter, so
    each dimension is replaced by ``[1, max width]`` over the remaining
    scope — conservative for triangular shapes, exact for rectangular
    ones (where the leftover symbols cancel in the width).
    """
    index_names = {c.index for c in scope}
    dims: list[tuple[Affine, Affine]] = []
    exact = hull.exact
    for lo, hi in hull.dims:
        if not (lo.depends_on(index_names) or hi.depends_on(index_names)):
            dims.append((lo, hi))  # already parameter-only: keep positions
            continue
        width = hi - lo + 1
        if width.depends_on(index_names):
            w_lo, w_hi = eliminate(width, scope, 0)
            width = w_hi
            exact = False
        dims.append((Affine.constant(1), width))
    return Hull(hull.array, tuple(dims), exact)


def union_hulls(hulls: Sequence[Hull], assume: Assumptions) -> Hull:
    """Per-dimension bounding box of same-array hulls."""
    assert hulls and all(h.array == hulls[0].array for h in hulls)
    dims = list(hulls[0].dims)
    exact = all(h.exact for h in hulls)
    for h in hulls[1:]:
        for k, (lo, hi) in enumerate(h.dims):
            cur_lo, cur_hi = dims[k]
            new_lo, e1 = affine_min(cur_lo, lo, assume)
            new_hi, e2 = affine_max(cur_hi, hi, assume)
            exact = exact and e1 and e2
            dims[k] = (new_lo, new_hi)
    return Hull(hulls[0].array, tuple(dims), exact)


def index_probe(
    scope: Sequence[LoopCtx], params: Iterable[str]
) -> dict[str, int]:
    """A probe assignment giving every loop index its mid-range value.

    Parameter-only :class:`~repro.lang.Assumptions` cannot compare forms
    that mention loop indices (``i - 2`` vs ``1``), but the scope knows
    each index's range; anchoring indices at their midpoints (outer
    levels first, so triangular bounds resolve) lets overlap tests make a
    generic-iteration decision instead of giving up.
    """
    env = {p: _PROBE for p in params}
    for ctx in scope:
        lo = ctx.lo.evaluate(env)
        hi = ctx.hi.evaluate(env)
        env[ctx.index] = int((lo + hi) // 2)
    return env


def union_disjoint(
    hulls: Sequence[Hull],
    assume: Assumptions,
    probe: Optional[Mapping[str, int]] = None,
) -> list[Hull]:
    """Union hulls greedily, keeping provably disjoint groups apart.

    A single bounding box over a row ``[1,N] x {i}`` and a point
    ``{i} x {1}`` would cover the whole ``N x N`` plane; footprints built
    from mixed row/column references (fused nests are full of them) need
    the sum of the two shapes instead.  Each input hull merges into the
    first group it may overlap; the result is a list of pairwise
    provably-disjoint boxes whose measures can be summed.  ``probe``
    (see :func:`index_probe`) settles index-dependent comparisons at a
    generic large iteration.
    """
    groups: list[Hull] = []
    for h in hulls:
        for k, g in enumerate(groups):
            if hulls_overlap(g, h, assume, probe) is not False:
                groups[k] = union_hulls([g, h], assume)
                break
        else:
            groups.append(h)
    return groups


def hulls_overlap(
    a: Hull,
    b: Hull,
    assume: Assumptions,
    probe: Optional[Mapping[str, int]] = None,
) -> Optional[bool]:
    """True/False when provable, None when indeterminate.

    With a ``probe`` environment, indeterminate per-dimension gaps are
    decided at the probe point instead (an inexact but generically
    correct answer: a row ``[2, N-1] x {i-2}`` and a point
    ``{i-2} x {1}`` are disjoint at every interior iteration).
    """
    determinate = True
    for (alo, ahi), (blo, bhi) in zip(a.dims, b.dims):
        c1 = ahi.compare(blo, assume)
        c2 = bhi.compare(alo, assume)
        if c1 == -1 or c2 == -1:
            return False
        if c1 is None or c2 is None:
            if probe is not None:
                if (
                    (ahi - blo).evaluate(probe) < 0
                    or (bhi - alo).evaluate(probe) < 0
                ):
                    return False
            determinate = False
    return True if determinate else None


def hull_contains(a: Hull, b: Hull, assume: Assumptions) -> bool:
    """Provably ``a`` superset-of ``b`` (conservative: False when unsure)."""
    for (alo, ahi), (blo, bhi) in zip(a.dims, b.dims):
        if alo.compare(blo, assume) == 1:
            return False
        if ahi.compare(bhi, assume) == -1:
            return False
        if alo.compare(blo, assume) is None or ahi.compare(bhi, assume) is None:
            return False
    return True


def intersect_measure(a: Hull, b: Hull, assume: Assumptions) -> Poly:
    """Element count of the box intersection of two same-array hulls.

    Callers check :func:`hulls_overlap` first; the per-dim width
    ``min(hi) - max(lo) + 1`` is taken at face value symbolically and
    clamped by the evaluator's count clamping at concrete sizes.
    """
    out = ONE
    for (alo, ahi), (blo, bhi) in zip(a.dims, b.dims):
        lo, _ = affine_max(alo, blo, assume)
        hi, _ = affine_min(ahi, bhi, assume)
        out = out * Poly.from_affine(hi - lo + 1)
    return out


def footprint_by_array(
    refs: Sequence[StaticRef], assume: Assumptions
) -> dict[str, Hull]:
    """Finalized per-array union hull of every reference's full region."""
    grouped: dict[str, list[Hull]] = {}
    for ref in refs:
        h = finalize(ref_hull(ref, 0), ref.scope, assume)
        grouped.setdefault(ref.array, []).append(h)
    return {
        name: union_hulls(hs, assume) for name, hs in sorted(grouped.items())
    }


def measure_sum(hulls: Mapping[str, Hull]) -> Poly:
    """Total element count across (disjoint) per-array hulls."""
    out = Poly()
    for h in hulls.values():
        out = out + h.measure()
    return out


def default_assumptions(
    assume: Union[int, Assumptions, None] = None
) -> Assumptions:
    if assume is None:
        return Assumptions(default=DEFAULT_PARAM_MIN)
    if isinstance(assume, int):
        return Assumptions(default=assume)
    return assume
