"""Source-level emission of regrouping decisions.

The paper applies regrouping as a source-to-source transformation (its
Fig. 7 writes the merged Fortran array ``D``).  The simulator consumes
regrouping as a :class:`Layout`; this module additionally *emits the
rewritten program* for the groups our language can express: uniform
single-level interleaves, where a group of ``m`` same-shaped arrays
becomes one merged array with an extra constant-``m`` dimension at the
interleave level —

    A[j, i], B[j, i]   --interleave@level0-->   D[c, j, i]  (c in 1..2)
    A[j, i], B[j, i]   --interleave@level1-->   D[j, c, i]

Nested (Fig. 7-style non-uniform) trees are not expressible as a single
rectangular array — exactly the Fortran limitation the paper points out
("popular programming languages such as Fortran do not allow arrays of
non-uniform dimensions... not a problem when regrouping is applied by the
back-end compiler") — so those groups are left to the layout engine and
reported in the result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ...lang import (
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    Guard,
    Loop,
    Program,
    Stmt,
    UnaryOp,
)
from .algorithm import GroupNode, RegroupPlan


@dataclass(frozen=True)
class SourceRegrouping:
    """Result of emitting a plan at source level."""

    program: Program
    #: member array -> (merged name, 1-based member ordinal, level)
    mapping: dict[str, tuple[str, int, int]]
    #: groups that could not be expressed as rectangular arrays
    unexpressible: tuple[tuple[str, ...], ...]


def _expressible(node: GroupNode) -> bool:
    return all(not isinstance(c, GroupNode) for c in node.children)


def emit_source(plan: RegroupPlan, merged_prefix: str = "GRP") -> SourceRegrouping:
    """Rewrite the plan's program with merged arrays where expressible."""
    program = plan.program
    mapping: dict[str, tuple[str, int, int]] = {}
    unexpressible: list[tuple[str, ...]] = []
    new_decls: list[ArrayDecl] = []
    taken = set(program.array_names())
    counter = 0
    for item in plan.items:
        if isinstance(item, str):
            new_decls.append(program.array(item))
            continue
        if not _expressible(item):
            unexpressible.append(tuple(item.leaves()))
            new_decls.extend(program.array(name) for name in item.leaves())
            continue
        members = [c for c in item.children if isinstance(c, str)]
        counter += 1
        merged = f"{merged_prefix}{counter}"
        while merged in taken:
            counter += 1
            merged = f"{merged_prefix}{counter}"
        taken.add(merged)
        base = program.array(members[0])
        extents = (
            base.extents[: item.level]
            + (Const(len(members)),)
            + base.extents[item.level :]
        )
        new_decls.append(ArrayDecl(merged, extents, elem_size=base.elem_size))
        for ordinal, name in enumerate(members, start=1):
            mapping[name] = (merged, ordinal, item.level)

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, ArrayRef):
            indices = tuple(rewrite_expr(e) for e in expr.indices)
            entry = mapping.get(expr.array)
            if entry is None:
                return ArrayRef(expr.array, indices)
            merged, ordinal, level = entry
            new_indices = (
                indices[:level] + (Const(ordinal),) + indices[level:]
            )
            return ArrayRef(merged, new_indices)
        if isinstance(expr, BinOp):
            return BinOp(expr.op, rewrite_expr(expr.left), rewrite_expr(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite_expr(expr.operand))
        if isinstance(expr, Call):
            return Call(expr.func, tuple(rewrite_expr(a) for a in expr.args))
        return expr

    def rewrite_stmt(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Assign):
            target = stmt.target
            if isinstance(target, ArrayRef):
                target = rewrite_expr(target)
            return Assign(target, rewrite_expr(stmt.expr))
        if isinstance(stmt, Loop):
            return replace(
                stmt,
                lower=rewrite_expr(stmt.lower),
                upper=rewrite_expr(stmt.upper),
                body=tuple(rewrite_stmt(s) for s in stmt.body),
            )
        if isinstance(stmt, Guard):
            return Guard(
                stmt.index,
                stmt.intervals,
                tuple(rewrite_stmt(s) for s in stmt.body),
                tuple(rewrite_stmt(s) for s in stmt.else_body),
            )
        return stmt

    rewritten = replace(
        program,
        arrays=tuple(new_decls),
        body=tuple(rewrite_stmt(s) for s in program.body),
    )
    return SourceRegrouping(
        program=rewritten,
        mapping=mapping,
        unexpressible=tuple(unexpressible),
    )
