"""Access-pattern analysis feeding data regrouping (paper §3, Fig. 8).

For every array this collects, per data dimension:

* which loop indexes it in each reference (with the loop's nesting depth),
  giving the Fig. 8 step-1 order rule: an array cannot be grouped at a
  dimension whose subscript is iterated by a loop *inner* to the loop
  iterating a lower (faster-varying) dimension;
* the *phase key* per grouping level: grouping at level L interleaves
  blocks made of dimensions 0..L-1, and is profitable only between arrays
  that are always accessed together within the loops that sweep dimension
  L — so the phase key of a reference at level L is the identity of the
  loop indexing dimension L.

Only *wide* loops (symbolic trip count, or a large constant) define
phases: the paper partitions the program into phases "each of which
accesses data that is larger than cache", so peeled boundary iterations
and small wrap loops must not break up otherwise always-together arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...lang import (
    ArrayRef,
    Assign,
    Guard,
    Loop,
    Program,
    Stmt,
    array_reads,
)


#: constant-trip loops below this count do not constitute a phase
WIDE_TRIP_THRESHOLD = 16


def _is_wide(loop: Loop) -> bool:
    trip = loop.upper.affine() - loop.lower.affine()
    if not trip.is_constant():
        return True
    return trip.int_value() + 1 >= WIDE_TRIP_THRESHOLD


@dataclass
class ArrayAccessInfo:
    """Aggregated regrouping-relevant facts about one array."""

    name: str
    ndim: int
    #: dims where the Fig. 8 order rule forbids grouping (0-based level:
    #: "cannot group at dimension d" disables interleave level d-1 .. hmm —
    #: we store the *grouping level* L that is disabled).
    ungroupable_levels: set[int] = field(default_factory=set)
    #: per grouping level L: set of fine (loop-identity) phase keys
    phase_keys: dict[int, frozenset[int]] = field(default_factory=dict)
    #: per grouping level L: set of coarse (top-level phase) keys
    coarse_keys: dict[int, frozenset[int]] = field(default_factory=dict)
    _phase_sets: dict[int, set[int]] = field(default_factory=dict)
    _coarse_sets: dict[int, set[int]] = field(default_factory=dict)

    def freeze(self) -> None:
        self.phase_keys = {
            level: frozenset(keys) for level, keys in self._phase_sets.items()
        }
        self.coarse_keys = {
            level: frozenset(keys) for level, keys in self._coarse_sets.items()
        }

    def signature(self, level: int, fine: bool = True) -> frozenset[int]:
        table = self.phase_keys if fine else self.coarse_keys
        return table.get(level, frozenset())


class _Walker:
    def __init__(self, program: Program, strict: bool = False) -> None:
        self.strict = strict
        self.program = program
        self.info: dict[str, ArrayAccessInfo] = {
            a.name: ArrayAccessInfo(a.name, a.ndim) for a in program.arrays
        }
        #: stack of (loop id, loop index name, wide) from outermost in
        self.loop_stack: list[tuple[int, str, bool]] = []
        self.current_item: int = 0

    # -- reference handling ------------------------------------------------

    def ref(self, ref: ArrayRef) -> None:
        info = self.info[ref.array]
        depth_of: dict[str, int] = {
            name: depth for depth, (_, name, _w) in enumerate(self.loop_stack)
        }
        id_of: dict[str, int] = {name: lid for (lid, name, _w) in self.loop_stack}
        wide_of: dict[str, bool] = {name: w for (_, name, w) in self.loop_stack}
        dim_vars: list[Optional[str]] = []
        for sub in ref.index_affines():
            candidates = [v for v in sub.variables() if v in depth_of]
            if len(candidates) == 1:
                dim_vars.append(candidates[0])
            else:
                dim_vars.append(None)  # invariant or complex subscript
        # Fig. 8 step 1 (order rule): for dims a < b (a faster-varying),
        # if dim a's loop is OUTER to dim b's loop, the traversal order
        # conflicts with interleaving blocks of dims < b: disable grouping
        # at levels >= b's block level... i.e. level b-1 and any deeper
        # block containing dim a is fine; we disable exactly level b-1
        # upward through b-1 (interleave of dims 0..b-1 blocks).
        for a in range(len(dim_vars)):
            for b in range(a + 1, len(dim_vars)):
                va, vb = dim_vars[a], dim_vars[b]
                if va is None or vb is None:
                    continue
                if depth_of[va] < depth_of[vb]:
                    info.ungroupable_levels.add(b)
        # phase keys per level: level L's phase is the loop indexing dim L,
        # counted only when that loop is wide enough to be a real phase.
        # Fine keys identify the sweeping loop itself (Fig. 7's inner-loop
        # distinction); coarse keys identify the enclosing top-level phase
        # (the paper's "sequence of computation phases").
        for level in range(info.ndim):
            if level >= len(dim_vars) or dim_vars[level] is None:
                continue
            var = dim_vars[level]
            if not wide_of[var]:
                continue
            info._phase_sets.setdefault(level, set()).add(id_of[var])
            info._coarse_sets.setdefault(level, set()).add(self.current_item)

    # -- traversal ---------------------------------------------------------

    def stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            for r in array_reads(stmt.expr):
                self.ref(r)
            if isinstance(stmt.target, ArrayRef):
                self.ref(stmt.target)
        elif isinstance(stmt, Loop):
            self.loop_stack.append((id(stmt), stmt.index, _is_wide(stmt)))
            for s in stmt.body:
                self.stmt(s)
            self.loop_stack.pop()
        elif isinstance(stmt, Guard):
            for s in stmt.body:
                self.stmt(s)
            for s in stmt.else_body:
                self.stmt(s)

    def _phase_ids(self) -> list[int]:
        """Partition top-level items into computation phases.

        A phase is a maximal run of consecutive items that (a) share a
        fusion-unit label (segments of one fused loop), or (b) have no
        name-level data conflict with the items already in the phase —
        i.e. they could execute together (the per-component sweeps of a
        distributed loop form one phase, matching the paper's "sequence
        of computation phases").
        """
        ids: list[int] = []
        phase = -1
        phase_reads: set[str] = set()
        phase_writes: set[str] = set()
        prev_label: Optional[str] = None

        def sets_of(stmt: Stmt) -> tuple[set[str], set[str]]:
            reads: set[str] = set()
            writes: set[str] = set()
            for node in stmt.walk():
                if isinstance(node, Assign):
                    for r in array_reads(node.expr):
                        reads.add(r.array)
                    if isinstance(node.target, ArrayRef):
                        writes.add(node.target.array)
            return reads, writes

        for stmt in self.program.body:
            label = stmt.label if isinstance(stmt, Loop) else None
            reads, writes = sets_of(stmt)
            same_label = label is not None and label == prev_label
            conflict = bool(
                (writes & (phase_reads | phase_writes)) | (reads & phase_writes)
            )
            if phase == -1 or (not same_label and conflict):
                phase += 1
                phase_reads, phase_writes = set(), set()
            phase_reads |= reads
            phase_writes |= writes
            ids.append(phase)
            prev_label = label
        return ids

    def run(self) -> dict[str, ArrayAccessInfo]:
        if self.strict:
            phases = list(range(len(self.program.body)))
        else:
            phases = self._phase_ids()
        for k, stmt in enumerate(self.program.body):
            self.current_item = phases[k]
            self.stmt(stmt)
        for info in self.info.values():
            info.freeze()
        return self.info


def analyze_access_patterns(
    program: Program, strict: bool = False
) -> dict[str, ArrayAccessInfo]:
    """Collect regrouping-relevant access information for every array.

    ``strict=True`` treats every top-level item as its own phase — the
    paper's purely conservative configuration (no useless data in any
    cache block, compile-time optimal).  The default groups consecutive
    conflict-free items into one phase, which additionally merges the
    symmetric per-component sweeps that maximal distribution produces;
    the only overhead this can introduce is partial cache lines at block
    boundaries (the paper notes that relaxing the useless-data constraint
    is where the NP-hard trade-offs start).
    """
    return _Walker(program, strict=strict).run()


def compatible_key(program: Program, name: str) -> tuple:
    """Compatibility class key: same rank and same symbolic extents.

    The paper allows sizes within a constant factor; after array splitting
    our benchmark arrays are exactly same-shaped, so we use extent equality
    (documented simplification).
    """
    decl = program.array(name)
    return (decl.ndim, tuple(decl.extent_affines()), decl.elem_size)
