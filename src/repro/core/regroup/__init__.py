"""Multi-level data regrouping (§3): the second half of the strategy."""

from .algorithm import (
    GroupNode,
    RegroupOptions,
    RegroupPlan,
    regroup_plan,
)
from .analysis import ArrayAccessInfo, analyze_access_patterns, compatible_key
from .codegen import SourceRegrouping, emit_source
from .layout import ArrayPlacement, Layout, default_layout, padded_layout

__all__ = [
    "ArrayAccessInfo",
    "ArrayPlacement",
    "GroupNode",
    "Layout",
    "RegroupOptions",
    "RegroupPlan",
    "SourceRegrouping",
    "analyze_access_patterns",
    "compatible_key",
    "default_layout",
    "emit_source",
    "padded_layout",
    "regroup_plan",
]
