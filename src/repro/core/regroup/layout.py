"""Memory layouts: from canonical element indices to byte addresses.

A :class:`Layout` assigns every array element a distinct byte address.
Computation reordering (fusion) changes the *trace*; data reordering
(regrouping, padding) changes the *layout*; the cache simulator consumes
both — which is exactly the paper's two-step decomposition.

Every layout this system produces is per-array affine: ``address(idx) =
offset + sum(strides[k] * (idx[k] - 1))`` in elements.  Interleaving two
arrays at the element level, for example, gives both a doubled innermost
stride and consecutive offsets.  Affinity keeps address generation fully
vectorized even for multi-million access traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ...interp.trace import AccessTrace
from ...lang import Program, SimulationError


@dataclass(frozen=True)
class ArrayPlacement:
    """Placement of one array: element offset + per-dimension strides.

    ``strides[k]`` multiplies ``(idx_k - 1)`` where ``k`` orders dimensions
    innermost-first (column-major canonical order).  Units are elements.
    """

    name: str
    shape: tuple[int, ...]  # concrete extents, innermost-first
    offset: int
    strides: tuple[int, ...]
    elem_size: int = 8


@dataclass
class Layout:
    """A complete memory layout for a program at a concrete input size."""

    placements: dict[str, ArrayPlacement]
    total_elems: int
    description: str = "default"

    def address_params(
        self, array_names: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-array decode tables aligned with trace array ids."""
        max_dims = max(len(self.placements[n].shape) for n in array_names)
        shapes = np.ones((len(array_names), max_dims), dtype=np.int64)
        strides = np.zeros((len(array_names), max_dims), dtype=np.int64)
        offsets = np.zeros(len(array_names), dtype=np.int64)
        for k, name in enumerate(array_names):
            p = self.placements[name]
            shapes[k, : len(p.shape)] = p.shape
            strides[k, : len(p.strides)] = p.strides
            offsets[k] = p.offset
        return shapes, strides, offsets

    def addresses(self, trace: AccessTrace, in_bytes: bool = True) -> np.ndarray:
        """Vectorized translation of a trace into addresses.

        The canonical element index is decomposed back into the subscript
        tuple (column-major divmod) and recombined with this layout's
        strides.
        """
        shapes, strides, offsets = self.address_params(trace.array_names)
        aid = trace.array_ids
        rem = trace.elems.copy()
        addr = offsets[aid].copy()
        ndims = shapes.shape[1]
        for k in range(ndims):
            extent = shapes[aid, k]
            idx = rem % extent
            rem //= extent
            addr += idx * strides[aid, k]
        if np.any(rem != 0):
            raise SimulationError("element index exceeded array shape in layout")
        if in_bytes:
            elem_sizes = np.asarray(
                [self.placements[n].elem_size for n in trace.array_names],
                dtype=np.int64,
            )
            return addr * elem_sizes[aid]
        return addr

    def check_bijective(self) -> None:
        """Verify no two elements share an address (test support).

        Walks every element of every array — intended for small sizes.
        """
        seen: dict[int, tuple[str, tuple[int, ...]]] = {}
        for p in self.placements.values():
            for flat in range(int(np.prod(p.shape))):
                rem = flat
                addr = p.offset
                idx = []
                for k, extent in enumerate(p.shape):
                    component = rem % extent
                    rem //= extent
                    addr += component * p.strides[k]
                    idx.append(component + 1)
                if addr in seen:
                    raise SimulationError(
                        f"layout collision at {addr}: {p.name}{tuple(idx)} vs {seen[addr]}"
                    )
                seen[addr] = (p.name, tuple(idx))

    def span_bytes(self) -> int:
        return self.total_elems * max(
            (p.elem_size for p in self.placements.values()), default=8
        )


def default_layout(program: Program, params: Mapping[str, int]) -> Layout:
    """Arrays placed back to back, column-major, no padding or grouping."""
    placements: dict[str, ArrayPlacement] = {}
    base = 0
    for decl in program.arrays:
        shape = decl.shape(params)
        strides = []
        acc = 1
        for extent in shape:
            strides.append(acc)
            acc *= extent
        placements[decl.name] = ArrayPlacement(
            decl.name, shape, base, tuple(strides), decl.elem_size
        )
        base += acc
    return Layout(placements, base, "default")


def padded_layout(
    program: Program,
    params: Mapping[str, int],
    pad_elems: int = 8,
) -> Layout:
    """Inter-array padding baseline (what the paper credits SGI's compiler
    with): arrays are offset by ``pad_elems`` extras to stagger their cache
    set mappings, reducing conflict misses without changing contiguity.
    """
    placements: dict[str, ArrayPlacement] = {}
    base = 0
    for k, decl in enumerate(program.arrays):
        shape = decl.shape(params)
        strides = []
        acc = 1
        for extent in shape:
            strides.append(acc)
            acc *= extent
        placements[decl.name] = ArrayPlacement(
            decl.name, shape, base, tuple(strides), decl.elem_size
        )
        # stagger each array by a different multiple of the pad so same-
        # shaped arrays never share cache-set phase
        base += acc + pad_elems * ((k % 7) + 1)
    return Layout(placements, base, f"padded({pad_elems})")
