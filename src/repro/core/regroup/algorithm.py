"""Multi-level inter-array data regrouping (paper §3, Fig. 8).

Arrays are first classified into *compatible* groups (same rank and
symbolic extents — the shape equality that holds after array splitting).
Within a class, a partition chain is computed from the outermost grouping
level inward: two arrays stay in the same partition at level L iff

* neither is forbidden at L by the access-order rule (Fig. 8 step 1), and
* they are *always accessed together* in the phases that sweep dimension
  L (conservative profitability: no useless data ever enters a cache
  block — the guarantee that makes regrouping compile-time optimal).

The resulting laminar partition family forms a tree per class; each node
interleaves its children's blocks at the deepest level at which its
members remain together.  ``materialize`` turns the tree into concrete
per-array affine placements (offset + strides), reproducing e.g. the
paper's Fig. 7 layout ``A[j,i] -> D[1,j,1,i]``, ``C[j,i] -> D[j,2,i]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from ...analysis.manager import cached_access_patterns
from ...lang import Program
from .analysis import ArrayAccessInfo, compatible_key
from .layout import ArrayPlacement, Layout


@dataclass
class GroupNode:
    """Interleave the children's blocks along grouping level ``level``.

    ``level`` counts contiguous inner dimensions per interleaved block:
    0 = element interleave, 1 = column blocks, ..., ndim-1 = outermost.
    """

    level: int
    children: list[Union["GroupNode", str]]

    def leaves(self) -> list[str]:
        out: list[str] = []
        for c in self.children:
            if isinstance(c, GroupNode):
                out.extend(c.leaves())
            else:
                out.append(c)
        return out

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}interleave@level{self.level}"]
        for c in self.children:
            if isinstance(c, GroupNode):
                lines.append(c.describe(indent + 1))
            else:
                lines.append(f"{pad}  {c}")
        return "\n".join(lines)


@dataclass
class RegroupOptions:
    """Configuration knobs (paper §4.1 implementation notes)."""

    #: smallest grouping level allowed; 1 reproduces the paper's SGI
    #: workaround of not interleaving at the innermost data dimension.
    min_level: int = 0
    #: largest grouping level allowed (None = ndim-1); the paper's Fortran
    #: limitation sometimes forbade outer-dimension grouping.
    max_level: Optional[int] = None
    #: levels below this use fine (per-loop) accessed-together keys, the
    #: Fig. 7 distinction between inner loops of one phase; levels at or
    #: above use coarse (per-phase) keys, the paper's computation phases.
    fine_levels: int = 1
    #: strict phases (one per top-level item): the paper's conservative
    #: guarantee — no useless data in any cache block, compile-time
    #: optimal.  The default merges consecutive conflict-free items.
    strict: bool = False


@dataclass
class RegroupPlan:
    """The symbolic outcome: a forest of group trees plus singletons."""

    program: Program
    #: top-level layout items in declaration order: group trees or lone names
    items: list[Union[GroupNode, str]] = field(default_factory=list)

    def merged_array_count(self) -> int:
        return len(self.items)

    def group_count(self) -> int:
        return sum(1 for it in self.items if isinstance(it, GroupNode))

    def describe(self) -> str:
        lines = []
        for item in self.items:
            if isinstance(item, GroupNode):
                lines.append(item.describe())
            else:
                lines.append(item)
        return "\n".join(lines)

    # -- concrete placement ---------------------------------------------------

    def materialize(self, params: Mapping[str, int]) -> Layout:
        placements: dict[str, ArrayPlacement] = {}
        base = 0
        for item in self.items:
            if isinstance(item, str):
                decl = self.program.array(item)
                shape = decl.shape(params)
                strides: list[int] = []
                acc = 1
                for extent in shape:
                    strides.append(acc)
                    acc *= extent
                placements[item] = ArrayPlacement(
                    item, shape, base, tuple(strides), decl.elem_size
                )
                base += acc
            else:
                leaves = item.leaves()
                decl = self.program.array(leaves[0])
                shape = decl.shape(params)
                prefix = [1]
                for extent in shape:
                    prefix.append(prefix[-1] * extent)
                placed = _place(item, shape, prefix)
                for name, (offset, strides) in placed.items():
                    placements[name] = ArrayPlacement(
                        name,
                        shape,
                        base + offset,
                        tuple(strides),
                        self.program.array(name).elem_size,
                    )
                base += len(leaves) * prefix[len(shape)]
        return Layout(placements, base, "regrouped")


def _leafcount(node: Union[GroupNode, str]) -> int:
    return len(node.leaves()) if isinstance(node, GroupNode) else 1


def _place(
    node: GroupNode, shape: Sequence[int], prefix: Sequence[int]
) -> dict[str, tuple[int, list[int]]]:
    """Per-leaf (offset, strides) for one group tree.

    ``prefix[k]`` = product of extents of dims < k (the isolated stride).
    """
    ndim = len(shape)
    m = _leafcount(node)
    out: dict[str, tuple[int, list[int]]] = {}
    child_off = 0
    for child in node.children:
        if isinstance(child, GroupNode):
            sub = _place(child, shape, prefix)
        else:
            sub = {child: (0, [prefix[k] for k in range(ndim)])}
        mc = _leafcount(child)
        for name, (off, strides) in sub.items():
            new_strides = [
                strides[k] if k < node.level else m * prefix[k]
                for k in range(ndim)
            ]
            out[name] = (child_off + off, new_strides)
        child_off += mc * prefix[node.level]
    return out


def _unit_key(
    unit: Union[GroupNode, str],
    level: int,
    info: Mapping[str, ArrayAccessInfo],
    options: RegroupOptions,
) -> object:
    """Merge key of a unit at grouping level ``level``.

    A unit may merge with others at this level only when every leaf is
    groupable here and all leaves agree on a non-empty accessed-together
    signature — the conservative "always accessed together" criterion,
    lifted from arrays to already-formed groups.
    """
    leaves = unit.leaves() if isinstance(unit, GroupNode) else [unit]
    if level < options.min_level or (
        options.max_level is not None and level > options.max_level
    ):
        return ("solo", id(unit))
    fine = level < options.fine_levels
    sigs = set()
    for name in leaves:
        ai = info[name]
        if level in ai.ungroupable_levels:
            return ("solo", id(unit))
        sigs.add(ai.signature(level, fine=fine))
    if len(sigs) != 1 or not next(iter(sigs)):
        return ("solo", id(unit))
    return ("sig", next(iter(sigs)))


def regroup_plan(
    program: Program, options: Optional[RegroupOptions] = None
) -> RegroupPlan:
    """Run the Fig. 8 algorithm; returns the symbolic grouping decision.

    Groups are composed bottom-up: element-level (deepest) interleaving is
    formed first, then each outer level merges the units whose members are
    accessed together in every phase that sweeps that level.  Deeper
    grouping is strictly finer spatial reuse, and the bottom-up order
    yields the laminar structure the paper's step 3 requires (a class
    grouped at a dimension is fully grouped at all inner levels it
    reached, e.g. Fig. 7's ``D[1,j,1,i]`` / ``D[j,2,i]``).
    """
    options = options or RegroupOptions()
    info = cached_access_patterns(program, strict=options.strict)
    plan = RegroupPlan(program)
    # compatible classes, in declaration order
    classes: dict[tuple, list[str]] = {}
    class_order: list[tuple] = []
    for decl in program.arrays:
        key = compatible_key(program, decl.name)
        if key not in classes:
            classes[key] = []
            class_order.append(key)
        classes[key].append(decl.name)
    for key in class_order:
        ndim = key[0]
        units: list[Union[GroupNode, str]] = list(classes[key])
        for level in range(0, ndim):
            buckets: dict[object, list[Union[GroupNode, str]]] = {}
            order: list[object] = []
            for unit in units:
                ukey = _unit_key(unit, level, info, options)
                if ukey not in buckets:
                    buckets[ukey] = []
                    order.append(ukey)
                buckets[ukey].append(unit)
            merged: list[Union[GroupNode, str]] = []
            for ukey in order:
                bucket = buckets[ukey]
                if len(bucket) == 1:
                    merged.append(bucket[0])
                else:
                    merged.append(GroupNode(level, bucket))
            units = merged
        plan.items.extend(units)
    return plan
