"""The paper's primary contribution: reuse-based loop fusion, multi-level
data regrouping, and the pipeline combining them."""

from .fusion import FusionOptions, FusionReport, fuse_level, fuse_program
from .pipeline import (
    OPT_LEVELS,
    CompiledVariant,
    compile_pipeline,
    compile_variant,
    preliminary,
)
from .pm import (
    PIPELINES,
    PassManager,
    PipelineSpec,
    known_levels,
    resolve_pipeline,
)
from .regroup import (
    Layout,
    RegroupOptions,
    RegroupPlan,
    default_layout,
    padded_layout,
    regroup_plan,
)

__all__ = [
    "CompiledVariant",
    "FusionOptions",
    "FusionReport",
    "Layout",
    "OPT_LEVELS",
    "PIPELINES",
    "PassManager",
    "PipelineSpec",
    "RegroupOptions",
    "RegroupPlan",
    "compile_pipeline",
    "compile_variant",
    "known_levels",
    "resolve_pipeline",
    "default_layout",
    "fuse_level",
    "fuse_program",
    "padded_layout",
    "preliminary",
    "regroup_plan",
]
