"""The end-to-end global strategy (paper §4.1).

``compile_variant`` runs a program through a named optimization level:

* ``noopt`` — inline only (the measured "original" program);
* ``fusion`` / ``fusion1`` — preliminary passes + reuse-based fusion at
  all levels / one level, default data layout;
* ``regroup`` — preliminary passes + data regrouping without fusion
  (ablation: "grouping may see little opportunity without fusion");
* ``new`` — the paper's full strategy: fusion then regrouping
  (also reachable as ``fusion+regroup``);
* ``sgi`` — the SGI-compiler stand-in from :mod:`repro.baselines`;
* ``mckinley`` — the restricted-fusion comparator from §5.

The result carries the transformed program, a layout factory (regrouping
and padding are *layouts*, so they compose with any trace), and the
transformation reports the benchmarks introspect (loop counts, array
counts — §4.4's structural numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Union

from ..lang import Program, TransformError, validate
from ..obs import current_collector, span
from ..verify import PassVerifier
from ..transform import (
    distribute_loops,
    inline_procedures,
    propagate_scalar_constants,
    simplify_program,
    split_arrays,
    unroll_small_loops,
)
from .fusion import FusionOptions, FusionReport, fuse_program
from .regroup import (
    Layout,
    RegroupOptions,
    RegroupPlan,
    default_layout,
    regroup_plan,
)

#: the optimization levels the harness and benchmarks use
OPT_LEVELS = ("noopt", "sgi", "mckinley", "fusion1", "fusion", "regroup", "new")


@dataclass
class CompiledVariant:
    """A program compiled at one optimization level."""

    level: str
    program: Program
    layout_factory: Callable[[Mapping[str, int]], Layout]
    fusion_report: Optional[FusionReport] = None
    regroup: Optional[RegroupPlan] = None
    #: structural checkpoints along the pipeline (for §4.4-style tables)
    stages: dict[str, dict] = field(default_factory=dict)

    def layout(self, params: Mapping[str, int]) -> Layout:
        return self.layout_factory(params)


def preliminary(
    program: Program,
    max_unroll: int = 5,
    distribute: bool = True,
    verifier: Optional[PassVerifier] = None,
) -> Program:
    """§4.1 preliminary passes: inline, unroll+split, distribute, constprop.

    ``distribute=False`` skips maximal loop distribution — used by the
    regroup-only ablation, which should regroup the *original* loop
    structure rather than a scattered one.  A ``verifier`` certifies
    every pass in turn (raising :class:`~repro.verify.PassLegalityError`
    on the first broken dependence).
    """

    p = _pass("inline", inline_procedures, program, verifier=verifier)
    p = _pass("unroll", unroll_small_loops, p, max_unroll, verifier=verifier)
    p = _pass("split_arrays", split_arrays, p, max_unroll, verifier=verifier)
    if distribute:
        p = _pass("distribute", distribute_loops, p, verifier=verifier)
    p = _pass("constprop", propagate_scalar_constants, p, verifier=verifier)
    p = _pass("simplify", simplify_program, p, verifier=verifier)
    return validate(p)


def _pass(name, fn, *args, verifier=None, strict=None, **kwargs) -> Program:
    """Run one pass under a span; certify it when a verifier is active.

    The span carries the resulting program's structural counts (loop
    nests, arrays, statements) as attributes, so profiles show not only
    how long a pass took but what it left behind.
    """
    with span(name) as sp:
        result = fn(*args, **kwargs)
        if current_collector() is not None and isinstance(result, Program):
            stats = result.stats()
            for key in ("loop_nests", "loops", "arrays", "statements"):
                if key in stats:
                    sp.attrs[key] = stats[key]
    if verifier is not None:
        checked = result.program if isinstance(result, CompiledVariant) else result
        with span("verify", certifies=name):
            verifier.check(name, checked, strict=strict)
    return result


def compile_variant(
    program: Program,
    level: str,
    fusion_options: Optional[FusionOptions] = None,
    regroup_options: Optional[RegroupOptions] = None,
    max_unroll: int = 5,
    verify: Union[bool, PassVerifier] = False,
    verify_params: Optional[Mapping[str, int]] = None,
) -> CompiledVariant:
    """Compile ``program`` at optimization level ``level``.

    ``verify=True`` runs the pass-legality checker after every pass: the
    program is snapshotted at small concrete parameters
    (``verify_params``, default 8 for every parameter) and every
    dependence must be preserved stage to stage; a violation raises
    :class:`~repro.verify.PassLegalityError` naming the offending pass
    and dependence edge.  Passing a :class:`~repro.verify.PassVerifier`
    instance instead lets the caller inspect its per-pass ``history``
    afterwards (the CLI's ``verify-pass`` does).  Verification inspects
    only the *program* — layouts (regrouping, padding) relocate data
    without reordering accesses, so they need no certification.
    """
    stages: dict[str, dict] = {"input": program.stats()}
    if isinstance(verify, PassVerifier):
        verifier: Optional[PassVerifier] = verify
    else:
        verifier = PassVerifier(program, verify_params) if verify else None
    if level == "noopt":
        p = _pass("inline", inline_procedures, program, verifier=verifier)
        p = _pass("simplify", simplify_program, p, verifier=verifier)
        p = validate(p)
        return CompiledVariant(level, p, lambda params: default_layout(p, params), stages=stages)
    if level == "sgi":
        from ..baselines.sgi_like import sgi_compile

        # baseline compilers run their own pass mix; certify them
        # end to end (relaxed: they rewrite arithmetic like simplify)
        variant = _pass(level, sgi_compile, program, stages,
                        verifier=verifier, strict=False)
        return variant
    if level == "mckinley":
        from ..baselines.mckinley import mckinley_compile

        variant = _pass(level, mckinley_compile, program, stages,
                        verifier=verifier, strict=False)
        return variant

    p = preliminary(program, max_unroll, distribute=level != "regroup",
                    verifier=verifier)
    stages["preliminary"] = p.stats()

    if level in ("fusion", "fusion1", "new") or level.startswith("fusion"):
        max_levels = 1 if level.startswith("fusion1") else 8
        with span("fusion", max_levels=max_levels) as sp:
            p, report = fuse_program(p, max_levels=max_levels, options=fusion_options)
            if current_collector() is not None:
                sp.attrs["loop_nests"] = p.loop_nest_count()
        if verifier is not None:
            with span("verify", certifies="fusion"):
                verifier.check("fusion", p)
        p = _pass("simplify", simplify_program, p, verifier=verifier)
        p = validate(p)
        stages["fused"] = p.stats()
    else:
        report = None

    if level in ("regroup", "new") or level.endswith("+regroup"):
        with span("regroup") as sp:
            plan = regroup_plan(p, regroup_options)
            sp.attrs["merged_arrays"] = plan.merged_array_count()
        stages["regrouped"] = {"merged_arrays": plan.merged_array_count()}
        final = p
        return CompiledVariant(
            level,
            final,
            plan.materialize,
            fusion_report=report,
            regroup=plan,
            stages=stages,
        )
    if level in ("fusion", "fusion1"):
        final = p
        return CompiledVariant(
            level,
            final,
            lambda params: default_layout(final, params),
            fusion_report=report,
            stages=stages,
        )
    raise TransformError(f"unknown optimization level {level!r}")
