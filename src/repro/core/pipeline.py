"""The end-to-end global strategy (paper §4.1).

``compile_variant`` runs a program through a named optimization level:

* ``noopt`` — inline only (the measured "original" program);
* ``fusion`` / ``fusion1`` — preliminary passes + reuse-based fusion at
  all levels / one level, default data layout;
* ``regroup`` — preliminary passes + data regrouping without fusion
  (ablation: "grouping may see little opportunity without fusion");
* ``new`` — the paper's full strategy: fusion then regrouping
  (also reachable as ``fusion+regroup``);
* ``sgi`` — the SGI-compiler stand-in from :mod:`repro.baselines`;
* ``mckinley`` — the restricted-fusion comparator from §5.

The result carries the transformed program, a layout factory (regrouping
and padding are *layouts*, so they compose with any trace), and the
transformation reports the benchmarks introspect (loop counts, array
counts — §4.4's structural numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..lang import Program, TransformError, validate
from ..transform import (
    distribute_loops,
    inline_procedures,
    propagate_scalar_constants,
    simplify_program,
    split_arrays,
    unroll_small_loops,
)
from .fusion import FusionOptions, FusionReport, fuse_program
from .regroup import (
    Layout,
    RegroupOptions,
    RegroupPlan,
    default_layout,
    padded_layout,
    regroup_plan,
)

#: the optimization levels the harness and benchmarks use
OPT_LEVELS = ("noopt", "sgi", "mckinley", "fusion1", "fusion", "regroup", "new")


@dataclass
class CompiledVariant:
    """A program compiled at one optimization level."""

    level: str
    program: Program
    layout_factory: Callable[[Mapping[str, int]], Layout]
    fusion_report: Optional[FusionReport] = None
    regroup: Optional[RegroupPlan] = None
    #: structural checkpoints along the pipeline (for §4.4-style tables)
    stages: dict[str, dict] = field(default_factory=dict)

    def layout(self, params: Mapping[str, int]) -> Layout:
        return self.layout_factory(params)


def preliminary(
    program: Program, max_unroll: int = 5, distribute: bool = True
) -> Program:
    """§4.1 preliminary passes: inline, unroll+split, distribute, constprop.

    ``distribute=False`` skips maximal loop distribution — used by the
    regroup-only ablation, which should regroup the *original* loop
    structure rather than a scattered one.
    """
    p = inline_procedures(program)
    p = unroll_small_loops(p, max_unroll)
    p = split_arrays(p, max_unroll)
    if distribute:
        p = distribute_loops(p)
    p = propagate_scalar_constants(p)
    p = simplify_program(p)
    return validate(p)


def compile_variant(
    program: Program,
    level: str,
    fusion_options: Optional[FusionOptions] = None,
    regroup_options: Optional[RegroupOptions] = None,
    max_unroll: int = 5,
) -> CompiledVariant:
    """Compile ``program`` at optimization level ``level``."""
    stages: dict[str, dict] = {"input": program.stats()}
    if level == "noopt":
        p = validate(simplify_program(inline_procedures(program)))
        return CompiledVariant(level, p, lambda params: default_layout(p, params), stages=stages)
    if level == "sgi":
        from ..baselines.sgi_like import sgi_compile

        return sgi_compile(program, stages)
    if level == "mckinley":
        from ..baselines.mckinley import mckinley_compile

        return mckinley_compile(program, stages)

    p = preliminary(program, max_unroll, distribute=level != "regroup")
    stages["preliminary"] = p.stats()

    if level in ("fusion", "fusion1", "new") or level.startswith("fusion"):
        max_levels = 1 if level.startswith("fusion1") else 8
        p, report = fuse_program(p, max_levels=max_levels, options=fusion_options)
        p = validate(simplify_program(p))
        stages["fused"] = p.stats()
    else:
        report = None

    if level in ("regroup", "new") or level.endswith("+regroup"):
        plan = regroup_plan(p, regroup_options)
        stages["regrouped"] = {"merged_arrays": plan.merged_array_count()}
        final = p
        return CompiledVariant(
            level,
            final,
            plan.materialize,
            fusion_report=report,
            regroup=plan,
            stages=stages,
        )
    if level in ("fusion", "fusion1"):
        final = p
        return CompiledVariant(
            level,
            final,
            lambda params: default_layout(final, params),
            fusion_report=report,
            stages=stages,
        )
    raise TransformError(f"unknown optimization level {level!r}")
