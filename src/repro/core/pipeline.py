"""The end-to-end global strategy (paper §4.1) — pass-manager front end.

``compile_variant`` runs a program through a named optimization level:

* ``noopt`` — inline only (the measured "original" program);
* ``fusion`` / ``fusion1`` — preliminary passes + reuse-based fusion at
  all levels / one level, default data layout;
* ``regroup`` — preliminary passes + data regrouping without fusion
  (ablation: "grouping may see little opportunity without fusion");
* ``new`` — the paper's full strategy: fusion then regrouping
  (also reachable as ``fusion+regroup``);
* ``sgi`` — the SGI-compiler stand-in from :mod:`repro.baselines`;
* ``mckinley`` — the restricted-fusion comparator from §5.

Each level is a declarative :class:`~repro.core.pm.PipelineSpec` in the
:data:`~repro.core.pm.PIPELINES` registry, executed by the
:class:`~repro.core.pm.PassManager` (which owns spans, certification,
and the per-run analysis cache).  ``compile_pipeline`` additionally
accepts a custom pass-name list or an explicit spec; unknown level names
raise :class:`~repro.lang.TransformError` listing the known levels.

The result carries the transformed program, a layout factory (regrouping
and padding are *layouts*, so they compose with any trace), and the
transformation reports the benchmarks introspect (loop counts, array
counts — §4.4's structural numbers).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from ..lang import Program, validate
from ..verify import PassVerifier
from .pm.manager import CompiledVariant, PassManager
from .pm.passes import PassContext
from .pm.pipelines import (
    OPT_LEVELS,
    PipelineSpec,
    preliminary_steps,
    resolve_pipeline,
)

__all__ = [
    "OPT_LEVELS",
    "CompiledVariant",
    "compile_pipeline",
    "compile_variant",
    "preliminary",
]


def preliminary(
    program: Program,
    max_unroll: int = 5,
    distribute: bool = True,
    verifier: Optional[PassVerifier] = None,
) -> Program:
    """§4.1 preliminary passes: inline, unroll+split, distribute, constprop.

    ``distribute=False`` skips maximal loop distribution — used by the
    regroup-only ablation, which should regroup the *original* loop
    structure rather than a scattered one.  A ``verifier`` certifies
    every pass in turn (raising :class:`~repro.verify.PassLegalityError`
    on the first broken dependence).
    """
    ctx = PassContext(max_unroll=max_unroll)
    manager = PassManager(verifier)
    p = manager.run_passes(program, preliminary_steps(distribute), ctx)
    return validate(p)


def compile_pipeline(
    program: Program,
    pipeline: Union[str, Sequence[str], PipelineSpec],
    fusion_options=None,
    regroup_options=None,
    max_unroll: int = 5,
    verify: Union[bool, PassVerifier] = False,
    verify_params: Optional[Mapping[str, int]] = None,
) -> CompiledVariant:
    """Compile ``program`` through ``pipeline``.

    ``pipeline`` may be a registered level name (strictly validated), an
    explicit :class:`~repro.core.pm.PipelineSpec`, or a sequence of
    registered pass names (the CLI's ``--passes`` form).
    """
    spec = resolve_pipeline(pipeline)
    if isinstance(verify, PassVerifier):
        verifier: Optional[PassVerifier] = verify
    else:
        verifier = PassVerifier(program, verify_params) if verify else None
    ctx = PassContext(
        level=spec.name,
        max_unroll=max_unroll,
        fusion_options=fusion_options,
        regroup_options=regroup_options,
    )
    return PassManager(verifier).run(program, spec, ctx)


def compile_variant(
    program: Program,
    level: str,
    fusion_options=None,
    regroup_options=None,
    max_unroll: int = 5,
    verify: Union[bool, PassVerifier] = False,
    verify_params: Optional[Mapping[str, int]] = None,
) -> CompiledVariant:
    """Compile ``program`` at optimization level ``level``.

    Backward-compatible front over :func:`compile_pipeline`.  ``level``
    must name a registered pipeline (``repro pipeline --list``); loose
    spellings the old prefix matching accepted (``fusionXYZ``) raise
    :class:`~repro.lang.TransformError`.

    ``verify=True`` runs the pass-legality checker after every pass: the
    program is snapshotted at small concrete parameters
    (``verify_params``, default 8 for every parameter) and every
    dependence must be preserved stage to stage; a violation raises
    :class:`~repro.verify.PassLegalityError` naming the offending pass
    and dependence edge.  Passing a :class:`~repro.verify.PassVerifier`
    instance instead lets the caller inspect its per-pass ``history``
    afterwards (the CLI's ``verify-pass`` does).  Verification inspects
    only the *program* — layouts (regrouping, padding) relocate data
    without reordering accesses, so they need no certification.
    """
    return compile_pipeline(
        program,
        level,
        fusion_options=fusion_options,
        regroup_options=regroup_options,
        max_unroll=max_unroll,
        verify=verify,
        verify_params=verify_params,
    )
