"""The ``Pass`` protocol and the process-wide pass registry.

A *pass* is a named, metadata-carrying unit of program transformation.
Its contract:

``name``
    stable identifier — the span name in profiles, the label the
    verifier certifies under, and the token pipeline specs (and the CLI's
    ``--passes``) refer to;
``run(program, ctx, **options)``
    the transformation itself; returns the new program (or the same
    object for analysis-only passes such as ``regroup``) and may deposit
    byproducts — fusion reports, regrouping plans, layout factories —
    on the :class:`PassContext`;
``preserves`` / ``invalidates``
    analysis-invalidation metadata over :data:`~repro.analysis.manager.
    ANALYSIS_KINDS`.  After the pass runs, the manager keeps exactly the
    preserved kinds cached and evicts the rest.  Declaring *either* set
    is mandatory for registered passes (lint code L201); a pass may
    declare ``preserves=()`` to say, explicitly, "I invalidate
    everything".
``strict``
    verifier strictness: ``False`` for passes that legitimately rewrite
    arithmetic, ``None`` to use the verifier's by-name default;
``certify``
    whether the pass-legality verifier checks this pass at all
    (``False`` only for analysis passes that do not touch the program).

Passes are stateless; per-run inputs (unroll limits, fusion options)
come from the :class:`PassContext` or from per-step ``options`` in the
pipeline spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Optional, Protocol, runtime_checkable

from ...analysis.manager import ANALYSIS_KINDS
from ...lang import Program, TransformError

#: analysis kinds every pass metadata declaration is validated against
ALL_KINDS = frozenset(ANALYSIS_KINDS)

#: identity-keyed object analyses: sound to keep across any pass that
#: reuses IR sub-trees, because an identical object analyzes identically
OBJECT_KINDS = frozenset({"loop_accesses", "stmt_accesses", "alignment"})


@dataclass
class PassContext:
    """Everything a pass may read or deposit during one pipeline run."""

    level: str = ""
    max_unroll: int = 5
    fusion_options: Optional[object] = None
    regroup_options: Optional[object] = None
    #: structural checkpoints (the §4.4 tables read these)
    stages: dict[str, dict] = field(default_factory=dict)
    #: byproducts deposited by passes
    fusion_report: Optional[object] = None
    regroup_plan: Optional[object] = None
    codegen_plan: Optional[object] = None
    layout_factory: Optional[Callable] = None
    #: the open span of the currently running pass (set by the manager)
    _span: Optional[object] = None

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the running pass's span."""
        if self._span is not None:
            self._span.attrs.update(attrs)


@runtime_checkable
class Pass(Protocol):
    """Structural protocol every registered pass satisfies."""

    name: str
    description: str
    preserves: Optional[frozenset]
    invalidates: Optional[frozenset]
    strict: Optional[bool]
    certify: bool

    def run(self, program: Program, ctx: PassContext, **options) -> Program: ...


@dataclass(frozen=True)
class FunctionPass:
    """A pass defined by a plain function ``fn(program, ctx, **options)``."""

    name: str
    fn: Callable[..., Program]
    description: str = ""
    preserves: Optional[frozenset] = None
    invalidates: Optional[frozenset] = None
    strict: Optional[bool] = None
    certify: bool = True

    def run(self, program: Program, ctx: PassContext, **options) -> Program:
        return self.fn(program, ctx, **options)


def effective_preserves(p: Pass) -> frozenset:
    """The analysis kinds kept cached across ``p``; conservative default.

    ``preserves`` wins when declared; otherwise the complement of
    ``invalidates``; a pass with neither declared preserves nothing.
    """
    if p.preserves is not None:
        return frozenset(p.preserves)
    if p.invalidates is not None:
        return ALL_KINDS - frozenset(p.invalidates)
    return frozenset()


def declares_metadata(p: Pass) -> bool:
    return p.preserves is not None or p.invalidates is not None


#: the process-wide pass registry pipeline specs resolve against
PASSES: dict[str, Pass] = {}


def register_pass(p: Pass) -> Pass:
    """Register ``p`` under ``p.name``; validates its analysis metadata."""
    if p.name in PASSES:
        raise TransformError(f"pass {p.name!r} is already registered")
    for attr in ("preserves", "invalidates"):
        kinds = getattr(p, attr)
        if kinds is not None:
            unknown = frozenset(kinds) - ALL_KINDS
            if unknown:
                raise TransformError(
                    f"pass {p.name!r} {attr} unknown analysis kinds: "
                    f"{sorted(unknown)}"
                )
    PASSES[p.name] = p
    return p


def get_pass(name: str) -> Pass:
    try:
        return PASSES[name]
    except KeyError:
        raise TransformError(
            f"unknown pass {name!r}; registered passes: "
            f"{', '.join(sorted(PASSES))}"
        ) from None


def pass_names() -> tuple[str, ...]:
    return tuple(sorted(PASSES))


# -- built-in passes ----------------------------------------------------------
#
# §4.1 preliminary transformations.  ``inline``/``unroll``/``split_arrays``
# rewrite subscripts wholesale, so they declare (explicitly) that they
# invalidate everything; the later passes reuse unchanged IR sub-trees,
# so the identity-keyed object analyses survive them.


def _inline(program: Program, ctx: PassContext) -> Program:
    from ...transform import inline_procedures

    return inline_procedures(program)


def _unroll(program: Program, ctx: PassContext) -> Program:
    from ...transform import unroll_small_loops

    return unroll_small_loops(program, ctx.max_unroll)


def _split_arrays(program: Program, ctx: PassContext) -> Program:
    from ...transform import split_arrays

    return split_arrays(program, ctx.max_unroll)


def _distribute(program: Program, ctx: PassContext) -> Program:
    from ...transform import distribute_loops

    return distribute_loops(program)


def _constprop(program: Program, ctx: PassContext) -> Program:
    from ...transform import propagate_scalar_constants

    return propagate_scalar_constants(program)


def _simplify(program: Program, ctx: PassContext) -> Program:
    from ...transform import simplify_program

    return simplify_program(program)


def _fusion(program: Program, ctx: PassContext, max_levels: int = 8) -> Program:
    from ..fusion import fuse_program

    fused, report = fuse_program(
        program, max_levels=max_levels, options=ctx.fusion_options
    )
    ctx.fusion_report = report
    return fused


def _regroup(program: Program, ctx: PassContext) -> Program:
    """Plan data regrouping; the *program* is untouched (layouts relocate
    data without reordering accesses, so no certification either)."""
    from ..regroup import regroup_plan

    plan = regroup_plan(program, ctx.regroup_options)
    ctx.regroup_plan = plan
    ctx.layout_factory = plan.materialize
    ctx.annotate(merged_arrays=plan.merged_array_count())
    ctx.stages["regrouped"] = {"merged_arrays": plan.merged_array_count()}
    return program


def _sgi(program: Program, ctx: PassContext) -> Program:
    from ...baselines.sgi_like import sgi_transform
    from ..regroup import padded_layout

    p = sgi_transform(program)
    ctx.stages["sgi"] = p.stats()
    ctx.layout_factory = partial(padded_layout, p)
    return p


def _codegen_plan(program: Program, ctx: PassContext) -> Program:
    """Classify nests for the codegen backend; the program is untouched."""
    from ...codegen.plan import plan_program

    plan = plan_program(program)
    ctx.codegen_plan = plan
    ctx.annotate(
        nests=len(plan.nests),
        fallback_nests=len(plan.fallback_nests),
    )
    ctx.stages["codegen"] = {
        "nests": len(plan.nests),
        "fallback_nests": len(plan.fallback_nests),
        "summary": plan.summary(),
    }
    return program


def _mckinley(program: Program, ctx: PassContext) -> Program:
    from ...baselines.mckinley import mckinley_transform

    p, report = mckinley_transform(program)
    ctx.fusion_report = report
    ctx.stages["mckinley"] = p.stats()
    return p


register_pass(FunctionPass(
    "inline", _inline,
    description="inline every procedure call (§4.1 step 1)",
    invalidates=ALL_KINDS,
))
register_pass(FunctionPass(
    "unroll", _unroll,
    description="fully unroll small constant-trip loops (§4.1 step 2)",
    invalidates=ALL_KINDS,
))
register_pass(FunctionPass(
    "split_arrays", _split_arrays,
    description="split small leading array dimensions into scalars/planes",
    invalidates=ALL_KINDS,
))
register_pass(FunctionPass(
    "distribute", _distribute,
    description="maximal loop distribution (Allen–Kennedy SCCs)",
    preserves=OBJECT_KINDS,
))
register_pass(FunctionPass(
    "constprop", _constprop,
    description="propagate scalar constants (relaxed certification)",
    preserves=OBJECT_KINDS,
    strict=False,
))
register_pass(FunctionPass(
    "simplify", _simplify,
    description="fold constants and drop dead scalars (relaxed certification)",
    preserves=OBJECT_KINDS,
    strict=False,
))
register_pass(FunctionPass(
    "fusion", _fusion,
    description="reuse-based multi-level loop fusion (§2.3, Fig. 6)",
    preserves=OBJECT_KINDS,
))
register_pass(FunctionPass(
    "regroup", _regroup,
    description="multi-level data regrouping plan + layout (§3, Fig. 8)",
    preserves=ALL_KINDS,
    certify=False,
))
register_pass(FunctionPass(
    "codegen-plan", _codegen_plan,
    description="classify nests for the codegen trace backend (analysis only)",
    preserves=ALL_KINDS,
    certify=False,
))
register_pass(FunctionPass(
    "sgi", _sgi,
    description="SGI-like baseline: intra-nest fusion + inter-array padding",
    invalidates=ALL_KINDS,
    strict=False,
))
register_pass(FunctionPass(
    "mckinley", _mckinley,
    description="restricted fusion baseline (identical bounds, no enablers)",
    invalidates=ALL_KINDS,
    strict=False,
))
