"""Declarative pipeline specs: every optimization level as data.

The paper's §4.1 global strategy is a *sequence of passes*; this module
writes each optimization level down as exactly that — a
:class:`PipelineSpec` holding ordered :class:`PassStep` entries — instead
of the historical if/else chain in ``compile_variant``.  The registry is
introspectable (``repro pipeline --list`` / ``--describe``), validates
level names strictly (bogus names like ``fusionXYZ`` raise
:class:`~repro.lang.TransformError` listing the known levels), and is the
single source of truth for :data:`OPT_LEVELS`.

Custom pipelines (``repro report --passes inline,simplify``, or
``RunRequest(pipeline=[...])``) are built with :func:`custom_pipeline`
from any registered pass names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ...lang import TransformError
from .passes import PASSES, get_pass


@dataclass(frozen=True)
class PassStep:
    """One pipeline entry: a registered pass plus per-step options.

    ``options`` are frozen keyword arguments forwarded to the pass's
    ``run`` (and shown as span attributes, e.g. fusion's ``max_levels``);
    ``checkpoint`` records the program's structural stats under that
    stage name after the pass runs.
    """

    name: str
    options: tuple[tuple[str, object], ...] = ()
    checkpoint: Optional[str] = None

    def kwargs(self) -> dict:
        return dict(self.options)

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in self.options)
        text = self.name if not opts else f"{self.name}({opts})"
        if self.checkpoint:
            text += f" [checkpoint: {self.checkpoint}]"
        return text


@dataclass(frozen=True)
class PipelineSpec:
    """A named, ordered pass sequence — one optimization level as data."""

    name: str
    description: str
    steps: tuple[PassStep, ...]

    def pass_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.steps)

    def validate(self) -> "PipelineSpec":
        for step in self.steps:
            get_pass(step.name)  # raises TransformError on unknown names
        return self


def _step(name: str, checkpoint: Optional[str] = None, **options) -> PassStep:
    return PassStep(name, tuple(sorted(options.items())), checkpoint)


#: §4.1 preliminary transformations (shared prefix of every optimized level)
_PRELIMINARY = (
    _step("inline"),
    _step("unroll"),
    _step("split_arrays"),
    _step("distribute"),
    _step("constprop"),
    _step("simplify", checkpoint="preliminary"),
)

#: the regroup-only ablation skips distribution: it must regroup the
#: *original* loop structure, not a maximally scattered one
_PRELIMINARY_NO_DISTRIBUTE = tuple(
    s for s in _PRELIMINARY if s.name != "distribute"
)


def preliminary_steps(distribute: bool = True) -> tuple[PassStep, ...]:
    """The shared §4.1 preliminary prefix (``repro.core.preliminary``)."""
    return _PRELIMINARY if distribute else _PRELIMINARY_NO_DISTRIBUTE


def _fused(max_levels: int) -> tuple[PassStep, ...]:
    return (
        _step("fusion", max_levels=max_levels),
        _step("simplify", checkpoint="fused"),
    )


#: named pipelines, declaration order = presentation order.  The seven
#: core levels come first (OPT_LEVELS preserves exactly that set), then
#: the compound spellings the harness has always accepted.
PIPELINES: dict[str, PipelineSpec] = {}


def _pipeline(name: str, description: str, steps: Sequence[PassStep]) -> None:
    PIPELINES[name] = PipelineSpec(name, description, tuple(steps)).validate()


_pipeline(
    "noopt",
    "inline only (the measured original)",
    (_step("inline"), _step("simplify")),
)
_pipeline(
    "sgi",
    "SGI-like local baseline: intra-nest fusion + padding",
    (_step("sgi"),),
)
_pipeline(
    "mckinley",
    "restricted fusion (identical bounds, no enablers)",
    (_step("mckinley"),),
)
_pipeline(
    "fusion1",
    "preliminary passes + 1-level reuse-based fusion",
    _PRELIMINARY + _fused(1),
)
_pipeline(
    "fusion",
    "preliminary passes + full multi-level fusion",
    _PRELIMINARY + _fused(8),
)
_pipeline(
    "regroup",
    "data regrouping without fusion (ablation)",
    _PRELIMINARY_NO_DISTRIBUTE + (_step("regroup"),),
)
_pipeline(
    "new",
    "the paper's strategy: fusion + regrouping",
    _PRELIMINARY + _fused(8) + (_step("regroup"),),
)
_pipeline(
    "fusion+regroup",
    "compound spelling of 'new' (fusion then regrouping)",
    _PRELIMINARY + _fused(8) + (_step("regroup"),),
)
_pipeline(
    "fusion1+regroup",
    "1-level fusion then regrouping",
    _PRELIMINARY + _fused(1) + (_step("regroup"),),
)

#: the seven optimization levels the harness and benchmarks use (the
#: compound spellings above are aliases, not separate levels)
OPT_LEVELS = ("noopt", "sgi", "mckinley", "fusion1", "fusion", "regroup", "new")


def known_levels() -> tuple[str, ...]:
    """Every name :func:`resolve_pipeline` accepts."""
    return tuple(PIPELINES)


def resolve_pipeline(
    pipeline: Union[str, Sequence[str], PipelineSpec],
) -> PipelineSpec:
    """Resolve a level name, pass-name list, or spec to a pipeline.

    Unknown level names raise :class:`~repro.lang.TransformError` naming
    the known levels — loose spellings like ``fusionXYZ`` that the old
    prefix matching silently accepted are rejected.
    """
    if isinstance(pipeline, PipelineSpec):
        return pipeline.validate()
    if isinstance(pipeline, str):
        spec = PIPELINES.get(pipeline)
        if spec is None:
            raise TransformError(
                f"unknown optimization level {pipeline!r}; known levels: "
                f"{', '.join(PIPELINES)}"
            )
        return spec
    return custom_pipeline(pipeline)


def custom_pipeline(
    pass_names: Sequence[str], name: Optional[str] = None
) -> PipelineSpec:
    """An ad-hoc pipeline from registered pass names (CLI ``--passes``)."""
    names = [n for n in pass_names if n]
    if not names:
        raise TransformError("custom pipeline needs at least one pass name")
    spec = PipelineSpec(
        name or "passes:" + ",".join(names),
        "custom pass list",
        tuple(_step(n) for n in names),
    )
    return spec.validate()


def spec_to_json(spec: PipelineSpec) -> dict:
    """The machine-readable pipeline-description schema.

    One shape shared by ``repro pipeline --json``, the autotuner's
    ``BENCH_tune.json`` artifact, and any external tool:
    ``{"name", "description", "steps": [{"name", "options",
    "checkpoint"?}]}`` with options as a plain object.
    :func:`spec_from_json` inverts it exactly.
    """
    steps = []
    for step in spec.steps:
        entry: dict[str, object] = {"name": step.name, "options": dict(step.options)}
        if step.checkpoint:
            entry["checkpoint"] = step.checkpoint
        steps.append(entry)
    return {"name": spec.name, "description": spec.description, "steps": steps}


def spec_from_json(payload: dict) -> PipelineSpec:
    """Rebuild a :class:`PipelineSpec` from :func:`spec_to_json` output."""
    try:
        steps = tuple(
            PassStep(
                s["name"],
                tuple(sorted(dict(s.get("options", {})).items())),
                s.get("checkpoint"),
            )
            for s in payload["steps"]
        )
        spec = PipelineSpec(
            payload["name"], payload.get("description", ""), steps
        )
    except (KeyError, TypeError) as exc:
        raise TransformError(f"malformed pipeline JSON: {exc}") from exc
    return spec.validate()


def registry_to_json() -> dict:
    """The full introspection payload of ``repro pipeline --json``:
    every registered pass (with its metadata) and every named pipeline."""
    from .passes import effective_preserves

    passes = {}
    for name, p in sorted(PASSES.items()):
        passes[name] = {
            "description": p.description,
            "preserves": sorted(p.preserves) if p.preserves is not None else None,
            "invalidates": (
                sorted(p.invalidates) if p.invalidates is not None else None
            ),
            "effective_preserves": sorted(effective_preserves(p)),
            "certify": p.certify,
            "strict": p.strict,
        }
    return {
        "passes": passes,
        "pipelines": {name: spec_to_json(s) for name, s in PIPELINES.items()},
        "opt_levels": list(OPT_LEVELS),
    }


def describe_pipeline(spec: PipelineSpec) -> str:
    """Multi-line human rendering (``repro pipeline --describe``)."""
    from .passes import effective_preserves

    lines = [f"{spec.name}: {spec.description}"]
    for i, step in enumerate(spec.steps, start=1):
        p = PASSES[step.name]
        preserved = sorted(effective_preserves(p))
        lines.append(f"  {i}. {step.describe()}")
        if p.description:
            lines.append(f"       {p.description}")
        lines.append(
            "       preserves: " + (", ".join(preserved) if preserved else "nothing")
        )
    return "\n".join(lines)
