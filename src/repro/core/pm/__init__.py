"""Pass-manager architecture: declarative pipelines, cached analyses,
auto-instrumented passes.

* :mod:`.passes` — the :class:`Pass` protocol, :class:`FunctionPass`,
  and the process-wide registry of built-in passes;
* :mod:`.pipelines` — every optimization level written down as a
  :class:`PipelineSpec` (ordered pass steps as data), plus strict level
  validation and ad-hoc ``--passes`` pipelines;
* :mod:`.manager` — the :class:`PassManager` that executes specs, owning
  obs spans, verifier certification, analysis-cache invalidation, and
  :class:`CompiledVariant` assembly.

The lint entry point :func:`lint_passes` enforces the registry's
metadata contract (code ``L201``): every registered pass must declare
``preserves`` or ``invalidates`` so the analysis cache knows what
survives it.
"""

from __future__ import annotations

from .manager import CompiledVariant, PassManager
from .passes import (
    ALL_KINDS,
    FunctionPass,
    OBJECT_KINDS,
    PASSES,
    Pass,
    PassContext,
    declares_metadata,
    effective_preserves,
    get_pass,
    pass_names,
    register_pass,
)
from .pipelines import (
    OPT_LEVELS,
    PIPELINES,
    PassStep,
    PipelineSpec,
    custom_pipeline,
    describe_pipeline,
    known_levels,
    registry_to_json,
    resolve_pipeline,
    spec_from_json,
    spec_to_json,
)


def lint_passes():
    """Lint the pass registry; undeclared analysis metadata is ``L201``.

    Returns a :class:`~repro.verify.DiagnosticBag`.  A pass that declares
    neither ``preserves`` nor ``invalidates`` silently falls back to
    "preserves nothing" — correct but maximally wasteful, and almost
    always an oversight — so the lint flags it as a warning.
    """
    from ...verify.diagnostics import DiagnosticBag

    bag = DiagnosticBag()
    for name in sorted(PASSES):
        p = PASSES[name]
        if not declares_metadata(p):
            bag.warning(
                "L201",
                f"pass {name!r} declares neither 'preserves' nor "
                "'invalidates'; the analysis cache treats it as "
                "invalidating every analysis kind",
                **{"pass": name},
            )
    return bag


__all__ = [
    "ALL_KINDS",
    "CompiledVariant",
    "FunctionPass",
    "OBJECT_KINDS",
    "OPT_LEVELS",
    "PASSES",
    "PIPELINES",
    "Pass",
    "PassContext",
    "PassManager",
    "PassStep",
    "PipelineSpec",
    "custom_pipeline",
    "declares_metadata",
    "describe_pipeline",
    "effective_preserves",
    "get_pass",
    "known_levels",
    "lint_passes",
    "pass_names",
    "register_pass",
    "registry_to_json",
    "resolve_pipeline",
    "spec_from_json",
    "spec_to_json",
]
