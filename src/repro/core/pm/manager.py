"""The pass manager: runs pipeline specs, owning every cross-cutting concern.

One place — instead of a wrapper bolted onto each call site — handles:

* **observability**: each pass runs under an obs span named after the
  pass, carrying its per-step options (e.g. fusion's ``max_levels``) and,
  when a collector is active, the structural counts of the program it
  produced; per-pass run counters land in the metrics registry;
* **certification**: an optional :class:`~repro.verify.PassVerifier`
  checks every certifiable pass right after it runs (strict or relaxed
  per the pass's declaration), under a ``verify`` span naming what it
  certifies;
* **analysis caching**: an :class:`~repro.analysis.manager.
  AnalysisManager` is installed for the whole run, so every consumer of
  access summaries / dependence graphs / alignment constraints shares one
  memo table; after each pass the manager evicts everything the pass did
  not declare preserved;
* **variant assembly**: the single construction site for
  :class:`CompiledVariant` (levels historically built it in three
  slightly different ways).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Mapping, Optional, Sequence

from ...analysis.manager import AnalysisManager, analysis_scope
from ...lang import Program, validate
from ...obs import current_collector, metrics, span
from ...verify import PassVerifier
from .passes import PassContext, effective_preserves, get_pass
from .pipelines import PassStep, PipelineSpec


@dataclass
class CompiledVariant:
    """A program compiled at one optimization level (or custom pipeline)."""

    level: str
    program: Program
    layout_factory: Callable[[Mapping[str, int]], object]
    fusion_report: Optional[object] = None
    regroup: Optional[object] = None
    #: structural checkpoints along the pipeline (for §4.4-style tables)
    stages: dict[str, dict] = field(default_factory=dict)

    def layout(self, params: Mapping[str, int]):
        return self.layout_factory(params)


class PassManager:
    """Executes pipeline specs over programs.

    A manager is cheap and stateless between runs; construct one per
    compilation (the verifier, when given, is stateful — it re-baselines
    after every certified pass).
    """

    def __init__(self, verifier: Optional[PassVerifier] = None) -> None:
        self.verifier = verifier

    def run_passes(
        self,
        program: Program,
        steps: Sequence[PassStep],
        ctx: PassContext,
        analyses: Optional[AnalysisManager] = None,
    ) -> Program:
        """Run ``steps`` in order; returns the transformed program."""
        analyses = analyses if analyses is not None else AnalysisManager()
        with analysis_scope(analyses):
            p = program
            for step in steps:
                p = self._run_step(p, step, ctx, analyses)
        return p

    def _run_step(
        self,
        program: Program,
        step: PassStep,
        ctx: PassContext,
        analyses: AnalysisManager,
    ) -> Program:
        pass_obj = get_pass(step.name)
        metrics.inc("pm.pass.runs")
        metrics.inc(f"pm.pass.{pass_obj.name}.runs")
        with span(pass_obj.name, **step.kwargs()) as sp:
            ctx._span = sp
            try:
                result = pass_obj.run(program, ctx, **step.kwargs())
            finally:
                ctx._span = None
            if current_collector() is not None and isinstance(result, Program):
                stats = result.stats()
                for key in ("loop_nests", "loops", "arrays", "statements"):
                    if key in stats:
                        sp.attrs[key] = stats[key]
        if self.verifier is not None and pass_obj.certify:
            with span("verify", certifies=pass_obj.name):
                self.verifier.check(pass_obj.name, result, strict=pass_obj.strict)
        analyses.invalidate(effective_preserves(pass_obj))
        if step.checkpoint:
            ctx.stages[step.checkpoint] = result.stats()
        return result

    def run(
        self,
        program: Program,
        spec: PipelineSpec,
        ctx: Optional[PassContext] = None,
    ) -> CompiledVariant:
        """Compile ``program`` through ``spec``; assemble the variant."""
        ctx = ctx or PassContext(level=spec.name)
        if not ctx.level:
            ctx.level = spec.name
        ctx.stages.setdefault("input", program.stats())
        metrics.inc("pm.pipeline.runs")
        analyses = AnalysisManager()
        p = validate(self.run_passes(program, spec.steps, ctx, analyses))
        layout_factory = ctx.layout_factory or partial(default_layout_for, p)
        return CompiledVariant(
            ctx.level,
            p,
            layout_factory,
            fusion_report=ctx.fusion_report,
            regroup=ctx.regroup_plan,
            stages=ctx.stages,
        )


def default_layout_for(program: Program, params: Mapping[str, int]):
    """Declaration-order layout — the no-regrouping default.

    Module-level (not a closure) so compiled variants carry no
    late-binding lambdas; the program is captured via ``partial``.
    """
    from ..regroup import default_layout

    return default_layout(program, params)
