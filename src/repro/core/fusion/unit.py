"""Fusion units: the working representation of (partially) fused loops.

A :class:`FusionUnit` is an ordered collection of *slots*:

* :class:`Member` — an original loop, aligned into the fused iteration
  space by an integer ``shift`` (its iteration ``i`` executes at fused
  position ``i + shift``);
* :class:`Embed` — statements pinned to a single (affine) fused iteration
  by statement embedding or boundary peeling.

Slot order is program order, which is also execution order within one
fused iteration.  A *loose* unit (no members) wraps a non-loop statement
that has not (yet) been embedded anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

from ...analysis import (
    RefAccess,
    symbolic_max,
    symbolic_min,
)
from ...analysis.manager import cached_loop_accesses, cached_stmt_accesses
from ...lang import Affine, Loop, Stmt


@dataclass(frozen=True)
class Member:
    loop: Loop
    shift: int = 0

    @property
    def fused_lo(self) -> Affine:
        return self.loop.lower.affine() + self.shift

    @property
    def fused_hi(self) -> Affine:
        return self.loop.upper.affine() + self.shift


@dataclass(frozen=True)
class Embed:
    stmts: tuple[Stmt, ...]
    at: Affine


Slot = Union[Member, Embed]


@dataclass
class FusionUnit:
    """One item of the working list during a fusion pass.

    ``params`` are the program's true symbolic parameters (used by code
    generation); ``fixed`` additionally includes enclosing loop indices,
    which are symbolic constants from this level's point of view (used by
    access classification).
    """

    params: tuple[str, ...]
    slots: tuple[Slot, ...] = ()
    loose: tuple[Stmt, ...] = ()  # statements not pinned to an iteration
    fixed: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.fixed:
            self.fixed = self.params

    # -- constructors -----------------------------------------------------

    @staticmethod
    def from_loop(
        loop: Loop, params: Sequence[str], fixed: Sequence[str] = ()
    ) -> "FusionUnit":
        return FusionUnit(
            tuple(params), (Member(loop, 0),), fixed=tuple(fixed) or tuple(params)
        )

    @staticmethod
    def from_stmt(
        stmt: Stmt, params: Sequence[str], fixed: Sequence[str] = ()
    ) -> "FusionUnit":
        return FusionUnit(
            tuple(params), (), (stmt,), fixed=tuple(fixed) or tuple(params)
        )

    # -- queries ----------------------------------------------------------

    @property
    def is_loose(self) -> bool:
        return not self.slots

    @property
    def members(self) -> list[Member]:
        return [s for s in self.slots if isinstance(s, Member)]

    @property
    def embeds(self) -> list[Embed]:
        return [s for s in self.slots if isinstance(s, Embed)]

    def is_simple_loop(self) -> bool:
        """A unit that is still exactly one unshifted loop (peelable)."""
        return (
            len(self.slots) == 1
            and isinstance(self.slots[0], Member)
            and self.slots[0].shift == 0
            and not self.loose
        )

    def accesses(self) -> list[RefAccess]:
        """Frame-relative accesses of everything in the unit.

        Member loops are immutable and survive unit re-merges unchanged,
        so their per-loop collections go through the analysis cache: when
        a pipeline run has an active manager, re-collecting a unit after
        each greedy fusion step hits instead of re-walking every member.
        """
        out: list[RefAccess] = []
        for slot in self.slots:
            if isinstance(slot, Member):
                shift = Affine.constant(slot.shift)
                for acc in cached_loop_accesses(slot.loop, self.fixed):
                    out.append(acc.shifted(shift))
            else:
                for stmt in slot.stmts:
                    for acc in cached_stmt_accesses(stmt, self.fixed):
                        out.append(
                            replace(acc, active_lo=slot.at, active_hi=slot.at)
                        )
        for stmt in self.loose:
            out.extend(cached_stmt_accesses(stmt, self.fixed))
        return out

    def hull(self, assume) -> Optional[tuple[Affine, Affine]]:
        """Symbolic [lo, hi] of the fused iteration space; None if unordered."""
        los: list[Affine] = []
        his: list[Affine] = []
        for slot in self.slots:
            if isinstance(slot, Member):
                los.append(slot.fused_lo)
                his.append(slot.fused_hi)
            else:
                los.append(slot.at)
                his.append(slot.at)
        if not los:
            return None
        lo = symbolic_min(los, assume)
        hi = symbolic_max(his, assume)
        if lo is None or hi is None:
            return None
        return lo, hi

    def loop_count(self) -> int:
        return len(self.members)

    # -- combination -----------------------------------------------------

    def fuse_with(self, later: "FusionUnit", alignment: int) -> "FusionUnit":
        """Fuse ``later`` (which follows this unit in program order) in.

        ``later``'s iteration ``u`` lands at fused position ``u + alignment``.
        """
        moved: list[Slot] = []
        for slot in later.slots:
            if isinstance(slot, Member):
                moved.append(Member(slot.loop, slot.shift + alignment))
            else:
                moved.append(Embed(slot.stmts, slot.at + alignment))
        return FusionUnit(
            self.params, self.slots + tuple(moved), self.loose + later.loose, self.fixed
        )

    def with_embed_last(self, stmts: Sequence[Stmt], at: Affine) -> "FusionUnit":
        """Embed statements after all current slots (a later statement)."""
        return FusionUnit(
            self.params, self.slots + (Embed(tuple(stmts), at),), self.loose, self.fixed
        )

    def with_embed_first(self, stmts: Sequence[Stmt], at: Affine) -> "FusionUnit":
        """Embed statements before all current slots (an earlier statement)."""
        return FusionUnit(
            self.params, (Embed(tuple(stmts), at),) + self.slots, self.loose, self.fixed
        )

    def describe(self) -> str:
        parts = []
        for slot in self.slots:
            if isinstance(slot, Member):
                label = slot.loop.label or f"for {slot.loop.index}"
                parts.append(f"{label}{'' if slot.shift == 0 else f'@{slot.shift:+d}'}")
            else:
                parts.append(f"embed@{slot.at}")
        if self.loose:
            parts.append(f"{len(self.loose)} loose stmt(s)")
        return " | ".join(parts) or "<empty>"
