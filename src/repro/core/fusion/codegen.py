"""Code generation for fusion units.

Lowers a :class:`FusionUnit` back to ordinary IR.  The primary emitter is
*segmented*: the fused iteration space is cut at every member bound and
embedding point, so each segment has a statically known set of active
slots.  Width-1 segments are emitted as straight-line peeled code (the
paper's ``A[1] = A[N]; B[3] = g(A[1])`` after the fused loop in Fig. 4a);
wider segments become plain loops whose bodies are the concatenated,
index-shifted member bodies.

When the symbolic ordering of the breakpoints cannot be decided, the
emitter falls back to a single hull loop with per-member :class:`Guard`
statements — always correct, merely less pretty and opaque to inner-level
fusion.

This replaces the paper's use of the Omega library with the "direct code
generation scheme whose cost is linear in the number of loop levels" that
the paper says was being implemented.
"""

from __future__ import annotations

from typing import Sequence

from ...lang import (
    Affine,
    DEFAULT_PARAM_MIN,
    Guard,
    Interval,
    Loop,
    Stmt,
    TransformError,
    affine_expr,
)
from ...transform.subst import FreshNames, bound_names, rename_bound, subst_stmt
from .unit import FusionUnit, Member


class _Incomparable(Exception):
    pass


def _sorted_breakpoints(points: list[Affine], assume) -> list[Affine]:
    """Symbolic insertion sort with deduplication; raises when unordered."""
    out: list[Affine] = []
    for p in points:
        placed = False
        for k, q in enumerate(out):
            cmp = p.compare(q, assume)
            if cmp is None:
                raise _Incomparable()
            if cmp == 0:
                placed = True
                break
            if cmp < 0:
                out.insert(k, p)
                placed = True
                break
        if not placed:
            out.append(p)
    return out


def _frame_name(unit: FusionUnit, fresh: FreshNames) -> str:
    members = unit.members
    candidate = members[0].loop.index
    avoid: set[str] = set(unit.params)
    for m in members:
        avoid |= bound_names(m.loop.body)
    for e in unit.embeds:
        avoid |= bound_names(e.stmts)
    if candidate in avoid:
        candidate = fresh.fresh(candidate)
    fresh.reserve([candidate])
    return candidate


def _member_body(
    member: Member,
    frame: str,
    at: Affine | None,
    fresh: FreshNames,
    params: frozenset[str],
) -> list[Stmt]:
    """Member body translated into the fused frame (or to a point)."""
    body = list(member.loop.body)
    # rename inner binders colliding with the frame variable
    body = [rename_bound(s, {frame} - {member.loop.index}, fresh) for s in body]
    if at is not None:
        target = affine_expr(at - member.shift, params)
    else:
        target = affine_expr(Affine.var(frame) - member.shift, params)
    if member.loop.index == frame and member.shift == 0 and at is None:
        return body
    return [subst_stmt(s, {member.loop.index: target}) for s in body]


def unit_to_stmts(
    unit: FusionUnit,
    fresh: FreshNames,
    assume=DEFAULT_PARAM_MIN,
    label: str | None = None,
) -> list[Stmt]:
    """Lower a unit to a list of ordinary statements."""
    if unit.is_loose:
        return list(unit.loose)
    if unit.is_simple_loop():
        return [unit.slots[0].loop]
    if unit.loose:
        raise TransformError("unit has both members and loose statements")
    try:
        return _segmented(unit, fresh, assume, label)
    except _Incomparable:
        return _guarded(unit, fresh, assume, label)


def _segmented(
    unit: FusionUnit, fresh: FreshNames, assume, label: str | None
) -> list[Stmt]:
    params = frozenset(unit.params)
    frame = _frame_name(unit, fresh)
    points: list[Affine] = []
    spans: list[tuple[Affine, Affine]] = []  # [lo, hi] per slot
    for slot in unit.slots:
        if isinstance(slot, Member):
            lo, hi = slot.fused_lo, slot.fused_hi
        else:
            lo = hi = slot.at
        spans.append((lo, hi))
        points.append(lo)
        points.append(hi + 1)
    order = _sorted_breakpoints(points, assume)

    def pos(p: Affine) -> int:
        for k, q in enumerate(order):
            if p.compare(q, assume) == 0:
                return k
        raise _Incomparable()  # pragma: no cover - all points were inserted

    slot_pos = [(pos(lo), pos(hi + 1)) for lo, hi in spans]
    out: list[Stmt] = []
    for s in range(len(order) - 1):
        a, b = order[s], order[s + 1]
        width = b - a
        active = [
            (slot, lo_p)
            for (slot, (lo_p, hi_p)) in zip(unit.slots, slot_pos)
            if lo_p <= s < hi_p
        ]
        if not active:
            continue
        if width.is_constant() and width.int_value() == 1:
            for slot, _ in active:
                if isinstance(slot, Member):
                    emitted = _member_body(slot, frame, a, fresh, params)
                    out.extend(_relabel(emitted, label))
                else:
                    out.extend(_relabel(list(slot.stmts), label))
        else:
            body: list[Stmt] = []
            for slot, _ in active:
                if isinstance(slot, Member):
                    body.extend(_member_body(slot, frame, None, fresh, params))
                else:  # pragma: no cover - embeds always get width-1 segments
                    raise TransformError("embedded statement in a wide segment")
            out.append(
                Loop(
                    frame,
                    affine_expr(a, params),
                    affine_expr(b - 1, params),
                    tuple(body),
                    label=label,
                )
            )
    return out


def _guarded(
    unit: FusionUnit, fresh: FreshNames, assume, label: str | None
) -> list[Stmt]:
    from ...analysis import symbolic_max, symbolic_min

    params = frozenset(unit.params)
    frame = _frame_name(unit, fresh)
    los: list[Affine] = []
    his: list[Affine] = []
    for slot in unit.slots:
        if isinstance(slot, Member):
            los.append(slot.fused_lo)
            his.append(slot.fused_hi)
        else:
            los.append(slot.at)
            his.append(slot.at)
    lo = symbolic_min(los, assume)
    hi = symbolic_max(his, assume)
    if lo is None or hi is None:
        raise TransformError(
            "cannot bound the fused iteration space symbolically"
        )
    body: list[Stmt] = []
    for slot in unit.slots:
        if isinstance(slot, Member):
            inner = _member_body(slot, frame, None, fresh, params)
            body.append(
                Guard(frame, (Interval(slot.fused_lo, slot.fused_hi),), tuple(inner))
            )
        else:
            body.append(Guard(frame, (Interval.point(slot.at),), slot.stmts))
    return [
        Loop(frame, affine_expr(lo, params), affine_expr(hi, params), tuple(body), label=label)
    ]


def _relabel(stmts: list[Stmt], label: str | None) -> list[Stmt]:
    """Tag emitted boundary-slice loops with the owning unit's label, so
    later passes (data regrouping's phase partitioning) can tell that a
    peeled slice and its core belong to one computation phase."""
    if label is None:
        return stmts
    from dataclasses import replace as _dc_replace

    return [
        _dc_replace(s, label=label) if isinstance(s, Loop) and s.label is None else s
        for s in stmts
    ]


def peel_iterations(
    loop: Loop,
    values: Sequence[Affine],
    fresh: FreshNames,
    params: frozenset[str] = frozenset(),
) -> list[Stmt]:
    """Materialize specific iterations of ``loop`` as straight-line code."""
    out: list[Stmt] = []
    for value in values:
        target = affine_expr(value, params)
        for stmt in loop.body:
            out.append(subst_stmt(stmt, {loop.index: target}))
    return out
