"""Reuse-based greedy loop fusion — the paper's Fig. 6 algorithm.

``fuse_level`` runs one level of fusion over a statement list:

* iterate statements first to last; for each, search backwards for the
  closest predecessor that shares data (``GreedilyFuse``);
* a non-loop statement is *embedded* into the predecessor loop at the
  iteration dictated by dependence and reuse (statement embedding);
* two loops are fused with the minimal legal *alignment* factor
  (``FusibleTest``), which may be negative;
* when no bounded alignment exists because conflicts pin the later loop's
  first iterations, those boundary iterations are *peeled off* (the
  paper's restricted iteration reordering) and fusion is retried;
* a unit that grows is immediately re-tested for further upward fusion;
* infusible pairs are memoized to avoid repeated tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ...analysis import (
    Conflict,
    ConflictKind,
    RefAccess,
    depends,
    embed_after,
    embed_before,
    shares_data,
)
from ...analysis.manager import cached_alignment
from ...lang import Assumptions, DEFAULT_PARAM_MIN, Loop, Stmt
from ...transform.subst import FreshNames
from .codegen import peel_iterations, unit_to_stmts
from .unit import FusionUnit


@dataclass(frozen=True)
class FusionOptions:
    """Feature switches (the ablation benchmarks toggle these)."""

    embedding: bool = True  # statement embedding
    alignment: bool = True  # non-zero alignment factors
    splitting: bool = True  # peel boundary iterations and retry
    max_peel: int = 2  # how many boundary iterations may be peeled
    #: restrict to loops with identical bounds (the McKinley et al.
    #: baseline of §5; used by repro.baselines.mckinley)
    identical_bounds: bool = False
    param_min: int = DEFAULT_PARAM_MIN


@dataclass
class FusionEvent:
    kind: str  # 'fuse' | 'embed' | 'peel'
    detail: str


@dataclass
class LevelReport:
    """What one level pass did."""

    loops_before: int = 0
    loops_after: int = 0
    #: fused units at the end of the pass (the paper's "157 loops -> 8"
    #: counts these, not the prologue/epilogue segments codegen emits)
    units_after: int = 0
    events: list[FusionEvent] = field(default_factory=list)
    infusible: list[str] = field(default_factory=list)

    def record(self, kind: str, detail: str) -> None:
        self.events.append(FusionEvent(kind, detail))


class _Item:
    _uid = 0

    def __init__(self, unit: FusionUnit) -> None:
        _Item._uid += 1
        self.uid = _Item._uid
        self.version = 0
        self.unit = unit
        self._acc: Optional[list[RefAccess]] = None

    @property
    def accesses(self) -> list[RefAccess]:
        if self._acc is None:
            self._acc = self.unit.accesses()
        return self._acc

    def update(self, unit: FusionUnit) -> None:
        self.unit = unit
        self.version += 1
        self._acc = None

    @property
    def key(self) -> tuple[int, int]:
        return (self.uid, self.version)


class _LevelFuser:
    def __init__(
        self,
        params: Sequence[str],
        options: FusionOptions,
        fresh: FreshNames,
        report: LevelReport,
        fixed: Sequence[str] = (),
        assume: Assumptions | None = None,
    ) -> None:
        self.params = tuple(params)
        self.fixed = tuple(fixed) or tuple(params)
        self.assume = assume or Assumptions(default=options.param_min)
        self.options = options
        self.fresh = fresh
        self.report = report
        self.memo: set[tuple[tuple[int, int], tuple[int, int]]] = set()
        self.items: list[_Item] = []

    # -- driver ---------------------------------------------------------------

    def run(self, body: Sequence[Stmt]) -> list[Stmt]:
        self.items = [
            _Item(
                FusionUnit.from_loop(s, self.params, self.fixed)
                if isinstance(s, Loop)
                else FusionUnit.from_stmt(s, self.params, self.fixed)
            )
            for s in body
        ]
        self.report.loops_before = sum(i.unit.loop_count() for i in self.items)
        k = 0
        while k < len(self.items):
            if not self.greedily_fuse(k):
                k += 1
        self.report.loops_after = 0
        self.report.units_after = sum(
            1 for i in self.items if not i.unit.is_loose
        )
        out: list[Stmt] = []
        for item in self.items:
            label = None
            if len(item.unit.slots) > 1:
                label = f"fused{item.uid}"
            stmts = unit_to_stmts(item.unit, self.fresh, self.assume, label=label)
            for s in stmts:
                if isinstance(s, Loop):
                    self.report.loops_after += 1
            out.extend(stmts)
        return out

    def greedily_fuse(self, k: int) -> bool:
        """Try to fuse item ``k`` upward; True when the list changed."""
        if not 0 <= k < len(self.items):
            return False
        item = self.items[k]
        j = self._closest_sharer(k)
        if j is None:
            return False
        pred = self.items[j]
        pair = (pred.key, item.key)
        if pair in self.memo:
            return False
        changed = self._try_merge(j, k)
        if changed:
            return True
        self.memo.add(pair)
        return False

    def _closest_sharer(self, k: int) -> Optional[int]:
        acc = self.items[k].accesses
        for j in range(k - 1, -1, -1):
            if shares_data(self.items[j].accesses, acc):
                return j
        return None

    # -- merge cases --------------------------------------------------------

    def _try_merge(self, j: int, k: int) -> bool:
        pred, item = self.items[j], self.items[k]
        if item.unit.is_loose and not pred.unit.is_loose:
            return self._embed_later_stmt(j, k)
        if not item.unit.is_loose and pred.unit.is_loose:
            return self._embed_earlier_stmt(j, k)
        if item.unit.is_loose and pred.unit.is_loose:
            return False
        return self._fuse_loops(j, k)

    def _embed_later_stmt(self, j: int, k: int) -> bool:
        """Embed the non-loop item k into the predecessor unit j."""
        if not self.options.embedding:
            return False
        pred, item = self.items[j], self.items[k]
        point = embed_after(pred.accesses, item.accesses, self.assume)
        if not point.ok:
            self.report.infusible.append(
                f"embed {item.unit.describe()}: {point.reason}"
            )
            return False
        if point.at is None:
            return False  # unconstrained: leave it for a later consumer
        candidate = pred.unit.with_embed_last(item.unit.loose, point.at)
        if candidate.hull(self.assume) is None:
            self.report.infusible.append(
                f"embed {item.unit.describe()}: embedding point {point.at} "
                "not comparable with the fused bounds"
            )
            return False
        pred.update(candidate)
        del self.items[k]
        self.report.record(
            "embed", f"stmt -> {pred.unit.describe()} at {point.at}"
        )
        self.greedily_fuse(j)
        return True

    def _embed_earlier_stmt(self, j: int, k: int) -> bool:
        """Absorb the earlier non-loop item j into the later loop unit k.

        The statement moves *later*, past any items between j and k — legal
        only if it does not depend on them.
        """
        if not self.options.embedding:
            return False
        pred, item = self.items[j], self.items[k]
        for mid in range(j + 1, k):
            if depends(
                pred.accesses, self.items[mid].accesses, self.assume
            ) or depends(
                self.items[mid].accesses, pred.accesses, self.assume
            ):
                return False
        point = embed_before(pred.accesses, item.accesses, self.assume)
        if not point.ok or point.at is None:
            if not point.ok:
                self.report.infusible.append(
                    f"embed-before {pred.unit.describe()}: {point.reason}"
                )
            return False
        candidate = item.unit.with_embed_first(pred.unit.loose, point.at)
        if candidate.hull(self.assume) is None:
            self.report.infusible.append(
                f"embed-before {pred.unit.describe()}: embedding point "
                f"{point.at} not comparable with the fused bounds"
            )
            return False
        item.update(candidate)
        del self.items[j]
        self.report.record("embed", f"stmt -> {item.unit.describe()} at {point.at}")
        self.greedily_fuse(k - 1)
        return True

    def _fuse_loops(self, j: int, k: int) -> bool:
        pred, item = self.items[j], self.items[k]
        result = cached_alignment(pred.accesses, item.accesses, self.assume)
        if result.fusible:
            if self.options.identical_bounds and not self._same_bounds(pred, item):
                self.report.infusible.append(
                    f"{item.unit.describe()}: bounds differ (identical-bounds mode)"
                )
                return False
            if not self.options.alignment and result.alignment != 0:
                self.report.infusible.append(
                    f"{item.unit.describe()}: needs alignment "
                    f"{result.alignment} but alignment is disabled"
                )
                return False
            fused = pred.unit.fuse_with(item.unit, result.alignment)
            if fused.hull(self.assume) is None:
                self.report.infusible.append(
                    f"{item.unit.describe()}: fused bounds not comparable"
                )
                return False
            pred.update(fused)
            del self.items[k]
            self.report.record(
                "fuse",
                f"alignment {result.alignment:+d} -> {pred.unit.describe()}",
            )
            self.greedily_fuse(j)
            return True
        if self.options.splitting and self._try_peel(j, k, result.unbounded):
            return True
        self.report.infusible.append(f"{item.unit.describe()}: {result.reason}")
        return False

    def _same_bounds(self, pred: "_Item", item: "_Item") -> bool:
        spans = []
        for it in (pred, item):
            for m in it.unit.members:
                spans.append((m.fused_lo, m.fused_hi))
        lo0, hi0 = spans[0]
        for lo, hi in spans[1:]:
            if lo.compare(lo0, self.assume) != 0 or hi.compare(hi0, self.assume) != 0:
                return False
        return True

    # -- boundary splitting ------------------------------------------------------

    def _try_peel(self, j: int, k: int, conflicts: tuple[Conflict, ...]) -> bool:
        """Peel leading iterations of the later loop and retry fusion.

        Applies when every unbounded conflict pins the later unit to
        iterations within ``max_peel`` of its lower bound; the peeled
        slices must be independent of the remaining core so they can run
        after the fused loop instead of before it.
        """
        item = self.items[k]
        if not item.unit.is_simple_loop():
            return False
        loop = item.unit.slots[0].loop
        lo = loop.lower.affine()
        peel = 0
        for c in conflicts:
            if c.kind not in (ConflictKind.PIN2, ConflictKind.PINS) or c.pin2 is None:
                return False
            offset = c.pin2 - lo
            if not offset.is_constant():
                return False
            distance = offset.int_value()
            if distance < 0 or distance >= self.options.max_peel:
                return False
            peel = max(peel, distance + 1)
        if peel == 0:
            return False
        values = [lo + d for d in range(peel)]
        peeled_stmts = peel_iterations(
            loop, values, self.fresh, frozenset(self.params)
        )
        core = Loop(
            loop.index,
            loop.lower + peel,
            loop.upper,
            loop.body,
            label=loop.label,
        )
        core_item = _Item(FusionUnit.from_loop(core, self.params, self.fixed))
        peeled_items = [
            _Item(
                FusionUnit.from_loop(s, self.params, self.fixed)
                if isinstance(s, Loop)
                else FusionUnit.from_stmt(s, self.params, self.fixed)
            )
            for s in peeled_stmts
        ]
        # the peeled slices will execute after the core: check independence
        for p in peeled_items:
            if depends(p.accesses, core_item.accesses, self.assume):
                return False
            if depends(core_item.accesses, p.accesses, self.assume):
                return False
        self.items[k : k + 1] = [core_item] + peeled_items
        self.report.record(
            "peel", f"{loop.label or loop.index}: first {peel} iteration(s)"
        )
        return self._fuse_loops(j, k)


def fuse_level(
    body: Sequence[Stmt],
    params: Sequence[str],
    options: FusionOptions = FusionOptions(),
    fresh: Optional[FreshNames] = None,
    fixed: Sequence[str] = (),
    assume: Optional[Assumptions] = None,
) -> tuple[list[Stmt], LevelReport]:
    """Fuse one level of a statement list; returns (new body, report).

    ``fixed`` lists names that are symbolic constants at this level (the
    program parameters plus any enclosing loop indices); ``assume`` carries
    their lower bounds for symbolic comparison.
    """
    if fresh is None:
        fresh = FreshNames(set(params))
        from ...transform.subst import bound_names

        fresh.reserve(bound_names(body))
    report = LevelReport()
    fuser = _LevelFuser(params, options, fresh, report, fixed, assume)
    new_body = fuser.run(body)
    return new_body, report
