"""Reuse-based loop fusion (paper §2.3): the first half of the strategy."""

from .codegen import peel_iterations, unit_to_stmts
from .greedy import FusionEvent, FusionOptions, LevelReport, fuse_level
from .multilevel import FusionReport, fuse_program
from .unit import Embed, FusionUnit, Member

__all__ = [
    "Embed",
    "FusionEvent",
    "FusionOptions",
    "FusionReport",
    "FusionUnit",
    "LevelReport",
    "Member",
    "fuse_level",
    "fuse_program",
    "peel_iterations",
    "unit_to_stmts",
]
