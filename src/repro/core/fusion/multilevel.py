"""Multi-level fusion: apply the level pass outermost-to-innermost (§4.1).

The paper fuses level by level from the outermost loop level inward.  We
fuse the top-level statement list (level 1), then recurse into every loop
produced — including loops inside guards from the fallback emitter — and
fuse their bodies (level 2), and so on up to ``max_levels``.

When descending into a loop, its index becomes a *fixed* symbolic
constant for the inner level; its provable lower bound is added to the
comparison assumptions so inner-level ``FusibleTest``s can still decide
bound orderings soundly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ...lang import Assumptions, Guard, Loop, Program, Stmt
from ...transform.subst import FreshNames, bound_names
from .greedy import FusionOptions, LevelReport, fuse_level


@dataclass
class FusionReport:
    """Aggregated report over all levels."""

    levels: list[LevelReport] = field(default_factory=list)

    def loops_before(self, level: int) -> int:
        return self.levels[level - 1].loops_before if level <= len(self.levels) else 0

    def loops_after(self, level: int) -> int:
        return self.levels[level - 1].loops_after if level <= len(self.levels) else 0

    def total_events(self) -> int:
        return sum(len(lr.events) for lr in self.levels)

    def summary(self) -> str:
        lines = []
        for depth, lr in enumerate(self.levels, start=1):
            lines.append(
                f"level {depth}: {lr.loops_before} loops -> {lr.units_after} "
                f"fused units ({lr.loops_after} emitted loops, "
                f"{len(lr.events)} transformations)"
            )
        return "\n".join(lines)


class _MultiLevel:
    def __init__(
        self, params: Sequence[str], options: FusionOptions, max_levels: int
    ) -> None:
        self.params = tuple(params)
        self.options = options
        self.max_levels = max_levels
        self.fresh = FreshNames(set(params))
        #: one merged LevelReport per depth
        self.reports: dict[int, LevelReport] = {}

    def _merge(self, depth: int, report: LevelReport) -> None:
        agg = self.reports.setdefault(depth, LevelReport())
        agg.loops_before += report.loops_before
        agg.loops_after += report.loops_after
        agg.units_after += report.units_after
        agg.events.extend(report.events)
        agg.infusible.extend(report.infusible)

    def fuse_body(
        self,
        body: Sequence[Stmt],
        depth: int,
        fixed: tuple[str, ...],
        assume: Assumptions,
    ) -> list[Stmt]:
        if depth <= self.max_levels:
            new_body, report = fuse_level(
                body, self.params, self.options, self.fresh, fixed, assume
            )
            self._merge(depth, report)
        else:
            new_body = list(body)
        return [self.descend(s, depth, fixed, assume) for s in new_body]

    def descend(
        self,
        stmt: Stmt,
        depth: int,
        fixed: tuple[str, ...],
        assume: Assumptions,
    ) -> Stmt:
        if isinstance(stmt, Loop):
            low = stmt.lower.affine().lower_bound(assume)
            minimum = None if low is None else int(low)
            inner_fixed = fixed + (stmt.index,)
            inner_assume = assume.with_var(stmt.index, minimum)
            return stmt.with_body(
                self.fuse_body(stmt.body, depth + 1, inner_fixed, inner_assume)
            )
        if isinstance(stmt, Guard):
            return Guard(
                stmt.index,
                stmt.intervals,
                tuple(self.fuse_body(stmt.body, depth, fixed, assume)),
                tuple(self.fuse_body(stmt.else_body, depth, fixed, assume)),
            )
        return stmt


def fuse_program(
    program: Program,
    max_levels: int = 8,
    options: Optional[FusionOptions] = None,
) -> tuple[Program, FusionReport]:
    """Apply reuse-based loop fusion to a whole program.

    ``max_levels=1`` reproduces the paper's "one-level fusion" variant for
    SP; the default fuses every level.
    """
    options = options or FusionOptions()
    engine = _MultiLevel(program.params, options, max_levels)
    engine.fresh.reserve(bound_names(program.body))
    assume = Assumptions(default=options.param_min)
    new_body = engine.fuse_body(program.body, 1, tuple(program.params), assume)
    report = FusionReport(
        levels=[engine.reports[d] for d in sorted(engine.reports)]
    )
    return program.with_body(new_body), report
