"""Reproduction of Ding & Kennedy, "Improving Effective Bandwidth through
Compiler Enhancement of Global Cache Reuse" (IPPS 2001).

Public entry points:

* :mod:`repro.lang` — the mini loop language (parse / print / build);
* :func:`repro.core.compile_variant` — run a program through an
  optimization level (``noopt`` … ``new``);
* :mod:`repro.harness` — measurement drivers used by the benchmarks;
* ``python -m repro`` — the command-line source-to-source tool.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
