"""FFT — radix-2 Cooley-Tukey kernel (paper §2.2).

Used only in the reuse-driven-execution study: the paper reports that
reuse-driven execution did *not* improve FFT (evadable reuses up 6%),
because the butterfly dependence structure already forces long-range
pairings — there is no execution order that keeps all reuses short.

Stage strides double every pass, so the loop structure depends on the
transform size; the builder generates the ``log2(n)`` stage nests for a
concrete power-of-two size (all bounds and strides constant, hence
affine).  Arrays: data real/imag + twiddle real/imag.
"""

from __future__ import annotations

from ..lang import Program, parse


def build(n: int = 256) -> Program:
    if n & (n - 1) or n < 4:
        raise ValueError("FFT size must be a power of two >= 4")
    lines = [
        "program fft",
        f"real RE[{n}], IM[{n}], WR[{n}], WI[{n}]",
        "",
    ]
    h = 1
    stage = 0
    while h < n:
        span = 2 * h
        groups = n // span
        stage += 1
        lines += [
            f"# stage {stage}: butterflies of span {span}",
            f"for g = 1, {groups} {{",
            f"  for k = 1, {h} {{",
            f"    RE[(g - 1) * {span} + k] = bfa(RE[(g - 1) * {span} + k],"
            f" RE[(g - 1) * {span} + k + {h}], WR[(k - 1) * {groups} + 1],"
            f" IM[(g - 1) * {span} + k + {h}], WI[(k - 1) * {groups} + 1])",
            f"    IM[(g - 1) * {span} + k] = bfa(IM[(g - 1) * {span} + k],"
            f" IM[(g - 1) * {span} + k + {h}], WR[(k - 1) * {groups} + 1],"
            f" RE[(g - 1) * {span} + k + {h}], WI[(k - 1) * {groups} + 1])",
            f"    RE[(g - 1) * {span} + k + {h}] = bfb(RE[(g - 1) * {span} + k],"
            f" RE[(g - 1) * {span} + k + {h}], WR[(k - 1) * {groups} + 1])",
            f"    IM[(g - 1) * {span} + k + {h}] = bfb(IM[(g - 1) * {span} + k],"
            f" IM[(g - 1) * {span} + k + {h}], WI[(k - 1) * {groups} + 1])",
            "  }",
            "}",
        ]
        h = span
    return parse("\n".join(lines))


PAPER_FACTS = {
    "source": "self-written kernel (study program, §2.2)",
    "input_size": "power-of-two transform",
    "role": "reuse-driven execution does not help (+6% evadable reuses)",
}

DEFAULT_N = 256
SMALL_N = 128
LARGE_N = 256
