"""Swim — SPEC95 shallow-water model (paper Fig. 9).

Structurally faithful re-implementation: 15 arrays, 8 loop nests of 1–2
levels inside the time step.  The three physics phases (CALC1/2/3) are
2-level stencil sweeps; between them sit the periodic-boundary wrap
loops.  Wraps along the *row* dimension share the sweep's outer loop and
fuse; wraps along the *column* dimension genuinely serialize against the
sweep that produced the data (they read the last column) — the mixture is
why the paper reports Swim "also requires loop splitting" and why its
gains are the most modest of the four applications.
"""

from __future__ import annotations

from ..lang import Program, parse

SOURCE = """
program swim
param N
real U[N, N], V[N, N], P[N, N]
real UNEW[N, N], VNEW[N, N], PNEW[N, N]
real UOLD[N, N], VOLD[N, N], POLD[N, N]
real CU[N, N], CV[N, N], Z[N, N], H[N, N]
real PSI[N, N], COEF[N, N]

# CALC1: mass fluxes, vorticity, height field
for i = 1, N - 1 {
  for j = 1, N - 1 {
    CU[j, i] = cu(P[j + 1, i], P[j, i], U[j + 1, i])
    CV[j, i] = cv(P[j, i + 1], P[j, i], V[j, i + 1])
    Z[j, i] = zeta(V[j + 1, i], V[j, i], U[j, i + 1], U[j, i], COEF[j, i], P[j, i])
    H[j, i] = hgt(P[j, i], U[j + 1, i], U[j, i], V[j, i + 1], V[j, i])
  }
}
# periodic boundaries: copy first interior row/column to the wrap row/column
for i = 1, N - 1 {
  CU[N, i] = CU[1, i]
  Z[N, i] = Z[1, i]
}
for j = 1, N - 1 {
  CV[j, N] = CV[j, 1]
  H[j, N] = H[j, 1]
}

# CALC2: new velocities and height
for i = 1, N - 1 {
  for j = 1, N - 1 {
    UNEW[j, i] = unew(UOLD[j, i], Z[j, i], CV[j + 1, i], CV[j, i], H[j + 1, i], H[j, i])
    VNEW[j, i] = vnew(VOLD[j, i], Z[j, i], CU[j, i + 1], CU[j, i], H[j, i + 1], H[j, i])
    PNEW[j, i] = pnew(POLD[j, i], CU[j + 1, i], CU[j, i], CV[j, i + 1], CV[j, i])
  }
}
for i = 1, N - 1 {
  UNEW[N, i] = UNEW[1, i]
  PNEW[N, i] = PNEW[1, i]
}
for j = 1, N - 1 {
  VNEW[j, N] = VNEW[j, 1]
}

# CALC3: time smoothing and variable rotation
for i = 1, N - 1 {
  for j = 1, N - 1 {
    UOLD[j, i] = tsm(U[j, i], UNEW[j, i], UOLD[j, i])
    VOLD[j, i] = tsm(V[j, i], VNEW[j, i], VOLD[j, i])
    POLD[j, i] = tsm(P[j, i], PNEW[j, i], POLD[j, i])
    U[j, i] = cp(UNEW[j, i])
    V[j, i] = cp(VNEW[j, i])
    P[j, i] = cp(PNEW[j, i])
  }
}
# stream-function diagnostic
for i = 1, N - 1 {
  for j = 1, N - 1 {
    PSI[j, i] = psi(PSI[j, i], U[j, i], V[j, i])
  }
}
"""


def build() -> Program:
    return parse(SOURCE)


PAPER_FACTS = {
    "source": "SPEC95",
    "input_size": "513 x 513",
    "lines": 429,
    "loop_nests": 8,
    "nest_levels": (1, 2),
    "arrays": 15,
}

DEFAULT_PARAMS = {"N": 97}
PAPER_PARAMS = {"N": 513}
SMALL_PARAMS = {"N": 48}
LARGE_PARAMS = {"N": 97}
DEFAULT_STEPS = 2
