"""ADI — Alternating Direction Implicit integration (paper Fig. 9).

The paper's self-written kernel: 3 arrays, 8 loops in 4 two-level nests,
plus separate boundary-condition loops.  Data is a 2-D mesh ``X`` with
coefficient arrays ``A`` and ``B``; one time step performs a forward
elimination and a backward substitution along each of the two directions.

Fusion structure (what the paper exploits): the two x-direction sweeps
process *independent lines* indexed by the outer loop, so reuse-based
fusion merges them into a single pass that keeps each line in cache; the
y-direction sweeps then fuse with each other the same way.  The x→y phase
boundary is a true all-to-all dependence and correctly stays unfused.
"""

from __future__ import annotations

from ..lang import Program, parse

SOURCE = """
program adi
param N
real X[N, N], A[N, N], B[N, N]

# boundary conditions along the first line of each direction
for i = 1, N {
  X[1, i] = f0(X[1, i], B[1, i])
}
for j = 1, N {
  X[j, 1] = g0(X[j, 1], B[j, 1])
}

# x-direction: forward elimination along each line i
for i = 1, N {
  for j = 2, N {
    X[j, i] = fwd(X[j, i], X[j - 1, i], A[j, i], B[j - 1, i])
    B[j, i] = upd(B[j, i], A[j, i], B[j - 1, i])
  }
}
# x-direction: backward substitution along each line i
for i = 1, N {
  for j = 1, N - 1 {
    X[N - j, i] = bwd(X[N - j, i], A[N - j + 1, i], X[N - j + 1, i], B[N - j, i])
  }
}

# y-direction: forward elimination along each line j
for j = 1, N {
  for i = 2, N {
    X[j, i] = fwd(X[j, i], X[j, i - 1], A[j, i], B[j, i - 1])
    B[j, i] = upd(B[j, i], A[j, i], B[j, i - 1])
  }
}
# y-direction: backward substitution along each line j
for j = 1, N {
  for i = 1, N - 1 {
    X[j, N - i] = bwd(X[j, N - i], A[j, N - i + 1], X[j, N - i + 1], B[j, N - i])
  }
}
"""


def build() -> Program:
    return parse(SOURCE)


#: what the paper reports for this application (Fig. 9)
PAPER_FACTS = {
    "source": "self-written",
    "input_size": "2K x 2K",
    "lines": 108,
    "loop_nests": 4,
    "nest_levels": (1, 2),
    "arrays": 3,
}

#: default (scaled) and paper-sized inputs; both runnable, the scaled one
#: is what the benchmarks use by default (see EXPERIMENTS.md)
DEFAULT_PARAMS = {"N": 161}
PAPER_PARAMS = {"N": 2048}
SMALL_PARAMS = {"N": 50}
LARGE_PARAMS = {"N": 100}
DEFAULT_STEPS = 2
