"""Tomcatv — SPEC95 vectorized mesh generator (paper Fig. 9).

Structurally faithful re-implementation: 7 arrays, 5 nests of 1–2 levels
per iteration.  Residuals are computed from the mesh (X, Y), tridiagonal
systems are solved along each line (forward recurrence + backward
substitution), and corrections are added back.  All nests share the same
outer line loop, which is exactly the global reuse the paper's fusion
recovers; the paper notes Tomcatv additionally needed level ordering
(loop interchange) done by hand — our nests are already line-major.
"""

from __future__ import annotations

from ..lang import Program, parse

SOURCE = """
program tomcatv
param N
real X[N, N], Y[N, N]
real RX[N, N], RY[N, N]
real AA[N, N], DD[N, N], D[N, N]

# residuals of the mesh equations
for i = 2, N - 1 {
  for j = 2, N - 1 {
    RX[j, i] = resx(X[j + 1, i], X[j - 1, i], X[j, i + 1], X[j, i - 1], X[j, i])
    RY[j, i] = resy(Y[j + 1, i], Y[j - 1, i], Y[j, i + 1], Y[j, i - 1], Y[j, i])
  }
}
# tridiagonal coefficients
for i = 2, N - 1 {
  for j = 2, N - 1 {
    AA[j, i] = coefa(X[j, i], Y[j, i], X[j + 1, i], Y[j + 1, i])
    DD[j, i] = coefd(X[j, i], Y[j, i], AA[j, i])
  }
}
# forward elimination along each line i
for i = 2, N - 1 {
  D[1, i] = 1.0
  for j = 2, N - 1 {
    D[j, i] = elim(DD[j, i], AA[j, i], D[j - 1, i])
    RX[j, i] = updr(RX[j, i], AA[j, i], RX[j - 1, i], D[j - 1, i])
    RY[j, i] = updr(RY[j, i], AA[j, i], RY[j - 1, i], D[j - 1, i])
  }
}
# backward substitution along each line i
for i = 2, N - 1 {
  for j = 2, N - 2 {
    RX[N - j, i] = subst(RX[N - j, i], AA[N - j, i], RX[N - j + 1, i], D[N - j, i])
    RY[N - j, i] = subst(RY[N - j, i], AA[N - j, i], RY[N - j + 1, i], D[N - j, i])
  }
}
# add corrections to the mesh
for i = 2, N - 1 {
  for j = 2, N - 1 {
    X[j, i] = addc(X[j, i], RX[j, i])
    Y[j, i] = addc(Y[j, i], RY[j, i])
  }
}
"""


def build() -> Program:
    return parse(SOURCE)


PAPER_FACTS = {
    "source": "SPEC95",
    "input_size": "513 x 513",
    "lines": 221,
    "loop_nests": 5,
    "nest_levels": (1, 2),
    "arrays": 7,
}

DEFAULT_PARAMS = {"N": 97}
PAPER_PARAMS = {"N": 513}
SMALL_PARAMS = {"N": 48}
LARGE_PARAMS = {"N": 97}
DEFAULT_STEPS = 2
