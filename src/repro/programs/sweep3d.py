"""Sweep3D — DOE wavefront transport kernel (paper §2.2).

Used in the reuse-driven-execution study: the paper reports a 67%
reduction in evadable reuses.  The essential structure is that each
octant sweep processes *several independent angles* over the same mesh:
the per-angle wavefront recurrences are serial, but angles only couple
through the per-cell flux accumulation — so an execution order is free to
interleave the angles cell by cell, collapsing the mesh-sized reuse of
the cross sections (``SIGT``/``SRC``) and flux into constant distance.
That freedom is exactly what reuse-driven execution discovers, and what
sweeping angle-after-angle (program order) squanders.

Modelled as the 2-D multi-angle four-octant form; direction reversal uses
``N - i`` subscripts so every loop stays a normalized ascending affine
loop.
"""

from __future__ import annotations

from ..lang import Program, parse

ANGLES = 3  # angles per octant (real Sweep3D batches 6)


def _octant(oct_id: int, rev_i: bool, rev_j: bool) -> list[str]:
    lines = [f"# octant {oct_id}: {'-' if rev_i else '+'}i {'-' if rev_j else '+'}j"]
    ii = "N - i" if rev_i else "i"
    jj = "N - j" if rev_j else "j"
    up_i = "N - i + 1" if rev_i else "i - 1"
    up_j = "N - j + 1" if rev_j else "j - 1"
    lo_i, hi_i = ("1", "N - 1") if rev_i else ("2", "N")
    lo_j, hi_j = ("1", "N - 1") if rev_j else ("2", "N")
    for a in range(1, ANGLES + 1):
        lines += [
            f"for i = {lo_i}, {hi_i} {{",
            f"  for j = {lo_j}, {hi_j} {{",
            f"    PHI[{a}, {jj}, {ii}] = wave(PHI[{a}, {up_j}, {ii}],"
            f" PHI[{a}, {jj}, {up_i}], SIGT[{jj}, {ii}], SRC[{jj}, {ii}])",
            f"    FLUX[{jj}, {ii}] = acc(FLUX[{jj}, {ii}], PHI[{a}, {jj}, {ii}])",
            "  }",
            "}",
        ]
    return lines


def build() -> Program:
    lines = [
        "program sweep3d",
        "param N",
        f"real PHI[{ANGLES}, N, N], SIGT[N, N], SRC[N, N], FLUX[N, N]",
        "",
    ]
    lines += _octant(1, False, False)
    lines += _octant(2, True, False)
    lines += _octant(3, False, True)
    lines += _octant(4, True, True)
    return parse("\n".join(lines))


PAPER_FACTS = {
    "source": "DOE benchmark (study program, §2.2)",
    "input_size": "mesh sweep per angle per octant",
    "role": "reuse-driven execution removes 67% of evadable reuses",
}

DEFAULT_PARAMS = {"N": 48}
SMALL_PARAMS = {"N": 24}
LARGE_PARAMS = {"N": 48}
DEFAULT_STEPS = 1
