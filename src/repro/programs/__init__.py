"""The paper's benchmark programs, written in the mini-language."""

from . import adi, fft, sp, sweep3d, swim, tomcatv
from .registry import APPLICATIONS, STUDY_PROGRAMS, BenchmarkProgram, build_fft, get

__all__ = [
    "APPLICATIONS",
    "BenchmarkProgram",
    "STUDY_PROGRAMS",
    "adi",
    "build_fft",
    "fft",
    "get",
    "sp",
    "sweep3d",
    "swim",
    "tomcatv",
]
