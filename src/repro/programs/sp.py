"""NAS/SP — scalar-pentadiagonal CFD benchmark (paper Fig. 9, §4.4).

Structurally faithful mini-SP: 15 global arrays (4 of them carrying a
small constant component dimension, which array splitting unrolls — the
paper's 15 -> 42), and the ``adi`` time step the paper measures:
``compute_rs`` -> ``compute_rhs`` (initialization plus one flux sweep per
direction) -> ``x_solve`` / ``y_solve`` / ``z_solve`` (coefficient,
forward-elimination, back-substitution nests per direction) -> ``add``.
Nests are 2–4 levels deep (the component loops around the
initialization/add nests are the 4th level, eliminated by unrolling).

The solve sweeps recur along their own direction but are independent
across the other two — the global reuse the paper's fusion exploits at
the outer levels; the direction changes between x/y/z solves are genuine
barriers.  The source is generated programmatically (the real SP is 4 233
lines of Fortran; the repetition over components is mechanical).
"""

from __future__ import annotations

from ..lang import Program, parse

NC = 5  # components per cell, like SP's u(5,...)


def _source() -> str:
    lines: list[str] = [
        "program sp",
        "param N",
        f"real U[{NC}, N, N, N], RHS[{NC}, N, N, N], FORCING[{NC}, N, N, N]",
        "real LHS[3, N, N, N]",
        "real US[N, N, N], VS[N, N, N], WS[N, N, N], QS[N, N, N]",
        "real RHO[N, N, N], SPEED[N, N, N], SQUARE[N, N, N]",
        "real AINV[N, N, N], CV[N, N, N], RTMP[N, N, N], BC[N, N, N]",
        "",
        "# compute_rs: cell-centred quantities from the state vector",
        "for k = 1, N { for j = 1, N { for i = 1, N {",
        "  RHO[i, j, k] = rrho(U[1, i, j, k])",
        "  US[i, j, k] = byrho(U[2, i, j, k], RHO[i, j, k])",
        "  VS[i, j, k] = byrho(U[3, i, j, k], RHO[i, j, k])",
        "  WS[i, j, k] = byrho(U[4, i, j, k], RHO[i, j, k])",
        "  QS[i, j, k] = qsum(US[i, j, k], VS[i, j, k], WS[i, j, k])",
        "  SQUARE[i, j, k] = sq(U[2, i, j, k], U[3, i, j, k], U[4, i, j, k], RHO[i, j, k])",
        "  SPEED[i, j, k] = spd(U[5, i, j, k], SQUARE[i, j, k], RHO[i, j, k])",
        "  AINV[i, j, k] = ainv(SPEED[i, j, k])",
        "} } }",
        "",
        "# compute_rhs: start from the forcing terms (component loop = 4th level)",
        f"for c = 1, {NC} {{ for k = 1, N {{ for j = 1, N {{ for i = 1, N {{",
        "  RHS[c, i, j, k] = cp(FORCING[c, i, j, k])",
        "} } } }",
    ]
    # one flux-difference sweep per direction
    for axis, (di, dj, dk, vel) in {
        "x": (1, 0, 0, "US"),
        "y": (0, 1, 0, "VS"),
        "z": (0, 0, 1, "WS"),
    }.items():
        def at(off: int) -> str:
            return (
                f"i {'+' if di * off >= 0 else '-'} {abs(di * off)}"
                if di
                else "i",
                f"j {'+' if dj * off >= 0 else '-'} {abs(dj * off)}"
                if dj
                else "j",
                f"k {'+' if dk * off >= 0 else '-'} {abs(dk * off)}"
                if dk
                else "k",
            )

        ip, jp, kp = at(1)
        im, jm, km = at(-1)
        lines += [
            "",
            f"# compute_rhs: {axis}-direction flux differences",
            "for k = 2, N - 1 { for j = 2, N - 1 { for i = 2, N - 1 {",
        ]
        for c in range(1, NC + 1):
            lines.append(
                f"  RHS[{c}, i, j, k] = flux(RHS[{c}, i, j, k], "
                f"U[{c}, {ip}, {jp}, {kp}], U[{c}, {im}, {jm}, {km}], "
                f"{vel}[{ip}, {jp}, {kp}], {vel}[{im}, {jm}, {km}], "
                f"QS[i, j, k], SQUARE[i, j, k])"
            )
        lines.append("} } }")
    # the three factored solves
    for axis, (var, lo_sub, hi_sub, bk_sub) in {
        "x": ("i", "i - 1", "i + 1", "N - i"),
        "y": ("j", "j - 1", "j + 1", "N - j"),
        "z": ("k", "k - 1", "k + 1", "N - k"),
    }.items():
        def subs(expr: str) -> str:
            return f"{expr if var == 'i' else 'i'}, {expr if var == 'j' else 'j'}, {expr if var == 'k' else 'k'}"

        lines += [
            "",
            f"# {axis}_solve: pentadiagonal coefficients along {var}",
            "for k = 2, N - 1 { for j = 2, N - 1 { for i = 2, N - 1 {",
            f"  CV[i, j, k] = lhsa({vel_for(axis)}[{subs(lo_sub)}], {vel_for(axis)}[{subs(hi_sub)}])",
            f"  RTMP[i, j, k] = lhsb(SPEED[{subs(lo_sub)}], SPEED[{subs(hi_sub)}], AINV[i, j, k])",
            "  LHS[1, i, j, k] = lhs1(CV[i, j, k], RTMP[i, j, k])",
            "  LHS[2, i, j, k] = lhs2(CV[i, j, k], RHO[i, j, k], BC[i, j, k])",
            "  LHS[3, i, j, k] = lhs3(RTMP[i, j, k], RHO[i, j, k])",
            "} } }",
            f"# {axis}_solve: forward elimination (recurrence along {var})",
            "for k = 2, N - 1 { for j = 2, N - 1 { for i = 2, N - 1 {",
            f"  LHS[2, i, j, k] = elim(LHS[2, i, j, k], LHS[1, i, j, k], LHS[3, {subs(lo_sub)}])",
        ]
        for c in range(1, NC + 1):
            lines.append(
                f"  RHS[{c}, i, j, k] = fwd(RHS[{c}, i, j, k], "
                f"LHS[1, i, j, k], RHS[{c}, {subs(lo_sub)}], LHS[2, {subs(lo_sub)}])"
            )
        lines += [
            "} } }",
            f"# {axis}_solve: back substitution (recurrence along -{var})",
            "for k = 2, N - 1 { for j = 2, N - 1 { for i = 2, N - 1 {",
        ]
        # map i -> N - i etc. for the backward sweep (runs N-2 .. 1... kept
        # in the interior N-2..2 by the bounds below)
        def bsubs(center: str, shifted: str) -> str:
            parts = []
            for v in ("i", "j", "k"):
                if v == var:
                    parts.append(shifted)
                else:
                    parts.append(v)
            return ", ".join(parts)

        for c in range(1, NC + 1):
            lines.append(
                f"  RHS[{c}, {bsubs(var, f'N - {var}')}] = bwd("
                f"RHS[{c}, {bsubs(var, f'N - {var}')}], "
                f"LHS[3, {bsubs(var, f'N - {var}')}], "
                f"RHS[{c}, {bsubs(var, f'N - {var} + 1')}], "
                f"LHS[2, {bsubs(var, f'N - {var}')}])"
            )
        lines.append("} } }")
    lines += [
        "",
        "# add: update the state vector (component loop = 4th level)",
        f"for c = 1, {NC} {{ for k = 2, N - 1 {{ for j = 2, N - 1 {{ for i = 2, N - 1 {{",
        "  U[c, i, j, k] = addu(U[c, i, j, k], RHS[c, i, j, k])",
        "} } } }",
    ]
    return "\n".join(lines)


def vel_for(axis: str) -> str:
    return {"x": "US", "y": "VS", "z": "WS"}[axis]


def build() -> Program:
    return parse(_source())


PAPER_FACTS = {
    "source": "NAS/NPB Serial v2.3",
    "input_size": "class B (102^3), 3 iterations",
    "lines": 4233,
    "loop_nests": 67,
    "nest_levels": (2, 4),
    "arrays": 15,
    "arrays_after_splitting": 42,
    "arrays_after_regrouping": 17,
}

DEFAULT_PARAMS = {"N": 18}
PAPER_PARAMS = {"N": 102}
SMALL_PARAMS = {"N": 10}
LARGE_PARAMS = {"N": 16}
DEFAULT_STEPS = 1
