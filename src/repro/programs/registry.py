"""Registry of the paper's benchmark programs.

Every entry knows how to build its program, which input sizes the paper
used, which (scaled) sizes the harness defaults to, and the structural
facts Fig. 9 reports — so the application-table benchmark can print
paper-vs-ours side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..lang import Program
from . import adi, fft, sp, sweep3d, swim, tomcatv


@dataclass(frozen=True)
class MachineSpec:
    """Per-application scaled hierarchy (rationale in EXPERIMENTS.md)."""

    base: str = "origin2000"
    l1_bytes: int = 8 * 1024
    l2_bytes: int = 128 * 1024
    tlb_entries: int = 16
    page_bytes: int = 4 * 1024


@dataclass(frozen=True)
class BenchmarkProgram:
    name: str
    build: Callable[[], Program]
    paper_facts: Mapping[str, object]
    default_params: Mapping[str, int]
    paper_params: Optional[Mapping[str, int]]
    small_params: Mapping[str, int]
    large_params: Mapping[str, int]
    steps: int = 1
    #: scaled machine used by default (base = what the paper measured on)
    machine_spec: MachineSpec = MachineSpec()

    @property
    def machine(self) -> str:
        return self.machine_spec.base


def _entry(name, module, spec: MachineSpec = MachineSpec()) -> BenchmarkProgram:
    return BenchmarkProgram(
        name=name,
        build=module.build,
        paper_facts=module.PAPER_FACTS,
        default_params=getattr(module, "DEFAULT_PARAMS", {}),
        paper_params=getattr(module, "PAPER_PARAMS", None),
        small_params=getattr(module, "SMALL_PARAMS", {}),
        large_params=getattr(module, "LARGE_PARAMS", {}),
        steps=getattr(module, "DEFAULT_STEPS", 1),
        machine_spec=spec,
    )


#: the four applications of Fig. 9 / Fig. 10, with per-application scaled
#: hierarchies.  L2 keeps the paper's data:L2 ratio at the default input
#: size; L1 keeps rows-per-L1; the TLB keeps reach:data while holding
#: enough entries that stream-count effects (not pathology) dominate.
APPLICATIONS: dict[str, BenchmarkProgram] = {
    "swim": _entry(
        "swim",
        swim,
        MachineSpec(base="octane", l1_bytes=8 * 1024, l2_bytes=48 * 1024,
                    tlb_entries=16, page_bytes=4 * 1024),
    ),
    "tomcatv": _entry(
        "tomcatv",
        tomcatv,
        MachineSpec(l1_bytes=8 * 1024, l2_bytes=144 * 1024,
                    tlb_entries=16, page_bytes=4 * 1024),
    ),
    "adi": _entry(
        "adi",
        adi,
        MachineSpec(l1_bytes=8 * 1024, l2_bytes=24 * 1024,
                    tlb_entries=16, page_bytes=4 * 1024),
    ),
    "sp": _entry(
        "sp",
        sp,
        MachineSpec(l1_bytes=8 * 1024, l2_bytes=24 * 1024,
                    tlb_entries=16, page_bytes=2 * 1024),
    ),
}

#: the §2.2 study set (reuse-driven execution)
STUDY_PROGRAMS: dict[str, BenchmarkProgram] = {
    "adi": APPLICATIONS["adi"],
    "sp": APPLICATIONS["sp"],
    "sweep3d": _entry("sweep3d", sweep3d),
}


def get(name: str) -> BenchmarkProgram:
    if name in APPLICATIONS:
        return APPLICATIONS[name]
    if name in STUDY_PROGRAMS:
        return STUDY_PROGRAMS[name]
    raise KeyError(f"unknown benchmark program {name!r}")


def build_fft(n: int = fft.DEFAULT_N) -> Program:
    return fft.build(n)
