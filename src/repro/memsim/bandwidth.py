"""Effective-bandwidth and energy reporting from simulation results.

The paper's §6 normalizes "data transferred" per program; these helpers
turn the same miss counts into actual quantities — megabytes across
each hierarchy boundary, the effective bandwidth the run sustained
(traffic / synthesized run time), the DRAM row-buffer hit rate, and the
energy the memory device spent.  One row per (program, level); the CLI
renders them under ``repro report --bandwidth`` and ``repro
bench-membw``.
"""

from __future__ import annotations

from typing import Sequence

from .hierarchy import MemStats

BANDWIDTH_HEADERS = (
    "level",
    "accesses",
    "L2->L1 MB",
    "mem MB",
    "GB/s",
    "row hit%",
    "banks",
    "energy mJ",
)


def bandwidth_row(label: str, stats: MemStats) -> list[object]:
    """One table row: boundary traffic, bandwidth, DRAM behaviour."""
    return [
        label,
        stats.accesses,
        f"{stats.l1_fill_bytes / 1e6:.2f}",
        f"{stats.data_transferred_bytes / 1e6:.2f}",
        f"{stats.effective_bandwidth_bytes_s / 1e9:.3f}",
        f"{100.0 * stats.dram_row_hit_rate:.1f}",
        stats.dram_banks_touched,
        f"{stats.dram_energy_nj / 1e6:.3f}",
    ]


def bandwidth_rows(results: Sequence) -> list[list[object]]:
    """Rows for :class:`~repro.harness.VariantResult` sequences."""
    return [bandwidth_row(r.level, r.stats) for r in results]


def bandwidth_record(program: str, level: str, stats: MemStats) -> dict:
    """The machine-readable row ``BENCH_membw.json`` commits."""
    return {
        "program": program,
        "level": level,
        "accesses": stats.accesses,
        "l1_misses": stats.l1_misses,
        "l2_misses": stats.l2_misses,
        "l2_writebacks": stats.l2_writebacks,
        "l1_fill_bytes": stats.l1_fill_bytes,
        "data_transferred_bytes": stats.data_transferred_bytes,
        "effective_bandwidth_gb_s": round(
            stats.effective_bandwidth_bytes_s / 1e9, 6
        ),
        "dram_row_hits": stats.dram_row_hits,
        "dram_row_misses": stats.dram_row_misses,
        "dram_banks_touched": stats.dram_banks_touched,
        "dram_energy_nj": round(stats.dram_energy_nj, 3),
    }
