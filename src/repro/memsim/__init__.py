"""Memory-hierarchy simulation substrate (replaces hardware counters)."""

from .cache import (
    ENGINES,
    CacheConfig,
    CacheResult,
    default_engine,
    simulate_cache,
    simulate_cache_writeback,
)
from .fastsim import fa_miss_counts
from .hierarchy import MemStats, miss_mask_l1, simulate_addresses, simulate_hierarchy
from .machine import (
    MACHINES,
    MachineConfig,
    TimingModel,
    TLBConfig,
    octane,
    origin2000,
    scaled_machine,
)

__all__ = [
    "CacheConfig",
    "CacheResult",
    "ENGINES",
    "MACHINES",
    "MachineConfig",
    "MemStats",
    "TLBConfig",
    "TimingModel",
    "default_engine",
    "fa_miss_counts",
    "miss_mask_l1",
    "octane",
    "origin2000",
    "scaled_machine",
    "simulate_addresses",
    "simulate_cache",
    "simulate_cache_writeback",
    "simulate_hierarchy",
]
