"""Memory-hierarchy simulation substrate (replaces hardware counters)."""

from .cache import CacheConfig, CacheResult, simulate_cache, simulate_cache_writeback
from .hierarchy import MemStats, miss_mask_l1, simulate_hierarchy
from .machine import (
    MACHINES,
    MachineConfig,
    TimingModel,
    TLBConfig,
    octane,
    origin2000,
    scaled_machine,
)

__all__ = [
    "CacheConfig",
    "CacheResult",
    "MACHINES",
    "MachineConfig",
    "MemStats",
    "TLBConfig",
    "TimingModel",
    "miss_mask_l1",
    "octane",
    "origin2000",
    "scaled_machine",
    "simulate_cache",
    "simulate_cache_writeback",
    "simulate_hierarchy",
]
