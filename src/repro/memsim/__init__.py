"""Memory-hierarchy simulation substrate (replaces hardware counters)."""

from .cache import (
    ENGINES,
    CacheConfig,
    CacheResult,
    default_engine,
    simulate_cache,
    simulate_cache_writeback,
)
from .bandwidth import (
    BANDWIDTH_HEADERS,
    bandwidth_record,
    bandwidth_row,
    bandwidth_rows,
)
from .coherence import CoherenceLevel, MSIResult, simulate_msi
from .dram import DRAMConfig, DRAMResult, simulate_dram
from .fastsim import fa_miss_counts
from .geometry import (
    ELEM_BYTES,
    L1_LINE_BYTES,
    L2_LINE_BYTES,
    PAGE_BYTES,
    CacheGeometry,
)
from .hierarchy import (
    MemStats,
    miss_mask_l1,
    simulate_addresses,
    simulate_hierarchy,
    simulate_stream,
    stats_from_hierarchy,
)
from .levels import (
    CacheLevel,
    DRAMLevel,
    HierarchyResult,
    LevelResult,
    MemoryHierarchy,
    MemoryLevel,
    TLBLevel,
)
from .machine import (
    MACHINES,
    MachineConfig,
    TimingModel,
    TLBConfig,
    octane,
    origin2000,
    scaled_machine,
)

__all__ = [
    "BANDWIDTH_HEADERS",
    "CacheConfig",
    "CacheGeometry",
    "CacheLevel",
    "CacheResult",
    "CoherenceLevel",
    "DRAMConfig",
    "DRAMLevel",
    "DRAMResult",
    "ELEM_BYTES",
    "ENGINES",
    "HierarchyResult",
    "L1_LINE_BYTES",
    "L2_LINE_BYTES",
    "LevelResult",
    "MACHINES",
    "MSIResult",
    "MachineConfig",
    "MemStats",
    "MemoryHierarchy",
    "MemoryLevel",
    "PAGE_BYTES",
    "TLBConfig",
    "TLBLevel",
    "TimingModel",
    "bandwidth_record",
    "bandwidth_row",
    "bandwidth_rows",
    "default_engine",
    "fa_miss_counts",
    "miss_mask_l1",
    "octane",
    "origin2000",
    "scaled_machine",
    "simulate_addresses",
    "simulate_cache",
    "simulate_cache_writeback",
    "simulate_dram",
    "simulate_hierarchy",
    "simulate_msi",
    "simulate_stream",
    "stats_from_hierarchy",
]
