"""DRAM device model: row/bank/channel mapping, row-buffer hits, energy.

The levels above (L1/L2/TLB) model *whether* a line must come from
memory; this module models *what memory does about it*.  Every L2 fill
request is mapped page-wise onto the DRAM geometry —

* **channel**: consecutive row-buffer-sized blocks interleave across
  channels (block ``addr // row_bytes``, modulo ``channels``);
* **bank**: consecutive blocks on one channel interleave across its
  banks;
* **row**: what remains addresses the row within the bank —

and each (channel, bank) keeps an open-page row buffer: a fill that hits
the currently open row is a **row hit** (column access only); a fill to
a different row pays an activate+precharge (**row miss**).  The model is
deterministic and purely vectorized, so both simulation engines produce
identical DRAM statistics from their (bit-identical) miss masks.

Energy is accounted per event with DDR-era ballpark constants: an
activate+precharge per row miss, a column burst per line transferred
(fills and write-backs), and nothing for background power — the figure
of merit is *energy moved per byte*, the lens the paper's effective
bandwidth argument puts on memory traffic, not absolute watts.

Write-backs are counted as column-burst traffic (bytes and energy) but
not mapped to rows: the cache simulators report how many dirty lines
were evicted, not which — the approximation is documented in DESIGN §9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DRAMConfig:
    """Geometry and per-event energy of the memory device."""

    channels: int = 2
    banks: int = 8  # per channel
    row_bytes: int = 2048  # row-buffer (DRAM page) size per bank
    activate_nj: float = 2.5  # row activate + precharge, per row miss
    read_nj: float = 1.0  # column burst per line read (fill)
    write_nj: float = 1.2  # column burst per line written (write-back)

    def __post_init__(self) -> None:
        if self.channels < 1 or self.banks < 1 or self.row_bytes < 1:
            raise ValueError("DRAM geometry values must be positive")


@dataclass(frozen=True)
class DRAMResult:
    """Outcome of replaying one fill stream against the device."""

    fills: int  # line requests served (L2 misses)
    row_hits: int
    row_misses: int
    writebacks: int  # dirty lines drained (counted, not row-mapped)
    line_bytes: int
    #: bytes served per (channel, bank), shape (channels * banks,)
    per_bank_bytes: np.ndarray = field(repr=False, default=None)
    energy_nj: float = 0.0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.fills if self.fills else 0.0

    @property
    def banks_touched(self) -> int:
        if self.per_bank_bytes is None:
            return 0
        return int(np.count_nonzero(self.per_bank_bytes))

    @property
    def bytes_read(self) -> int:
        return self.fills * self.line_bytes

    @property
    def bytes_written(self) -> int:
        return self.writebacks * self.line_bytes


def simulate_dram(
    config: DRAMConfig,
    fill_addresses: np.ndarray,
    line_bytes: int,
    writebacks: int = 0,
) -> DRAMResult:
    """Replay the L2 fill stream against the open-page row buffers.

    ``fill_addresses`` are the byte addresses of the accesses that
    missed in the L2 (one fill per miss); ``writebacks`` is the dirty
    line count the L2 drained.  Runs in O(n log n) — one stable sort
    groups the stream per (channel, bank) while preserving program
    order within each bank, which is exactly the order its row buffer
    sees.
    """
    addr = np.asarray(fill_addresses, dtype=np.int64)
    nbanks = config.channels * config.banks
    per_bank = np.zeros(nbanks, dtype=np.int64)
    if len(addr) == 0:
        energy = config.write_nj * writebacks
        return DRAMResult(
            fills=0,
            row_hits=0,
            row_misses=0,
            writebacks=writebacks,
            line_bytes=line_bytes,
            per_bank_bytes=per_bank,
            energy_nj=energy,
        )
    block = addr // config.row_bytes
    channel = block % config.channels
    per_channel = block // config.channels
    bank = per_channel % config.banks
    row = per_channel // config.banks
    bank_id = channel * config.banks + bank

    # program order within each bank == sorted order under a stable sort
    order = np.argsort(bank_id, kind="stable")
    sorted_bank = bank_id[order]
    sorted_row = row[order]
    hit = np.zeros(len(addr), dtype=bool)
    hit[1:] = (sorted_bank[1:] == sorted_bank[:-1]) & (
        sorted_row[1:] == sorted_row[:-1]
    )
    row_hits = int(hit.sum())
    row_misses = len(addr) - row_hits

    np.add.at(per_bank, bank_id, line_bytes)
    energy = (
        config.activate_nj * row_misses
        + config.read_nj * len(addr)
        + config.write_nj * writebacks
    )
    return DRAMResult(
        fills=len(addr),
        row_hits=row_hits,
        row_misses=row_misses,
        writebacks=writebacks,
        line_bytes=line_bytes,
        per_bank_bytes=per_bank,
        energy_nj=energy,
    )
