"""Composable memory hierarchies: pluggable levels over one stream.

``simulate_hierarchy`` used to be a fixed L1 → L2 → TLB pipeline; this
module breaks it into :class:`MemoryLevel` objects a
:class:`MemoryHierarchy` chains.  Each level declares which stream it
observes via ``source``:

* ``None`` — the full access stream (the L1, and the TLB, which watches
  every access at page granularity);
* a level name — the *misses* of that level (the L2 observes ``"l1"``,
  the DRAM observes ``"l2"``).

The plug-in contract (DESIGN §9): a level exposes ``name``, ``source``,
and ``simulate(addresses, writes, engine, upstream)`` returning a
:class:`LevelResult`.  The hierarchy walks levels in order, wraps each
in an :mod:`repro.obs` span named after the level, filters the stream
by the source's miss mask, and hands the source's own result in as
``upstream`` (how the DRAM level learns the L2's write-back count).
Levels must not mutate the stream; results are deterministic per
engine, and the two cache engines stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import MutableMapping, Optional, Protocol, runtime_checkable

import numpy as np

from ..obs import span
from .cache import CacheConfig, default_engine, simulate_cache_writeback
from .dram import DRAMConfig, DRAMResult, simulate_dram
from .machine import MachineConfig, TLBConfig


@dataclass(frozen=True)
class LevelResult:
    """What one level did with the stream it observed."""

    name: str
    accesses: int
    misses: int
    writebacks: int = 0
    line_bytes: int = 0
    #: per-access miss mask over the observed (already filtered) stream;
    #: None for terminal levels that serve everything (DRAM)
    miss: Optional[np.ndarray] = field(repr=False, default=None)
    #: device-specific extras (e.g. the DRAM row-buffer outcome)
    dram: Optional[DRAMResult] = None
    #: MSI coherence extras (an :class:`~repro.memsim.coherence.MSIResult`
    #: when the level is a :class:`~repro.memsim.coherence.CoherenceLevel`)
    msi: Optional[object] = None

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def fill_bytes(self) -> int:
        """Bytes pulled into this level (misses × line size)."""
        return self.misses * self.line_bytes

    @property
    def writeback_bytes(self) -> int:
        return self.writebacks * self.line_bytes


@runtime_checkable
class MemoryLevel(Protocol):
    """The hierarchy plug-in contract."""

    name: str
    source: Optional[str]

    def simulate(
        self,
        addresses: np.ndarray,
        writes: np.ndarray,
        engine: Optional[str],
        upstream: Optional[LevelResult],
    ) -> LevelResult:
        ...


@dataclass(frozen=True)
class CacheLevel:
    """A set-associative LRU cache level (L1, L2, ...)."""

    name: str
    config: CacheConfig
    source: Optional[str] = None
    #: whether store accesses dirty lines here (write-back accounting);
    #: the L1 is modeled write-through like the original fixed stack
    track_writes: bool = True

    def simulate(
        self,
        addresses: np.ndarray,
        writes: np.ndarray,
        engine: Optional[str],
        upstream: Optional[LevelResult] = None,
    ) -> LevelResult:
        result = simulate_cache_writeback(
            self.config,
            addresses,
            writes if self.track_writes else None,
            engine=engine,
        )
        return LevelResult(
            name=self.name,
            accesses=len(addresses),
            misses=result.misses,
            writebacks=result.writebacks if self.track_writes else 0,
            line_bytes=self.config.line_bytes,
            miss=result.miss,
        )


@dataclass(frozen=True)
class TLBLevel:
    """The TLB as a fully-associative cache of page translations."""

    config: TLBConfig
    name: str = "tlb"
    source: Optional[str] = None

    def simulate(
        self,
        addresses: np.ndarray,
        writes: np.ndarray,
        engine: Optional[str],
        upstream: Optional[LevelResult] = None,
    ) -> LevelResult:
        result = simulate_cache_writeback(
            self.config.as_cache(), addresses, None, engine=engine
        )
        return LevelResult(
            name=self.name,
            accesses=len(addresses),
            misses=result.misses,
            line_bytes=self.config.page_bytes,
            miss=result.miss,
        )


@dataclass(frozen=True)
class DRAMLevel:
    """The memory device behind the last cache level."""

    config: DRAMConfig
    line_bytes: int
    name: str = "dram"
    source: Optional[str] = "l2"

    def simulate(
        self,
        addresses: np.ndarray,
        writes: np.ndarray,
        engine: Optional[str],
        upstream: Optional[LevelResult] = None,
    ) -> LevelResult:
        writebacks = upstream.writebacks if upstream is not None else 0
        outcome = simulate_dram(
            self.config, addresses, self.line_bytes, writebacks=writebacks
        )
        return LevelResult(
            name=self.name,
            accesses=len(addresses),
            misses=outcome.row_misses,  # row-buffer misses: the activates
            writebacks=writebacks,
            line_bytes=self.line_bytes,
            dram=outcome,
        )


@dataclass
class HierarchyResult:
    """Ordered per-level outcomes of one hierarchy simulation."""

    machine: str
    accesses: int
    levels: dict[str, LevelResult]

    def __getitem__(self, name: str) -> LevelResult:
        return self.levels[name]

    def __contains__(self, name: str) -> bool:
        return name in self.levels

    @property
    def dram(self) -> Optional[DRAMResult]:
        for level in self.levels.values():
            if level.dram is not None:
                return level.dram
        return None


class MemoryHierarchy:
    """An ordered chain of :class:`MemoryLevel` plug-ins."""

    def __init__(self, name: str, levels: tuple) -> None:
        self.name = name
        self.levels: tuple = tuple(levels)
        seen: set[str] = set()
        for level in self.levels:
            if level.name in seen:
                raise ValueError(f"duplicate level name {level.name!r}")
            if level.source is not None and level.source not in seen:
                raise ValueError(
                    f"level {level.name!r} observes {level.source!r}, "
                    f"which is not defined before it"
                )
            seen.add(level.name)

    @classmethod
    def standard(cls, machine: MachineConfig) -> "MemoryHierarchy":
        """The paper's stack: L1, L2 (sees L1 misses), TLB, DRAM."""
        return cls(
            machine.name,
            (
                CacheLevel("l1", machine.l1, source=None, track_writes=False),
                CacheLevel("l2", machine.l2, source="l1"),
                TLBLevel(machine.tlb),
                DRAMLevel(machine.dram, machine.l2.line_bytes, source="l2"),
            ),
        )

    def simulate(
        self,
        addresses: np.ndarray,
        writes: Optional[np.ndarray] = None,
        engine: Optional[str] = None,
        timings: Optional[MutableMapping[str, float]] = None,
    ) -> HierarchyResult:
        """Run the stream through every level, in declaration order.

        ``addresses`` may be a raw int64 array or an
        :class:`~repro.stream.AddressStream` (its write column is used
        when ``writes`` is omitted).  Each level runs under an obs span
        named after it; per-level seconds accumulate into ``timings``.
        """
        if writes is None and hasattr(addresses, "writes"):
            writes = addresses.writes
        addresses = np.asarray(addresses, dtype=np.int64)
        if writes is None:
            writes = np.zeros(len(addresses), dtype=bool)
        resolved = engine or default_engine()
        results: dict[str, LevelResult] = {}
        # each level's observed columns, so source filters compose: a
        # level's miss mask indexes the stream *it* observed, not the
        # full stream (the DRAM sees addresses[l1.miss][l2.miss])
        observed_by: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for level in self.levels:
            if level.source is None:
                observed, observed_writes = addresses, writes
                upstream = None
            else:
                upstream = results[level.source]
                observed, observed_writes = observed_by[level.source]
                if upstream.miss is not None:
                    observed = observed[upstream.miss]
                    observed_writes = observed_writes[upstream.miss]
            with span(level.name, engine=resolved) as sp:
                result = level.simulate(
                    observed, observed_writes, engine, upstream
                )
                sp.attrs["misses"] = result.misses
            if timings is not None:
                timings[level.name] = timings.get(level.name, 0.0) + sp.duration_s
            observed_by[level.name] = (observed, observed_writes)
            results[level.name] = result
        return HierarchyResult(
            machine=self.name, accesses=len(addresses), levels=results
        )
