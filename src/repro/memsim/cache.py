"""Set-associative LRU cache simulation with write-back accounting.

Functional-simulation substrate replacing the paper's hardware counters:
a cache is simulated exactly (true LRU within each set), returning a
per-access miss mask so levels can be chained (L2 sees only L1 misses),
plus the number of dirty-line write-backs — the outbound half of the
bandwidth the paper's effective-bandwidth argument is about.

Two engines share this entry point.  The **reference** engine is the
original scalar implementation below: plain Python over pre-extracted
lists, the ground truth every optimization is checked against.  The
**fast** engine (:mod:`repro.memsim.fastsim`) re-derives the identical
miss masks and write-back counts with vectorized numpy set-partitioned
processing, run-length compression, and a reuse-distance-style
fully-associative path — several times faster on multi-million access
traces.  Select per call via ``engine=`` or globally via the
``REPRO_ENGINE`` environment variable; results are bit-identical (a
property-test suite pins the equivalence).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..lang import SimulationError

#: Engine names accepted by ``simulate_cache*``.
ENGINES = ("fast", "reference")


def default_engine() -> str:
    """Engine used when none is requested (``REPRO_ENGINE`` overrides).

    Delegates to :func:`repro.engines.default_sim_engine` — one parser
    of the environment knob for every layer (imported lazily because
    ``repro.engines`` imports this package for the engine names).
    """
    from ..engines import default_sim_engine

    return default_sim_engine()


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int  # 0 = fully associative

    def __post_init__(self) -> None:
        if self.size_bytes % self.line_bytes:
            raise SimulationError(f"{self.name}: size not a multiple of line size")
        lines = self.size_bytes // self.line_bytes
        if self.assoc and lines % self.assoc:
            raise SimulationError(f"{self.name}: lines not a multiple of assoc")
        if self.assoc and self.assoc > lines:
            raise SimulationError(f"{self.name}: assoc exceeds line count")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def line_elems(self) -> int:
        """Array elements per line (the unit the static analyses count)."""
        from .geometry import ELEM_BYTES

        return max(1, self.line_bytes // ELEM_BYTES)

    @property
    def num_sets(self) -> int:
        return 1 if self.assoc == 0 else self.num_lines // self.assoc

    @property
    def ways(self) -> int:
        return self.num_lines if self.assoc == 0 else self.assoc

    def scaled(self, factor: float) -> "CacheConfig":
        """Shrink/grow capacity, preserving line size and associativity.

        Clamped so any positive factor yields a valid geometry: at least
        one full set (``num_lines >= assoc``, rounded to a multiple of
        the associativity) and at least one line when fully associative.
        """
        lines = max(1 if self.assoc == 0 else self.assoc,
                    int(self.num_lines * factor))
        if self.assoc:
            lines = max(self.assoc, (lines // self.assoc) * self.assoc)
        return CacheConfig(self.name, lines * self.line_bytes, self.line_bytes, self.assoc)


@dataclass(frozen=True)
class CacheResult:
    """Outcome of simulating one cache level."""

    miss: np.ndarray  # per-access miss mask
    writebacks: int  # dirty lines evicted (plus dirty residue at the end)

    @property
    def misses(self) -> int:
        return int(self.miss.sum())


def simulate_cache(
    config: CacheConfig, addresses: np.ndarray, engine: Optional[str] = None
) -> np.ndarray:
    """Simulate one cache level; returns the per-access miss mask."""
    return simulate_cache_writeback(config, addresses, None, engine=engine).miss


def simulate_cache_writeback(
    config: CacheConfig,
    addresses: np.ndarray,
    writes: Optional[np.ndarray],
    engine: Optional[str] = None,
) -> CacheResult:
    """Simulate with write-back accounting.

    ``writes`` marks store accesses (None = all loads).  A dirty line
    contributes one write-back when evicted; dirty lines still resident at
    the end are flushed and counted too (the data must eventually reach
    memory).  ``engine`` selects the implementation ("fast" or
    "reference"); both return bit-identical results.
    """
    engine = engine or default_engine()
    if engine not in ENGINES:
        raise SimulationError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    lines = (np.asarray(addresses, dtype=np.int64) // config.line_bytes)
    wr = (
        np.zeros(len(lines), dtype=bool)
        if writes is None
        else np.asarray(writes, dtype=bool)
    )
    if engine == "fast":
        from .fastsim import simulate_fast

        return simulate_fast(config, lines, wr)
    from ..obs import metrics

    metrics.inc("engine.reference.calls")
    if config.assoc == 0 or config.num_sets == 1:
        return _fully_associative(lines, wr, config.ways)
    if config.assoc == 1:
        return _direct_mapped(lines, wr, config.num_sets)
    if config.assoc == 2:
        return _two_way(lines, wr, config.num_sets)
    return _n_way(lines, wr, config.num_sets, config.assoc)


def _fully_associative(
    lines: np.ndarray, writes: np.ndarray, capacity: int
) -> CacheResult:
    miss = np.zeros(len(lines), dtype=bool)
    lru: OrderedDict[int, bool] = OrderedDict()  # line -> dirty
    writebacks = 0
    for t, (line, w) in enumerate(zip(lines.tolist(), writes.tolist())):
        if line in lru:
            dirty = lru.pop(line)
            lru[line] = dirty or w
        else:
            miss[t] = True
            if len(lru) >= capacity:
                _, victim_dirty = lru.popitem(last=False)
                writebacks += victim_dirty
            lru[line] = w
    writebacks += sum(lru.values())
    return CacheResult(miss, writebacks)


def _direct_mapped(lines: np.ndarray, writes: np.ndarray, num_sets: int) -> CacheResult:
    miss = np.zeros(len(lines), dtype=bool)
    slots = [-1] * num_sets
    dirty = [False] * num_sets
    writebacks = 0
    for t, (line, w) in enumerate(zip(lines.tolist(), writes.tolist())):
        s = line % num_sets
        if slots[s] != line:
            miss[t] = True
            writebacks += dirty[s] and slots[s] != -1
            slots[s] = line
            dirty[s] = w
        else:
            dirty[s] = dirty[s] or w
    writebacks += sum(d and s != -1 for d, s in zip(dirty, slots))
    return CacheResult(miss, writebacks)


def _two_way(lines: np.ndarray, writes: np.ndarray, num_sets: int) -> CacheResult:
    miss = np.zeros(len(lines), dtype=bool)
    mru = [-1] * num_sets
    lru = [-1] * num_sets
    mru_d = [False] * num_sets
    lru_d = [False] * num_sets
    writebacks = 0
    for t, (line, w) in enumerate(zip(lines.tolist(), writes.tolist())):
        s = line % num_sets
        a = mru[s]
        if a == line:
            mru_d[s] = mru_d[s] or w
            continue
        if lru[s] == line:
            # swap to MRU
            mru[s], lru[s] = line, a
            mru_d[s], lru_d[s] = lru_d[s] or w, mru_d[s]
            continue
        miss[t] = True
        writebacks += lru_d[s] and lru[s] != -1
        lru[s], lru_d[s] = a, mru_d[s]
        mru[s], mru_d[s] = line, w
    for s in range(num_sets):
        writebacks += mru_d[s] and mru[s] != -1
        writebacks += lru_d[s] and lru[s] != -1
    return CacheResult(miss, writebacks)


def _n_way(
    lines: np.ndarray, writes: np.ndarray, num_sets: int, assoc: int
) -> CacheResult:
    miss = np.zeros(len(lines), dtype=bool)
    sets: list[OrderedDict[int, bool]] = [OrderedDict() for _ in range(num_sets)]
    writebacks = 0
    for t, (line, w) in enumerate(zip(lines.tolist(), writes.tolist())):
        s = line % num_sets
        ways = sets[s]
        if line in ways:
            dirty = ways.pop(line)
            ways[line] = dirty or w
        else:
            miss[t] = True
            if len(ways) >= assoc:
                _, victim_dirty = ways.popitem(last=False)
                writebacks += victim_dirty
            ways[line] = w
    for ways in sets:
        writebacks += sum(ways.values())
    return CacheResult(miss, writebacks)
