"""Whole-hierarchy simulation: trace + layout + machine -> miss counts.

The L1 sees every access; the L2 sees exactly the L1 misses (the chained
miss mask); the TLB sees every access at page granularity.  Data
transferred from memory is L2 misses x L2 line size — the quantity the
paper's §6 table normalizes — and execution time is synthesized from the
additive :class:`TimingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import MutableMapping, Optional

import numpy as np

from ..core.regroup.layout import Layout
from ..interp.trace import AccessTrace
from ..obs import span
from .cache import default_engine, simulate_cache, simulate_cache_writeback
from .machine import MachineConfig


@dataclass(frozen=True)
class MemStats:
    """Result of simulating one program variant on one machine."""

    machine: str
    accesses: int
    l1_misses: int
    l2_misses: int
    tlb_misses: int
    l1_line_bytes: int
    l2_line_bytes: int
    seconds: float
    #: dirty L2 lines written back to memory (outbound bandwidth)
    l2_writebacks: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.accesses if self.accesses else 0.0

    @property
    def tlb_miss_rate(self) -> float:
        return self.tlb_misses / self.accesses if self.accesses else 0.0

    @property
    def data_transferred_bytes(self) -> int:
        """Bytes moved between memory and cache in both directions (the
        bandwidth the program actually consumed): line fills plus dirty
        write-backs."""
        return (self.l2_misses + self.l2_writebacks) * self.l2_line_bytes

    def normalized_to(self, base: "MemStats") -> dict[str, float]:
        def ratio(a: float, b: float) -> float:
            return a / b if b else (0.0 if a == 0 else float("inf"))

        return {
            "time": ratio(self.seconds, base.seconds),
            "l1": ratio(self.l1_misses, base.l1_misses),
            "l2": ratio(self.l2_misses, base.l2_misses),
            "tlb": ratio(self.tlb_misses, base.tlb_misses),
        }


def simulate_hierarchy(
    trace: AccessTrace,
    layout: Layout,
    machine: MachineConfig,
    engine: Optional[str] = None,
    timings: Optional[MutableMapping[str, float]] = None,
) -> MemStats:
    """Simulate L1 -> L2 -> TLB for one (trace, layout) pair.

    ``engine`` selects the simulation implementation (see
    :data:`repro.memsim.cache.ENGINES`).  When ``timings`` is a mapping,
    per-stage wall-clock seconds are accumulated into it under the keys
    ``addresses``, ``l1``, ``l2`` and ``tlb``.  Each stage also emits an
    :mod:`repro.obs` span, so profiles see the same breakdown.
    """
    with span("addresses", accesses=len(trace)) as sp:
        addresses = layout.addresses(trace, in_bytes=True)
    if timings is not None:
        timings["addresses"] = timings.get("addresses", 0.0) + sp.duration_s
    return simulate_addresses(
        addresses, trace.writes, machine, engine=engine, timings=timings
    )


def simulate_addresses(
    addresses: np.ndarray,
    writes: np.ndarray,
    machine: MachineConfig,
    engine: Optional[str] = None,
    timings: Optional[MutableMapping[str, float]] = None,
) -> MemStats:
    """Simulate the hierarchy from a pre-computed byte-address stream.

    This is the entry point the trace cache uses: a cached (addresses,
    writes) pair replays without re-tracing or re-laying-out the program.
    Each stage runs under an :mod:`repro.obs` span named ``l1``/``l2``/
    ``tlb``; the legacy ``timings`` mapping is filled from the same spans.
    """
    resolved = engine or default_engine()

    def _mark(stage: str, sp) -> None:
        if timings is not None:
            timings[stage] = timings.get(stage, 0.0) + sp.duration_s

    with span("l1", engine=resolved) as sp:
        l1_miss = simulate_cache(machine.l1, addresses, engine=engine)
        sp.attrs["misses"] = int(l1_miss.sum())
    _mark("l1", sp)
    with span("l2", engine=resolved) as sp:
        l2 = simulate_cache_writeback(
            machine.l2, addresses[l1_miss], writes[l1_miss], engine=engine
        )
        sp.attrs["misses"] = l2.misses
    _mark("l2", sp)
    with span("tlb", engine=resolved) as sp:
        tlb_miss = simulate_cache(machine.tlb.as_cache(), addresses, engine=engine)
        sp.attrs["misses"] = int(tlb_miss.sum())
    _mark("tlb", sp)
    n = len(addresses)
    n1 = int(l1_miss.sum())
    n2 = l2.misses
    nt = int(tlb_miss.sum())
    t = machine.timing
    cycles = (
        n * t.cycles_per_access
        + n1 * t.l1_miss_cycles
        + n2 * t.l2_miss_cycles
        + nt * t.tlb_miss_cycles
    )
    latency_seconds = cycles / (t.clock_mhz * 1e6)
    bandwidth_seconds = (
        (n2 + l2.writebacks) * machine.l2.line_bytes
    ) / (t.bandwidth_mb_s * 1e6)
    return MemStats(
        machine=machine.name,
        accesses=n,
        l1_misses=n1,
        l2_misses=n2,
        tlb_misses=nt,
        l1_line_bytes=machine.l1.line_bytes,
        l2_line_bytes=machine.l2.line_bytes,
        seconds=max(latency_seconds, bandwidth_seconds),
        l2_writebacks=l2.writebacks,
    )


def miss_mask_l1(
    trace: AccessTrace, layout: Layout, machine: MachineConfig
) -> np.ndarray:
    """Per-access L1 miss mask (analysis/visualization support)."""
    return simulate_cache(machine.l1, layout.addresses(trace, in_bytes=True))
